// F9 — query planner impact: search, FK-browse, and join-with-filter
// latency through the legacy executor (materialised nested loops, whole
// WHERE at the end) versus the planner (predicate pushdown, unique/FK
// index access, hash joins, LIMIT short-circuit) at 10k- and 100k-row
// catalogues. Emits a JSON block so future PRs can track the trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"

namespace {

using namespace easia;
using namespace easia::db;

/// AUTHOR -> SIMULATION -> DATASET catalogue with `datasets` DATASET rows
/// and one SIMULATION per 10 datasets.
std::unique_ptr<Database> MakeCatalogue(size_t datasets) {
  auto db = std::make_unique<Database>("BENCH");
  (void)db->Execute(
      "CREATE TABLE AUTHOR (AUTHOR_KEY VARCHAR(30) NOT NULL,"
      " NAME VARCHAR(80), PRIMARY KEY (AUTHOR_KEY))");
  (void)db->Execute(
      "CREATE TABLE SIMULATION (SIMULATION_KEY VARCHAR(30) NOT NULL,"
      " AUTHOR_KEY VARCHAR(30), RE DOUBLE,"
      " PRIMARY KEY (SIMULATION_KEY),"
      " FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY))");
  (void)db->Execute(
      "CREATE TABLE DATASET (DATASET_KEY VARCHAR(30) NOT NULL,"
      " SIMULATION_KEY VARCHAR(30), STEP INTEGER, SIZE_MB DOUBLE,"
      " PRIMARY KEY (DATASET_KEY),"
      " FOREIGN KEY (SIMULATION_KEY) REFERENCES SIMULATION"
      " (SIMULATION_KEY))");
  for (int a = 0; a < 20; ++a) {
    (void)db->Execute("INSERT INTO AUTHOR VALUES ('A" + std::to_string(a) +
                      "', 'Author " + std::to_string(a) + "')");
  }
  size_t sims = datasets / 10 == 0 ? 1 : datasets / 10;
  (void)db->Execute("BEGIN");
  for (size_t s = 0; s < sims; ++s) {
    (void)db->Execute("INSERT INTO SIMULATION VALUES ('S" +
                      std::to_string(s) + "', 'A" + std::to_string(s % 20) +
                      "', " + std::to_string(100 * (s % 64)) + ")");
  }
  for (size_t d = 0; d < datasets; ++d) {
    (void)db->Execute("INSERT INTO DATASET VALUES ('D" + std::to_string(d) +
                      "', 'S" + std::to_string(d / 10) + "', " +
                      std::to_string(d % 16) + ", " +
                      std::to_string((d % 100) * 4.0) + ")");
  }
  (void)db->Execute("COMMIT");
  return db;
}

/// Milliseconds for the best of `iters` runs of `select_sql` through
/// ExecuteSelect with the given planner setting. Negative when skipped.
double TimeSelectMs(Database& db, const std::string& select_sql,
                    bool use_planner, int iters) {
  Result<Statement> stmt = ParseSql(select_sql);
  if (!stmt.ok() || stmt->kind != Statement::Kind::kSelect) return -1;
  TableLookup lookup = [&db](const std::string& name) {
    return db.GetTable(name);
  };
  double best = -1;
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    Result<QueryResult> r =
        ExecuteSelect(*stmt->select, lookup, nullptr, {use_planner});
    auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) return -1;
    benchmark::DoNotOptimize(r->rows.size());
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

struct QuerySpec {
  const char* name;
  std::string sql;
  bool naive_feasible_at_100k;
};

std::vector<QuerySpec> Queries(size_t datasets) {
  std::string mid_sim = "'S" + std::to_string(datasets / 20) + "'";
  std::string mid_ds = "'D" + std::to_string(datasets / 2) + "'";
  return {
      // QBE-style search: pushdown only (both paths scan once).
      {"search_filter",
       "SELECT * FROM DATASET WHERE STEP = 7 AND SIZE_MB > 100", true},
      // FK browse: the /browse page's exact shape; planner uses the new
      // secondary index, legacy path scans the whole table.
      {"fk_browse",
       "SELECT * FROM DATASET WHERE SIMULATION_KEY = " + mid_sim, true},
      // PK point lookup on a non-first FROM table.
      {"point_lookup_join",
       "SELECT * FROM SIMULATION S JOIN DATASET D"
       " ON S.SIMULATION_KEY = D.SIMULATION_KEY"
       " WHERE D.DATASET_KEY = " + mid_ds,
       false},
      // The headline: join with a selective filter. Legacy materialises
      // |SIMULATION| x |DATASET| rows before filtering.
      {"join_with_filter",
       "SELECT S.SIMULATION_KEY, D.DATASET_KEY FROM SIMULATION S, DATASET D"
       " WHERE S.SIMULATION_KEY = D.SIMULATION_KEY AND S.RE > 3000",
       false},
      // LIMIT short-circuit.
      {"limit_scan", "SELECT * FROM DATASET LIMIT 10", true},
  };
}

void PrintReproduction() {
  std::printf("\n=== F9: query planner (pushdown + hash joins) ===\n");
  std::printf("{\"bench\":\"f9_query_planner\",\"scales\":[");
  bool first_scale = true;
  for (size_t datasets : {size_t{10000}, size_t{100000}}) {
    auto db = MakeCatalogue(datasets);
    if (!first_scale) std::printf(",");
    first_scale = false;
    std::printf("\n {\"rows\":%zu,\"queries\":[", datasets);
    bool first_query = true;
    for (const QuerySpec& q : Queries(datasets)) {
      // The legacy executor's cross product is quadratic; at 100k rows a
      // naive join would materialise ~1e9 rows, so it is skipped there
      // (reported as null) rather than silently capped.
      bool run_naive = datasets <= 10000 || q.naive_feasible_at_100k;
      int iters = datasets <= 10000 ? 5 : 3;
      double planned = TimeSelectMs(*db, q.sql, true, iters);
      double naive = run_naive ? TimeSelectMs(*db, q.sql, false,
                                              datasets <= 10000 ? 3 : 2)
                               : -1;
      if (!first_query) std::printf(",");
      first_query = false;
      std::printf("\n  {\"query\":\"%s\",\"planned_ms\":%.3f", q.name,
                  planned);
      if (naive >= 0) {
        std::printf(",\"naive_ms\":%.3f,\"speedup\":%.1f", naive,
                    planned > 0 ? naive / planned : 0.0);
      } else {
        std::printf(",\"naive_ms\":null,\"speedup\":null");
      }
      std::printf("}");
    }
    std::printf("\n ]}");
  }
  std::printf("\n]}\n");
}

void BM_PlannedJoinWithFilter(benchmark::State& state) {
  auto db = MakeCatalogue(static_cast<size_t>(state.range(0)));
  std::string sql =
      "SELECT S.SIMULATION_KEY, D.DATASET_KEY FROM SIMULATION S, DATASET D"
      " WHERE S.SIMULATION_KEY = D.SIMULATION_KEY AND S.RE > 3000";
  Result<Statement> stmt = ParseSql(sql);
  TableLookup lookup = [&db](const std::string& name) {
    return db->GetTable(name);
  };
  for (auto _ : state) {
    auto r = ExecuteSelect(*stmt->select, lookup, nullptr, {true});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PlannedJoinWithFilter)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_FkBrowse(benchmark::State& state) {
  auto db = MakeCatalogue(static_cast<size_t>(state.range(0)));
  std::string sql = "SELECT * FROM DATASET WHERE SIMULATION_KEY = 'S7'";
  Result<Statement> stmt = ParseSql(sql);
  TableLookup lookup = [&db](const std::string& name) {
    return db->GetTable(name);
  };
  for (auto _ : state) {
    auto r = ExecuteSelect(*stmt->select, lookup, nullptr, {true});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_FkBrowse)->Arg(10000)->Arg(100000)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
