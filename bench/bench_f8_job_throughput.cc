// F8 — asynchronous batch jobs. The paper's operations run while the user
// waits on the servlet; the job queue instead accepts the request, journals
// it and returns an id immediately, so the interactive front end stays
// responsive while workers drain the backlog.
//
// Reported here:
//   * wall-clock request latency of synchronous /runop (operation executes
//     inside the request) vs asynchronous /jobs/submit (request only queues);
//   * queue drain throughput (jobs/second through the scheduler's
//     deterministic worker step).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/archive.h"
#include "core/turbulence_setup.h"

namespace {

using namespace easia;

struct Bench {
  std::unique_ptr<core::Archive> archive;
  std::string session;
  std::vector<std::string> datasets;
};

Bench MakeBench(size_t grid_n = 16) {
  Bench b;
  core::Archive::Options options;
  options.job_options.limits.user_queued = 4096;
  b.archive = std::make_unique<core::Archive>(options);
  b.archive->AddFileServer("fs1", 8.0);
  b.archive->AddFileServer("fs2", 8.0);
  (void)core::CreateTurbulenceSchema(b.archive.get());
  core::SeedOptions seed;
  seed.hosts = {"fs1", "fs2"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 8;
  seed.grid_n = grid_n;
  auto seeded = core::SeedTurbulenceData(b.archive.get(), seed);
  b.datasets = (*seeded)[0].dataset_urls;
  (void)b.archive->InitializeXuis();
  (void)core::AttachNativeOperations(b.archive.get());
  (void)b.archive->AddUser("alice", "pw", web::UserRole::kAuthorised);
  b.session = *b.archive->Login("alice", "pw");
  return b;
}

double MicrosPerCall(const std::function<void()>& fn, int iters) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         iters;
}

void PrintReproduction() {
  std::printf("\n=== F8: async job submission vs synchronous /runop ===\n");
  Bench b = MakeBench();
  const std::string& dataset = b.datasets[0];

  // Synchronous: FieldStats runs inside the servlet request.
  constexpr int kIters = 64;
  size_t i = 0;
  double sync_us = MicrosPerCall(
      [&] {
        auto r = b.archive->Get(b.session, "/runop",
                                {{"op", "FieldStats"},
                                 {"dataset", b.datasets[i++ %
                                                        b.datasets.size()]}});
        if (r.status != 200) std::printf("runop failed: %s\n",
                                         r.body.c_str());
      },
      kIters);

  // Asynchronous: the same operation queued through /jobs/submit; the
  // request returns the job id without touching the dataset.
  double submit_us = MicrosPerCall(
      [&] {
        auto r = b.archive->Get(b.session, "/jobs/submit",
                                {{"op", "FieldStats"},
                                 {"dataset", b.datasets[i++ %
                                                        b.datasets.size()]}});
        if (r.status != 200) std::printf("submit failed: %s\n",
                                         r.body.c_str());
      },
      kIters);

  // Drain the backlog and measure worker throughput.
  auto start = std::chrono::steady_clock::now();
  size_t drained = b.archive->jobs().RunPending();
  auto end = std::chrono::steady_clock::now();
  double drain_s = std::chrono::duration<double>(end - start).count();

  std::printf("%-28s %12.1f us/request\n", "synchronous /runop", sync_us);
  std::printf("%-28s %12.1f us/request  (%.0fx faster to first response)\n",
              "async /jobs/submit", submit_us,
              submit_us > 0 ? sync_us / submit_us : 0.0);
  std::printf("%-28s %12.1f jobs/s  (%zu jobs in %.3fs)\n",
              "worker drain throughput",
              drain_s > 0 ? drained / drain_s : 0.0, drained, drain_s);
  std::printf("shape check: submission latency is independent of the "
              "operation's cost; the archive answers immediately and the "
              "backlog drains in the background\n\n");

  (void)dataset;
}

void BM_SyncRunOp(benchmark::State& state) {
  Bench b = MakeBench();
  size_t i = 0;
  for (auto _ : state) {
    auto r = b.archive->Get(b.session, "/runop",
                            {{"op", "FieldStats"},
                             {"dataset",
                              b.datasets[i++ % b.datasets.size()]}});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SyncRunOp)->Unit(benchmark::kMicrosecond);

void BM_AsyncSubmit(benchmark::State& state) {
  Bench b = MakeBench();
  size_t i = 0;
  for (auto _ : state) {
    auto r = b.archive->Get(b.session, "/jobs/submit",
                            {{"op", "FieldStats"},
                             {"dataset",
                              b.datasets[i++ % b.datasets.size()]}});
    benchmark::DoNotOptimize(r);
    // Keep the open-job quota from filling up mid-benchmark (untimed).
    if (i % 32 == 0) {
      state.PauseTiming();
      (void)b.archive->jobs().RunPending();
      state.ResumeTiming();
    }
  }
  (void)b.archive->jobs().RunPending();
}
BENCHMARK(BM_AsyncSubmit)->Unit(benchmark::kMicrosecond);

void BM_QueueDrain(benchmark::State& state) {
  Bench b = MakeBench();
  for (auto _ : state) {
    state.PauseTiming();
    size_t i = 0;
    for (int n = 0; n < 16; ++n) {
      (void)b.archive->Get(b.session, "/jobs/submit",
                           {{"op", "FieldStats"},
                            {"dataset",
                             b.datasets[i++ % b.datasets.size()]}});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(b.archive->jobs().RunPending());
  }
}
BENCHMARK(BM_QueueDrain)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
