// T1 — "Experimental ftp bandwidth measurements" (the paper's only
// quantitative table). Reproduces all eight cells: {day, evening} x
// {to, from Southampton} x {85 MB small, 544 MB large simulation files},
// using the calibrated link rates (0.25 / 0.37 / 0.58 / 1.94 Mbit/s).
//
// Paper values for reference:
//   Day     To Southampton   0.25  45m20s   4h50m08s
//   Day     From Southampton 0.37  30m38s   3h16m02s
//   Evening To Southampton   0.58  19m32s   2h05m03s
//   Evening From Southampton 1.94   5m51s     37m23s
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/string_util.h"
#include "sim/bandwidth.h"

namespace {

using easia::HumanDuration;
using namespace easia::sim;

constexpr uint64_t kSmallFile = 85 * kMegabyte;
constexpr uint64_t kLargeFile = 544 * kMegabyte;

void PrintReproduction() {
  struct Row {
    const char* time;
    const char* direction;
    double mbps;
  };
  const Row rows[] = {
      {"Day", "To Southampton", PaperLinkRates::kDayToSouthampton},
      {"Day", "From Southampton", PaperLinkRates::kDayFromSouthampton},
      {"Evening", "To Southampton", PaperLinkRates::kEveningToSouthampton},
      {"Evening", "From Southampton",
       PaperLinkRates::kEveningFromSouthampton},
  };
  std::printf(
      "\n=== T1: Experimental ftp bandwidth measurements (reproduction) "
      "===\n");
  std::printf("%-8s %-18s %-10s %-18s %-18s\n", "Time", "Direction",
              "Mbit/s", "Small (85 MB)", "Large (544 MB)");
  for (const Row& row : rows) {
    BandwidthSchedule schedule = BandwidthSchedule::Constant(row.mbps);
    double small = *TransferDuration(schedule, kSmallFile, 0.0);
    double large = *TransferDuration(schedule, kLargeFile, 0.0);
    std::printf("%-8s %-18s %-10.2f %-18s %-18s\n", row.time, row.direction,
                row.mbps, HumanDuration(small).c_str(),
                HumanDuration(large).c_str());
  }
  std::printf(
      "paper:   45m20s / 4h50m08s, 30m38s / 3h16m02s, 19m32s / 2h05m03s, "
      "5m51s / 37m23s\n\n");
}

// How fast the simulator computes transfer times (flat link).
void BM_TransferDurationFlat(benchmark::State& state) {
  BandwidthSchedule schedule = BandwidthSchedule::Constant(1.94);
  uint64_t bytes = static_cast<uint64_t>(state.range(0)) * kMegabyte;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransferDuration(schedule, bytes, 0.0));
  }
}
BENCHMARK(BM_TransferDurationFlat)->Arg(85)->Arg(544);

// Transfer-time integration across many time-of-day windows (a multi-day
// transfer crossing ~20 rate boundaries).
void BM_TransferDurationWindowed(benchmark::State& state) {
  BandwidthSchedule schedule = ToSouthamptonSchedule();
  uint64_t bytes = static_cast<uint64_t>(state.range(0)) * kMegabyte;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransferDuration(schedule, bytes, 9 * 3600.0));
  }
}
BENCHMARK(BM_TransferDurationWindowed)->Arg(544)->Arg(5440);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
