// F14 — statistics-driven adaptive planner: the same skewed join executed
// with the static planner (written join order, hash joins only) versus the
// cost-based planner (stats-driven join reorder + index-loop joins), and a
// seq-scan hot-predicate workload before/after the index advisor's
// recommendation is applied. Emits a JSON block (schema versioned, tagged
// with the build revision); `--smoke` runs as a ctest gate and exits
// non-zero when the adaptive plan is not at least 2x faster than the
// static one or when the two plans disagree on results.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"

#ifndef EASIA_BENCH_REV
#define EASIA_BENCH_REV "unknown"
#endif

namespace {

using namespace easia;
using namespace easia::db;

struct Config {
  size_t fact_rows = 200000;
  size_t dim_rows = 2000;
  size_t event_rows = 200000;
  int query_iters = 5;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// DIM(K, GRP, NAME) + FACT(ID, DIM_K -> DIM.K, V): the FK declaration
/// gives FACT a secondary index on DIM_K. The query filters DIM to 1/20th
/// and joins FACT against it, written FACT-first — the order a client
/// naturally writes ("facts, narrowed by a dimension") and the worst one
/// to execute: the static planner builds a hash table over every FACT row,
/// while the cost model flips the order and drives the FK index instead.
std::unique_ptr<Database> MakeJoinDatabase(const Config& cfg) {
  auto db = std::make_unique<Database>("F14");
  (void)db->Execute(
      "CREATE TABLE DIM ("
      " K INTEGER NOT NULL,"
      " GRP INTEGER,"
      " NAME VARCHAR(24),"
      " PRIMARY KEY (K))");
  (void)db->Execute(
      "CREATE TABLE FACT ("
      " ID INTEGER NOT NULL,"
      " DIM_K INTEGER,"
      " V DOUBLE,"
      " PRIMARY KEY (ID),"
      " FOREIGN KEY (DIM_K) REFERENCES DIM (K))");
  for (size_t k = 0; k < cfg.dim_rows; ++k) {
    if (!db->Execute(StrPrintf("INSERT INTO DIM VALUES (%zu, %zu, 'd%zu')", k,
                               k % 20, k))
             .ok()) {
      return nullptr;
    }
  }
  for (size_t i = 0; i < cfg.fact_rows; ++i) {
    if (!db->Execute(StrPrintf("INSERT INTO FACT VALUES (%zu, %zu, %g)", i,
                               i % cfg.dim_rows,
                               static_cast<double>(i % 1000)))
             .ok()) {
      return nullptr;
    }
  }
  return db;
}

/// Best-of-`iters` wall time for `sql`; the first row of the last run is
/// rendered into `result` for the parity gate. Returns -1 on error.
double TimeSelectMs(Database& db, const std::string& sql, bool cost_based,
                    int iters, std::string* result) {
  Result<Statement> stmt = ParseSql(sql);
  if (!stmt.ok() || stmt->kind != Statement::Kind::kSelect) return -1;
  TableLookup lookup = [&db](const std::string& name) {
    return db.GetTable(name);
  };
  ExecuteOptions options;
  options.cost_based = cost_based;
  double best = -1;
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    Result<QueryResult> r = ExecuteSelect(*stmt->select, lookup, nullptr,
                                          options);
    if (!r.ok()) return -1;
    benchmark::DoNotOptimize(r->rows.size());
    double ms = SecondsSince(t0) * 1000.0;
    if (best < 0 || ms < best) best = ms;
    if (result != nullptr) {
      result->clear();
      for (const Row& row : r->rows) {
        for (const Value& v : row) {
          *result += v.ToDisplayString();
          *result += "|";
        }
        *result += "\n";
      }
    }
  }
  return best;
}

/// The advisor workload: EVT(ID, KIND, PAYLOAD) with an unindexed, highly
/// selective KIND. Repeated equality queries through Database::Execute
/// feed the advisor's plan observations; ApplyIndexRecommendations then
/// turns the hot seq scan into an index scan.
struct AdvisorResult {
  double seq_ms = -1;
  double indexed_ms = -1;
  std::string seq_rows;
  std::string indexed_rows;
};

AdvisorResult RunAdvisorWorkload(const Config& cfg) {
  AdvisorResult out;
  Database db("F14A");
  (void)db.Execute(
      "CREATE TABLE EVT ("
      " ID INTEGER NOT NULL,"
      " KIND INTEGER,"
      " PAYLOAD DOUBLE,"
      " PRIMARY KEY (ID))");
  for (size_t i = 0; i < cfg.event_rows; ++i) {
    if (!db.Execute(StrPrintf("INSERT INTO EVT VALUES (%zu, %zu, %g)", i,
                              i % 500, static_cast<double>(i)))
             .ok()) {
      return out;
    }
  }
  const std::string sql =
      "SELECT COUNT(*), SUM(PAYLOAD) FROM EVT WHERE KIND = 7";
  auto run_best = [&](std::string* rows) {
    double best = -1;
    for (int i = 0; i < cfg.query_iters; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      Result<QueryResult> r = db.Execute(sql);
      if (!r.ok()) return -1.0;
      double ms = SecondsSince(t0) * 1000.0;
      if (best < 0 || ms < best) best = ms;
      if (rows != nullptr) {
        rows->clear();
        for (const Value& v : r->rows[0]) {
          *rows += v.ToDisplayString();
          *rows += "|";
        }
      }
    }
    return best;
  };
  out.seq_ms = run_best(&out.seq_rows);
  // The timing loop above already observed enough plans to cross the
  // advisor threshold; materialise its recommendation and re-measure.
  if (!db.ApplyIndexRecommendations(cfg.query_iters).ok()) return out;
  out.indexed_ms = run_best(&out.indexed_rows);
  return out;
}

int RunReproduction(const Config& cfg, bool smoke) {
  auto db = MakeJoinDatabase(cfg);
  if (db == nullptr) {
    std::fprintf(stderr, "f14: join database setup failed\n");
    return 1;
  }
  const std::string join_sql =
      "SELECT COUNT(*), SUM(F.V) FROM FACT F JOIN DIM D"
      " ON F.DIM_K = D.K WHERE D.GRP = 3";

  std::string static_rows, adaptive_rows, naive_rows;
  double static_ms = TimeSelectMs(*db, join_sql, /*cost_based=*/false,
                                  cfg.query_iters, &static_rows);
  double adaptive_ms = TimeSelectMs(*db, join_sql, /*cost_based=*/true,
                                    cfg.query_iters, &adaptive_rows);
  double join_speedup =
      (static_ms > 0 && adaptive_ms > 0) ? static_ms / adaptive_ms : 0.0;

  int violations = 0;
  if (static_ms < 0 || adaptive_ms < 0) {
    std::fprintf(stderr, "f14: join query failed to run\n");
    ++violations;
  } else if (static_rows != adaptive_rows) {
    std::fprintf(stderr, "f14: static and adaptive plans disagree\n");
    ++violations;
  }
  if (smoke) {
    // The naive executor is the oracle: one extra run under --smoke pins
    // both planner modes to the obviously-correct result.
    Result<Statement> stmt = ParseSql(join_sql);
    TableLookup lookup = [&](const std::string& name) {
      return db->GetTable(name);
    };
    ExecuteOptions naive;
    naive.use_planner = false;
    Result<QueryResult> r =
        ExecuteSelect(*stmt->select, lookup, nullptr, naive);
    if (!r.ok()) {
      ++violations;
    } else {
      for (const Row& row : r->rows) {
        for (const Value& v : row) {
          naive_rows += v.ToDisplayString();
          naive_rows += "|";
        }
        naive_rows += "\n";
      }
      if (naive_rows != adaptive_rows) {
        std::fprintf(stderr, "f14: adaptive plan disagrees with oracle\n");
        ++violations;
      }
    }
  }

  AdvisorResult advisor = RunAdvisorWorkload(cfg);
  double advisor_speedup =
      (advisor.seq_ms > 0 && advisor.indexed_ms > 0)
          ? advisor.seq_ms / advisor.indexed_ms
          : 0.0;
  if (advisor.seq_ms < 0 || advisor.indexed_ms < 0) {
    std::fprintf(stderr, "f14: advisor workload failed to run\n");
    ++violations;
  } else if (advisor.seq_rows != advisor.indexed_rows) {
    std::fprintf(stderr, "f14: advisor index changed query results\n");
    ++violations;
  }

  std::printf("\n=== F14: statistics-driven adaptive planner ===\n");
  std::printf("{\"bench\":\"f14_adaptive_planner\",\"schema\":1,"
              "\"rev\":\"%s\",\n",
              EASIA_BENCH_REV);
  std::printf(" \"fact_rows\":%zu,\"dim_rows\":%zu,\"event_rows\":%zu,\n",
              cfg.fact_rows, cfg.dim_rows, cfg.event_rows);
  std::printf(" \"skewed_join\":{\"static_ms\":%.3f,\"adaptive_ms\":%.3f,"
              "\"speedup\":%.1f,\"static_plan\":\"hash build over FACT\","
              "\"adaptive_plan\":\"reorder + index loop via (DIM_K)\"},\n",
              static_ms, adaptive_ms, join_speedup);
  std::printf(" \"index_advisor\":{\"seq_scan_ms\":%.3f,"
              "\"indexed_ms\":%.3f,\"speedup\":%.1f,"
              "\"recommendation\":\"EVT.KIND equality\"}}\n",
              advisor.seq_ms, advisor.indexed_ms, advisor_speedup);

  // The acceptance gate: stats-driven planning must be at least 2x
  // faster than the static plan on the skewed join.
  if (violations == 0 && join_speedup < 2.0) {
    std::fprintf(stderr, "f14: adaptive speedup %.2fx below the 2x gate\n",
                 join_speedup);
    ++violations;
  }
  return violations;
}

// ---- Microbenchmarks (skipped under --smoke) ----

void BM_SkewedJoin(benchmark::State& state) {
  Config cfg;
  cfg.fact_rows = static_cast<size_t>(state.range(0));
  cfg.dim_rows = cfg.fact_rows / 100;
  auto db = MakeJoinDatabase(cfg);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  Result<Statement> stmt = ParseSql(
      "SELECT COUNT(*), SUM(F.V) FROM FACT F JOIN DIM D"
      " ON F.DIM_K = D.K WHERE D.GRP = 3");
  TableLookup lookup = [&db](const std::string& name) {
    return db->GetTable(name);
  };
  ExecuteOptions options;
  options.cost_based = state.range(1) != 0;
  for (auto _ : state) {
    auto r = ExecuteSelect(*stmt->select, lookup, nullptr, options);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SkewedJoin)
    ->ArgsProduct({{100000}, {0, 1}})
    ->ArgNames({"fact_rows", "cost_based"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip our flag before benchmark::Initialize; ctest runs
  // `bench_f14_adaptive_planner --smoke` on every build.
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  Config cfg;
  if (smoke) {
    cfg.fact_rows = 30000;
    cfg.dim_rows = 400;
    cfg.event_rows = 30000;
    cfg.query_iters = 3;
  }
  int violations = RunReproduction(cfg, smoke);
  if (violations != 0) return 1;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
