// F4 — the paper's GetImage operation figures: "suitable user-directed
// post-processing, such as array slicing and visualisation, can
// significantly reduce the amount of data that needs to be shipped back to
// the user."
//
// Compares, for grids from 64^3 to 256^3 and day/evening links:
//   (a) download-then-process: ship the whole dataset to the user;
//   (b) EASIA: run the slice operation next to the data, ship the image.
// Expected shape: the reduction factor grows with the grid extent
// (3-D -> 2-D slice is ~N x 8 bytes -> N^2 pixels), so (b) wins by orders
// of magnitude and the win grows with dataset size.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"
#include "ops/native.h"
#include "sim/bandwidth.h"
#include "turbulence/field.h"

namespace {

using namespace easia;

struct Scenario {
  std::unique_ptr<core::Archive> archive;
  xuis::OperationSpec op;
  std::string sparse_url;   // paper-scale dataset (sparse)
  std::string real_url;     // small materialised dataset
};

Scenario MakeScenario(size_t sparse_n) {
  Scenario s;
  s.archive = std::make_unique<core::Archive>();
  s.archive->AddFileServer("fs1");
  s.archive->AddClientHost("client");
  (void)core::CreateTurbulenceSchema(s.archive.get());
  core::SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 1;
  seed.grid_n = 8;
  auto seeded = core::SeedTurbulenceData(s.archive.get(), seed);
  s.real_url = (*seeded)[0].dataset_urls[0];
  (void)s.archive->InitializeXuis();
  (void)core::AttachNativeOperations(s.archive.get());
  // Sparse paper-scale dataset.
  auto server = *s.archive->fleet().GetServer("fs1");
  (void)server->vfs().CreateSparseFile("/archive/big.tbf",
                                       turb::Field::FileBytes(sparse_n));
  (void)s.archive->Execute(StrPrintf(
      "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, FILE_FORMAT, "
      "DOWNLOAD_RESULT) VALUES ('big.tbf', '%s', 'TBF', "
      "'http://fs1/archive/big.tbf')",
      (*seeded)[0].simulation_key.c_str()));
  s.sparse_url = "http://fs1/archive/big.tbf";
  // The native GetImage twin (works on sparse datasets via its model).
  xuis::OperationSpec op;
  op.name = "GetImage";
  op.type = "NATIVE";
  op.guest_access = true;
  op.location.kind = xuis::OperationLocation::Kind::kUrl;
  op.location.url = "native:builtin";
  s.op = std::move(op);
  return s;
}

void PrintReproduction() {
  std::printf("\n=== F4: server-side GetImage vs ship-the-whole-file ===\n");
  std::printf("%-7s %-10s %-9s %-13s %-13s %-10s %-12s\n", "Grid",
              "Dataset", "Start", "Download", "EASIA op", "Speedup",
              "Reduction");
  for (size_t n : {64, 128, 192, 256}) {
    for (double start_hour : {10.0, 20.0}) {
      Scenario s = MakeScenario(n);
      s.archive->clock().Set(start_hour * 3600.0);
      uint64_t dataset_bytes = turb::Field::FileBytes(n);
      // (a) ship the whole dataset to the user.
      double ship_all = *sim::TransferDuration(
          sim::FromSouthamptonSchedule(), dataset_bytes,
          start_hour * 3600.0);
      // (b) run GetImage next to the data, ship the PGM.
      ops::InvocationContext ctx;
      ctx.is_guest = false;
      ctx.user = "alice";
      auto result = s.archive->engine().Invoke(s.op, s.sparse_url, {}, ctx);
      if (!result.ok()) {
        std::printf("operation failed: %s\n",
                    result.status().ToString().c_str());
        return;
      }
      double ship_image = *sim::TransferDuration(
          sim::FromSouthamptonSchedule(), result->output_bytes,
          start_hour * 3600.0 + result->exec_seconds);
      double easia_total = result->exec_seconds + ship_image;
      std::printf("%-7zu %-10s %-9s %-13s %-13s %-10.0f %-12.0fx\n", n,
                  HumanBytes(dataset_bytes).c_str(),
                  start_hour < 18 ? "day" : "evening",
                  HumanDuration(ship_all).c_str(),
                  HumanDuration(easia_total).c_str(),
                  ship_all / easia_total,
                  static_cast<double>(dataset_bytes) /
                      static_cast<double>(result->output_bytes));
    }
  }
  std::printf("shape check: reduction ~ 32*N (3-D doubles -> 2-D pixels); "
              "speedup grows with grid size and peaks on day links\n");

  // Ablation: compress the slice before shipping (RLE-ish: PGM of a smooth
  // field is highly compressible; model 4:1) — called out in DESIGN.md.
  Scenario s = MakeScenario(256);
  ops::InvocationContext ctx;
  ctx.is_guest = false;
  auto result = s.archive->engine().Invoke(s.op, s.sparse_url, {}, ctx);
  double plain = *sim::TransferDuration(sim::FromSouthamptonSchedule(),
                                        result->output_bytes, 10 * 3600.0);
  double compressed = *sim::TransferDuration(
      sim::FromSouthamptonSchedule(), result->output_bytes / 4,
      10 * 3600.0);
  std::printf("ablation (256^3, day): ship slice %s, ship compressed slice "
              "%s\n\n",
              HumanDuration(plain).c_str(),
              HumanDuration(compressed).c_str());
}

// Real (non-simulated) slice+render throughput of the native code.
void BM_GetImageNativeReal(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  turb::Field field = turb::Field::Generate(n, 0.0, 0.01);
  std::string bytes = turb::SerializeTbf(field, 0);
  ops::NativeRegistry registry = ops::NativeRegistry::BuiltIns();
  const ops::NativeOperation* op = *registry.Get("GetImage");
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->run(bytes, {{"slice", "x1"}}));
  }
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_GetImageNativeReal)->Arg(16)->Arg(32)->Arg(64);

// The EaScript GetImage (interpreted, sandboxed) on the same task — the
// price of running *uploaded* rather than native code.
void BM_GetImageEascript(benchmark::State& state) {
  Scenario s = MakeScenario(64);
  (void)core::AttachGetImageOperation(s.archive.get(), "S19990100000001", 8);
  const xuis::XuisColumn* col = s.archive->xuis().Default().FindColumnById(
      "RESULT_FILE.DOWNLOAD_RESULT");
  const xuis::OperationSpec* script_op = nullptr;
  for (const auto& op : col->operations) {
    if (op.type == "EASCRIPT") script_op = &op;
  }
  ops::InvocationContext ctx;
  ctx.is_guest = false;
  for (auto _ : state) {
    auto result = s.archive->engine().Invoke(*script_op, s.real_url,
                                             {{"slice", "x1"}}, ctx);
    if (!result.ok()) state.SkipWithError("op failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetImageEascript);

// Ablation (paper future work, implemented): caching operation results.
void BM_InvokeWithCaching(benchmark::State& state) {
  bool cached = state.range(0) != 0;
  Scenario s = MakeScenario(64);
  s.archive->engine().set_caching(cached);
  ops::InvocationContext ctx;
  ctx.is_guest = false;
  for (auto _ : state) {
    auto result = s.archive->engine().Invoke(
        s.op, s.real_url, {{"slice", "x1"}, {"type", "u"}}, ctx);
    if (!result.ok()) state.SkipWithError("op failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cached ? "cache on" : "cache off");
}
BENCHMARK(BM_InvokeWithCaching)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
