// T2 — the paper's SQL/MED feature list: referential integrity, transaction
// consistency, security (encrypted access tokens), coordinated backup and
// recovery. Measures the cost of each mechanism and the DESIGN.md
// ablations: FILE LINK CONTROL on/off, READ PERMISSION DB vs FS, token
// lifetime sweep.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/clock.h"
#include "common/string_util.h"
#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "med/token.h"

namespace {

using namespace easia;

struct Scenario {
  std::unique_ptr<core::Archive> archive;
  fs::FileServer* server;
};

Scenario MakeScenario(bool file_link_control, bool read_db) {
  Scenario s;
  s.archive = std::make_unique<core::Archive>();
  s.server = s.archive->AddFileServer("fs1", 8.0);
  std::string ddl = StrPrintf(
      "CREATE TABLE RESULT_FILE ("
      " FILE_NAME VARCHAR(120) PRIMARY KEY,"
      " DOWNLOAD DATALINK LINKTYPE URL %s READ PERMISSION %s RECOVERY YES)",
      file_link_control ? "FILE LINK CONTROL" : "NO FILE LINK CONTROL",
      read_db ? "DB" : "FS");
  (void)s.archive->Execute(ddl);
  return s;
}

void PrintReproduction() {
  std::printf("\n=== T2: SQL/MED DATALINK feature costs and ablations ===\n");
  ManualClock clock(0);
  // Token issue/validate micro-costs.
  med::TokenManager tokens("bench-secret", 300);
  std::string token = tokens.Issue("/archive/f.tbf", 0);
  std::printf("access token length: %zu characters (base64url)\n",
              token.size());

  // Ablation: FILE LINK CONTROL on/off — per-insert cost and protection.
  for (bool control : {true, false}) {
    Scenario s = MakeScenario(control, true);
    for (int i = 0; i < 64; ++i) {
      (void)s.server->vfs().WriteFile(StrPrintf("/d/f%d.tbf", i), "x");
    }
    double t0 = 0;
    (void)t0;
    for (int i = 0; i < 64; ++i) {
      (void)s.archive->Execute(StrPrintf(
          "INSERT INTO RESULT_FILE VALUES ('f%d', 'http://fs1/d/f%d.tbf')",
          i, i));
    }
    Status del = s.server->vfs().DeleteFile("/d/f0.tbf");
    std::printf("FILE LINK CONTROL %-3s: delete-behind-the-db %s\n",
                control ? "ON" : "OFF",
                del.ok() ? "SUCCEEDS (no integrity)" : "REFUSED (integrity)");
  }

  // Ablation: READ PERMISSION DB vs FS.
  for (bool read_db : {true, false}) {
    Scenario s = MakeScenario(true, read_db);
    (void)s.server->vfs().WriteFile("/d/f.tbf", "x");
    (void)s.archive->Execute(
        "INSERT INTO RESULT_FILE VALUES ('f', 'http://fs1/d/f.tbf')");
    std::string url = s.archive->Execute("SELECT DOWNLOAD FROM RESULT_FILE")
                          ->rows[0][0]
                          .AsString();
    bool raw_readable = s.server->GetUrl("http://fs1/d/f.tbf").ok();
    std::printf("READ PERMISSION %-2s : SELECT yields %s; raw URL fetch %s\n",
                read_db ? "DB" : "FS",
                url.find(';') != std::string::npos ? "token URL"
                                                   : "plain URL",
                raw_readable ? "allowed" : "denied");
  }

  // Token lifetime sweep: fraction of a day a token stays valid.
  std::printf("token lifetime sweep (issued at t=0): ");
  for (double ttl : {60.0, 300.0, 3600.0}) {
    med::TokenManager manager("s", ttl);
    std::string t = manager.IssueWithTtl("/f", 0, ttl);
    bool at_half = manager.Validate(t, "/f", ttl / 2).ok();
    bool after = manager.Validate(t, "/f", ttl + 1).ok();
    std::printf("ttl=%gs(valid@%g:%d expired@%g:%d) ", ttl, ttl / 2,
                at_half ? 1 : 0, ttl + 1, after ? 0 : 1);
  }
  std::printf("\n\n");
}

void BM_TokenIssue(benchmark::State& state) {
  med::TokenManager tokens("bench-secret", 300);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokens.Issue("/archive/S1/file.tbf", 1000.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenIssue);

void BM_TokenValidate(benchmark::State& state) {
  med::TokenManager tokens("bench-secret", 300);
  std::string token = tokens.Issue("/archive/S1/file.tbf", 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tokens.Validate(token, "/archive/S1/file.tbf", 1000.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenValidate);

void BM_TokenValidateForged(benchmark::State& state) {
  med::TokenManager tokens("bench-secret", 300);
  std::string token = tokens.Issue("/archive/S1/file.tbf", 1000.0);
  token[5] = token[5] == 'A' ? 'B' : 'A';
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tokens.Validate(token, "/archive/S1/file.tbf", 1000.0));
  }
}
BENCHMARK(BM_TokenValidateForged);

// Insert cost with and without FILE LINK CONTROL (the existence check and
// two-phase link intent).
void BM_InsertDatalink(benchmark::State& state) {
  bool control = state.range(0) != 0;
  Scenario s = MakeScenario(control, true);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string path = StrPrintf("/d/file%d.tbf", i);
    (void)s.server->vfs().WriteFile(path, "x");
    state.ResumeTiming();
    auto r = s.archive->Execute(StrPrintf(
        "INSERT INTO RESULT_FILE VALUES ('k%d', 'http://fs1%s')", i,
        path.c_str()));
    if (!r.ok()) state.SkipWithError("insert failed");
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(control ? "FILE LINK CONTROL" : "NO FILE LINK CONTROL");
}
BENCHMARK(BM_InsertDatalink)->Arg(1)->Arg(0);

// Link/unlink transaction round trip (insert + delete).
void BM_LinkUnlinkRoundTrip(benchmark::State& state) {
  Scenario s = MakeScenario(true, true);
  (void)s.server->vfs().WriteFile("/d/f.tbf", "x");
  for (auto _ : state) {
    auto ins = s.archive->Execute(
        "INSERT INTO RESULT_FILE VALUES ('f', 'http://fs1/d/f.tbf')");
    auto del = s.archive->Execute("DELETE FROM RESULT_FILE");
    if (!ins.ok() || !del.ok()) state.SkipWithError("round trip failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkUnlinkRoundTrip);

// Coordinated backup cost as linked data grows.
void BM_CoordinatedBackup(benchmark::State& state) {
  auto archive = std::make_unique<core::Archive>();
  archive->AddFileServer("fs1", 8.0);
  (void)core::CreateTurbulenceSchema(archive.get());
  core::SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = static_cast<size_t>(state.range(0));
  seed.timesteps_per_simulation = 2;
  seed.grid_n = 8;
  (void)core::SeedTurbulenceData(archive.get(), seed);
  for (auto _ : state) {
    auto id = archive->backups().CreateBackup();
    if (!id.ok()) state.SkipWithError("backup failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoordinatedBackup)->Arg(2)->Arg(8);

// Reconcile cost over a healthy archive.
void BM_Reconcile(benchmark::State& state) {
  auto archive = std::make_unique<core::Archive>();
  archive->AddFileServer("fs1", 8.0);
  (void)core::CreateTurbulenceSchema(archive.get());
  core::SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 8;
  seed.timesteps_per_simulation = 2;
  seed.grid_n = 8;
  (void)core::SeedTurbulenceData(archive.get(), seed);
  for (auto _ : state) {
    auto report = archive->backups().Reconcile();
    if (!report.ok()) state.SkipWithError("reconcile failed");
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Reconcile);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
