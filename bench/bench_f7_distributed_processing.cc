// F7 — the paper's distributed-processing claim: "each machine provides a
// distributed processing capability that allows multiple datasets to be
// post-processed simultaneously" and "data distribution can reduce access
// bottlenecks at individual sites".
//
// Models K datasets spread over M file-server hosts, with every dataset
// post-processed (GetImage) and the slice shipped to one consumer.
// Makespan is computed per host (datasets on a host serialise through its
// parallel slots; hosts run concurrently). Expected shape: near-linear
// makespan reduction until the consumer's download link saturates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "ops/native.h"
#include "sim/bandwidth.h"
#include "sim/network.h"
#include "turbulence/field.h"

namespace {

using namespace easia;
using sim::kMegabyte;

struct Makespan {
  double processing_seconds = 0;  // slowest host's compute queue
  double shipping_seconds = 0;    // serialised consumer downloads
  double total() const { return processing_seconds + shipping_seconds; }
};

/// K datasets of `grid_n`^3 doubles, round-robined over `hosts` hosts with
/// `slots` parallel operation slots each.
Makespan Simulate(size_t datasets, size_t hosts, int slots, size_t grid_n) {
  uint64_t dataset_bytes = turb::Field::FileBytes(grid_n);
  ops::NativeRegistry registry = ops::NativeRegistry::BuiltIns();
  const ops::NativeOperation* op = *registry.Get("GetImage");
  uint64_t slice_bytes = op->reduction_model(dataset_bytes);

  sim::Network net(20 * 3600.0);  // evening
  net.AddHost({"consumer", 25, 2});
  for (size_t h = 0; h < hosts; ++h) {
    sim::HostSpec spec;
    spec.name = StrPrintf("fs%zu", h);
    spec.processing_mb_per_sec = 50;
    spec.parallel_slots = slots;
    net.AddHost(spec);
    net.AddLink(spec.name, "consumer", sim::FromSouthamptonSchedule());
  }
  // Per-host compute: ceil(count/slots) waves of one dataset each.
  Makespan result;
  std::vector<size_t> per_host(hosts, 0);
  for (size_t d = 0; d < datasets; ++d) per_host[d % hosts]++;
  for (size_t h = 0; h < hosts; ++h) {
    double per_dataset = *net.ProcessingTime(StrPrintf("fs%zu", h),
                                             dataset_bytes + slice_bytes);
    size_t waves = (per_host[h] + static_cast<size_t>(slots) - 1) /
                   static_cast<size_t>(slots);
    result.processing_seconds = std::max(
        result.processing_seconds, static_cast<double>(waves) * per_dataset);
  }
  // The consumer's inbound link is shared: downloads serialise there.
  double t = net.Now();
  for (size_t d = 0; d < datasets; ++d) {
    auto rec = net.TransferAt(StrPrintf("fs%zu", d % hosts), "consumer",
                              slice_bytes, t);
    t += rec->duration_seconds;
  }
  result.shipping_seconds = t - net.Now();
  return result;
}

void PrintReproduction() {
  constexpr size_t kDatasets = 32;
  constexpr size_t kGrid = 256;
  std::printf("\n=== F7: multiple datasets post-processed simultaneously "
              "===\n");
  std::printf("(%zu datasets of %s, GetImage on each, slices shipped to one "
              "consumer)\n",
              kDatasets,
              HumanBytes(turb::Field::FileBytes(kGrid)).c_str());
  std::printf("%-8s %-14s %-14s %-14s %-9s\n", "Hosts", "Compute",
              "Shipping", "Makespan", "Speedup");
  double baseline = 0;
  for (size_t hosts : {1, 2, 4, 8, 16}) {
    Makespan m = Simulate(kDatasets, hosts, 4, kGrid);
    if (hosts == 1) baseline = m.total();
    std::printf("%-8zu %-14s %-14s %-14s %-9.2f\n", hosts,
                HumanDuration(m.processing_seconds).c_str(),
                HumanDuration(m.shipping_seconds).c_str(),
                HumanDuration(m.total()).c_str(), baseline / m.total());
  }
  std::printf("shape check: compute scales ~linearly with hosts; the shared "
              "consumer link bounds total speedup (Amdahl)\n\n");

  // Contrast: shipping whole datasets instead of slices saturates at once.
  uint64_t dataset_bytes = turb::Field::FileBytes(kGrid);
  double one_dataset_ship = *sim::TransferDuration(
      sim::FromSouthamptonSchedule(), dataset_bytes, 20 * 3600.0);
  std::printf("for reference, shipping ONE whole %s dataset takes %s — "
              "longer than post-processing all %zu\n\n",
              HumanBytes(dataset_bytes).c_str(),
              HumanDuration(one_dataset_ship).c_str(), kDatasets);
}

void BM_MakespanModel(benchmark::State& state) {
  size_t hosts = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Simulate(32, hosts, 4, 256));
  }
}
BENCHMARK(BM_MakespanModel)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
