// F15 — replicated metadata database: aggregate SELECT throughput of a
// read-heavy archive front end against a single durable primary versus
// the same primary with 1..3 WAL-shipped read replicas behind the
// replication coordinator. The primary commits through a deliberately
// slow fsync (the metadata catalog of the paper's archive lives on
// ordinary disks), so every commit holds the exclusive database lock for
// the sync interval; closed-loop readers (WAN clients with think time)
// queue behind those commits on the single node, while replicated
// readers keep executing against in-memory replicas while the primary
// syncs. Emits a JSON block (schema versioned, tagged with the build
// revision); `--smoke` runs as a ctest gate and exits non-zero when the
// 3-replica configuration is not at least 2x the single-node SELECT
// throughput or when any replica's drained state diverges from the
// primary's.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/io.h"
#include "common/string_util.h"
#include "db/database.h"
#include "db/repl/coordinator.h"
#include "sim/network.h"

#ifndef EASIA_BENCH_REV
#define EASIA_BENCH_REV "unknown"
#endif

namespace {

using namespace easia;

struct Config {
  int readers = 4;
  int seed_rows = 100;
  double sync_ms = 1.5;          // simulated fsync latency per commit
  /// Closed-loop client think time between point queries (the paper's
  /// archive serves WAN clients; see bench_f10's client-latency model).
  /// Open-throttle readers would saturate the single core in every
  /// configuration and measure nothing but CPU — with think time, what
  /// the bench measures is read LATENCY under write load: single-node
  /// reads queue behind the primary's fsync-holding commits, replicated
  /// reads never touch that lock.
  int think_us = 50;
  double trial_seconds = 1.0;    // measured window per configuration
  int trials = 3;                // best-of
};

/// A memory-backed Env whose Sync() costs real wall time: the fsync model
/// for the durable primary. Everything else is ordinary in-memory file
/// semantics (the bench never needs the bytes back — durability cost, not
/// durability itself, is the subject).
class SlowSyncEnv : public io::Env {
 public:
  explicit SlowSyncEnv(double sync_ms) : sync_ms_(sync_ms) {}

  Result<std::unique_ptr<io::LogFile>> OpenAppend(
      const std::string& path) override {
    return std::unique_ptr<io::LogFile>(
        new SlowLog(&MutableFile(path), sync_ms_));
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    return it->second;
  }
  bool FileExists(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(path) != 0;
  }
  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path] = std::string(contents);
    return Status::OK();
  }
  Status RemoveFile(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(path);
    return Status::OK();
  }
  Status Truncate(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path].clear();
    return Status::OK();
  }

 private:
  class SlowLog : public io::LogFile {
   public:
    SlowLog(std::string* data, double sync_ms)
        : data_(data), sync_ms_(sync_ms) {}
    Status Append(std::string_view data) override {
      *data_ += data;
      return Status::OK();
    }
    Status Sync() override {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sync_ms_));
      return Status::OK();
    }
    void Close() override {}

   private:
    std::string* data_;
    double sync_ms_;
  };

  std::string& MutableFile(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu_);
    return files_[path];
  }

  std::mutex mu_;
  std::map<std::string, std::string> files_;
  double sync_ms_;
};

std::string Dump(const db::Database& database) {
  std::ostringstream out;
  for (const std::string& name : database.catalog().TableNames()) {
    out << "#" << name << "\n";
    Result<const db::Table*> table = database.GetTable(name);
    if (!table.ok()) continue;
    (*table)->ForEachRow([&](db::RowId id, const db::Row& row) {
      out << id;
      for (const db::Value& v : row) out << "|" << v.ToDisplayString();
      out << "\n";
    });
  }
  return out.str();
}

bool SeedPrimary(db::Database& primary, const Config& cfg) {
  if (!primary.Execute("CREATE TABLE DATASET (ID INTEGER PRIMARY KEY,"
                       " GRP INTEGER, RE DOUBLE, TITLE VARCHAR(40))")
           .ok()) {
    return false;
  }
  // One transaction: the seed pays a single slow fsync, not one per row.
  if (!primary.Execute("BEGIN").ok()) return false;
  for (int i = 0; i < cfg.seed_rows; ++i) {
    if (!primary
             .Execute(StrPrintf("INSERT INTO DATASET VALUES (%d, %d, %g,"
                                " 'dataset%d')",
                                i, i % 10, static_cast<double>(i), i))
             .ok()) {
      return false;
    }
  }
  return primary.Execute("COMMIT").ok();
}

struct TrialResult {
  double reads_per_sec = 0;
  double writes_per_sec = 0;
  uint64_t replica_reads = 0;
  bool ok = false;
};

/// One measured window: `cfg.readers` threads issue point SELECTs as fast
/// as they can while one writer commits inserts back-to-back through the
/// slow-fsync WAL. With `replicas` == 0 every statement runs directly on
/// the primary database (the single-node baseline); otherwise statements
/// route through a ReplicationCoordinator with that many replicas.
TrialResult RunTrial(const Config& cfg, int replicas) {
  TrialResult out;
  SlowSyncEnv env(cfg.sync_ms);
  db::DatabaseOptions db_options;
  db_options.wal_path = "f15.wal";
  db_options.sync_on_commit = true;
  db_options.env = &env;
  db::Database primary("PRIMARY", db_options);
  if (!SeedPrimary(primary, cfg)) return out;

  sim::Network net;
  net.AddHost({"db", 50.0, 4});
  std::unique_ptr<db::repl::ReplicationCoordinator> coord;
  if (replicas > 0) {
    db::repl::CoordinatorOptions copts;
    copts.ack_quorum = 1;
    copts.max_read_lag_epochs = 4;
    coord = std::make_unique<db::repl::ReplicationCoordinator>(&primary, &net,
                                                               copts);
    for (int r = 1; r <= replicas; ++r) {
      std::string host = "r" + std::to_string(r);
      net.AddHost({host, 50.0, 4});
      net.AddSymmetricLink("db", host, sim::BandwidthSchedule::Constant(100.0),
                           0.001);
      db::repl::ReplicaNode* node = coord->AddReplica(host);
      // The seed predates the coordinator (its commits are not in the
      // shipping log), so new replicas start from a snapshot — the same
      // initial-sync path a production replica joining mid-life takes.
      if (!node->Bootstrap(primary.SerializeSnapshot(),
                           coord->log().last_lsn(), primary.commit_epoch(),
                           coord->log().current_term())
               .ok()) {
        return out;
      }
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> pool;
  pool.reserve(cfg.readers);
  for (int t = 0; t < cfg.readers; ++t) {
    pool.emplace_back([&, t] {
      uint64_t key = static_cast<uint64_t>(t) * 37;
      while (!stop.load(std::memory_order_acquire)) {
        if (cfg.think_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(cfg.think_us));
        }
        std::string sql =
            StrPrintf("SELECT TITLE, RE FROM DATASET WHERE ID = %d",
                      static_cast<int>(key++ % cfg.seed_rows));
        Result<db::QueryResult> r = coord != nullptr
                                        ? coord->Execute(sql)
                                        : primary.Execute(sql);
        if (!r.ok()) return;  // poisons the throughput; caught below
        benchmark::DoNotOptimize(r->rows.size());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  uint64_t writes = 0;
  bool write_failed = false;
  auto t0 = std::chrono::steady_clock::now();
  auto deadline = t0 + std::chrono::duration<double>(cfg.trial_seconds);
  int next_id = cfg.seed_rows;
  while (std::chrono::steady_clock::now() < deadline) {
    std::string sql = StrPrintf(
        "INSERT INTO DATASET VALUES (%d, %d, %g, 'dataset%d')", next_id,
        next_id % 10, static_cast<double>(next_id), next_id);
    ++next_id;
    Result<db::QueryResult> r =
        coord != nullptr ? coord->Execute(sql) : primary.Execute(sql);
    if (!r.ok()) {
      write_failed = true;
      break;
    }
    ++writes;
    if (coord != nullptr) coord->Heartbeat();
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  if (write_failed || elapsed <= 0) return out;
  out.reads_per_sec = static_cast<double>(reads.load()) / elapsed;
  out.writes_per_sec = static_cast<double>(writes) / elapsed;

  // Result-equivalence gate: drain shipping, then every replica must hold
  // exactly the primary's state (and carry its commit epoch).
  if (coord != nullptr) {
    out.replica_reads = coord->reads_replica();
    if (!coord->ShipAll().ok()) return out;
    std::string want = Dump(primary);
    for (const db::repl::ReplicaInfo& info : coord->replica_info()) {
      if (info.applied_epoch != primary.commit_epoch()) {
        std::fprintf(stderr, "f15: %s epoch lag after drain\n",
                     info.host.c_str());
        return out;
      }
    }
    // replica_info carries no database handle; re-check through routing:
    // with zero lag every replica is eligible, so sample a few tickets.
    for (int i = 0; i < replicas; ++i) {
      db::repl::ReadTicket ticket = coord->RouteRead();
      if (!ticket.replica) continue;
      if (Dump(*ticket.db) != want) {
        std::fprintf(stderr, "f15: %s diverged from primary\n",
                     ticket.node.c_str());
        return out;
      }
    }
  }
  out.ok = true;
  return out;
}

TrialResult BestOf(const Config& cfg, int replicas) {
  TrialResult best;
  for (int i = 0; i < cfg.trials; ++i) {
    TrialResult t = RunTrial(cfg, replicas);
    if (!t.ok) return t;
    if (t.reads_per_sec > best.reads_per_sec) best = t;
  }
  return best;
}

int RunReproduction(const Config& cfg, bool smoke) {
  const int configs[] = {0, 1, 2, 3};
  TrialResult results[4];
  for (int i = 0; i < 4; ++i) {
    results[i] = BestOf(cfg, configs[i]);
    if (!results[i].ok) {
      std::fprintf(stderr, "f15: trial with %d replicas failed\n",
                   configs[i]);
      return 1;
    }
  }
  double base = results[0].reads_per_sec;
  double speedup3 = base > 0 ? results[3].reads_per_sec / base : 0;

  std::printf("\n=== F15: WAL-shipping replication, read scaling ===\n");
  std::printf("{\"bench\":\"f15_replication\",\"schema\":1,\"rev\":\"%s\",\n",
              EASIA_BENCH_REV);
  std::printf(" \"readers\":%d,\"sync_ms\":%.1f,\"think_us\":%d,"
              "\"trial_seconds\":%.2f,\"trials\":%d,\n",
              cfg.readers, cfg.sync_ms, cfg.think_us, cfg.trial_seconds,
              cfg.trials);
  std::printf(" \"configs\":[\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("  {\"replicas\":%d,\"reads_per_sec\":%.0f,"
                "\"writes_per_sec\":%.0f,\"replica_reads\":%llu}%s\n",
                configs[i], results[i].reads_per_sec,
                results[i].writes_per_sec,
                static_cast<unsigned long long>(results[i].replica_reads),
                i + 1 < 4 ? "," : "");
  }
  std::printf(" ],\n \"speedup_3_replicas\":%.1f}\n", speedup3);

  int violations = 0;
  // Reads must actually have been served by replicas, or the comparison
  // is meaningless.
  for (int i = 1; i < 4; ++i) {
    if (results[i].replica_reads == 0) {
      std::fprintf(stderr, "f15: no replica-served reads at %d replicas\n",
                   configs[i]);
      ++violations;
    }
  }
  // The acceptance gate: 3 read replicas must buy at least 2x aggregate
  // SELECT throughput over the fsync-stalled single node.
  if (smoke && violations == 0 && speedup3 < 2.0) {
    std::fprintf(stderr, "f15: 3-replica speedup %.2fx below the 2x gate\n",
                 speedup3);
    ++violations;
  }
  return violations;
}

// ---- Microbenchmarks (skipped under --smoke) ----

void BM_ReplicatedPointReads(benchmark::State& state) {
  Config cfg;
  cfg.trial_seconds = 0.25;
  cfg.trials = 1;
  int replicas = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TrialResult r = RunTrial(cfg, replicas);
    if (!r.ok) {
      state.SkipWithError("trial failed");
      return;
    }
    state.counters["reads_per_sec"] = r.reads_per_sec;
  }
}
BENCHMARK(BM_ReplicatedPointReads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(3)
    ->ArgName("replicas")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip our flag before benchmark::Initialize; ctest runs
  // `bench_f15_replication --smoke` on every build.
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  Config cfg;
  if (smoke) {
    cfg.trial_seconds = 0.3;
    cfg.trials = 2;
    cfg.seed_rows = 60;
  }
  int violations = RunReproduction(cfg, smoke);
  if (violations != 0) return 1;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
