// F10 — concurrent read path. PR 3 made the read path parallel end-to-end:
// SELECTs run under a shared database lock, the web front end dispatches
// requests across a worker pool, and rendered pages are served from an
// epoch-invalidated cache. This bench measures both halves:
//
//   * scaling: a fixed batch of mixed search/browse/form requests pushed
//     through HandleConcurrent at 1/2/4/8 workers. Each request carries a
//     real client-link latency (the paper's users reach the archive over
//     the Internet; closed-loop load, so overlapping that wait is exactly
//     what request concurrency buys the server) — throughput is measured
//     with the wall clock, not the simulation clock;
//   * caching: a repeated-browse phase over a small set of hot rows, with
//     the render cache on, reporting the hit rate and warm/cold timing.
//
// Emits a JSON block like bench_f8/f9 so future PRs can track the numbers.
// `--smoke` shrinks everything and skips the microbenchmarks (wired as a
// ctest test so the bench itself cannot rot).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "db/database.h"
#include "web/cache.h"
#include "web/server.h"
#include "web/session.h"
#include "web/users.h"
#include "xuis/customize.h"
#include "xuis/generator.h"

namespace {

using namespace easia;

/// AUTHOR -> SIMULATION -> DATASET catalogue (same shape as bench_f9).
std::unique_ptr<db::Database> MakeCatalogue(size_t datasets) {
  auto db = std::make_unique<db::Database>("BENCH");
  (void)db->Execute(
      "CREATE TABLE AUTHOR (AUTHOR_KEY VARCHAR(30) NOT NULL,"
      " NAME VARCHAR(80), PRIMARY KEY (AUTHOR_KEY))");
  (void)db->Execute(
      "CREATE TABLE SIMULATION (SIMULATION_KEY VARCHAR(30) NOT NULL,"
      " AUTHOR_KEY VARCHAR(30), RE DOUBLE,"
      " PRIMARY KEY (SIMULATION_KEY),"
      " FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY))");
  (void)db->Execute(
      "CREATE TABLE DATASET (DATASET_KEY VARCHAR(30) NOT NULL,"
      " SIMULATION_KEY VARCHAR(30), STEP INTEGER, SIZE_MB DOUBLE,"
      " PRIMARY KEY (DATASET_KEY),"
      " FOREIGN KEY (SIMULATION_KEY) REFERENCES SIMULATION"
      " (SIMULATION_KEY))");
  for (int a = 0; a < 20; ++a) {
    (void)db->Execute("INSERT INTO AUTHOR VALUES ('A" + std::to_string(a) +
                      "', 'Author " + std::to_string(a) + "')");
  }
  size_t sims = datasets / 10 == 0 ? 1 : datasets / 10;
  (void)db->Execute("BEGIN");
  for (size_t s = 0; s < sims; ++s) {
    (void)db->Execute("INSERT INTO SIMULATION VALUES ('S" +
                      std::to_string(s) + "', 'A" + std::to_string(s % 20) +
                      "', " + std::to_string(100 * (s % 64)) + ")");
  }
  for (size_t d = 0; d < datasets; ++d) {
    (void)db->Execute("INSERT INTO DATASET VALUES ('D" + std::to_string(d) +
                      "', 'S" + std::to_string(d / 10) + "', " +
                      std::to_string(d % 16) + ", " +
                      std::to_string((d % 100) * 4.0) + ")");
  }
  (void)db->Execute("COMMIT");
  return db;
}

/// The full read stack over the catalogue: users, sessions, XUIS, web
/// server — with or without the render cache.
struct Stack {
  std::unique_ptr<db::Database> db;
  xuis::XuisRegistry xuis;
  web::UserManager users;
  ManualClock clock{0};
  std::unique_ptr<web::SessionManager> sessions;
  std::unique_ptr<web::RenderCache> cache;
  std::unique_ptr<web::ArchiveWebServer> server;
  std::string session_id;
};

std::unique_ptr<Stack> MakeStack(size_t datasets, bool with_cache) {
  auto stack = std::make_unique<Stack>();
  stack->db = MakeCatalogue(datasets);
  auto spec = xuis::GenerateDefaultXuis(*stack->db);
  if (!spec.ok()) return nullptr;
  stack->xuis.SetDefault(std::move(*spec));
  (void)stack->users.AddUser("alice", "pw", web::UserRole::kAuthorised);
  stack->sessions = std::make_unique<web::SessionManager>(
      &stack->users, &stack->clock, 1e9);
  if (with_cache) {
    stack->cache = std::make_unique<web::RenderCache>();
  }
  web::ArchiveWebServer::Deps deps;
  deps.database = stack->db.get();
  deps.xuis = &stack->xuis;
  deps.users = &stack->users;
  deps.sessions = stack->sessions.get();
  deps.cache = stack->cache.get();
  stack->server = std::make_unique<web::ArchiveWebServer>(deps);
  auto id = stack->sessions->Login("alice", "pw");
  if (!id.ok()) return nullptr;
  stack->session_id = *id;
  return stack;
}

web::HttpRequest Req(const Stack& stack, const std::string& path,
                     fs::HttpParams params = {}) {
  web::HttpRequest r;
  r.path = path;
  r.params = std::move(params);
  r.session_id = stack.session_id;
  return r;
}

/// Mixed interactive batch: FK browses (hot path), query forms, the table
/// index, the XUIS document, and a few full searches.
std::vector<web::HttpRequest> MixedBatch(const Stack& stack, size_t count,
                                         size_t datasets) {
  std::vector<web::HttpRequest> batch;
  batch.reserve(count);
  size_t sims = datasets / 10 == 0 ? 1 : datasets / 10;
  for (size_t i = 0; i < count; ++i) {
    switch (i % 8) {
      case 0:
        batch.push_back(Req(stack, "/tables"));
        break;
      case 1:
        batch.push_back(Req(stack, "/query", {{"table", "DATASET"}}));
        break;
      case 2:
        batch.push_back(Req(stack, "/xuis"));
        break;
      case 3:
        batch.push_back(
            Req(stack, "/search",
                {{"table", "SIMULATION"},
                 {"value.RE", std::to_string(100 * (i % 64))}}));
        break;
      default:
        batch.push_back(
            Req(stack, "/browse",
                {{"table", "DATASET"},
                 {"column", "SIMULATION_KEY"},
                 {"value", "S" + std::to_string((i * 37) % sims)}}));
        break;
    }
  }
  return batch;
}

double WallSeconds(
    const std::function<std::vector<web::HttpResponse>()>& run) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<web::HttpResponse> responses = run();
  auto t1 = std::chrono::steady_clock::now();
  for (const web::HttpResponse& r : responses) {
    if (r.status != 200) return -1;
    benchmark::DoNotOptimize(r.body.size());
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

struct SmokeConfig {
  size_t datasets = 10000;
  size_t scaling_requests = 400;
  size_t cache_requests = 400;
  size_t hot_targets = 20;
  double client_latency_ms = 5.0;
  std::vector<size_t> worker_counts = {1, 2, 4, 8};
};

void PrintReproduction(const SmokeConfig& cfg) {
  std::printf("\n=== F10: concurrent read dispatch + render cache ===\n");
  std::printf(
      "{\"bench\":\"f10_concurrent_read\",\"rows\":%zu,"
      "\"simulated_client_latency_ms\":%.1f,\n \"scaling\":[",
      cfg.datasets, cfg.client_latency_ms);

  // Phase 1 — worker scaling, cache off, so every request does real work
  // and the numbers isolate dispatch + shared-lock reads.
  auto stack = MakeStack(cfg.datasets, /*with_cache=*/false);
  if (stack == nullptr) {
    std::printf("]}\n");
    return;
  }
  std::vector<web::HttpRequest> batch =
      MixedBatch(*stack, cfg.scaling_requests, cfg.datasets);
  double base_seconds = -1;
  bool first = true;
  for (size_t workers : cfg.worker_counts) {
    web::ArchiveWebServer::DispatchOptions options;
    options.workers = workers;
    options.simulated_client_latency_seconds =
        cfg.client_latency_ms / 1000.0;
    double seconds = WallSeconds([&] {
      return stack->server->HandleConcurrent(batch, options);
    });
    if (workers == 1) base_seconds = seconds;
    if (!first) std::printf(",");
    first = false;
    std::printf(
        "\n  {\"workers\":%zu,\"seconds\":%.3f,\"rps\":%.1f,"
        "\"speedup\":%.2f}",
        workers, seconds,
        seconds > 0 ? cfg.scaling_requests / seconds : 0.0,
        seconds > 0 && base_seconds > 0 ? base_seconds / seconds : 0.0);
  }
  std::printf("\n ],\n");

  // Phase 2 — repeated browsing of a small hot set with the cache on:
  // the archetypal session (a user walking the same FK neighbourhood).
  auto cached = MakeStack(cfg.datasets, /*with_cache=*/true);
  if (cached == nullptr) {
    std::printf(" \"cache\":null}\n");
    return;
  }
  size_t sims = cfg.datasets / 10 == 0 ? 1 : cfg.datasets / 10;
  std::vector<web::HttpRequest> hot;
  hot.reserve(cfg.cache_requests);
  for (size_t i = 0; i < cfg.cache_requests; ++i) {
    hot.push_back(
        Req(*cached, "/browse",
            {{"table", "DATASET"},
             {"column", "SIMULATION_KEY"},
             {"value",
              "S" + std::to_string((i % cfg.hot_targets) % sims)}}));
  }
  web::ArchiveWebServer::DispatchOptions options;
  options.workers = 4;
  double warm_seconds = WallSeconds([&] {
    return cached->server->HandleConcurrent(hot, options);
  });
  web::RenderCacheStats stats = cached->cache->stats();
  double hit_rate =
      stats.hits + stats.misses > 0
          ? static_cast<double>(stats.hits) / (stats.hits + stats.misses)
          : 0.0;
  // Same batch against the cacheless stack for the render-cost comparison.
  double uncached_seconds = WallSeconds([&] {
    std::vector<web::HttpRequest> replay;
    replay.reserve(hot.size());
    for (const web::HttpRequest& r : hot) {
      web::HttpRequest copy = r;
      copy.session_id = stack->session_id;
      replay.push_back(std::move(copy));
    }
    return stack->server->HandleConcurrent(replay, options);
  });
  std::printf(
      " \"cache\":{\"requests\":%zu,\"workers\":%zu,\"hot_targets\":%zu,"
      "\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.3f,"
      "\"cached_seconds\":%.3f,\"uncached_seconds\":%.3f,"
      "\"render_speedup\":%.1f}}\n",
      cfg.cache_requests, options.workers, cfg.hot_targets,
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses), hit_rate,
      warm_seconds, uncached_seconds,
      warm_seconds > 0 ? uncached_seconds / warm_seconds : 0.0);
}

// ---- Microbenchmarks (skipped under --smoke) ----

void BM_ConcurrentMixedRead(benchmark::State& state) {
  static std::unique_ptr<Stack> stack = MakeStack(10000, false);
  std::vector<web::HttpRequest> batch = MixedBatch(*stack, 64, 10000);
  web::ArchiveWebServer::DispatchOptions options;
  options.workers = static_cast<size_t>(state.range(0));
  options.simulated_client_latency_seconds = 0.002;
  for (auto _ : state) {
    auto responses = stack->server->HandleConcurrent(batch, options);
    benchmark::DoNotOptimize(responses.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_ConcurrentMixedRead)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CachedBrowse(benchmark::State& state) {
  static std::unique_ptr<Stack> stack = MakeStack(10000, true);
  web::HttpRequest req =
      Req(*stack, "/browse", {{"table", "DATASET"},
                              {"column", "SIMULATION_KEY"},
                              {"value", "S7"}});
  (void)stack->server->Handle(req);  // warm
  for (auto _ : state) {
    web::HttpResponse resp = stack->server->Handle(req);
    benchmark::DoNotOptimize(resp.body.size());
  }
}
BENCHMARK(BM_CachedBrowse)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before benchmark::Initialize (it is not a benchmark
  // flag); ctest runs `bench_f10_concurrent_read --smoke` on every build.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  SmokeConfig cfg;
  if (smoke) {
    cfg.datasets = 500;
    cfg.scaling_requests = 48;
    cfg.cache_requests = 48;
    cfg.hot_targets = 8;
    cfg.client_latency_ms = 1.0;
    cfg.worker_counts = {1, 4};
  }
  PrintReproduction(cfg);
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
