// F5 — the paper's code-upload figures: authorised users upload code that
// runs server-side under sandbox restrictions. Measures the sandbox's
// interpretation overhead, quota-enforcement cost, and the end-to-end
// upload-and-run path.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"
#include "script/interpreter.h"

namespace {

using namespace easia;

struct Scenario {
  std::unique_ptr<core::Archive> archive;
  std::string dataset_url;
  xuis::UploadSpec upload;
};

Scenario MakeScenario(size_t grid_n) {
  Scenario s;
  s.archive = std::make_unique<core::Archive>();
  s.archive->AddFileServer("fs1", 8.0);
  (void)core::CreateTurbulenceSchema(s.archive.get());
  core::SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 1;
  seed.grid_n = grid_n;
  auto seeded = core::SeedTurbulenceData(s.archive.get(), seed);
  s.dataset_url = (*seeded)[0].dataset_urls[0];
  s.upload.type = "EASCRIPT";
  s.upload.format = "ea";
  return s;
}

const char* kMeanScript = R"EA(
let f = arg(0);
let n = tbf_n(f);
let total = 0;
for (let i = 0; i < n; i = i + 1) {
  let s = tbf_slice(f, "x", i, "u");
  for (let j = 0; j < len(s); j = j + 1) { total = total + s[j]; }
}
write("mean.txt", str(total / (n * n * n)));
)EA";

void PrintReproduction() {
  Scenario s = MakeScenario(8);
  ops::InvocationContext ctx;
  ctx.user = "alice";
  ctx.is_guest = false;
  std::printf("\n=== F5: uploaded-code execution in the sandbox ===\n");
  auto result = s.archive->engine().RunUploadedCode(
      s.upload, kMeanScript, "main.ea", s.dataset_url, {}, ctx);
  if (!result.ok()) {
    std::printf("upload failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("mean-of-field script over 8^3 dataset: %llu interpreter "
              "steps, output %llu bytes (input %s)\n",
              static_cast<unsigned long long>(result->script_steps),
              static_cast<unsigned long long>(result->output_bytes),
              HumanBytes(result->input_bytes).c_str());
  // Sandbox rejections are cheap and deterministic.
  struct Attack {
    const char* name;
    const char* code;
  };
  const Attack attacks[] = {
      {"absolute path write", "write(\"/etc/passwd\", \"x\");"},
      {"path traversal", "write(\"../escape\", \"x\");"},
      {"foreign file read", "read(\"/archive/other.tbf\");"},
      {"infinite loop", "while (true) { let x = 1; }"},
      {"memory bomb",
       "let s = \"xxxxxxxx\"; while (true) { s = s + s; }"},
  };
  ops::OperationEngine& engine = s.archive->engine();
  engine.sandbox_limits().max_steps = 2000000;
  engine.sandbox_limits().max_memory_bytes = 8 << 20;
  for (const Attack& attack : attacks) {
    Status status = engine.RunUploadedCode(s.upload, attack.code, "main.ea",
                                           s.dataset_url, {}, ctx)
                        .status();
    std::printf("  %-22s -> %s\n", attack.name,
                std::string(StatusCodeToString(status.code())).c_str());
  }
  std::printf("\n");
}

// Raw interpreter throughput (steps/second) on a numeric kernel.
void BM_InterpreterArithmetic(benchmark::State& state) {
  script::Interpreter interp;
  const char* src =
      "let t = 0;"
      "for (let i = 0; i < 10000; i = i + 1) { t = t + i * i % 7; }";
  for (auto _ : state) {
    auto r = interp.Run(src, {});
    if (!r.ok()) state.SkipWithError("script failed");
    benchmark::DoNotOptimize(r->steps_used);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_InterpreterArithmetic);

// End-to-end upload-and-run for growing datasets.
void BM_UploadAndRun(benchmark::State& state) {
  Scenario s = MakeScenario(static_cast<size_t>(state.range(0)));
  ops::InvocationContext ctx;
  ctx.user = "alice";
  ctx.is_guest = false;
  for (auto _ : state) {
    auto result = s.archive->engine().RunUploadedCode(
        s.upload, kMeanScript, "main.ea", s.dataset_url, {}, ctx);
    if (!result.ok()) state.SkipWithError("upload failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UploadAndRun)->Arg(8)->Arg(16);

// Quota-enforcement overhead: the same kernel with a tight vs generous
// step budget (cost of metering, not of stopping).
void BM_QuotaMeteringOverhead(benchmark::State& state) {
  script::SandboxLimits limits;
  limits.max_steps = static_cast<uint64_t>(state.range(0));
  script::Interpreter interp(limits);
  const char* src =
      "let t = 0; for (let i = 0; i < 1000; i = i + 1) { t = t + i; }";
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Run(src, {}));
  }
}
BENCHMARK(BM_QuotaMeteringOverhead)
    ->Arg(10000)       // generous
    ->Arg(100000000);  // effectively unmetered

// Rejection latency: how fast a runaway script is stopped.
void BM_RunawayScriptStopped(benchmark::State& state) {
  script::SandboxLimits limits;
  limits.max_steps = 100000;
  script::Interpreter interp(limits);
  for (auto _ : state) {
    auto r = interp.Run("while (true) { let x = 1; }", {});
    if (r.ok()) state.SkipWithError("should have been stopped");
  }
}
BENCHMARK(BM_RunawayScriptStopped);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
