// F6 — the paper's XUIS slides: automatic generation of the default XML
// user-interface specification from the database catalogue, DTD-validated
// serialisation, parsing, and customisation. Includes the DESIGN.md
// ablation: sample-value harvesting on/off.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/string_util.h"
#include "db/database.h"
#include "xml/dtd.h"
#include "xml/writer.h"
#include "xuis/customize.h"
#include "xuis/generator.h"
#include "xuis/serialize.h"

namespace {

using namespace easia;

/// Builds a synthetic schema of `tables` tables x `columns` columns with a
/// chain of FK relationships and some data for sample harvesting.
std::unique_ptr<db::Database> MakeDatabase(size_t tables, size_t columns,
                                           size_t rows) {
  auto database = std::make_unique<db::Database>("XUISBENCH");
  for (size_t t = 0; t < tables; ++t) {
    std::string ddl = StrPrintf("CREATE TABLE T%zu (ID VARCHAR(30) NOT NULL",
                                t);
    for (size_t c = 0; c < columns; ++c) {
      ddl += StrPrintf(", C%zu %s", c,
                       c % 3 == 0 ? "INTEGER"
                                  : (c % 3 == 1 ? "VARCHAR(40)" : "DOUBLE"));
    }
    if (t > 0) ddl += StrPrintf(", PARENT VARCHAR(30)");
    ddl += ", PRIMARY KEY (ID)";
    if (t > 0) {
      ddl += StrPrintf(", FOREIGN KEY (PARENT) REFERENCES T%zu (ID)", t - 1);
    }
    ddl += ")";
    if (!database->Execute(ddl).ok()) return nullptr;
  }
  for (size_t t = 0; t < tables; ++t) {
    for (size_t r = 0; r < rows; ++r) {
      std::string sql = StrPrintf("INSERT INTO T%zu VALUES ('K%zu_%zu'", t,
                                  t, r);
      for (size_t c = 0; c < columns; ++c) {
        if (c % 3 == 0) {
          sql += StrPrintf(", %zu", r * 10 + c);
        } else if (c % 3 == 1) {
          sql += StrPrintf(", 'value_%zu_%zu'", r, c);
        } else {
          sql += StrPrintf(", %zu.5", r);
        }
      }
      if (t > 0) sql += StrPrintf(", 'K%zu_%zu'", t - 1, r);
      sql += ")";
      (void)database->Execute(sql);
    }
  }
  return database;
}

void PrintReproduction() {
  std::printf("\n=== F6: XUIS generation, validation and round trip ===\n");
  std::printf("%-18s %-10s %-12s %-12s %-10s\n", "Schema", "Columns",
              "XUIS bytes", "Elements", "Valid");
  auto dtd = xml::Dtd::Parse(xml::XuisDtdText());
  for (size_t tables : {5, 10, 25}) {
    auto database = MakeDatabase(tables, 6, 10);
    auto spec = xuis::GenerateDefaultXuis(*database);
    auto doc = xuis::ToXmlDocument(*spec);
    std::string text = xml::WriteDocument(*doc);
    std::printf("%zu tables x 7 cols  %-10zu %-12zu %-12zu %-10s\n", tables,
                spec->TotalColumns(), text.size(),
                doc->root->CountElements(),
                dtd->Validate(*doc->root).ok() ? "yes" : "NO");
  }
  // Round-trip fidelity.
  auto database = MakeDatabase(5, 6, 10);
  auto spec = xuis::GenerateDefaultXuis(*database);
  auto text = xuis::ToXmlText(*spec);
  auto back = xuis::ParseXuisText(*text);
  std::printf("round trip: %zu -> %zu columns (%s)\n\n",
              spec->TotalColumns(), back->TotalColumns(),
              spec->TotalColumns() == back->TotalColumns() ? "identical"
                                                           : "MISMATCH");
}

void BM_GenerateDefaultXuis(benchmark::State& state) {
  auto database = MakeDatabase(static_cast<size_t>(state.range(0)), 6, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xuis::GenerateDefaultXuis(*database));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_GenerateDefaultXuis)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

// Ablation: sample harvesting accounts for the scan cost.
void BM_GenerateNoSamples(benchmark::State& state) {
  auto database = MakeDatabase(static_cast<size_t>(state.range(0)), 6, 20);
  xuis::GeneratorOptions opts;
  opts.harvest_samples = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xuis::GenerateDefaultXuis(*database, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_GenerateNoSamples)->Arg(5)->Arg(25)->Arg(50);

void BM_SerialiseXuis(benchmark::State& state) {
  auto database = MakeDatabase(10, 6, 10);
  auto spec = xuis::GenerateDefaultXuis(*database);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xuis::ToXmlText(*spec));
  }
}
BENCHMARK(BM_SerialiseXuis);

void BM_ParseAndValidateXuis(benchmark::State& state) {
  auto database = MakeDatabase(10, 6, 10);
  auto spec = xuis::GenerateDefaultXuis(*database);
  std::string text = *xuis::ToXmlText(*spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xuis::ParseXuisText(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ParseAndValidateXuis);

void BM_DtdValidateOnly(benchmark::State& state) {
  auto database = MakeDatabase(10, 6, 10);
  auto spec = xuis::GenerateDefaultXuis(*database);
  auto doc = xuis::ToXmlDocument(*spec);
  auto dtd = xml::Dtd::Parse(xml::XuisDtdText());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtd->Validate(*doc->root));
  }
}
BENCHMARK(BM_DtdValidateOnly);

void BM_CustomiseSpec(benchmark::State& state) {
  auto database = MakeDatabase(10, 6, 10);
  auto base = xuis::GenerateDefaultXuis(*database);
  for (auto _ : state) {
    xuis::XuisSpec spec = *base;  // copy, then customise
    xuis::XuisCustomizer c(&spec);
    (void)c.SetTableAlias("T0", "Root table");
    (void)c.HideColumn("T1.C0");
    (void)c.SetFkSubstitution("T1.PARENT", "T0.C1");
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_CustomiseSpec);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
