// F1 — the paper's "Bandwidth Problems" figure: a centralised archive pays
// for uploading every dataset to the archive site AND for downloading it to
// each consumer; EASIA's distributed archive stores data where it is
// generated, so only consumer downloads cross the network.
//
// Expected shape: archive-in-place removes the upload leg entirely; with
// the paper's asymmetric rates the upload leg is the *slower* direction, so
// the centralised total is 2x-6x the distributed total.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/string_util.h"
#include "sim/bandwidth.h"
#include "sim/network.h"

namespace {

using easia::HumanBytes;
using easia::HumanDuration;
using namespace easia::sim;

/// Builds the three-site topology: producer (supercomputing centre),
/// archive (Southampton) and consumer, with paper-calibrated rates.
Network MakeNetwork(double start_hour) {
  Network net(start_hour * 3600.0);
  net.AddHost({"producer", 50, 4});
  net.AddHost({"archive", 50, 4});
  net.AddHost({"consumer", 25, 2});
  net.AddLink("producer", "archive", ToSouthamptonSchedule());
  net.AddLink("archive", "consumer", FromSouthamptonSchedule());
  net.AddLink("producer", "consumer", FromSouthamptonSchedule());
  return net;
}

struct Outcome {
  double seconds = 0;
  uint64_t bytes_moved = 0;
};

/// Centralised: dataset uploaded producer -> archive, then downloaded
/// archive -> consumer.
Outcome Centralised(uint64_t bytes, double start_hour) {
  Network net = MakeNetwork(start_hour);
  double t0 = net.Now();
  (void)*net.Transfer("producer", "archive", bytes);
  (void)*net.Transfer("archive", "consumer", bytes);
  return {net.Now() - t0, net.TotalTraffic()};
}

/// Distributed (EASIA): archive-in-place; only the consumer download moves.
Outcome Distributed(uint64_t bytes, double start_hour) {
  Network net = MakeNetwork(start_hour);
  double t0 = net.Now();
  (void)*net.Transfer("producer", "consumer", bytes);
  return {net.Now() - t0, net.TotalTraffic()};
}

void PrintReproduction() {
  std::printf(
      "\n=== F1: centralised upload+download vs EASIA archive-in-place "
      "===\n");
  std::printf("%-10s %-9s %-14s %-14s %-9s %-14s %-14s\n", "Size", "Start",
              "Central time", "EASIA time", "Speedup", "Central bytes",
              "EASIA bytes");
  for (uint64_t mb : {10, 85, 250, 544, 1000}) {
    for (double start_hour : {10.0, 20.0}) {
      uint64_t bytes = mb * kMegabyte;
      Outcome central = Centralised(bytes, start_hour);
      Outcome easia = Distributed(bytes, start_hour);
      std::printf("%-10s %-9s %-14s %-14s %-9.2f %-14s %-14s\n",
                  HumanBytes(bytes).c_str(),
                  start_hour < 18 ? "day" : "evening",
                  HumanDuration(central.seconds).c_str(),
                  HumanDuration(easia.seconds).c_str(),
                  central.seconds / easia.seconds,
                  HumanBytes(central.bytes_moved).c_str(),
                  HumanBytes(easia.bytes_moved).c_str());
    }
  }
  std::printf(
      "shape check: EASIA moves half the bytes and dodges the slow "
      "upload direction -> speedup > 2 in the day window\n\n");
}

void BM_CentralisedPipeline(benchmark::State& state) {
  uint64_t bytes = static_cast<uint64_t>(state.range(0)) * kMegabyte;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Centralised(bytes, 10.0));
  }
}
BENCHMARK(BM_CentralisedPipeline)->Arg(85)->Arg(544);

void BM_DistributedPipeline(benchmark::State& state) {
  uint64_t bytes = static_cast<uint64_t>(state.range(0)) * kMegabyte;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Distributed(bytes, 10.0));
  }
}
BENCHMARK(BM_DistributedPipeline)->Arg(85)->Arg(544);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
