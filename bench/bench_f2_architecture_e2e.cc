// F2 — the paper's system-architecture figure: one database server host
// plus distributed file-server hosts. This bench drives the full
// architecture end to end (insert metadata + link files on three hosts,
// QBE search, token issue, token-gated download) and measures the
// implementation's throughput at each stage.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"

namespace {

using namespace easia;

std::unique_ptr<core::Archive> MakeArchive(size_t simulations,
                                           size_t timesteps) {
  auto archive = std::make_unique<core::Archive>();
  for (const char* host : {"fs1", "fs2", "fs3"}) {
    archive->AddFileServer(host);
  }
  archive->AddClientHost("client");
  if (!core::CreateTurbulenceSchema(archive.get()).ok()) return nullptr;
  core::SeedOptions seed;
  seed.hosts = {"fs1", "fs2", "fs3"};
  seed.simulations = simulations;
  seed.timesteps_per_simulation = timesteps;
  seed.grid_n = 8;
  if (!core::SeedTurbulenceData(archive.get(), seed).ok()) return nullptr;
  if (!archive->InitializeXuis().ok()) return nullptr;
  (void)archive->AddUser("alice", "pw", web::UserRole::kAuthorised);
  return archive;
}

void PrintReproduction() {
  auto archive = MakeArchive(3, 4);
  std::printf("\n=== F2: system architecture end-to-end (reproduction) ===\n");
  std::printf("database host:    %s (metadata only)\n",
              archive->options().db_host.c_str());
  uint64_t metadata_bytes = 0;
  for (const std::string& table : archive->database().catalog().TableNames()) {
    auto rows = archive->Execute("SELECT COUNT(*) FROM " + table);
    std::printf("  table %-22s %lld rows\n", table.c_str(),
                static_cast<long long>(rows->rows[0][0].AsInt()));
    (void)metadata_bytes;
  }
  uint64_t file_bytes = 0;
  for (const std::string& host : archive->fleet().Hosts()) {
    auto server = archive->fleet().GetServer(host);
    std::printf("file server %-10s %zu files, %s\n", host.c_str(),
                (*server)->vfs().FileCount(),
                HumanBytes((*server)->vfs().TotalBytes()).c_str());
    file_bytes += (*server)->vfs().TotalBytes();
  }
  std::printf("linked (SQL/MED controlled) files: %zu\n",
              archive->med().TotalLinkedFiles());
  // End-to-end user path: login -> search -> tokenised download.
  std::string session = *archive->Login("alice", "pw");
  auto page = archive->Get(session, "/search",
                           {{"table", "RESULT_FILE"}, {"all", "1"}});
  std::printf("search page: HTTP %d, %zu bytes of HTML\n", page.status,
              page.body.size());
  auto rows = archive->Execute("SELECT DOWNLOAD_RESULT FROM RESULT_FILE",
                               "alice");
  std::string url = rows->rows[0][0].AsString();
  double seconds = *archive->Download(url, "client");
  std::printf("token download of first dataset: %s (simulated)\n",
              HumanDuration(seconds).c_str());
  std::printf("total archive payload on file servers: %s; database holds "
              "only metadata\n\n",
              HumanBytes(file_bytes).c_str());
}

void BM_ArchiveDatasetAndRegister(benchmark::State& state) {
  auto archive = MakeArchive(1, 1);
  auto server = *archive->fleet().GetServer("fs1");
  int i = 0;
  for (auto _ : state) {
    std::string path = StrPrintf("/bench/data%d.tbf", i);
    (void)server->vfs().WriteFile(path, "0123456789");
    std::string sql = StrPrintf(
        "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, "
        "DOWNLOAD_RESULT) VALUES ('b%d.tbf', 'S199901%08d', "
        "'http://fs1%s')",
        i, 1, path.c_str());
    benchmark::DoNotOptimize(archive->Execute(sql));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArchiveDatasetAndRegister);

void BM_QbeSearchRequest(benchmark::State& state) {
  auto archive = MakeArchive(static_cast<size_t>(state.range(0)), 3);
  std::string session = *archive->Login("alice", "pw");
  for (auto _ : state) {
    auto resp = archive->Get(session, "/search",
                             {{"table", "RESULT_FILE"}, {"all", "1"}});
    if (resp.status != 200) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(resp.body);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QbeSearchRequest)->Arg(2)->Arg(8)->Arg(32);

void BM_TokenisedSelect(benchmark::State& state) {
  auto archive = MakeArchive(4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(archive->Execute(
        "SELECT DOWNLOAD_RESULT FROM RESULT_FILE", "alice"));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TokenisedSelect);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
