// F11 — fault injection and crash recovery. PR 4 added a deterministic
// fault-injection harness (src/testing/): an in-memory environment that
// tears writes, drops fsyncs and stops persisting at a seeded crash point,
// plus crash-recovery workloads over the WAL, the job journal and the
// SQL/MED DATALINK layer (post-crash reconciliation of database rows
// against file-server contents). This bench drives the harness at scale:
//
//   * wal: seeded DML workloads crashed at random WAL byte offsets across
//     all three survival models; recovery is differentially checked
//     against a shadow replay of the acknowledged statements;
//   * jobs: seeded submit/cancel workloads crashed mid-journal; acked
//     submissions must survive, recovery must be a fixpoint;
//   * datalink: torn WAL write plus lost linked files; the reconciler
//     restores RECOVERY YES files from a coordinated backup (or flags the
//     dangling rows) and a second pass must be a fixpoint.
//
// Emits a JSON block like bench_f9/f10 and exits non-zero on any invariant
// violation, so `--smoke` doubles as a correctness gate: it runs >= 100
// seeded crash points on every build via ctest.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "testing/crash_harness.h"

namespace {

using namespace easia;
using easia::testing::CrashReport;
using easia::testing::CrashSurvival;

struct SmokeConfig {
  int wal_cases = 200;
  int jobs_cases = 120;
  int datalink_cases = 24;
};

struct SweepResult {
  int cases = 0;
  int crashed = 0;
  size_t acked = 0;
  size_t violations = 0;
  double seconds = 0;
};

double WallSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

CrashSurvival Mode(int i) {
  const CrashSurvival kModes[] = {CrashSurvival::kAll,
                                  CrashSurvival::kSyncedOnly,
                                  CrashSurvival::kRandomTail};
  return kModes[i % 3];
}

void Account(SweepResult* sweep, const CrashReport& report) {
  ++sweep->cases;
  if (report.crashed) ++sweep->crashed;
  sweep->acked += report.acked;
  sweep->violations += report.violations.size();
  for (const std::string& v : report.violations) {
    std::fprintf(stderr, "VIOLATION: %s\n", v.c_str());
  }
}

SweepResult WalSweep(int cases) {
  SweepResult sweep;
  auto start = std::chrono::steady_clock::now();
  Random rng(0xF11A);
  for (int i = 0; i < cases; ++i) {
    testing::WalCrashOptions options;
    options.seed = rng.Next();
    options.statements = 10 + static_cast<int>(rng.Uniform(20));
    options.survival = Mode(i);
    testing::WalCrashOptions probe = options;
    probe.crash_after_bytes = -1;
    CrashReport full = RunWalCrashCase(probe);
    if (!full.Clean() || full.wal_bytes == 0) {
      Account(&sweep, full);
      continue;
    }
    options.crash_after_bytes =
        static_cast<int64_t>(rng.Uniform(full.wal_bytes + 1));
    Account(&sweep, RunWalCrashCase(options));
  }
  sweep.seconds = WallSince(start);
  return sweep;
}

SweepResult JobsSweep(int cases) {
  SweepResult sweep;
  auto start = std::chrono::steady_clock::now();
  Random rng(0xF11B);
  for (int i = 0; i < cases; ++i) {
    testing::JobsCrashOptions options;
    options.seed = rng.Next();
    options.operations = 10 + static_cast<int>(rng.Uniform(25));
    options.survival = Mode(i);
    testing::JobsCrashOptions probe = options;
    probe.crash_after_bytes = -1;
    CrashReport full = RunJobsCrashCase(probe);
    if (!full.Clean() || full.wal_bytes == 0) {
      Account(&sweep, full);
      continue;
    }
    options.crash_after_bytes =
        static_cast<int64_t>(rng.Uniform(full.wal_bytes + 1));
    Account(&sweep, RunJobsCrashCase(options));
  }
  sweep.seconds = WallSince(start);
  return sweep;
}

SweepResult DatalinkSweep(int cases) {
  SweepResult sweep;
  auto start = std::chrono::steady_clock::now();
  Random rng(0xF11C);
  for (int i = 0; i < cases; ++i) {
    testing::DatalinkCrashOptions options;
    options.seed = rng.Next();
    options.files = 8 + static_cast<int>(rng.Uniform(8));
    options.survival = Mode(i);
    options.lose_files = 1 + static_cast<int>(rng.Uniform(3));
    // Half the sweep runs with a coordinated backup (lost files restore);
    // the other half without (lost files must be flagged dangling).
    options.with_backup = (i % 2) == 0;
    testing::DatalinkCrashOptions probe = options;
    probe.crash_after_bytes = -1;
    probe.lose_files = 0;
    CrashReport full = RunDatalinkCrashCase(probe);
    if (!full.Clean() || full.wal_bytes == 0) {
      Account(&sweep, full);
      continue;
    }
    options.crash_after_bytes =
        static_cast<int64_t>(rng.Uniform(full.wal_bytes + 1));
    Account(&sweep, RunDatalinkCrashCase(options));
  }
  sweep.seconds = WallSince(start);
  return sweep;
}

void PrintSweep(const char* name, const SweepResult& sweep, bool last) {
  std::printf(
      " \"%s\":{\"cases\":%d,\"crashed\":%d,\"acked_ops\":%zu,"
      "\"violations\":%zu,\"seconds\":%.3f}%s\n",
      name, sweep.cases, sweep.crashed, sweep.acked, sweep.violations,
      sweep.seconds, last ? "" : ",");
}

size_t RunSweeps(const SmokeConfig& cfg) {
  std::printf("\n=== F11: fault injection + crash recovery ===\n");
  SweepResult wal = WalSweep(cfg.wal_cases);
  SweepResult jobs = JobsSweep(cfg.jobs_cases);
  SweepResult datalink = DatalinkSweep(cfg.datalink_cases);
  std::printf("{\"bench\":\"f11_fault_recovery\",\n");
  PrintSweep("wal", wal, false);
  PrintSweep("jobs", jobs, false);
  PrintSweep("datalink", datalink, true);
  std::printf("}\n");
  return wal.violations + jobs.violations + datalink.violations;
}

// ---- Microbenchmarks (skipped under --smoke) ----

void BM_WalCrashRecoverCycle(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    testing::WalCrashOptions options;
    options.seed = rng.Next();
    options.statements = static_cast<int>(state.range(0));
    options.crash_after_bytes = 400;
    options.survival = CrashSurvival::kRandomTail;
    CrashReport report = RunWalCrashCase(options);
    if (!report.Clean()) state.SkipWithError("invariant violation");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_WalCrashRecoverCycle)->Arg(10)->Arg(40);

void BM_DatalinkCrashReconcile(benchmark::State& state) {
  Random rng(2);
  for (auto _ : state) {
    testing::DatalinkCrashOptions options;
    options.seed = rng.Next();
    options.files = static_cast<int>(state.range(0));
    options.crash_after_bytes = 600;
    options.lose_files = 2;
    CrashReport report = RunDatalinkCrashCase(options);
    if (!report.Clean()) state.SkipWithError("invariant violation");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DatalinkCrashReconcile)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before benchmark::Initialize (it is not a benchmark
  // flag); ctest runs `bench_f11_fault_recovery --smoke` on every build.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  SmokeConfig cfg;
  if (smoke) {
    // >= 100 seeded crash points even in the smoke configuration: the
    // sweep is the correctness gate, not just a timing probe.
    cfg.wal_cases = 60;
    cfg.jobs_cases = 40;
    cfg.datalink_cases = 10;
  }
  size_t violations = RunSweeps(cfg);
  if (violations != 0) {
    std::fprintf(stderr, "bench_f11: %zu invariant violations\n", violations);
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
