// F16 — sharded metadata database: scatter/gather aggregation and
// partition pruning over hash-partitioned tables. One catalog table is
// hash-partitioned on its primary key across 4 sim-linked shards behind
// the ShardCoordinator; the same rows live in a single-node database as
// the baseline. Measured:
//
//  * a grouped COUNT/SUM/MIN/MAX aggregate executed scattered (per-shard
//    partial aggregation, merged at the coordinator) versus the
//    enable_scatter=false ablation, where every matching row ships to the
//    coordinator and one executor aggregates — the architecture's claim
//    is that partial aggregation close to the data beats moving the rows.
//    The same-data single-node time is reported alongside as the
//    no-distribution reference;
//  * point lookups on the partition key with pruning on (one shard
//    scanned per query) versus the enable_pruning=false ablation (every
//    shard scanned, the scatter tax without the planner).
//
// Emits a JSON block (schema versioned, tagged with the build revision);
// `--smoke` runs as a ctest gate and exits non-zero when the scattered
// aggregate is not at least 2x the row-shipping gather ablation, when
// pruning scans anything but exactly the matching shard, or when any
// sharded result diverges from the single-node oracle.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "db/database.h"
#include "db/shard/coordinator.h"
#include "sim/network.h"

#ifndef EASIA_BENCH_REV
#define EASIA_BENCH_REV "unknown"
#endif

namespace {

using namespace easia;

constexpr int kShards = 4;

struct Config {
  int rows = 120000;
  int groups = 50;
  int batch = 500;        // rows per multi-row INSERT during ingest
  int agg_iters = 20;     // aggregate executions per timed trial
  int point_queries = 200;
  int trials = 3;         // best-of
};

sim::Network MakeNet() {
  sim::Network net;
  std::vector<std::string> hosts = {"web"};
  for (int i = 0; i < kShards; ++i) hosts.push_back("s" + std::to_string(i));
  for (const std::string& h : hosts) net.AddHost({h, 50.0, 4});
  for (const std::string& a : hosts) {
    for (const std::string& b : hosts) {
      if (a != b) {
        net.AddLink(a, b, sim::BandwidthSchedule::Constant(100.0), 0.001);
      }
    }
  }
  return net;
}

/// `planned` toggles both planner features at once: the ablation
/// coordinator ships every matching row to the coordinator (no partial
/// aggregation) and scans every shard (no pruning) — distribution without
/// the scatter/gather planner.
std::unique_ptr<db::shard::ShardCoordinator> MakeCoordinator(
    sim::Network* net, bool planned) {
  db::shard::ShardOptions options;
  options.coordinator_host = "web";
  for (int i = 0; i < kShards; ++i) {
    options.shard_hosts.push_back("s" + std::to_string(i));
  }
  options.enable_pruning = planned;
  options.enable_scatter = planned;
  return std::make_unique<db::shard::ShardCoordinator>(net, options);
}

/// The seed statements: one partitioned CREATE TABLE plus batched
/// multi-row INSERTs. Identical SQL drives the coordinator and the
/// single-node baseline (the partition clause is routing metadata there).
std::vector<std::string> SeedStatements(const Config& cfg) {
  std::vector<std::string> out;
  out.push_back(StrPrintf(
      "CREATE TABLE DATASET (ID INTEGER NOT NULL, GRP INTEGER,"
      " SCORE INTEGER, TITLE VARCHAR(24), PRIMARY KEY (ID))"
      " PARTITION BY HASH(ID) PARTITIONS %d",
      kShards));
  for (int base = 0; base < cfg.rows; base += cfg.batch) {
    std::string sql = "INSERT INTO DATASET VALUES ";
    int end = std::min(base + cfg.batch, cfg.rows);
    for (int i = base; i < end; ++i) {
      if (i > base) sql += ", ";
      sql += StrPrintf("(%d, %d, %d, 'dataset%d')", i, i % cfg.groups,
                       (i * 37) % 10000, i % 1000);
    }
    out.push_back(std::move(sql));
  }
  return out;
}

std::string Render(const db::QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const db::Row& row : result.rows) {
    std::string line;
    for (const db::Value& v : row) {
      line += v.ToDisplayString();
      line += "|";
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) out += r + "\n";
  return out;
}

/// Wall-clock seconds for `iters` executions of `sql` via `run`.
template <typename RunFn>
double TimeLoop(int iters, const std::string& sql, RunFn&& run, bool* ok) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    Result<db::QueryResult> r = run(sql);
    if (!r.ok()) {
      *ok = false;
      return 0;
    }
    benchmark::DoNotOptimize(r->rows.size());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Report {
  double single_agg_sec = 0;    // per aggregate execution
  double gather_agg_sec = 0;
  double scatter_agg_sec = 0;
  double agg_speedup = 0;       // gather ablation / scatter
  double pruned_point_sec = 0;  // per point lookup
  double ablation_point_sec = 0;
  uint64_t pruned_scanned = 0;  // shard scans across the point sweep
  uint64_t pruned_avoided = 0;
  uint64_t ablation_scanned = 0;
  int violations = 0;
};

int RunReproduction(const Config& cfg, bool smoke) {
  sim::Network net = MakeNet();
  sim::Network ablation_net = MakeNet();
  std::unique_ptr<db::shard::ShardCoordinator> coord =
      MakeCoordinator(&net, /*planned=*/true);
  std::unique_ptr<db::shard::ShardCoordinator> ablation =
      MakeCoordinator(&ablation_net, /*planned=*/false);
  db::Database single("SINGLE");

  for (const std::string& sql : SeedStatements(cfg)) {
    if (!coord->Execute(sql).ok() || !ablation->Execute(sql).ok() ||
        !single.Execute(sql).ok()) {
      std::fprintf(stderr, "f16: seeding failed\n");
      return 1;
    }
  }

  Report best;
  const std::string agg_sql =
      "SELECT GRP, COUNT(*), SUM(SCORE), MIN(SCORE), MAX(SCORE)"
      " FROM DATASET GROUP BY GRP";

  // Result parity first: the scattered aggregate and a sample of pruned
  // point lookups must match the single-node oracle exactly.
  {
    Result<db::QueryResult> a = coord->Execute(agg_sql);
    Result<db::QueryResult> g = ablation->Execute(agg_sql);
    Result<db::QueryResult> b = single.Execute(agg_sql);
    if (!a.ok() || !g.ok() || !b.ok() || Render(*a) != Render(*b) ||
        Render(*g) != Render(*b)) {
      std::fprintf(stderr, "f16: scattered aggregate diverged\n");
      return 1;
    }
  }
  for (int q = 0; q < 16; ++q) {
    std::string sql = StrPrintf("SELECT TITLE, SCORE FROM DATASET"
                                " WHERE ID = %d",
                                (q * 7919) % cfg.rows);
    Result<db::QueryResult> a = coord->Execute(sql);
    Result<db::QueryResult> c = ablation->Execute(sql);
    Result<db::QueryResult> b = single.Execute(sql);
    if (!a.ok() || !b.ok() || !c.ok() || Render(*a) != Render(*b) ||
        Render(*c) != Render(*b)) {
      std::fprintf(stderr, "f16: point lookup diverged\n");
      return 1;
    }
  }

  for (int trial = 0; trial < cfg.trials; ++trial) {
    Report r;
    bool ok = true;
    double single_total = TimeLoop(
        cfg.agg_iters, agg_sql,
        [&](const std::string& sql) { return single.Execute(sql); }, &ok);
    double gather_total = TimeLoop(
        cfg.agg_iters, agg_sql,
        [&](const std::string& sql) { return ablation->Execute(sql); }, &ok);
    double scatter_total = TimeLoop(
        cfg.agg_iters, agg_sql,
        [&](const std::string& sql) { return coord->Execute(sql); }, &ok);
    if (!ok || scatter_total <= 0) {
      std::fprintf(stderr, "f16: aggregate trial failed\n");
      return 1;
    }
    r.single_agg_sec = single_total / cfg.agg_iters;
    r.gather_agg_sec = gather_total / cfg.agg_iters;
    r.scatter_agg_sec = scatter_total / cfg.agg_iters;
    r.agg_speedup = gather_total / scatter_total;

    db::shard::ShardCounters before = coord->counters();
    db::shard::ShardCounters ablation_before = ablation->counters();
    double pruned_total = 0;
    double ablation_total = 0;
    for (int q = 0; q < cfg.point_queries; ++q) {
      std::string sql = StrPrintf("SELECT TITLE, SCORE FROM DATASET"
                                  " WHERE ID = %d",
                                  (q * 131) % cfg.rows);
      bool q_ok = true;
      pruned_total += TimeLoop(
          1, sql, [&](const std::string& s) { return coord->Execute(s); },
          &q_ok);
      ablation_total += TimeLoop(
          1, sql, [&](const std::string& s) { return ablation->Execute(s); },
          &q_ok);
      if (!q_ok) {
        std::fprintf(stderr, "f16: point trial failed\n");
        return 1;
      }
    }
    db::shard::ShardCounters after = coord->counters();
    db::shard::ShardCounters ablation_after = ablation->counters();
    r.pruned_point_sec = pruned_total / cfg.point_queries;
    r.ablation_point_sec = ablation_total / cfg.point_queries;
    r.pruned_scanned = after.scanned_shards - before.scanned_shards;
    r.pruned_avoided = after.pruned_shards - before.pruned_shards;
    r.ablation_scanned =
        ablation_after.scanned_shards - ablation_before.scanned_shards;

    // Pruning is a correctness property, not a timing: a point lookup on
    // the partition key touches exactly one shard, every time.
    if (r.pruned_scanned != static_cast<uint64_t>(cfg.point_queries) ||
        r.pruned_avoided !=
            static_cast<uint64_t>(cfg.point_queries) * (kShards - 1) ||
        r.ablation_scanned !=
            static_cast<uint64_t>(cfg.point_queries) * kShards) {
      std::fprintf(stderr,
                   "f16: pruning scanned %llu shards (want %d), ablation "
                   "%llu (want %d)\n",
                   static_cast<unsigned long long>(r.pruned_scanned),
                   cfg.point_queries,
                   static_cast<unsigned long long>(r.ablation_scanned),
                   cfg.point_queries * kShards);
      return 1;
    }
    if (trial == 0 || r.agg_speedup > best.agg_speedup) best = r;
  }

  std::printf("\n=== F16: hash-partitioned shards, scatter/gather ===\n");
  std::printf("{\"bench\":\"f16_sharding\",\"schema\":1,\"rev\":\"%s\",\n",
              EASIA_BENCH_REV);
  std::printf(" \"shards\":%d,\"rows\":%d,\"groups\":%d,\"agg_iters\":%d,"
              "\"point_queries\":%d,\"trials\":%d,\n",
              kShards, cfg.rows, cfg.groups, cfg.agg_iters,
              cfg.point_queries, cfg.trials);
  std::printf(" \"gather_agg_ms\":%.3f,\"scatter_agg_ms\":%.3f,"
              "\"agg_speedup\":%.2f,\"local_single_node_ms\":%.3f,\n",
              best.gather_agg_sec * 1e3, best.scatter_agg_sec * 1e3,
              best.agg_speedup, best.single_agg_sec * 1e3);
  std::printf(" \"pruned_point_us\":%.1f,\"ablation_point_us\":%.1f,\n",
              best.pruned_point_sec * 1e6, best.ablation_point_sec * 1e6);
  std::printf(" \"point_shards_scanned\":%llu,\"point_shards_pruned\":%llu,"
              "\"ablation_shards_scanned\":%llu}\n",
              static_cast<unsigned long long>(best.pruned_scanned),
              static_cast<unsigned long long>(best.pruned_avoided),
              static_cast<unsigned long long>(best.ablation_scanned));

  int violations = 0;
  // The acceptance gate: per-shard partial aggregation must be at least
  // 2x the ablation that ships every row to one executor.
  if (smoke && best.agg_speedup < 2.0) {
    std::fprintf(stderr, "f16: scatter speedup %.2fx below the 2x gate\n",
                 best.agg_speedup);
    ++violations;
  }
  return violations;
}

// ---- Microbenchmarks (skipped under --smoke) ----

void BM_ScatterAggregate(benchmark::State& state) {
  Config cfg;
  cfg.rows = static_cast<int>(state.range(0));
  sim::Network net = MakeNet();
  std::unique_ptr<db::shard::ShardCoordinator> coord =
      MakeCoordinator(&net, true);
  for (const std::string& sql : SeedStatements(cfg)) {
    if (!coord->Execute(sql).ok()) {
      state.SkipWithError("seed failed");
      return;
    }
  }
  const std::string agg_sql =
      "SELECT GRP, COUNT(*), SUM(SCORE) FROM DATASET GROUP BY GRP";
  for (auto _ : state) {
    Result<db::QueryResult> r = coord->Execute(agg_sql);
    if (!r.ok()) {
      state.SkipWithError("aggregate failed");
      return;
    }
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_ScatterAggregate)
    ->Arg(20000)
    ->Arg(120000)
    ->ArgName("rows")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip our flag before benchmark::Initialize; ctest runs
  // `bench_f16_sharding --smoke` on every build.
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  Config cfg;
  if (smoke) {
    cfg.rows = 30000;
    cfg.agg_iters = 6;
    cfg.point_queries = 50;
    cfg.trials = 2;
  }
  int violations = RunReproduction(cfg, smoke);
  if (violations != 0) return 1;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
