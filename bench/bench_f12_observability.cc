// F12 — observability overhead. PR 5 added the metrics registry, request
// tracing and the /metrics endpoint, with the instrumentation threaded
// through the hot request path (pre-resolved per-route counters, spans in
// the web/planner/cache/fileserver layers). The promise is that all of it
// is cheap enough to leave on; this bench holds the receipt:
//
//   * overhead: the same mixed /tables + /browse + /search workload pushed
//     through two otherwise-identical archives, one with Options::obs
//     enabled and one with it disabled. Render caching is off so every
//     request does real planner + render work — the comparison is against
//     genuine request cost, not a cached string copy. Min-of-N trials,
//     wall clock.
//   * scrape: the cost and size of one /metrics exposition after the
//     workload (a scraper hits this every few seconds in production).
//
// Emits a JSON block like bench_f8..f11. `--smoke` shrinks the workload
// and turns the overhead number into a gate: exit non-zero if the
// instrumented archive is more than 5% slower. Wired as a ctest test so
// the observability layer cannot quietly grow a hot-path cost.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xuis/customize.h"

namespace {

using namespace easia;

struct Bundle {
  std::unique_ptr<core::Archive> archive;
  std::string session;
  std::string simulation_key;
};

/// A fully seeded archive. `instrumented` toggles the whole observability
/// layer; the render cache is disabled in both so the workloads do
/// identical per-request work.
std::unique_ptr<Bundle> MakeArchive(bool instrumented, size_t timesteps) {
  auto bundle = std::make_unique<Bundle>();
  core::Archive::Options options;
  options.obs.enabled = instrumented;
  options.render_cache_bytes = 0;
  bundle->archive = std::make_unique<core::Archive>(options);
  core::Archive* archive = bundle->archive.get();
  archive->AddFileServer("fs1", 8.0);
  if (!core::CreateTurbulenceSchema(archive).ok()) return nullptr;
  core::SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 2;
  seed.timesteps_per_simulation = timesteps;
  seed.grid_n = 8;
  auto seeded = core::SeedTurbulenceData(archive, seed);
  if (!seeded.ok()) return nullptr;
  bundle->simulation_key = (*seeded)[0].simulation_key;
  if (!archive->InitializeXuis().ok()) return nullptr;
  if (!archive->AddUser("alice", "pw", web::UserRole::kAuthorised).ok()) {
    return nullptr;
  }
  auto session = archive->Login("alice", "pw");
  if (!session.ok()) return nullptr;
  bundle->session = *session;
  return bundle;
}

/// Runs the mixed interactive workload once; returns false on any non-200.
bool RunWorkload(Bundle* b, size_t requests) {
  for (size_t i = 0; i < requests; ++i) {
    web::HttpResponse resp;
    switch (i % 4) {
      case 0:
        resp = b->archive->Get(b->session, "/tables");
        break;
      case 1:
        resp = b->archive->Get(b->session, "/browse",
                               {{"table", "RESULT_FILE"},
                                {"column", "SIMULATION_KEY"},
                                {"value", b->simulation_key}});
        break;
      case 2:
        resp = b->archive->Get(b->session, "/search",
                               {{"table", "SIMULATION"}, {"all", "1"}});
        break;
      default:
        resp = b->archive->Get(b->session, "/query",
                               {{"table", "RESULT_FILE"}});
        break;
    }
    if (resp.status != 200) {
      std::fprintf(stderr, "f12: request %zu (kind %zu) -> %d\n", i, i % 4,
                   resp.status);
      return false;
    }
    benchmark::DoNotOptimize(resp.body.size());
  }
  return true;
}

/// One timed pass of the workload; -1 on request failure.
double TimedPass(Bundle* b, size_t requests) {
  auto t0 = std::chrono::steady_clock::now();
  if (!RunWorkload(b, requests)) return -1;
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Min-of-`trials` for both stacks, with the trials interleaved pairwise:
/// baseline, instrumented, baseline, ... Min discards scheduler noise
/// (the fastest run is the one closest to the true cost), and the
/// interleaving keeps slow machine-speed drift — frequency scaling, a
/// neighbour waking up mid-bench — from landing entirely on one side of
/// the comparison.
bool MinSecondsPaired(Bundle* baseline, Bundle* instrumented,
                      size_t requests, size_t trials, double* base_out,
                      double* inst_out) {
  double base_best = -1;
  double inst_best = -1;
  for (size_t t = 0; t < trials; ++t) {
    double base = TimedPass(baseline, requests);
    if (base < 0) return false;
    double inst = TimedPass(instrumented, requests);
    if (inst < 0) return false;
    if (base_best < 0 || base < base_best) base_best = base;
    if (inst_best < 0 || inst < inst_best) inst_best = inst;
  }
  *base_out = base_best;
  *inst_out = inst_best;
  return true;
}

struct SmokeConfig {
  size_t timesteps = 6;
  size_t requests = 400;
  size_t trials = 5;
  double gate_pct = 5.0;
};

/// Returns true when the (gated) overhead check passes.
bool PrintReproduction(const SmokeConfig& cfg, bool gate) {
  std::printf("\n=== F12: observability overhead ===\n");
  auto baseline = MakeArchive(/*instrumented=*/false, cfg.timesteps);
  auto instrumented = MakeArchive(/*instrumented=*/true, cfg.timesteps);
  if (baseline == nullptr || instrumented == nullptr) {
    std::printf("{\"bench\":\"f12_observability\",\"error\":\"setup\"}\n");
    return false;
  }
  // Warm both stacks once (first-touch allocation, lazy schema state).
  (void)RunWorkload(baseline.get(), 8);
  (void)RunWorkload(instrumented.get(), 8);

  double base = -1;
  double inst = -1;
  if (!MinSecondsPaired(baseline.get(), instrumented.get(), cfg.requests,
                        cfg.trials, &base, &inst)) {
    std::printf("{\"bench\":\"f12_observability\",\"error\":\"workload\"}\n");
    return false;
  }
  double overhead_pct = base > 0 ? (inst - base) / base * 100.0 : 0.0;

  // One scrape after the workload: size and render cost.
  auto s0 = std::chrono::steady_clock::now();
  web::HttpResponse scrape =
      instrumented->archive->Get(instrumented->session, "/metrics");
  auto s1 = std::chrono::steady_clock::now();
  double scrape_seconds = std::chrono::duration<double>(s1 - s0).count();

  bool pass = !gate || overhead_pct < cfg.gate_pct;
  std::printf(
      "{\"bench\":\"f12_observability\",\"requests\":%zu,\"trials\":%zu,\n"
      " \"baseline_seconds\":%.4f,\"instrumented_seconds\":%.4f,"
      "\"overhead_pct\":%.2f,\n"
      " \"scrape\":{\"status\":%d,\"bytes\":%zu,\"seconds\":%.5f},\n"
      " \"gate\":{\"enabled\":%s,\"threshold_pct\":%.1f,\"pass\":%s}}\n",
      cfg.requests, cfg.trials, base, inst, overhead_pct, scrape.status,
      scrape.body.size(), scrape_seconds, gate ? "true" : "false",
      cfg.gate_pct, pass ? "true" : "false");
  return pass && scrape.status == 200;
}

// ---- Microbenchmarks (skipped under --smoke) ----

void BM_CounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("easia_bm_total", "bench");
  for (auto _ : state) c->Increment();
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram h(obs::Histogram::LatencyBounds());
  double v = 0.0001;
  for (auto _ : state) {
    h.Observe(v);
    v = v < 1.0 ? v * 1.7 : 0.0001;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TracerSpan(benchmark::State& state) {
  ManualClock clock(0);
  obs::Tracer::Options options;
  options.clock = &clock;
  obs::Tracer tracer(options);
  for (auto _ : state) {
    obs::Tracer::Scope scope(&tracer, "bench:span");
    benchmark::DoNotOptimize(scope.trace_id());
  }
}
BENCHMARK(BM_TracerSpan);

void BM_NullTracerSpan(benchmark::State& state) {
  // The obs-disabled cost: what every instrumented call site pays when
  // the tracer is not wired.
  for (auto _ : state) {
    obs::Tracer::Scope scope(nullptr, "bench:span");
    benchmark::DoNotOptimize(scope.trace_id());
  }
}
BENCHMARK(BM_NullTracerSpan);

void BM_RenderPrometheusText(benchmark::State& state) {
  static std::unique_ptr<Bundle> bundle = [] {
    auto b = MakeArchive(/*instrumented=*/true, 4);
    if (b != nullptr) (void)RunWorkload(b.get(), 64);
    return b;
  }();
  if (bundle == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    std::string text = bundle->archive->metrics()->RenderPrometheusText();
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_RenderPrometheusText)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before benchmark::Initialize (it is not a benchmark
  // flag); ctest runs `bench_f12_observability --smoke` on every build.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  SmokeConfig cfg;
  if (smoke) {
    // Paired min-of-15 over ~10ms trials: enough samples that both mins
    // converge to the true request cost even on a noisy shared CI box.
    // The measured overhead sits around 1-2%; the gate at 10% is a
    // regression detector (instrumentation suddenly on the request hot
    // path), not a precision claim — shared-runner noise makes a tighter
    // threshold a coin flip.
    cfg.timesteps = 4;
    cfg.requests = 600;
    cfg.trials = 15;
    cfg.gate_pct = 10.0;
  }
  bool pass = PrintReproduction(cfg, /*gate=*/smoke);
  if (smoke) return pass ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
