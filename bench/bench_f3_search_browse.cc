// F3 — the paper's searching/browsing figures: QBE query-form generation,
// query execution over the five-table turbulence schema, and the
// hyperlinked result table (primary-key browsing, foreign-key browsing,
// CLOB and DATALINK links).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "web/qbe.h"

namespace {

using namespace easia;

std::unique_ptr<core::Archive> MakeArchive(size_t simulations) {
  auto archive = std::make_unique<core::Archive>();
  archive->AddFileServer("fs1", 8.0);
  (void)core::CreateTurbulenceSchema(archive.get());
  core::SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = simulations;
  seed.timesteps_per_simulation = 3;
  seed.grid_n = 8;
  (void)core::SeedTurbulenceData(archive.get(), seed);
  (void)archive->InitializeXuis();
  xuis::XuisCustomizer customizer(archive->xuis().MutableDefault());
  (void)customizer.SetFkSubstitution("SIMULATION.AUTHOR_KEY", "AUTHOR.NAME");
  (void)archive->AddUser("alice", "pw", web::UserRole::kAuthorised);
  return archive;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

void PrintReproduction() {
  auto archive = MakeArchive(4);
  std::string session = *archive->Login("alice", "pw");
  std::printf("\n=== F3: searching and browsing the archive ===\n");
  // Query form per table (the paper's QBE screenshot).
  auto form = archive->Get(session, "/query", {{"table", "SIMULATION"}});
  std::printf("QBE form for SIMULATION: %zu bytes, %zu operator dropdowns, "
              "%zu sample dropdowns\n",
              form.body.size(), CountOccurrences(form.body, "name=\"op."),
              CountOccurrences(form.body, "name=\"sample."));
  // Result table from querying SIMULATION (the paper's screenshot with
  // three link kinds).
  auto results = archive->Get(session, "/search",
                              {{"table", "SIMULATION"}, {"all", "1"}});
  std::printf("SIMULATION result table: %zu bytes\n", results.body.size());
  std::printf("  primary-key browse links: %zu (3 per row: RESULT_FILE, "
              "CODE_FILE, VISUALISATION_FILE)\n",
              CountOccurrences(results.body, "[RESULT_FILE]") +
                  CountOccurrences(results.body, "[CODE_FILE]") +
                  CountOccurrences(results.body, "[VISUALISATION_FILE]"));
  std::printf("  foreign-key browse links (author names shown via "
              "substcolumn): %zu\n",
              CountOccurrences(results.body,
                               "/browse?column=AUTHOR_KEY&amp;table=AUTHOR"));
  std::printf("  CLOB rematerialisation links: %zu\n",
              CountOccurrences(results.body, "/object?"));
  auto files = archive->Get(session, "/search",
                            {{"table", "RESULT_FILE"}, {"all", "1"}});
  std::printf("RESULT_FILE result table: %zu DATALINK download links "
              "(tokenised)\n\n",
              CountOccurrences(files.body, ".tbf\">"));
}

void BM_RenderQueryForm(benchmark::State& state) {
  auto archive = MakeArchive(4);
  const xuis::XuisTable* table =
      archive->xuis().Default().FindTable("SIMULATION");
  for (auto _ : state) {
    benchmark::DoNotOptimize(web::RenderQueryForm(*table));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RenderQueryForm);

void BM_QbeTranslate(benchmark::State& state) {
  auto archive = MakeArchive(2);
  web::QbeRequest req;
  req.table = "SIMULATION";
  req.restrictions = {{"TITLE", "LIKE", "Decaying%"},
                      {"GRID_SIZE", ">=", "8"}};
  req.order_by = "SIMULATION_KEY";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        web::TranslateToSql(archive->xuis().Default(), req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QbeTranslate);

void BM_SearchAndRender(benchmark::State& state) {
  auto archive = MakeArchive(static_cast<size_t>(state.range(0)));
  std::string session = *archive->Login("alice", "pw");
  for (auto _ : state) {
    auto resp = archive->Get(session, "/search",
                             {{"table", "SIMULATION"}, {"all", "1"}});
    if (resp.status != 200) state.SkipWithError("search failed");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_SearchAndRender)->Arg(4)->Arg(16)->Arg(64);

void BM_BrowseClick(benchmark::State& state) {
  auto archive = MakeArchive(4);
  std::string session = *archive->Login("alice", "pw");
  for (auto _ : state) {
    auto resp = archive->Get(session, "/browse",
                             {{"table", "RESULT_FILE"},
                              {"column", "SIMULATION_KEY"},
                              {"value", "S19990100000001"}});
    if (resp.status != 200) state.SkipWithError("browse failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrowseClick);

// Point lookup (the /object click: full-PK equality) vs a scan-shaped
// predicate over a metadata table of growing size.
void BM_PointLookupVsScan(benchmark::State& state) {
  bool point = state.range(1) != 0;
  db::Database db("PL");
  (void)db.Execute(
      "CREATE TABLE M (K VARCHAR(20) NOT NULL, V VARCHAR(20),"
      " PRIMARY KEY (K))");
  int64_t rows = state.range(0);
  for (int64_t i = 0; i < rows; ++i) {
    (void)db.Execute("INSERT INTO M VALUES ('k" + std::to_string(i) +
                     "', 'v" + std::to_string(i) + "')");
  }
  std::string sql = point
                        ? "SELECT V FROM M WHERE K = 'k7'"
                        : "SELECT V FROM M WHERE V = 'v7'";  // non-indexed
  for (auto _ : state) {
    auto r = db.Execute(sql);
    if (!r.ok() || r->rows.size() != 1) state.SkipWithError("query failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(point ? "pk point lookup" : "scan");
}
BENCHMARK(BM_PointLookupVsScan)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({10000, 1})
    ->Args({10000, 0});

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
