// F13 — catalog-scale storage engine: binary bulk ingest (COPY) versus a
// per-statement INSERT loop, columnar scan/aggregate kernels versus the
// row path, and radix prefix-index lookup latency, on a synthetic object
// catalogue of 1M rows by default (--large: 10M, --smoke: tiny gate).
// Emits a JSON block (schema versioned, tagged with the build revision)
// so future PRs can track the trajectory; `--smoke` runs as a ctest and
// exits non-zero when the row and columnar engines disagree on results.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/string_util.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/store/bulk_loader.h"

#ifndef EASIA_BENCH_REV
#define EASIA_BENCH_REV "unknown"
#endif

namespace {

using namespace easia;
using namespace easia::db;

/// Rows per bulk-file chunk = rows per COPY transaction = rows per WAL
/// sync on the bulk path.
constexpr size_t kChunkRows = 4096;

struct Config {
  size_t rows = 1000000;
  /// The INSERT loop is measured on a subset and reported as rows/sec —
  /// at full scale per-statement ingest takes minutes by design.
  size_t insert_rows = 100000;
  size_t prefix_lookups = 2000;
  int query_iters = 3;
  bool build_row_twin = true;
};

/// OBJ(ID, NAME, MAG): NAME carries a shared "S" prefix plus the zero-padded
/// id, so every 6-digit prefix selects a ~10-row neighbourhood — the
/// typeahead shape the radix index serves.
std::vector<Row> MakeRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Integer(static_cast<int64_t>(i)),
                    Value::Varchar(StrPrintf("S%08zu", i)),
                    Value::Double(static_cast<double>(i % 10000) / 10.0)});
  }
  return rows;
}

/// Both engines run with a real WAL at the engine's default durability
/// (sync on commit): a client INSERT loop pays one WAL record and one
/// fdatasync per statement, COPY pays one batch record and one sync per
/// 4096-row chunk — the amortisation that makes bulk ingest the only
/// viable way to load a catalogue-scale archive.
std::unique_ptr<Database> MakeDatabase(const char* name, bool columnar) {
  DatabaseOptions opts;
  opts.wal_path = std::string("/tmp/easia_bench_f13_") + name + ".wal";
  std::remove(opts.wal_path.c_str());
  auto db = std::make_unique<Database>(name, opts);
  std::string ddl =
      "CREATE TABLE OBJ (ID INTEGER NOT NULL, NAME VARCHAR(32),"
      " MAG DOUBLE, PRIMARY KEY (ID))";
  if (columnar) ddl += " STORE COLUMNAR";
  (void)db->Execute(ddl);
  return db;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// COPY the rows into `db` from a freshly written bulk file; returns
/// ingest seconds (excluding the file write) or -1 on error.
double TimeBulkIngest(Database& db, const std::vector<Row>& rows) {
  const std::string path = "/tmp/easia_bench_f13.ebk";
  const TableDef* def = nullptr;
  if (Result<const TableDef*> d = db.catalog().GetTable("OBJ"); d.ok()) {
    def = *d;
  } else {
    return -1;
  }
  if (!store::WriteBulkFile(io::RealEnv(), path, *def, rows, kChunkRows)
           .ok()) {
    return -1;
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<QueryResult> r = db.Execute("COPY OBJ FROM '" + path + "'");
  double secs = SecondsSince(t0);
  std::remove(path.c_str());
  return r.ok() ? secs : -1;
}

/// Per-statement INSERT loop over the first `n` rows — the shape any
/// client script produces: one parse, one apply and one WAL record per
/// row (implicit transaction per statement).
double TimeInsertLoop(Database& db, const std::vector<Row>& rows, size_t n) {
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n && i < rows.size(); ++i) {
    std::string sql = StrPrintf(
        "INSERT INTO OBJ VALUES (%lld, '%s', %g)",
        static_cast<long long>(rows[i][0].AsInt()),
        rows[i][1].AsString().c_str(), rows[i][2].AsDouble());
    if (!db.Execute(sql).ok()) return -1;
  }
  return SecondsSince(t0);
}

/// Best-of-`iters` wall time for `sql` through the planner; -1 on error.
double TimeSelectMs(Database& db, const std::string& sql, int iters) {
  Result<Statement> stmt = ParseSql(sql);
  if (!stmt.ok() || stmt->kind != Statement::Kind::kSelect) return -1;
  TableLookup lookup = [&db](const std::string& name) {
    return db.GetTable(name);
  };
  double best = -1;
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    Result<QueryResult> r =
        ExecuteSelect(*stmt->select, lookup, nullptr, {true});
    if (!r.ok()) return -1;
    benchmark::DoNotOptimize(r->rows.size());
    double ms = SecondsSince(t0) * 1000.0;
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

struct PrefixLatency {
  double p50_us = -1;
  double p99_us = -1;
  size_t total_hits = 0;
};

/// Radix prefix lookups for rotating 6-digit prefixes (each ~10 matches).
PrefixLatency TimePrefixLookups(Database& db, size_t lookups, size_t rows) {
  PrefixLatency out;
  Result<const Table*> table = db.GetTable("OBJ");
  if (!table.ok() || !(*table)->HasRadixIndex("NAME")) return out;
  std::vector<double> micros;
  micros.reserve(lookups);
  for (size_t i = 0; i < lookups; ++i) {
    std::string prefix = StrPrintf("S%06zu", (i * 7919) % (rows / 10 + 1));
    auto t0 = std::chrono::steady_clock::now();
    std::vector<RowId> ids = (*table)->RadixPrefixRowIds("NAME", prefix);
    benchmark::DoNotOptimize(ids.size());
    micros.push_back(SecondsSince(t0) * 1e6);
    out.total_hits += ids.size();
  }
  std::sort(micros.begin(), micros.end());
  out.p50_us = micros[micros.size() / 2];
  out.p99_us = micros[micros.size() * 99 / 100];
  return out;
}

/// The parity gate behind --smoke: both engines must agree on a scan, an
/// aggregate and a prefix LIKE. Returns the number of disagreements.
int CheckParity(Database& row_db, Database& col_db) {
  int violations = 0;
  const char* queries[] = {
      "SELECT COUNT(*), SUM(MAG), MIN(NAME), MAX(NAME) FROM OBJ",
      "SELECT COUNT(*) FROM OBJ WHERE MAG > 500.0",
      "SELECT COUNT(*) FROM OBJ WHERE NAME LIKE 'S0000001%'",
  };
  for (const char* sql : queries) {
    Result<QueryResult> a = row_db.Execute(sql);
    Result<QueryResult> b = col_db.Execute(sql);
    if (!a.ok() || !b.ok()) {
      ++violations;
      std::fprintf(stderr, "parity: %s failed to run\n", sql);
      continue;
    }
    bool same = a->rows.size() == b->rows.size();
    for (size_t r = 0; same && r < a->rows.size(); ++r) {
      for (size_t c = 0; same && c < a->rows[r].size(); ++c) {
        same = a->rows[r][c].ToDisplayString() ==
               b->rows[r][c].ToDisplayString();
      }
    }
    if (!same) {
      ++violations;
      std::fprintf(stderr, "parity: %s disagrees between engines\n", sql);
    }
  }
  return violations;
}

int RunReproduction(const Config& cfg) {
  std::vector<Row> rows = MakeRows(cfg.rows);

  auto col_db = MakeDatabase("F13C", /*columnar=*/true);
  double bulk_secs = TimeBulkIngest(*col_db, rows);

  // The INSERT baseline targets its own columnar table — the same
  // destination storage and index maintenance COPY pays, so the ratio
  // isolates the ingest path (statement parse + one WAL record per row
  // versus binary decode + one WAL record per chunk).
  double insert_secs = -1;
  {
    auto insert_db = MakeDatabase("F13I", /*columnar=*/true);
    insert_secs = TimeInsertLoop(*insert_db, rows, cfg.insert_rows);
  }

  std::unique_ptr<Database> row_db;
  double row_scan_ms = -1, row_agg_ms = -1, row_group_ms = -1;
  if (cfg.build_row_twin) {
    // The row twin exists for the scan/aggregate comparison and the
    // parity gate; build it through its own COPY path at full volume.
    row_db = MakeDatabase("F13R", /*columnar=*/false);
    if (TimeBulkIngest(*row_db, rows) < 0) return 1;
  }

  const std::string scan_sql = "SELECT * FROM OBJ WHERE MAG > 990.0";
  const std::string agg_sql =
      "SELECT COUNT(*), SUM(MAG), MIN(MAG), MAX(MAG), AVG(MAG) FROM OBJ";
  const std::string group_sql =
      "SELECT ID, COUNT(*) FROM OBJ WHERE MAG > 500.0 GROUP BY ID";

  double col_scan_ms = TimeSelectMs(*col_db, scan_sql, cfg.query_iters);
  double col_agg_ms = TimeSelectMs(*col_db, agg_sql, cfg.query_iters);
  double col_group_ms = TimeSelectMs(*col_db, group_sql, cfg.query_iters);
  if (row_db != nullptr) {
    row_scan_ms = TimeSelectMs(*row_db, scan_sql, cfg.query_iters);
    row_agg_ms = TimeSelectMs(*row_db, agg_sql, cfg.query_iters);
    row_group_ms = TimeSelectMs(*row_db, group_sql, cfg.query_iters);
  }

  PrefixLatency prefix =
      TimePrefixLookups(*col_db, cfg.prefix_lookups, cfg.rows);

  double bulk_rate = bulk_secs > 0 ? cfg.rows / bulk_secs : -1;
  double insert_rate = insert_secs > 0 ? cfg.insert_rows / insert_secs : -1;

  std::printf("\n=== F13: catalog-scale storage engine ===\n");
  std::printf("{\"bench\":\"f13_catalog_scale\",\"schema\":1,"
              "\"rev\":\"%s\",\"rows\":%zu,\n",
              EASIA_BENCH_REV, cfg.rows);
  std::printf(" \"ingest\":{\"bulk_rows_per_sec\":%.0f,"
              "\"insert_rows_per_sec\":%.0f,\"insert_sample_rows\":%zu,"
              "\"chunk_rows\":%zu,\"synced_wal\":true,"
              "\"bulk_speedup\":%.1f},\n",
              bulk_rate, insert_rate, cfg.insert_rows, kChunkRows,
              (bulk_rate > 0 && insert_rate > 0) ? bulk_rate / insert_rate
                                                 : 0.0);
  std::printf(" \"scan_ms\":{\"columnar\":%.2f,\"row\":%.2f},\n", col_scan_ms,
              row_scan_ms);
  std::printf(" \"aggregate_ms\":{\"columnar\":%.2f,\"row\":%.2f,"
              "\"speedup\":%.1f},\n",
              col_agg_ms, row_agg_ms,
              (col_agg_ms > 0 && row_agg_ms > 0) ? row_agg_ms / col_agg_ms
                                                 : 0.0);
  std::printf(" \"group_by_ms\":{\"columnar\":%.2f,\"row\":%.2f},\n",
              col_group_ms, row_group_ms);
  std::printf(" \"prefix_lookup\":{\"lookups\":%zu,\"hits\":%zu,"
              "\"p50_us\":%.2f,\"p99_us\":%.2f}}\n",
              cfg.prefix_lookups, prefix.total_hits, prefix.p50_us,
              prefix.p99_us);

  if (row_db != nullptr) return CheckParity(*row_db, *col_db);
  return 0;
}

// ---- Microbenchmarks (skipped under --smoke) ----

void BM_ColumnarAggregate(benchmark::State& state) {
  auto db = MakeDatabase("F13B", /*columnar=*/true);
  std::vector<Row> rows = MakeRows(static_cast<size_t>(state.range(0)));
  if (TimeBulkIngest(*db, rows) < 0) {
    state.SkipWithError("ingest failed");
    return;
  }
  Result<Statement> stmt =
      ParseSql("SELECT COUNT(*), SUM(MAG), AVG(MAG) FROM OBJ");
  TableLookup lookup = [&db](const std::string& name) {
    return db->GetTable(name);
  };
  for (auto _ : state) {
    auto r = ExecuteSelect(*stmt->select, lookup, nullptr, {true});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ColumnarAggregate)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_RadixPrefixLookup(benchmark::State& state) {
  auto db = MakeDatabase("F13P", /*columnar=*/true);
  std::vector<Row> rows = MakeRows(static_cast<size_t>(state.range(0)));
  if (TimeBulkIngest(*db, rows) < 0) {
    state.SkipWithError("ingest failed");
    return;
  }
  const Table* table = *db->GetTable("OBJ");
  size_t i = 0;
  for (auto _ : state) {
    std::string prefix = StrPrintf("S%06zu", (i++ * 7919) % (rows.size() / 10));
    auto ids = table->RadixPrefixRowIds("NAME", prefix);
    benchmark::DoNotOptimize(ids.size());
  }
}
BENCHMARK(BM_RadixPrefixLookup)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool large = false;
  // Strip our flags before benchmark::Initialize; ctest runs
  // `bench_f13_catalog_scale --smoke` on every build.
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strcmp(argv[i], "--large") == 0) {
      if (argv[i][2] == 's') smoke = true;
      if (argv[i][2] == 'l') large = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  Config cfg;
  if (smoke) {
    cfg.rows = 20000;
    cfg.insert_rows = 2000;
    cfg.prefix_lookups = 200;
    cfg.query_iters = 2;
  } else if (large) {
    // 10M rows: columnar engine only (a 10M-row row-store twin plus the
    // source vector does not fit the bench machine's memory budget).
    cfg.rows = 10000000;
    cfg.build_row_twin = false;
    cfg.prefix_lookups = 5000;
  }
  int violations = RunReproduction(cfg);
  if (violations != 0) return 1;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
