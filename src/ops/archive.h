#ifndef EASIA_OPS_ARCHIVE_H_
#define EASIA_OPS_ARCHIVE_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace easia::ops {

/// A minimal multi-file container standing in for the paper's packaging
/// formats ("various compressed archive formats such as tar.Z, gz, zip,
/// tar"). Operation bundles are packed with this before being archived as
/// DATALINK code files; the startup batch file "unpacks the operation into
/// the temporary directory".
///
/// Layout: magic "EARC" | u32 nfiles | nfiles * (name, bytes) length-
/// prefixed | u32 crc32 of everything after the magic.
std::string PackArchive(const std::map<std::string, std::string>& files);
Result<std::map<std::string, std::string>> UnpackArchive(
    std::string_view bytes);

/// True when `format` names a packed container ("jar", "zip", "tar",
/// "tar.Z", "gz", "earc"); "ea" (a bare script) is not packed.
bool IsPackedFormat(std::string_view format);

}  // namespace easia::ops

#endif  // EASIA_OPS_ARCHIVE_H_
