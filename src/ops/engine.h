#ifndef EASIA_OPS_ENGINE_H_
#define EASIA_OPS_ENGINE_H_

#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "fileserver/file_server.h"
#include "ops/native.h"
#include "script/interpreter.h"
#include "sim/network.h"
#include "xuis/model.h"

namespace easia::ops {

/// Progress events emitted during an invocation (paper future work:
/// "runtime monitoring of operation progress").
struct ProgressEvent {
  enum class Stage {
    kResolvingCode,
    kStaging,
    kExecuting,
    kCollectingOutputs,
    kDone,
    kFailed,
  };
  Stage stage;
  std::string operation;
  std::string detail;
};

using ProgressListener = std::function<void(const ProgressEvent& event)>;

std::string_view ProgressStageName(ProgressEvent::Stage stage);

/// Who is invoking an operation (the paper's guest restrictions apply).
struct InvocationContext {
  std::string user = "guest";
  bool is_guest = true;
  std::string session_id = "session0";
  /// Per-invocation progress listener: receives stage events for this
  /// invocation only, so concurrent callers (job workers, web requests)
  /// never observe each other's progress.
  ProgressListener progress;
};

/// Per-operation counters ("store operation statistics ... for the benefit
/// of future users" — a paper future-work item, implemented here).
struct OperationStats {
  uint64_t invocations = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_evictions = 0;
  uint64_t failures = 0;
  double total_exec_seconds = 0;
  uint64_t total_input_bytes = 0;
  uint64_t total_output_bytes = 0;
};

/// The outcome of one server-side operation invocation.
struct OperationResult {
  std::string host;       // file-server host that executed the code
  std::string temp_dir;   // per-invocation temporary directory
  OperationOutput output;
  /// URLs of output files placed in the temp dir (downloadable).
  std::vector<std::string> output_urls;
  double exec_seconds = 0;     // modelled host processing time
  uint64_t input_bytes = 0;    // dataset bytes streamed through the code
  uint64_t output_bytes = 0;   // bytes produced (to ship to the user)
  uint64_t code_bytes = 0;     // code moved to the data's host
  bool cache_hit = false;
  uint64_t script_steps = 0;   // EaScript sandbox accounting
};

/// One step of an operation chain (paper future work: "operation
/// chaining"): the named operation with its own parameters. Step k+1 runs
/// over step k's first output file.
struct ChainStep {
  const xuis::OperationSpec* op = nullptr;
  fs::HttpParams params;
};

/// Executes XUIS operations next to the data: resolves the code location
/// (database.result query or URL endpoint), stages code into a temporary
/// directory on the dataset's host (the paper's batch-file mechanism), runs
/// it — native C++ codes or sandboxed EaScript — and collects outputs.
///
/// Thread safety: invocations (`Invoke`, `InvokeChain`, `InvokeMulti`,
/// `RunUploadedCode`) are serialised behind an internal mutex, so job
/// workers and synchronous web requests can share one engine without
/// racing on the cache, the stats map, or the underlying database/VFS
/// (which are not thread-safe themselves). Stats and cache accessors take
/// their own lock and may be called concurrently with an invocation.
/// Configuration mutators (`natives()`, `sandbox_limits()`) are wiring-time
/// only and must not be called while invocations are in flight.
class OperationEngine {
 public:
  /// `network` (optional) provides processing-time and code-shipping
  /// models; without it timings are reported as zero.
  OperationEngine(db::Database* database, fs::FileServerFleet* fleet,
                  sim::Network* network = nullptr);

  /// Results caching (paper future work: "caching operations results").
  /// The cache is an LRU bounded by `set_cache_capacity` entries so a
  /// busy archive cannot grow it without limit.
  void set_caching(bool enabled) {
    std::lock_guard<std::mutex> lock(state_mu_);
    caching_ = enabled;
  }
  void set_cache_capacity(size_t capacity);
  script::SandboxLimits& sandbox_limits() { return sandbox_limits_; }
  NativeRegistry& natives() { return natives_; }

  /// Invokes `op` against the dataset referenced by `dataset_url` (token
  /// form accepted; execution is server-side and reads the VFS directly).
  Result<OperationResult> Invoke(const xuis::OperationSpec& op,
                                 const std::string& dataset_url,
                                 const fs::HttpParams& params,
                                 const InvocationContext& ctx);

  /// Runs a chain of operations: step k+1's dataset is step k's first
  /// output file (which lives in a temp dir on the executing host, so the
  /// intermediate product never leaves the file server). Returns the
  /// per-step results; fails on the first failing step.
  Result<std::vector<OperationResult>> InvokeChain(
      const std::vector<ChainStep>& steps, const std::string& dataset_url,
      const InvocationContext& ctx);

  /// Applies one operation to several datasets (paper future work:
  /// "operations applied to multiple datasets"). Each dataset's code runs
  /// on its own host; `makespan_seconds` models the hosts working in
  /// parallel (per-host work divided over its parallel slots).
  struct MultiResult {
    std::vector<OperationResult> results;
    double makespan_seconds = 0;
    double serial_seconds = 0;  // single-host equivalent, for comparison
  };
  Result<MultiResult> InvokeMulti(const xuis::OperationSpec& op,
                                  const std::vector<std::string>& dataset_urls,
                                  const fs::HttpParams& params,
                                  const InvocationContext& ctx);

  /// Installs a global progress listener receiving stage events for every
  /// invocation, whichever caller triggered it (null to remove). For
  /// caller-scoped monitoring use `InvocationContext::progress` instead.
  void set_progress_listener(ProgressListener listener) {
    std::lock_guard<std::mutex> lock(state_mu_);
    progress_ = std::move(listener);
  }

  /// Runs user-uploaded code under `upload` authorisation: unpack into a
  /// temp dir, interpret `entry_filename` under the sandbox.
  Result<OperationResult> RunUploadedCode(const xuis::UploadSpec& upload,
                                          const std::string& packaged_code,
                                          const std::string& entry_filename,
                                          const std::string& dataset_url,
                                          const fs::HttpParams& params,
                                          const InvocationContext& ctx);

  /// Snapshot of the per-operation counters (copied under the state lock,
  /// so it is safe to read while a worker executes).
  std::map<std::string, OperationStats> stats() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return stats_;
  }
  size_t cache_size() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return cache_index_.size();
  }
  size_t cache_capacity() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return cache_capacity_;
  }
  uint64_t cache_evictions() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return cache_evictions_;
  }

 private:
  /// Resolves a database.result location to the code file's bytes.
  Result<std::pair<std::string, std::string>> FetchCode(
      const xuis::OperationLocation& location);  // (code_url, bytes)

  Result<OperationResult> ExecuteScript(const std::string& stats_key,
                                        const std::string& source,
                                        const std::string& dataset_url,
                                        const fs::HttpParams& params,
                                        const InvocationContext& ctx,
                                        uint64_t code_bytes);

  Result<OperationResult> FinishResult(const std::string& stats_key,
                                       OperationResult result,
                                       const std::string& cache_key);

  std::string CacheKey(const std::string& op_name,
                       const std::string& dataset_url,
                       const fs::HttpParams& params) const;

  /// Fires the per-invocation listener (if any) and the global one. The
  /// listeners run outside the state lock, so they may call the stats and
  /// cache accessors.
  void Emit(const InvocationContext& ctx, ProgressEvent::Stage stage,
            const std::string& operation, const std::string& detail) const;

  void RecordFailure(const std::string& stats_key);

  /// `Invoke` with `invoke_mu_` already held (chains and multi-dataset
  /// invocations hold the lock across all their steps).
  Result<OperationResult> InvokeSerialized(const xuis::OperationSpec& op,
                                           const std::string& dataset_url,
                                           const fs::HttpParams& params,
                                           const InvocationContext& ctx);

  Result<OperationResult> InvokeInternal(const xuis::OperationSpec& op,
                                         const std::string& dataset_url,
                                         const fs::HttpParams& params,
                                         const InvocationContext& ctx);

  /// One LRU slot: `stats_key` attributes evictions to the operation that
  /// populated the entry.
  struct CacheEntry {
    std::string key;
    std::string stats_key;
    OperationResult result;
  };

  /// Returns a copy of the cached result for `key` (promoted to
  /// most-recent) with the hit counted, or nullopt when caching is off or
  /// the key misses. Inserting evicts the least-recently-used entry at
  /// capacity.
  std::optional<OperationResult> CacheLookup(const std::string& stats_key,
                                             const std::string& key);
  void CacheInsert(const std::string& stats_key, const std::string& key,
                   const OperationResult& result);
  void EvictOverCapacityLocked();

  db::Database* database_;
  fs::FileServerFleet* fleet_;
  sim::Network* network_;
  NativeRegistry natives_;
  script::SandboxLimits sandbox_limits_;

  /// Serialises whole invocations (the database, fleet and network below
  /// are not thread-safe).
  std::mutex invoke_mu_;
  /// Guards the mutable engine state below; never held while executing
  /// user code or calling progress listeners.
  mutable std::mutex state_mu_;
  bool caching_ = false;
  std::list<CacheEntry> cache_lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<CacheEntry>::iterator>
      cache_index_;
  size_t cache_capacity_ = 256;
  uint64_t cache_evictions_ = 0;
  std::map<std::string, OperationStats> stats_;
  ProgressListener progress_;
};

}  // namespace easia::ops

#endif  // EASIA_OPS_ENGINE_H_
