#include "ops/native.h"

#include <cmath>

#include "common/string_util.h"
#include "turbulence/field.h"
#include "turbulence/tbf.h"

namespace easia::ops {

using turb::Component;
using turb::Field;
using turb::FieldStats;
using turb::Slice2D;

uint64_t OperationOutput::TotalFileBytes() const {
  if (simulated) return simulated_output_bytes;
  uint64_t total = 0;
  for (const auto& [name, bytes] : files) total += bytes.size();
  return total;
}

void NativeRegistry::Register(const std::string& name, NativeOperation op) {
  ops_[name] = std::move(op);
}

Result<const NativeOperation*> NativeRegistry::Get(
    const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("no native operation named " + name);
  }
  return &it->second;
}

bool NativeRegistry::Has(const std::string& name) const {
  return ops_.find(name) != ops_.end();
}

std::vector<std::string> NativeRegistry::Names() const {
  std::vector<std::string> out;
  for (const auto& [name, op] : ops_) out.push_back(name);
  return out;
}

size_t GridFromFileBytes(uint64_t bytes) {
  if (bytes <= 64) return 0;
  double n = std::cbrt(static_cast<double>(bytes - 64) / 32.0);
  return static_cast<size_t>(n + 0.5);
}

namespace {

struct SliceRequest {
  char axis = 'x';
  size_t index = 0;
  Component component = Component::kU;
};

Result<SliceRequest> ParseSliceParams(const fs::HttpParams& params) {
  SliceRequest req;
  auto slice_it = params.find("slice");
  if (slice_it != params.end() && !slice_it->second.empty()) {
    // Accept "x0".."xN" (the paper's option values) or bare "x"/"y"/"z"
    // with a separate "index" parameter.
    char axis = slice_it->second[0];
    if (axis != 'x' && axis != 'y' && axis != 'z') {
      return Status::InvalidArgument("bad slice axis: " + slice_it->second);
    }
    req.axis = axis;
    if (slice_it->second.size() > 1) {
      EASIA_ASSIGN_OR_RETURN(int64_t idx,
                             ParseInt64(slice_it->second.substr(1)));
      req.index = static_cast<size_t>(idx);
    }
  }
  auto index_it = params.find("index");
  if (index_it != params.end()) {
    EASIA_ASSIGN_OR_RETURN(int64_t idx, ParseInt64(index_it->second));
    if (idx < 0) return Status::InvalidArgument("negative slice index");
    req.index = static_cast<size_t>(idx);
  }
  auto type_it = params.find("type");
  if (type_it != params.end()) {
    EASIA_ASSIGN_OR_RETURN(req.component,
                           turb::ComponentFromName(type_it->second));
  }
  return req;
}

uint64_t SliceReduction(uint64_t input_bytes) {
  size_t n = GridFromFileBytes(input_bytes);
  return n == 0 ? 0 : static_cast<uint64_t>(n) * n * sizeof(double);
}

NativeOperation MakeGetImage() {
  NativeOperation op;
  op.run = [](const std::string& bytes,
              const fs::HttpParams& params) -> Result<OperationOutput> {
    EASIA_ASSIGN_OR_RETURN(Field field, turb::ParseTbf(bytes));
    EASIA_ASSIGN_OR_RETURN(SliceRequest req, ParseSliceParams(params));
    EASIA_ASSIGN_OR_RETURN(Slice2D slice,
                           field.Slice(req.axis, req.index, req.component));
    OperationOutput out;
    std::string name = StrPrintf("slice_%c%zu_%s.pgm", req.axis, req.index,
                                 std::string(ComponentName(req.component))
                                     .c_str());
    out.files.emplace_back(name, slice.ToPgm());
    FieldStats stats = slice.Stats();
    out.text = StrPrintf(
        "GetImage: %zux%zu %s-slice at %c=%zu  min=%.6f max=%.6f mean=%.6f\n",
        slice.n1, slice.n2,
        std::string(ComponentName(req.component)).c_str(), req.axis,
        req.index, stats.min, stats.max, stats.mean);
    return out;
  };
  // PGM pixels: one byte per point, plus header.
  op.reduction_model = [](uint64_t input_bytes) -> uint64_t {
    size_t n = GridFromFileBytes(input_bytes);
    return n == 0 ? 0 : static_cast<uint64_t>(n) * n + 16;
  };
  return op;
}

NativeOperation MakeFieldStats() {
  NativeOperation op;
  op.run = [](const std::string& bytes,
              const fs::HttpParams& params) -> Result<OperationOutput> {
    (void)params;
    EASIA_ASSIGN_OR_RETURN(Field field, turb::ParseTbf(bytes));
    OperationOutput out;
    for (Component c :
         {Component::kU, Component::kV, Component::kW, Component::kP}) {
      FieldStats s = field.Stats(c);
      out.text += StrPrintf("%s: min=%.6f max=%.6f mean=%.6f rms=%.6f\n",
                            std::string(ComponentName(c)).c_str(), s.min,
                            s.max, s.mean, s.rms);
    }
    out.files.emplace_back("stats.txt", out.text);
    return out;
  };
  op.reduction_model = [](uint64_t) -> uint64_t { return 256; };
  return op;
}

NativeOperation MakeSliceCsv() {
  NativeOperation op;
  op.run = [](const std::string& bytes,
              const fs::HttpParams& params) -> Result<OperationOutput> {
    EASIA_ASSIGN_OR_RETURN(Field field, turb::ParseTbf(bytes));
    EASIA_ASSIGN_OR_RETURN(SliceRequest req, ParseSliceParams(params));
    EASIA_ASSIGN_OR_RETURN(Slice2D slice,
                           field.Slice(req.axis, req.index, req.component));
    std::string csv;
    for (size_t i = 0; i < slice.n1; ++i) {
      for (size_t j = 0; j < slice.n2; ++j) {
        if (j > 0) csv += ',';
        csv += StrPrintf("%.9g", slice.At(i, j));
      }
      csv += '\n';
    }
    OperationOutput out;
    out.files.emplace_back(
        StrPrintf("slice_%c%zu.csv", req.axis, req.index), std::move(csv));
    out.text = StrPrintf("SliceCsv: wrote %zux%zu values\n", slice.n1,
                         slice.n2);
    return out;
  };
  // ~18 text bytes per value.
  op.reduction_model = [](uint64_t input_bytes) -> uint64_t {
    size_t n = GridFromFileBytes(input_bytes);
    return n == 0 ? 0 : static_cast<uint64_t>(n) * n * 18;
  };
  return op;
}

NativeOperation MakeSubsample() {
  NativeOperation op;
  op.run = [](const std::string& bytes,
              const fs::HttpParams& params) -> Result<OperationOutput> {
    EASIA_ASSIGN_OR_RETURN(Field field, turb::ParseTbf(bytes));
    int64_t factor = 2;
    auto it = params.find("factor");
    if (it != params.end()) {
      EASIA_ASSIGN_OR_RETURN(factor, ParseInt64(it->second));
    }
    if (factor < 1 || static_cast<size_t>(factor) > field.n()) {
      return Status::InvalidArgument("bad subsample factor");
    }
    size_t m = field.n() / static_cast<size_t>(factor);
    if (m == 0) return Status::InvalidArgument("factor too large");
    Field small = Field::Zero(m, field.time(), field.nu());
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        for (size_t k = 0; k < m; ++k) {
          for (Component c : {Component::kU, Component::kV, Component::kW,
                              Component::kP}) {
            small.Set(c, i, j, k,
                      field.At(c, i * static_cast<size_t>(factor),
                               j * static_cast<size_t>(factor),
                               k * static_cast<size_t>(factor)));
          }
        }
      }
    }
    OperationOutput out;
    out.files.emplace_back(StrPrintf("subsample_%lldx.tbf",
                                     static_cast<long long>(factor)),
                           turb::SerializeTbf(small, 0));
    out.text = StrPrintf("Subsample: %zu^3 -> %zu^3\n", field.n(), m);
    return out;
  };
  // Default factor 2: 1/8 of the data.
  op.reduction_model = [](uint64_t input_bytes) -> uint64_t {
    return input_bytes / 8;
  };
  return op;
}

NativeOperation MakeKineticEnergy() {
  NativeOperation op;
  op.run = [](const std::string& bytes,
              const fs::HttpParams& params) -> Result<OperationOutput> {
    (void)params;
    EASIA_ASSIGN_OR_RETURN(Field field, turb::ParseTbf(bytes));
    OperationOutput out;
    out.text = StrPrintf("KineticEnergy: t=%.4f E=%.8f max|omega|=%.6f\n",
                         field.time(), field.KineticEnergy(),
                         field.MaxVorticity());
    out.files.emplace_back("energy.txt", out.text);
    return out;
  };
  op.reduction_model = [](uint64_t) -> uint64_t { return 64; };
  return op;
}

}  // namespace

NativeRegistry NativeRegistry::BuiltIns() {
  NativeRegistry registry;
  registry.Register("GetImage", MakeGetImage());
  registry.Register("FieldStats", MakeFieldStats());
  registry.Register("SliceCsv", MakeSliceCsv());
  registry.Register("Subsample", MakeSubsample());
  registry.Register("KineticEnergy", MakeKineticEnergy());
  return registry;
}

}  // namespace easia::ops
