#include "ops/engine.h"

#include <algorithm>

#include "common/string_util.h"
#include "fileserver/url.h"
#include "ops/archive.h"
#include "turbulence/field.h"
#include "turbulence/tbf.h"
#include "xuis/serialize.h"

namespace easia::ops {

namespace {

/// A dataset staged for server-side execution.
struct Staged {
  fs::FileServer* server = nullptr;
  fs::FileUrl url;
  fs::FileStat stat;
};

std::string EscapeSqlString(const std::string& v) {
  return ReplaceAll(v, "'", "''");
}

std::string_view ConditionSqlOp(xuis::Condition::Op op) {
  switch (op) {
    case xuis::Condition::Op::kEq: return "=";
    case xuis::Condition::Op::kNe: return "<>";
    case xuis::Condition::Op::kLt: return "<";
    case xuis::Condition::Op::kGt: return ">";
    case xuis::Condition::Op::kLike: return "LIKE";
  }
  return "=";
}

}  // namespace

std::string_view ProgressStageName(ProgressEvent::Stage stage) {
  switch (stage) {
    case ProgressEvent::Stage::kResolvingCode:
      return "resolving-code";
    case ProgressEvent::Stage::kStaging:
      return "staging";
    case ProgressEvent::Stage::kExecuting:
      return "executing";
    case ProgressEvent::Stage::kCollectingOutputs:
      return "collecting-outputs";
    case ProgressEvent::Stage::kDone:
      return "done";
    case ProgressEvent::Stage::kFailed:
      return "failed";
  }
  return "?";
}

void OperationEngine::Emit(const InvocationContext& ctx,
                           ProgressEvent::Stage stage,
                           const std::string& operation,
                           const std::string& detail) const {
  ProgressListener global;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    global = progress_;
  }
  ProgressEvent event{stage, operation, detail};
  if (ctx.progress != nullptr) ctx.progress(event);
  if (global != nullptr) global(event);
}

void OperationEngine::RecordFailure(const std::string& stats_key) {
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_[stats_key].failures;
}

OperationEngine::OperationEngine(db::Database* database,
                                 fs::FileServerFleet* fleet,
                                 sim::Network* network)
    : database_(database),
      fleet_(fleet),
      network_(network),
      natives_(NativeRegistry::BuiltIns()) {}

void OperationEngine::EvictOverCapacityLocked() {
  while (cache_index_.size() > cache_capacity_ && !cache_lru_.empty()) {
    ++stats_[cache_lru_.back().stats_key].cache_evictions;
    ++cache_evictions_;
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
}

void OperationEngine::set_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(state_mu_);
  cache_capacity_ = capacity;
  EvictOverCapacityLocked();
}

std::optional<OperationResult> OperationEngine::CacheLookup(
    const std::string& stats_key, const std::string& key) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!caching_) return std::nullopt;
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return std::nullopt;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  OperationStats& stats = stats_[stats_key];
  ++stats.invocations;
  ++stats.cache_hits;
  OperationResult hit = cache_lru_.front().result;
  hit.cache_hit = true;
  return hit;
}

void OperationEngine::CacheInsert(const std::string& stats_key,
                                  const std::string& key,
                                  const OperationResult& result) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (cache_capacity_ == 0) return;
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    it->second->result = result;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  if (cache_index_.size() >= cache_capacity_) {
    ++stats_[cache_lru_.back().stats_key].cache_evictions;
    ++cache_evictions_;
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
  cache_lru_.push_front(CacheEntry{key, stats_key, result});
  cache_index_[key] = cache_lru_.begin();
}

std::string OperationEngine::CacheKey(const std::string& op_name,
                                      const std::string& dataset_url,
                                      const fs::HttpParams& params) const {
  std::string key = op_name;
  key += '|';
  // Strip any access token so cache hits survive token rotation.
  Result<fs::FileUrl> parsed = fs::ParseFileUrl(dataset_url);
  key += parsed.ok() ? parsed->host + parsed->path : dataset_url;
  for (const auto& [k, v] : params) {
    key += '|';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

Result<std::pair<std::string, std::string>> OperationEngine::FetchCode(
    const xuis::OperationLocation& location) {
  EASIA_ASSIGN_OR_RETURN(auto parts, xuis::SplitColid(location.result_colid));
  const std::string& table = parts.first;
  const std::string& column = parts.second;
  std::string sql = "SELECT " + column + " FROM " + table;
  if (!location.conditions.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < location.conditions.size(); ++i) {
      const xuis::Condition& cond = location.conditions[i];
      EASIA_ASSIGN_OR_RETURN(auto cond_parts, xuis::SplitColid(cond.colid));
      if (i > 0) sql += " AND ";
      sql += cond_parts.second;
      sql += " ";
      sql += ConditionSqlOp(cond.op);
      sql += " '";
      sql += EscapeSqlString(cond.value);
      sql += "'";
    }
  }
  db::ExecContext ctx;
  ctx.resolve_datalinks = false;  // internal fetch wants the raw URL
  EASIA_ASSIGN_OR_RETURN(db::QueryResult result, database_->Execute(sql, ctx));
  if (result.rows.empty()) {
    return Status::NotFound("operation code not found by query: " + sql);
  }
  if (result.rows.size() > 1) {
    return Status::FailedPrecondition(
        "operation code query matched multiple rows: " + sql);
  }
  const db::Value& value = result.rows[0][0];
  if (value.is_null()) {
    return Status::NotFound("operation code column is NULL");
  }
  std::string code_url = value.AsString();
  EASIA_ASSIGN_OR_RETURN(auto resolved, fleet_->Resolve(code_url));
  EASIA_ASSIGN_OR_RETURN(std::string bytes,
                         resolved.first->vfs().ReadFile(resolved.second.path));
  return std::make_pair(code_url, std::move(bytes));
}

Result<OperationResult> OperationEngine::FinishResult(
    const std::string& stats_key, OperationResult result,
    const std::string& cache_key) {
  result.output_bytes = result.output.TotalFileBytes();
  if (network_ != nullptr && !result.host.empty()) {
    EASIA_ASSIGN_OR_RETURN(
        double seconds,
        network_->ProcessingTime(result.host,
                                 result.input_bytes + result.output_bytes));
    result.exec_seconds = seconds;
  }
  bool cache_it;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    OperationStats& stats = stats_[stats_key];
    ++stats.invocations;
    stats.total_exec_seconds += result.exec_seconds;
    stats.total_input_bytes += result.input_bytes;
    stats.total_output_bytes += result.output_bytes;
    cache_it = caching_ && !cache_key.empty();
  }
  if (cache_it) {
    CacheInsert(stats_key, cache_key, result);
  }
  return result;
}

Result<OperationResult> OperationEngine::Invoke(const xuis::OperationSpec& op,
                                                const std::string& dataset_url,
                                                const fs::HttpParams& params,
                                                const InvocationContext& ctx) {
  std::lock_guard<std::mutex> lock(invoke_mu_);
  return InvokeSerialized(op, dataset_url, params, ctx);
}

Result<OperationResult> OperationEngine::InvokeSerialized(
    const xuis::OperationSpec& op, const std::string& dataset_url,
    const fs::HttpParams& params, const InvocationContext& ctx) {
  Emit(ctx, ProgressEvent::Stage::kExecuting, op.name, dataset_url);
  Result<OperationResult> result =
      InvokeInternal(op, dataset_url, params, ctx);
  if (result.ok()) {
    Emit(ctx, ProgressEvent::Stage::kDone, op.name,
         StrPrintf("%zu output files", result->output.files.size()));
  } else {
    Emit(ctx, ProgressEvent::Stage::kFailed, op.name,
         result.status().ToString());
  }
  return result;
}

Result<std::vector<OperationResult>> OperationEngine::InvokeChain(
    const std::vector<ChainStep>& steps, const std::string& dataset_url,
    const InvocationContext& ctx) {
  if (steps.empty()) {
    return Status::InvalidArgument("operation chain is empty");
  }
  std::lock_guard<std::mutex> lock(invoke_mu_);
  std::vector<OperationResult> results;
  std::string current = dataset_url;
  for (size_t i = 0; i < steps.size(); ++i) {
    const ChainStep& step = steps[i];
    if (step.op == nullptr) {
      return Status::InvalidArgument("chain step has no operation");
    }
    EASIA_ASSIGN_OR_RETURN(
        OperationResult result,
        InvokeSerialized(*step.op, current, step.params, ctx));
    results.push_back(std::move(result));
    if (i + 1 < steps.size()) {
      if (results.back().output_urls.empty()) {
        return Status::FailedPrecondition(
            "chain step '" + step.op->name +
            "' produced no output file to feed the next step");
      }
      // The intermediate product stays on the executing host's temp dir.
      current = results.back().output_urls[0];
    }
  }
  return results;
}

Result<OperationEngine::MultiResult> OperationEngine::InvokeMulti(
    const xuis::OperationSpec& op,
    const std::vector<std::string>& dataset_urls,
    const fs::HttpParams& params, const InvocationContext& ctx) {
  if (dataset_urls.empty()) {
    return Status::InvalidArgument("InvokeMulti: no datasets");
  }
  std::lock_guard<std::mutex> lock(invoke_mu_);
  MultiResult multi;
  std::map<std::string, double> per_host_seconds;
  for (const std::string& url : dataset_urls) {
    EASIA_ASSIGN_OR_RETURN(OperationResult result,
                           InvokeSerialized(op, url, params, ctx));
    per_host_seconds[result.host] += result.exec_seconds;
    multi.serial_seconds += result.exec_seconds;
    multi.results.push_back(std::move(result));
  }
  for (const auto& [host, seconds] : per_host_seconds) {
    double host_seconds = seconds;
    if (network_ != nullptr) {
      Result<sim::HostSpec> spec = network_->GetHost(host);
      if (spec.ok() && spec->parallel_slots > 1) {
        host_seconds /= static_cast<double>(spec->parallel_slots);
      }
    }
    multi.makespan_seconds = std::max(multi.makespan_seconds, host_seconds);
  }
  return multi;
}

Result<OperationResult> OperationEngine::InvokeInternal(
    const xuis::OperationSpec& op, const std::string& dataset_url,
    const fs::HttpParams& params, const InvocationContext& ctx) {
  if (ctx.is_guest && !op.guest_access) {
    RecordFailure(op.name);
    return Status::PermissionDenied("operation " + op.name +
                                    " is not available to guest users");
  }
  std::string cache_key = CacheKey(op.name, dataset_url, params);
  if (std::optional<OperationResult> hit = CacheLookup(op.name, cache_key)) {
    return *std::move(hit);
  }
  // Stage the dataset.
  EASIA_ASSIGN_OR_RETURN(auto resolved, fleet_->Resolve(dataset_url));
  Staged staged;
  staged.server = resolved.first;
  staged.url = resolved.second;
  EASIA_ASSIGN_OR_RETURN(staged.stat,
                         staged.server->vfs().Stat(staged.url.path));

  // Native (compiled-in) operations need no code fetch: the binary already
  // lives on every file-server host.
  if (EqualsIgnoreCase(op.type, "NATIVE")) {
    EASIA_ASSIGN_OR_RETURN(const NativeOperation* native,
                           natives_.Get(op.name));
    OperationResult result;
    result.host = staged.url.host;
    result.input_bytes = staged.stat.size;
    result.temp_dir = staged.server->MakeTempDir(ctx.session_id);
    if (staged.stat.sparse) {
      result.output.simulated = true;
      result.output.simulated_output_bytes =
          native->reduction_model(staged.stat.size);
      result.output.text = StrPrintf(
          "%s: simulated over sparse dataset (%llu bytes in, %llu out)\n",
          op.name.c_str(),
          static_cast<unsigned long long>(staged.stat.size),
          static_cast<unsigned long long>(
              result.output.simulated_output_bytes));
    } else {
      EASIA_ASSIGN_OR_RETURN(std::string dataset_bytes,
                             staged.server->vfs().ReadFile(staged.url.path));
      Result<OperationOutput> output = native->run(dataset_bytes, params);
      if (!output.ok()) {
        RecordFailure(op.name);
        return output.status();
      }
      result.output = std::move(*output);
    }
    for (const auto& [name, contents] : result.output.files) {
      std::string path = result.temp_dir + name;
      EASIA_RETURN_IF_ERROR(
          staged.server->vfs().WriteFile(path, contents, ctx.user));
      result.output_urls.push_back("http://" + staged.url.host + path);
    }
    return FinishResult(op.name, std::move(result), cache_key);
  }

  // URL operations: invoke the co-located service endpoint directly.
  if (op.location.kind == xuis::OperationLocation::Kind::kUrl) {
    EASIA_ASSIGN_OR_RETURN(fs::FileUrl endpoint,
                           fs::ParseFileUrl(op.location.url));
    EASIA_ASSIGN_OR_RETURN(fs::FileServer * endpoint_server,
                           fleet_->GetServer(endpoint.host));
    fs::HttpParams full_params = params;
    full_params["file"] = staged.url.path;
    EASIA_ASSIGN_OR_RETURN(
        std::string body,
        endpoint_server->InvokeEndpoint(endpoint.path, full_params));
    OperationResult result;
    result.host = endpoint.host;
    result.output.text = std::move(body);
    result.input_bytes = staged.stat.size;
    return FinishResult(op.name, std::move(result), cache_key);
  }

  // database.result operations: fetch the archived code.
  Emit(ctx, ProgressEvent::Stage::kResolvingCode, op.name,
       op.location.result_colid);
  EASIA_ASSIGN_OR_RETURN(auto code, FetchCode(op.location));
  const std::string& code_url = code.first;
  std::string& code_bytes = code.second;
  // Model shipping the (small) code file to the data's host.
  Result<fs::FileUrl> code_parsed = fs::ParseFileUrl(code_url);
  if (network_ != nullptr && code_parsed.ok() &&
      code_parsed->host != staged.url.host) {
    (void)network_->TransferAt(code_parsed->host, staged.url.host,
                               code_bytes.size(), network_->Now());
  }

  // Unpack the bundle (batch-file mechanism) and stage into a temp dir.
  std::map<std::string, std::string> bundle;
  if (IsPackedFormat(op.format)) {
    EASIA_ASSIGN_OR_RETURN(bundle, UnpackArchive(code_bytes));
  } else {
    bundle[op.filename.empty() ? "main.ea" : op.filename] = code_bytes;
  }
  std::string temp_dir = staged.server->MakeTempDir(ctx.session_id);
  Emit(ctx, ProgressEvent::Stage::kStaging, op.name, temp_dir);
  for (const auto& [name, contents] : bundle) {
    EASIA_RETURN_IF_ERROR(
        staged.server->vfs().WriteFile(temp_dir + name, contents, ctx.user));
  }

  OperationResult result;
  result.host = staged.url.host;
  result.temp_dir = temp_dir;
  result.code_bytes = code_bytes.size();
  result.input_bytes = staged.stat.size;

  if (EqualsIgnoreCase(op.type, "EASCRIPT") ||
      EqualsIgnoreCase(op.type, "JAVA")) {
    std::string entry = op.filename.empty() ? "main.ea" : op.filename;
    auto entry_it = bundle.find(entry);
    if (entry_it == bundle.end()) {
      RecordFailure(op.name);
      return Status::NotFound("bundle has no entry file " + entry);
    }
    Result<OperationResult> script_result =
        ExecuteScript(op.name, entry_it->second, dataset_url, params, ctx,
                      code_bytes.size());
    if (!script_result.ok()) {
      RecordFailure(op.name);
      return script_result.status();
    }
    script_result->temp_dir = temp_dir;
    result = std::move(*script_result);
  } else {
    RecordFailure(op.name);
    return Status::Unimplemented("unsupported operation type '" + op.type +
                                 "'");
  }

  // Materialise outputs in the temp dir and expose them as URLs.
  Emit(ctx, ProgressEvent::Stage::kCollectingOutputs, op.name, temp_dir);
  for (const auto& [name, contents] : result.output.files) {
    std::string path = temp_dir + name;
    EASIA_RETURN_IF_ERROR(
        staged.server->vfs().WriteFile(path, contents, ctx.user));
    result.output_urls.push_back("http://" + staged.url.host + path);
  }
  result.host = staged.url.host;
  result.temp_dir = temp_dir;
  result.input_bytes = staged.stat.size;
  result.code_bytes = code_bytes.size();
  return FinishResult(op.name, std::move(result), cache_key);
}

Result<OperationResult> OperationEngine::ExecuteScript(
    const std::string& stats_key, const std::string& source,
    const std::string& dataset_url, const fs::HttpParams& params,
    const InvocationContext& ctx, uint64_t code_bytes) {
  (void)ctx;
  EASIA_ASSIGN_OR_RETURN(auto resolved, fleet_->Resolve(dataset_url));
  fs::FileServer* server = resolved.first;
  const fs::FileUrl& url = resolved.second;
  EASIA_ASSIGN_OR_RETURN(fs::FileStat stat, server->vfs().Stat(url.path));
  if (stat.sparse) {
    return Status::FailedPrecondition(
        "uploaded code cannot run over a sparse (simulated) dataset");
  }
  EASIA_ASSIGN_OR_RETURN(std::string dataset_bytes,
                         server->vfs().ReadFile(url.path));

  // Sandboxed host functions: the script sees exactly the dataset file and
  // a write-only relative-name output surface (the paper's temp dir).
  auto written = std::make_shared<std::vector<std::pair<std::string,
                                                        std::string>>>();
  auto dataset_path = url.path;
  script::Interpreter interp(sandbox_limits_);
  using script::ScriptValue;
  interp.RegisterFunction(
      "read", [dataset_bytes, dataset_path, written](
                  std::vector<ScriptValue>& args) -> Result<ScriptValue> {
        if (args.size() != 1 || !args[0].IsString()) {
          return Status::InvalidArgument("read(name) expects a string");
        }
        const std::string& name = args[0].AsString();
        if (name == dataset_path) return ScriptValue::Str(dataset_bytes);
        for (const auto& [n, bytes] : *written) {
          if (n == name) return ScriptValue::Str(bytes);
        }
        return Status::PermissionDenied("sandbox: cannot read " + name);
      });
  interp.RegisterFunction(
      "write", [written](std::vector<ScriptValue>& args)
                   -> Result<ScriptValue> {
        if (args.size() != 2 || !args[0].IsString() || !args[1].IsString()) {
          return Status::InvalidArgument("write(name, data) expects strings");
        }
        const std::string& name = args[0].AsString();
        if (name.empty() || name.find('/') != std::string::npos ||
            name.find("..") != std::string::npos) {
          return Status::PermissionDenied(
              "sandbox: output names must be relative file names: " + name);
        }
        for (auto& [n, bytes] : *written) {
          if (n == name) {
            bytes = args[1].AsString();
            return ScriptValue::Null();
          }
        }
        written->emplace_back(name, args[1].AsString());
        return ScriptValue::Null();
      });
  // TBF helpers so uploaded codes can post-process without re-implementing
  // the format byte-by-byte.
  auto load_field = [dataset_bytes, dataset_path](
                        const ScriptValue& arg) -> Result<turb::Field> {
    if (!arg.IsString() || arg.AsString() != dataset_path) {
      return Status::PermissionDenied(
          "sandbox: tbf_* functions accept only the dataset file");
    }
    return turb::ParseTbf(dataset_bytes);
  };
  interp.RegisterFunction(
      "tbf_n", [load_field](std::vector<ScriptValue>& args)
                   -> Result<ScriptValue> {
        if (args.size() != 1) {
          return Status::InvalidArgument("tbf_n(file)");
        }
        EASIA_ASSIGN_OR_RETURN(turb::Field field, load_field(args[0]));
        return ScriptValue::Number(static_cast<double>(field.n()));
      });
  interp.RegisterFunction(
      "tbf_slice",
      [load_field](std::vector<ScriptValue>& args) -> Result<ScriptValue> {
        if (args.size() != 4 || !args[1].IsString() || !args[2].IsNumber() ||
            !args[3].IsString()) {
          return Status::InvalidArgument(
              "tbf_slice(file, axis, index, component)");
        }
        EASIA_ASSIGN_OR_RETURN(turb::Field field, load_field(args[0]));
        EASIA_ASSIGN_OR_RETURN(turb::Component comp,
                               turb::ComponentFromName(args[3].AsString()));
        if (args[1].AsString().empty()) {
          return Status::InvalidArgument("empty slice axis");
        }
        EASIA_ASSIGN_OR_RETURN(
            turb::Slice2D slice,
            field.Slice(args[1].AsString()[0],
                        static_cast<size_t>(args[2].AsNumber()), comp));
        std::vector<ScriptValue> values;
        values.reserve(slice.values.size());
        for (double v : slice.values) values.push_back(ScriptValue::Number(v));
        return ScriptValue::ArrayOf(std::move(values));
      });
  interp.RegisterFunction(
      "tbf_stats",
      [load_field](std::vector<ScriptValue>& args) -> Result<ScriptValue> {
        if (args.size() != 2 || !args[1].IsString()) {
          return Status::InvalidArgument("tbf_stats(file, component)");
        }
        EASIA_ASSIGN_OR_RETURN(turb::Field field, load_field(args[0]));
        EASIA_ASSIGN_OR_RETURN(turb::Component comp,
                               turb::ComponentFromName(args[1].AsString()));
        turb::FieldStats s = field.Stats(comp);
        return ScriptValue::ArrayOf({ScriptValue::Number(s.min),
                                     ScriptValue::Number(s.max),
                                     ScriptValue::Number(s.mean),
                                     ScriptValue::Number(s.rms)});
      });
  interp.RegisterFunction(
      "pgm", [](std::vector<ScriptValue>& args) -> Result<ScriptValue> {
        if (args.size() != 3 || !args[0].IsArray() || !args[1].IsNumber() ||
            !args[2].IsNumber()) {
          return Status::InvalidArgument("pgm(values, rows, cols)");
        }
        size_t rows = static_cast<size_t>(args[1].AsNumber());
        size_t cols = static_cast<size_t>(args[2].AsNumber());
        const auto& arr = args[0].AsArray();
        if (rows * cols != arr.size()) {
          return Status::InvalidArgument("pgm: dimensions mismatch");
        }
        turb::Slice2D slice;
        slice.n1 = rows;
        slice.n2 = cols;
        slice.values.reserve(arr.size());
        for (const ScriptValue& v : arr) {
          if (!v.IsNumber()) {
            return Status::InvalidArgument("pgm: non-numeric value");
          }
          slice.values.push_back(v.AsNumber());
        }
        return ScriptValue::Str(slice.ToPgm());
      });
  // param("name") fetches a form parameter.
  interp.RegisterFunction(
      "param", [params](std::vector<ScriptValue>& args)
                   -> Result<ScriptValue> {
        if (args.size() != 1 || !args[0].IsString()) {
          return Status::InvalidArgument("param(name)");
        }
        auto it = params.find(args[0].AsString());
        if (it == params.end()) return ScriptValue::Null();
        return ScriptValue::Str(it->second);
      });

  // Paper convention: first command-line parameter is the dataset filename.
  std::vector<std::string> args;
  args.push_back(url.path);
  for (const auto& [k, v] : params) args.push_back(k + "=" + v);

  Result<script::ExecutionResult> run = interp.Run(source, args);
  if (!run.ok()) return run.status();

  OperationResult result;
  result.host = url.host;
  result.input_bytes = stat.size;
  result.code_bytes = code_bytes;
  result.script_steps = run->steps_used;
  result.output.text = run->output;
  result.output.files = std::move(*written);
  (void)stats_key;
  return result;
}

Result<OperationResult> OperationEngine::RunUploadedCode(
    const xuis::UploadSpec& upload, const std::string& packaged_code,
    const std::string& entry_filename, const std::string& dataset_url,
    const fs::HttpParams& params, const InvocationContext& ctx) {
  const std::string stats_key = "upload:" + entry_filename;
  std::lock_guard<std::mutex> lock(invoke_mu_);
  if (ctx.is_guest && !upload.guest_access) {
    RecordFailure(stats_key);
    return Status::PermissionDenied(
        "code upload is not available to guest users");
  }
  std::map<std::string, std::string> bundle;
  if (IsPackedFormat(upload.format)) {
    EASIA_ASSIGN_OR_RETURN(bundle, UnpackArchive(packaged_code));
  } else {
    bundle[entry_filename] = packaged_code;
  }
  auto entry_it = bundle.find(entry_filename);
  if (entry_it == bundle.end()) {
    RecordFailure(stats_key);
    return Status::NotFound("uploaded bundle has no entry file " +
                            entry_filename);
  }
  // Stage into a temp dir on the dataset host, run sandboxed.
  EASIA_ASSIGN_OR_RETURN(auto resolved, fleet_->Resolve(dataset_url));
  std::string temp_dir = resolved.first->MakeTempDir(ctx.session_id);
  for (const auto& [name, contents] : bundle) {
    EASIA_RETURN_IF_ERROR(resolved.first->vfs().WriteFile(temp_dir + name,
                                                          contents, ctx.user));
  }
  Result<OperationResult> result =
      ExecuteScript(stats_key, entry_it->second, dataset_url, params, ctx,
                    packaged_code.size());
  if (!result.ok()) {
    RecordFailure(stats_key);
    return result.status();
  }
  result->temp_dir = temp_dir;
  for (const auto& [name, contents] : result->output.files) {
    std::string path = temp_dir + name;
    EASIA_RETURN_IF_ERROR(
        resolved.first->vfs().WriteFile(path, contents, ctx.user));
    result->output_urls.push_back("http://" + resolved.second.host + path);
  }
  return FinishResult(stats_key, std::move(*result), "");
}

}  // namespace easia::ops
