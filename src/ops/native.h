#ifndef EASIA_OPS_NATIVE_H_
#define EASIA_OPS_NATIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "fileserver/file_server.h"

namespace easia::ops {

/// What an operation produced: printed text plus files written to the
/// invocation's temporary directory.
struct OperationOutput {
  std::string text;
  std::vector<std::pair<std::string, std::string>> files;  // name -> bytes
  /// Set for sparse (size-only) datasets, where bytes are modelled rather
  /// than materialised.
  bool simulated = false;
  uint64_t simulated_output_bytes = 0;

  uint64_t TotalFileBytes() const;
};

/// A compiled-in post-processing code ("existing FORTRAN/C codes applied to
/// the files without rewriting" — here, C++ functions over TBF bytes).
struct NativeOperation {
  /// Runs over materialised dataset bytes.
  std::function<Result<OperationOutput>(const std::string& dataset_bytes,
                                        const fs::HttpParams& params)>
      run;
  /// Output-size model for sparse datasets: bytes in -> bytes out. Drives
  /// the data-reduction benchmarks at paper scale (544 MB inputs).
  std::function<uint64_t(uint64_t input_bytes)> reduction_model;
};

/// Registry of native operations available on every file-server host.
class NativeRegistry {
 public:
  void Register(const std::string& name, NativeOperation op);
  Result<const NativeOperation*> Get(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// The standard EASIA post-processing suite:
  ///  * GetImage  — extract a slice, render PGM (params: slice=x|y|z
  ///                index=<i> type=u|v|w|p)
  ///  * FieldStats — min/max/mean/rms per component (text output)
  ///  * SliceCsv  — slice as CSV (params as GetImage)
  ///  * Subsample — decimate the grid by `factor`, emit a smaller TBF
  ///  * KineticEnergy — volume-averaged kinetic energy (text)
  static NativeRegistry BuiltIns();

 private:
  std::map<std::string, NativeOperation> ops_;
};

/// Infers the grid extent n from a TBF file size (4 * n^3 doubles + header).
/// Used by reduction models when only a sparse size is known.
size_t GridFromFileBytes(uint64_t bytes);

}  // namespace easia::ops

#endif  // EASIA_OPS_NATIVE_H_
