#include "ops/archive.h"

#include "common/coding.h"

namespace easia::ops {

namespace {
constexpr std::string_view kMagic = "EARC";
}

std::string PackArchive(const std::map<std::string, std::string>& files) {
  std::string body;
  PutU32(&body, static_cast<uint32_t>(files.size()));
  for (const auto& [name, bytes] : files) {
    PutLengthPrefixed(&body, name);
    PutLengthPrefixed(&body, bytes);
  }
  std::string out(kMagic);
  out += body;
  PutU32(&out, Crc32(body));
  return out;
}

Result<std::map<std::string, std::string>> UnpackArchive(
    std::string_view bytes) {
  if (bytes.size() < kMagic.size() + 8 ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("archive: bad magic");
  }
  std::string_view body =
      bytes.substr(kMagic.size(), bytes.size() - kMagic.size() - 4);
  Decoder crc_dec(bytes.substr(bytes.size() - 4));
  EASIA_ASSIGN_OR_RETURN(uint32_t crc, crc_dec.GetU32());
  if (Crc32(body) != crc) {
    return Status::Corruption("archive: crc mismatch");
  }
  Decoder dec(body);
  EASIA_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  std::map<std::string, std::string> files;
  for (uint32_t i = 0; i < count; ++i) {
    EASIA_ASSIGN_OR_RETURN(std::string name, dec.GetLengthPrefixed());
    EASIA_ASSIGN_OR_RETURN(std::string contents, dec.GetLengthPrefixed());
    files[std::move(name)] = std::move(contents);
  }
  if (!dec.Done()) return Status::Corruption("archive: trailing bytes");
  return files;
}

bool IsPackedFormat(std::string_view format) {
  return format == "jar" || format == "zip" || format == "tar" ||
         format == "tar.Z" || format == "gz" || format == "earc";
}

}  // namespace easia::ops
