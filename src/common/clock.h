#ifndef EASIA_COMMON_CLOCK_H_
#define EASIA_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace easia {

/// Abstract time source. Production code uses the system clock; the network
/// simulator and tests use a ManualClock so results are deterministic.
/// Times are seconds since the epoch (with fractional part).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double Now() const = 0;
};

/// A manually advanced clock (deterministic, used by sim and tests).
/// Readable from any thread; advancing is single-writer (the simulation
/// driver), so Advance is a plain load+store, not a CAS loop.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start = 0.0) : now_(start) {}

  // Copyable/movable despite the atomic member (a copy snapshots the time;
  // moving a clock that other threads still read is a caller bug anyway).
  ManualClock(const ManualClock& other) : now_(other.Now()) {}
  ManualClock& operator=(const ManualClock& other) {
    Set(other.Now());
    return *this;
  }

  double Now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Advance(double seconds) {
    now_.store(now_.load(std::memory_order_relaxed) + seconds,
               std::memory_order_relaxed);
  }
  void Set(double t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<double> now_;
};

/// Wall-clock backed by the system realtime clock.
class SystemClock : public Clock {
 public:
  double Now() const override;

  /// Process-wide instance (trivially destructible via leak).
  static SystemClock* Get();
};

/// Seconds-within-day for a timestamp (0 .. 86400).
double SecondsIntoDay(double epoch_seconds);

/// Formats epoch seconds as "YYYYMMDDhhmmss" — the format EASIA's
/// generated keys use (e.g. S19990110150932).
std::string FormatCompactTimestamp(double epoch_seconds);

}  // namespace easia

#endif  // EASIA_COMMON_CLOCK_H_
