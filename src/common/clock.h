#ifndef EASIA_COMMON_CLOCK_H_
#define EASIA_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace easia {

/// Abstract time source. Production code uses the system clock; the network
/// simulator and tests use a ManualClock so results are deterministic.
/// Times are seconds since the epoch (with fractional part).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double Now() const = 0;
};

/// A manually advanced clock (deterministic, used by sim and tests).
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start = 0.0) : now_(start) {}

  double Now() const override { return now_; }
  void Advance(double seconds) { now_ += seconds; }
  void Set(double t) { now_ = t; }

 private:
  double now_;
};

/// Wall-clock backed by the system realtime clock.
class SystemClock : public Clock {
 public:
  double Now() const override;

  /// Process-wide instance (trivially destructible via leak).
  static SystemClock* Get();
};

/// Seconds-within-day for a timestamp (0 .. 86400).
double SecondsIntoDay(double epoch_seconds);

/// Formats epoch seconds as "YYYYMMDDhhmmss" — the format EASIA's
/// generated keys use (e.g. S19990110150932).
std::string FormatCompactTimestamp(double epoch_seconds);

}  // namespace easia

#endif  // EASIA_COMMON_CLOCK_H_
