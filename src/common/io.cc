#include "common/io.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/coding.h"

namespace easia::io {

namespace {

/// stdio-backed append file; Sync is fflush + fsync.
class StdioLogFile : public LogFile {
 public:
  explicit StdioLogFile(std::FILE* file) : file_(file) {}
  ~StdioLogFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::Internal("log file: closed");
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::Internal("log file: short write");
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::Internal("log file: closed");
    if (std::fflush(file_) != 0) {
      return Status::Internal("log file: flush failed");
    }
    // fflush only reaches the OS page cache; fsync makes the bytes durable
    // against an OS crash or power loss, not just a process crash.
    if (::fsync(::fileno(file_)) != 0) {
      return Status::Internal(std::string("log file: fsync failed: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  void Close() override {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  std::FILE* file_ = nullptr;
};

class StdioEnv : public Env {
 public:
  Result<std::unique_ptr<LogFile>> OpenAppend(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
      return Status::Internal("io: cannot open " + path + ": " +
                              std::strerror(errno));
    }
    return std::unique_ptr<LogFile>(new StdioLogFile(f));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("io: no such file: " + path);
    std::string contents;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      contents.append(buf, n);
    }
    std::fclose(f);
    return contents;
  }

  bool FileExists(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::fclose(f);
    return true;
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("io: cannot open " + tmp + ": " +
                              std::strerror(errno));
    }
    size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
    bool flushed = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (written != contents.size() || !flushed) {
      std::remove(tmp.c_str());
      return Status::Internal("io: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      return Status::Internal("io: cannot rename " + tmp + " into place: " +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::NotFound("io: cannot remove " + path + ": " +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("io: cannot truncate " + path + ": " +
                              std::strerror(errno));
    }
    std::fclose(f);
    return Status::OK();
  }
};

}  // namespace

Env* RealEnv() {
  static StdioEnv* env = new StdioEnv();
  return env;
}

void AppendFrame(std::string* dst, std::string_view payload) {
  PutU32(dst, static_cast<uint32_t>(payload.size()));
  PutU32(dst, Crc32(payload));
  dst->append(payload);
}

std::vector<std::string_view> ScanFrames(std::string_view contents) {
  std::vector<std::string_view> frames;
  size_t pos = 0;
  while (pos + 8 <= contents.size()) {
    Decoder header(contents.substr(pos, 8));
    uint32_t len = header.GetU32().value();
    uint32_t crc = header.GetU32().value();
    if (pos + 8 + len > contents.size()) break;  // torn tail
    std::string_view payload = contents.substr(pos + 8, len);
    if (Crc32(payload) != crc) break;  // corrupt tail
    frames.push_back(payload);
    pos += 8 + len;
  }
  return frames;
}

}  // namespace easia::io
