#ifndef EASIA_COMMON_RANDOM_H_
#define EASIA_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace easia {

/// Deterministic xorshift128+ generator. Used everywhere randomness is
/// needed so workloads, datasets and tokens are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Random lower-case alphanumeric string of length n.
  std::string AlphaNum(size_t n);

  /// True with probability p.
  bool OneIn(uint32_t n);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace easia

#endif  // EASIA_COMMON_RANDOM_H_
