#ifndef EASIA_COMMON_STATUS_H_
#define EASIA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace easia {

/// Canonical error codes used throughout EASIA. Modelled on the
/// Arrow/Abseil canonical space plus database-specific codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kAborted,            // transaction aborted / deadlock victim
  kResourceExhausted,  // sandbox quota exceeded, pool exhausted
  kUnavailable,        // host down / link down
  kCorruption,         // torn WAL record, bad checksum, malformed file
  kConstraintViolation,// PK/FK/NOT NULL/UNIQUE violation
  kTokenExpired,       // DATALINK access token past its lifetime
  kParseError,         // SQL / XML / EaScript syntax error
};

/// Returns the canonical lower-case name for a code ("ok", "not found", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status carries success or an (code, message) error pair. EASIA does not
/// use exceptions; every fallible operation returns Status or Result<T>.
///
/// The class is cheap to copy in the OK case (single enum) and holds the
/// message inline otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status TokenExpired(std::string msg) {
    return Status(StatusCode::kTokenExpired, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }
  bool IsTokenExpired() const { return code_ == StatusCode::kTokenExpired; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with `context` (no-op on OK statuses).
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace easia

/// Propagates an error Status from the evaluated expression, if any.
#define EASIA_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::easia::Status _easia_status = (expr);        \
    if (!_easia_status.ok()) return _easia_status; \
  } while (false)

#define EASIA_CONCAT_IMPL(x, y) x##y
#define EASIA_CONCAT(x, y) EASIA_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define EASIA_ASSIGN_OR_RETURN(lhs, expr)                              \
  EASIA_ASSIGN_OR_RETURN_IMPL(EASIA_CONCAT(_easia_result_, __LINE__), \
                              lhs, expr)

#define EASIA_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value();

#endif  // EASIA_COMMON_STATUS_H_
