#include "common/clock.h"

#include <ctime>
#include <chrono>
#include <cmath>

#include "common/string_util.h"

namespace easia {

double SystemClock::Now() const {
  using namespace std::chrono;
  return duration<double>(system_clock::now().time_since_epoch()).count();
}

SystemClock* SystemClock::Get() {
  static SystemClock* const kInstance = new SystemClock();
  return kInstance;
}

double SecondsIntoDay(double epoch_seconds) {
  double day = 86400.0;
  double r = std::fmod(epoch_seconds, day);
  if (r < 0) r += day;
  return r;
}

std::string FormatCompactTimestamp(double epoch_seconds) {
  std::time_t t = static_cast<std::time_t>(epoch_seconds);
  std::tm tm_buf{};
  gmtime_r(&t, &tm_buf);
  return StrPrintf("%04d%02d%02d%02d%02d%02d", tm_buf.tm_year + 1900,
                   tm_buf.tm_mon + 1, tm_buf.tm_mday, tm_buf.tm_hour,
                   tm_buf.tm_min, tm_buf.tm_sec);
}

}  // namespace easia
