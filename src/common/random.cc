#include "common/random.h"

namespace easia {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  s0_ = SplitMix64(x);
  s1_ = SplitMix64(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::string Random::AlphaNum(size_t n) {
  static const char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out += kChars[Uniform(36)];
  return out;
}

bool Random::OneIn(uint32_t n) { return n != 0 && Uniform(n) == 0; }

}  // namespace easia
