#include "common/status.h"

namespace easia {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kPermissionDenied:
      return "permission denied";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kConstraintViolation:
      return "constraint violation";
    case StatusCode::kTokenExpired:
      return "token expired";
    case StatusCode::kParseError:
      return "parse error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace easia
