#ifndef EASIA_COMMON_RESULT_H_
#define EASIA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace easia {

/// Result<T> is either a value of type T or an error Status. It is the
/// return type of every fallible function that produces a value.
///
/// Typical use:
///   Result<int> Parse(std::string_view s);
///   EASIA_ASSIGN_OR_RETURN(int n, Parse(s));
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`. Intentionally implicit so
  /// `return value;` works from functions returning Result<T>.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Access the contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace easia

#endif  // EASIA_COMMON_RESULT_H_
