#include "common/coding.h"

#include <cstring>

namespace easia {

void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 4);
}

void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 8);
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(dst, bits);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutU32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

Result<uint8_t> Decoder::GetU8() {
  if (pos_ + 1 > data_.size()) return Status::Corruption("decoder: short u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Decoder::GetU32() {
  if (pos_ + 4 > data_.size()) return Status::Corruption("decoder: short u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  if (pos_ + 8 > data_.size()) return Status::Corruption("decoder: short u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> Decoder::GetDouble() {
  EASIA_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::string> Decoder::GetLengthPrefixed() {
  EASIA_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (pos_ + len > data_.size()) {
    return Status::Corruption("decoder: short string");
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

namespace {

struct Crc32Table {
  uint32_t table[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const Crc32Table* const kTable = new Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = kTable->table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace easia
