#ifndef EASIA_COMMON_IO_H_
#define EASIA_COMMON_IO_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace easia::io {

/// The byte-sink seam under every append-only log in EASIA (the database
/// WAL and the job journal write through it). Production code uses the
/// stdio-backed implementation from RealEnv(); the fault-injection harness
/// substitutes an implementation that can tear writes, drop fsyncs and
/// stop persisting at a crash point.
class LogFile {
 public:
  virtual ~LogFile() = default;

  /// Appends bytes at the end of the file. Buffered: durability is only
  /// guaranteed after a successful Sync().
  virtual Status Append(std::string_view data) = 0;

  /// Makes everything appended so far durable (against OS crash and power
  /// loss, not just process death).
  virtual Status Sync() = 0;

  /// Idempotent; further Append/Sync calls fail.
  virtual void Close() = 0;
};

/// The file-system seam for EASIA's durable state (log files, snapshots,
/// journal compaction). All paths are plain strings; implementations may
/// map them to the host file system (RealEnv) or to memory (the
/// fault-injection environment).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending, creating it when absent.
  virtual Result<std::unique_ptr<LogFile>> OpenAppend(
      const std::string& path) = 0;

  /// Whole-file read; kNotFound when the file does not exist.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Durably replaces `path` with `contents` (write-temp + rename): after
  /// an OK return the file holds exactly `contents`, and a crash during
  /// the call leaves either the old or the new version, never a mix.
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view contents) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Truncates `path` to zero bytes, creating it when absent.
  virtual Status Truncate(const std::string& path) = 0;
};

/// The host-file-system environment (stdio + fsync). Never null; shared
/// process-wide singleton.
Env* RealEnv();

/// Redo-log framing shared by the WAL and the job journal:
/// `u32 length, u32 crc32, payload`, little-endian.
void AppendFrame(std::string* dst, std::string_view payload);

/// Scans framed records out of `contents`, stopping silently at the first
/// torn or checksum-corrupt frame (standard redo-log semantics). The
/// returned views point into `contents`.
std::vector<std::string_view> ScanFrames(std::string_view contents);

}  // namespace easia::io

#endif  // EASIA_COMMON_IO_H_
