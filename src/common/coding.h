#ifndef EASIA_COMMON_CODING_H_
#define EASIA_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace easia {

/// Little-endian fixed-width encoders used by the WAL, snapshot files and
/// the TBF dataset format.
void PutU8(std::string* dst, uint8_t v);
void PutU32(std::string* dst, uint32_t v);
void PutU64(std::string* dst, uint64_t v);
void PutDouble(std::string* dst, double v);
void PutLengthPrefixed(std::string* dst, std::string_view s);

/// A sequential decoder over a byte string. All Get* methods fail with
/// kCorruption when the input is exhausted.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetDouble();
  Result<std::string> GetLengthPrefixed();

  bool Done() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, table-driven).
uint32_t Crc32(std::string_view data);

}  // namespace easia

#endif  // EASIA_COMMON_CODING_H_
