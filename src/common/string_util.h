#ifndef EASIA_COMMON_STRING_UTIL_H_
#define EASIA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace easia {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on `sep`, trimming ASCII whitespace from each field and dropping
/// fields that are empty after trimming.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII-only case conversions (locale independent).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Parses a decimal integer / floating-point number; rejects trailing junk.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// SQL LIKE matching: '%' matches any run, '_' matches one character, and
/// a backslash escapes the next pattern character ('\%' matches a literal
/// percent; a trailing backslash matches a literal backslash).
/// Comparison is case sensitive, matching the paper's QBE wildcard search.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Escapes `text` so that `LikeMatch(v, EscapeLikePattern(text))` holds
/// exactly when v == text: backslash-prefixes '%', '_' and '\'.
std::string EscapeLikePattern(std::string_view text);

/// The literal prefix every LIKE match must start with: pattern characters
/// up to the first unescaped wildcard, with escapes resolved. Empty when
/// the pattern starts with a wildcard. Used for index-prefix pushdown.
std::string LikePatternPrefix(std::string_view pattern);

/// Renders `bytes` with a human-readable unit suffix (e.g. "544.0 MB").
std::string HumanBytes(uint64_t bytes);

/// Renders a duration in seconds as "4h50m08s" / "45m20s" / "5m51s" / "12s",
/// the format the paper's bandwidth table uses.
std::string HumanDuration(double seconds);

/// Escapes &, <, >, " and ' for safe embedding in HTML/XML text.
std::string EscapeMarkup(std::string_view s);

/// Formats like printf into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace easia

#endif  // EASIA_COMMON_STRING_UTIL_H_
