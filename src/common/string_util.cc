#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cerrno>
#include <cmath>

namespace easia {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& part : Split(s, sep)) {
    std::string_view trimmed = Trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return Status::ParseError("empty integer literal");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return Status::ParseError("empty numeric literal");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::OutOfRange("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid numeric literal: " + buf);
  }
  return v;
}

namespace {

/// One decoded LIKE pattern token starting at `p`.
struct LikeToken {
  enum class Kind { kLiteral, kAnyRun, kAnyOne };
  Kind kind;
  char literal;  // kLiteral only
  size_t length; // bytes consumed from the pattern (2 for an escape)
};

LikeToken DecodeLikeToken(std::string_view pattern, size_t p) {
  char c = pattern[p];
  if (c == '\\') {
    if (p + 1 < pattern.size()) {
      return {LikeToken::Kind::kLiteral, pattern[p + 1], 2};
    }
    // A trailing backslash escapes nothing: match it literally.
    return {LikeToken::Kind::kLiteral, '\\', 1};
  }
  if (c == '%') return {LikeToken::Kind::kAnyRun, 0, 1};
  if (c == '_') return {LikeToken::Kind::kAnyOne, 0, 1};
  return {LikeToken::Kind::kLiteral, c, 1};
}

}  // namespace

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size()) {
      LikeToken tok = DecodeLikeToken(pattern, p);
      if (tok.kind == LikeToken::Kind::kAnyOne ||
          (tok.kind == LikeToken::Kind::kLiteral && tok.literal == value[v])) {
        ++v;
        p += tok.length;
        continue;
      }
      if (tok.kind == LikeToken::Kind::kAnyRun) {
        star_p = p;
        p += tok.length;
        star_v = v;
        continue;
      }
    }
    if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size()) {
    LikeToken tok = DecodeLikeToken(pattern, p);
    if (tok.kind != LikeToken::Kind::kAnyRun) break;
    p += tok.length;
  }
  return p == pattern.size();
}

std::string EscapeLikePattern(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '%' || c == '_' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string LikePatternPrefix(std::string_view pattern) {
  std::string out;
  size_t p = 0;
  while (p < pattern.size()) {
    LikeToken tok = DecodeLikeToken(pattern, p);
    if (tok.kind != LikeToken::Kind::kLiteral) break;
    out += tok.literal;
    p += tok.length;
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrPrintf("%llu B", static_cast<unsigned long long>(bytes));
  return StrPrintf("%.1f %s", v, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) seconds = 0;
  uint64_t total = static_cast<uint64_t>(seconds + 0.5);
  uint64_t h = total / 3600;
  uint64_t m = (total % 3600) / 60;
  uint64_t s = total % 60;
  if (h > 0) {
    return StrPrintf("%lluh%02llum%02llus", static_cast<unsigned long long>(h),
                     static_cast<unsigned long long>(m),
                     static_cast<unsigned long long>(s));
  }
  if (m > 0) {
    return StrPrintf("%llum%02llus", static_cast<unsigned long long>(m),
                     static_cast<unsigned long long>(s));
  }
  return StrPrintf("%llus", static_cast<unsigned long long>(s));
}

std::string EscapeMarkup(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace easia
