#include "db/database.h"

#include <cstdio>

#include "common/coding.h"
#include "common/string_util.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/planner.h"
#include "db/store/bulk_loader.h"
#include "obs/trace.h"

namespace easia::db {

namespace {

/// V1 snapshots carry catalogue + rows only; V2 prefixes the table section
/// with the cumulative DatabaseStats counters so /metrics counters survive
/// checkpoint/restart instead of resetting to zero; V3 appends the
/// bulk_chunks counter to the stats block; V4 appends a per-table column
/// statistics block (planner sketches) after each table's rows. Readers
/// accept all four — pre-V4 snapshots simply keep the statistics rebuilt
/// from the rows themselves.
constexpr std::string_view kSnapshotMagicV1 = "EASIASNAP1";
constexpr std::string_view kSnapshotMagicV2 = "EASIASNAP2";
constexpr std::string_view kSnapshotMagicV3 = "EASIASNAP3";
constexpr std::string_view kSnapshotMagic = "EASIASNAP4";

QueryResult DmlResult(size_t affected) {
  QueryResult r;
  r.is_query = false;
  r.rows_affected = affected;
  return r;
}

}  // namespace

Result<size_t> QueryResult::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (EqualsIgnoreCase(column_names[i], name)) return i;
  }
  return Status::NotFound("no result column named " + std::string(name));
}

Result<Value> QueryResult::At(size_t row, std::string_view column) const {
  if (row >= rows.size()) {
    return Status::OutOfRange(StrPrintf("row %zu out of range", row));
  }
  EASIA_ASSIGN_OR_RETURN(size_t col, ColumnIndex(column));
  return rows[row][col];
}

Database::Database(std::string name, DatabaseOptions options)
    : name_(std::move(name)),
      options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : io::RealEnv()) {
  if (!options_.wal_path.empty()) {
    Result<WalWriter> writer = WalWriter::Open(env_, options_.wal_path);
    if (writer.ok()) {
      wal_ = std::make_unique<WalWriter>(std::move(*writer));
    } else {
      // Remember why: commits of a WAL-configured database must fail
      // instead of silently running without durability.
      wal_open_status_ = writer.status();
    }
  }
}

Database::~Database() {
  if (txn_ != nullptr) RollbackInternal();
  if (explicit_txn_.load(std::memory_order_acquire)) ReleaseExplicitLock();
}

DatabaseStats Database::stats() const {
  DatabaseStats out;
  out.statements = counters_.statements.load(std::memory_order_relaxed);
  out.queries = counters_.queries.load(std::memory_order_relaxed);
  out.rows_inserted = counters_.rows_inserted.load(std::memory_order_relaxed);
  out.rows_updated = counters_.rows_updated.load(std::memory_order_relaxed);
  out.rows_deleted = counters_.rows_deleted.load(std::memory_order_relaxed);
  out.txn_commits = counters_.txn_commits.load(std::memory_order_relaxed);
  out.txn_aborts = counters_.txn_aborts.load(std::memory_order_relaxed);
  out.bulk_chunks = counters_.bulk_chunks.load(std::memory_order_relaxed);
  return out;
}

bool Database::OwnsExplicitTxn() const {
  return explicit_txn_.load(std::memory_order_acquire) &&
         explicit_owner_.load(std::memory_order_acquire) ==
             std::this_thread::get_id();
}

void Database::ReleaseExplicitLock() {
  explicit_owner_.store(std::thread::id(), std::memory_order_release);
  explicit_txn_.store(false, std::memory_order_release);
  if (explicit_lock_.owns_lock()) explicit_lock_.unlock();
  explicit_lock_ = {};
}

Status Database::Recover() {
  if (!options_.snapshot_path.empty() &&
      env_->FileExists(options_.snapshot_path)) {
    EASIA_RETURN_IF_ERROR(LoadSnapshot(options_.snapshot_path));
  }
  if (options_.wal_path.empty()) return Status::OK();
  // Close the writer while replaying (it holds the file in append mode,
  // which is fine, but keep the logic simple and reopen after).
  EASIA_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                         ReadWal(env_, options_.wal_path));
  // Group records by txn; apply only committed transactions, in log order.
  std::map<uint64_t, std::vector<const WalRecord*>> pending;
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kBegin:
        pending[rec.txn_id].clear();
        break;
      case WalRecordType::kAbort:
        pending.erase(rec.txn_id);
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(rec.txn_id);
        if (it == pending.end()) break;
        for (const WalRecord* op : it->second) {
          EASIA_RETURN_IF_ERROR(ApplyWalOp(*op));
        }
        // Replayed work counts like live work: without this, counters on
        // /metrics would read lower after a crash than before it even
        // though the committed rows are all present.
        counters_.txn_commits.fetch_add(1, std::memory_order_relaxed);
        pending.erase(it);
        break;
      }
      default:
        pending[rec.txn_id].push_back(&rec);
    }
  }
  return Status::OK();
}

Status Database::ApplyWalOp(const WalRecord& op) {
  switch (op.type) {
    case WalRecordType::kCreateTable: {
      EASIA_ASSIGN_OR_RETURN(Statement stmt, ParseSql(op.ddl_sql));
      if (stmt.kind != Statement::Kind::kCreateTable) {
        return Status::Corruption("wal: bad DDL record");
      }
      EASIA_RETURN_IF_ERROR(catalog_.AddTable(stmt.create_table->def));
      tables_[ToUpper(stmt.create_table->def.name)] =
          std::make_unique<Table>(stmt.create_table->def);
      return Status::OK();
    }
    case WalRecordType::kDropTable: {
      EASIA_RETURN_IF_ERROR(catalog_.DropTable(op.table));
      tables_.erase(ToUpper(op.table));
      return Status::OK();
    }
    case WalRecordType::kInsert: {
      EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(op.table));
      EASIA_RETURN_IF_ERROR(table->InsertWithId(op.row_id, op.row));
      counters_.rows_inserted.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    case WalRecordType::kUpdate: {
      EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(op.table));
      EASIA_RETURN_IF_ERROR(table->Update(op.row_id, op.row));
      counters_.rows_updated.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    case WalRecordType::kDelete: {
      EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(op.table));
      EASIA_RETURN_IF_ERROR(table->Delete(op.row_id));
      counters_.rows_deleted.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    case WalRecordType::kBulkLoad: {
      EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(op.table));
      RowId id = op.row_id;
      for (const Row& row : op.bulk_rows) {
        EASIA_RETURN_IF_ERROR(table->InsertWithId(id++, row));
      }
      counters_.rows_inserted.fetch_add(op.bulk_rows.size(),
                                        std::memory_order_relaxed);
      counters_.bulk_chunks.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    default:
      return Status::Corruption("wal: unexpected record type in replay");
  }
}

Result<const Table*> Database::GetTable(const std::string& table) const {
  auto it = tables_.find(ToUpper(table));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + table);
  }
  return it->second.get();
}

Result<Table*> Database::GetMutableTable(const std::string& table) {
  auto it = tables_.find(ToUpper(table));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + table);
  }
  return it->second.get();
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      const ExecContext& ctx) {
  EASIA_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  return ExecuteStatement(stmt, sql, ctx);
}

Result<QueryResult> Database::ExecuteStatement(const Statement& stmt,
                                               std::string_view original_sql,
                                               const ExecContext& ctx) {
  counters_.statements.fetch_add(1, std::memory_order_relaxed);
  bool owns_explicit = OwnsExplicitTxn();
  switch (stmt.kind) {
    case Statement::Kind::kBegin:
      EASIA_RETURN_IF_ERROR(Begin());
      return DmlResult(0);
    case Statement::Kind::kCommit:
      EASIA_RETURN_IF_ERROR(Commit());
      return DmlResult(0);
    case Statement::Kind::kRollback:
      EASIA_RETURN_IF_ERROR(Rollback());
      return DmlResult(0);
    case Statement::Kind::kExplain: {
      // Pure planning — reads the catalogue only, needs no transaction.
      // Inside an explicit txn the exclusive lock is already held.
      if (owns_explicit) return ExecExplain(*stmt.select, stmt.explain_analyze);
      std::shared_lock<std::shared_mutex> read_lock(mu_);
      return ExecExplain(*stmt.select, stmt.explain_analyze);
    }
    case Statement::Kind::kSelect:
      if (!owns_explicit) {
        // The concurrent read path: no transaction machinery, no WAL
        // records — just the shared lock and the committed state.
        std::shared_lock<std::shared_mutex> read_lock(mu_);
        return ExecSelect(*stmt.select, ctx);
      }
      break;  // SELECT inside a txn sees its own writes; fall through
    case Statement::Kind::kCopy: {
      // COPY commits once per chunk, which is incompatible with an
      // enclosing atomic transaction — refuse rather than silently break
      // atomicity.
      if (owns_explicit) {
        return Status::FailedPrecondition(
            "COPY may not run inside an explicit transaction");
      }
      obs::Tracer::Scope span(tracer_, "db:copy");
      std::unique_lock<std::shared_mutex> copy_lock(mu_);
      Result<QueryResult> copied = ExecCopy(*stmt.copy, ctx);
      if (!copied.ok()) span.set_error();
      return copied;
    }
    default:
      break;
  }
  // Mutating path (or statement inside an explicit transaction). An
  // explicit txn already holds the exclusive lock; a standalone statement
  // takes it for its own (implicit-txn) duration.
  obs::Tracer::Scope span(tracer_, "db:execute");
  std::unique_lock<std::shared_mutex> write_lock;
  if (!owns_explicit) write_lock = std::unique_lock<std::shared_mutex>(mu_);
  bool owns_txn = EnsureTxn();
  Result<QueryResult> result = Status::Internal("unhandled statement");
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      result = ExecSelect(*stmt.select, ctx);
      break;
    case Statement::Kind::kInsert:
      result = ExecInsert(*stmt.insert, ctx);
      break;
    case Statement::Kind::kUpdate:
      result = ExecUpdate(*stmt.update, ctx);
      break;
    case Statement::Kind::kDelete:
      result = ExecDelete(*stmt.del, ctx);
      break;
    case Statement::Kind::kCreateTable:
      result = ExecCreateTable(*stmt.create_table, original_sql);
      break;
    case Statement::Kind::kDropTable:
      result = ExecDropTable(*stmt.drop_table, original_sql);
      break;
    default:
      break;
  }
  if (!result.ok()) {
    span.set_error();
    // Statement failure aborts the enclosing transaction (strict, simple).
    RollbackInternal();
    counters_.txn_aborts.fetch_add(1, std::memory_order_relaxed);
    if (owns_explicit) ReleaseExplicitLock();
    return result;
  }
  if (owns_txn) {
    Status commit_status = CommitInternal();
    if (!commit_status.ok()) {
      RollbackInternal();
      counters_.txn_aborts.fetch_add(1, std::memory_order_relaxed);
      return commit_status;
    }
    counters_.txn_commits.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

bool Database::EnsureTxn() {
  if (txn_ != nullptr) return false;
  txn_ = std::make_unique<Txn>();
  txn_->id = next_txn_id_++;
  txn_->implicit = true;
  txn_->wal_records.push_back(
      {WalRecordType::kBegin, txn_->id, "", 0, {}, {}, ""});
  return true;
}

Status Database::Begin() {
  if (OwnsExplicitTxn()) {
    return Status::FailedPrecondition("transaction already active");
  }
  // Blocks here while readers or another explicit transaction hold the
  // statement gate; once acquired, the lock is kept until COMMIT/ROLLBACK
  // (or statement failure) on this thread.
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (txn_ != nullptr) {
    return Status::FailedPrecondition("transaction already active");
  }
  EnsureTxn();
  txn_->implicit = false;
  explicit_owner_.store(std::this_thread::get_id(),
                        std::memory_order_release);
  explicit_txn_.store(true, std::memory_order_release);
  explicit_lock_ = std::move(lock);
  return Status::OK();
}

Status Database::Commit() {
  if (!OwnsExplicitTxn() || txn_ == nullptr) {
    return Status::FailedPrecondition("no active transaction");
  }
  Status s = CommitInternal();
  if (!s.ok()) {
    RollbackInternal();
    counters_.txn_aborts.fetch_add(1, std::memory_order_relaxed);
    ReleaseExplicitLock();
    return s;
  }
  counters_.txn_commits.fetch_add(1, std::memory_order_relaxed);
  ReleaseExplicitLock();
  return Status::OK();
}

Status Database::Rollback() {
  if (!OwnsExplicitTxn() || txn_ == nullptr) {
    return Status::FailedPrecondition("no active transaction");
  }
  RollbackInternal();
  counters_.txn_aborts.fetch_add(1, std::memory_order_relaxed);
  ReleaseExplicitLock();
  return Status::OK();
}

Status Database::CommitInternal() {
  if (txn_ == nullptr) return Status::OK();
  // Undo entries exist exactly when the transaction changed something; a
  // read-only (or empty) commit must not invalidate caches.
  bool mutated = !txn_->undo.empty();
  if (wal_ == nullptr && !options_.wal_path.empty() && mutated) {
    // Durability was requested but the log could not be opened; losing the
    // commit silently would violate the WAL contract.
    return Status::Internal("wal unavailable: " +
                            std::string(wal_open_status_.message()));
  }
  txn_->wal_records.push_back(
      {WalRecordType::kCommit, txn_->id, "", 0, {}, {}, ""});
  if (wal_ != nullptr) {
    for (const WalRecord& rec : txn_->wal_records) {
      EASIA_RETURN_IF_ERROR(wal_->Append(rec));
    }
    if (options_.sync_on_commit) {
      EASIA_RETURN_IF_ERROR(wal_->Sync());
    }
  }
  if (coordinator_ != nullptr && txn_->used_coordinator) {
    coordinator_->CommitTxn(txn_->id);
  }
  std::vector<WalRecord> committed;
  if (mutated && commit_listener_) committed = std::move(txn_->wal_records);
  txn_.reset();
  if (mutated) {
    uint64_t epoch =
        commit_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // The listener runs with the exclusive lock still held, so the
    // replication log sees commits in exactly the order readers do.
    if (commit_listener_) commit_listener_(epoch, committed);
  }
  if (mutated && options_.auto_create_indexes) {
    // Opportunistic advisor application: the exclusive lock is already
    // held here, and commits are where the data (and thus the payoff of a
    // new index) changes. Failure to build an index never fails the
    // commit — the data is already durable.
    (void)ApplyIndexRecommendationsLocked(options_.auto_index_min_hits);
  }
  return Status::OK();
}

Status Database::ApplyReplicatedCommit(const std::vector<WalRecord>& ops,
                                       uint64_t epoch) {
  std::unique_lock<std::shared_mutex> write_lock(mu_);
  if (txn_ != nullptr) {
    return Status::FailedPrecondition(
        "replicated apply during an open transaction");
  }
  for (const WalRecord& op : ops) {
    switch (op.type) {
      case WalRecordType::kBegin:
      case WalRecordType::kCommit:
      case WalRecordType::kAbort:
        continue;
      default:
        EASIA_RETURN_IF_ERROR(ApplyWalOp(op));
    }
  }
  if (wal_ != nullptr) {
    // Replicas configured with a WAL stay independently durable: the
    // shipped records land verbatim (control records included), so plain
    // Recover() replays them with the usual commit grouping.
    for (const WalRecord& rec : ops) {
      EASIA_RETURN_IF_ERROR(wal_->Append(rec));
    }
    if (options_.sync_on_commit) {
      EASIA_RETURN_IF_ERROR(wal_->Sync());
    }
  }
  // Replicated commits count like local ones so replica /metrics line up
  // with the primary once caught up.
  counters_.txn_commits.fetch_add(1, std::memory_order_relaxed);
  AdvanceCommitEpochTo(epoch);
  return Status::OK();
}

void Database::AdvanceCommitEpochTo(uint64_t epoch) {
  uint64_t cur = commit_epoch_.load(std::memory_order_acquire);
  while (cur < epoch && !commit_epoch_.compare_exchange_weak(
                            cur, epoch, std::memory_order_acq_rel)) {
  }
}

void Database::RollbackInternal() {
  if (txn_ == nullptr) return;
  // Undo in reverse order.
  for (auto it = txn_->undo.rbegin(); it != txn_->undo.rend(); ++it) {
    UndoOp& op = *it;
    switch (op.kind) {
      case UndoOp::Kind::kInsert: {
        Result<Table*> table = GetMutableTable(op.table);
        if (table.ok()) (void)(*table)->Delete(op.row_id);
        break;
      }
      case UndoOp::Kind::kUpdate: {
        Result<Table*> table = GetMutableTable(op.table);
        if (table.ok()) (void)(*table)->Update(op.row_id, op.old_row);
        break;
      }
      case UndoOp::Kind::kDelete: {
        Result<Table*> table = GetMutableTable(op.table);
        if (table.ok()) (void)(*table)->InsertWithId(op.row_id, op.old_row);
        break;
      }
      case UndoOp::Kind::kCreateTable: {
        (void)catalog_.DropTable(op.table);
        tables_.erase(ToUpper(op.table));
        break;
      }
      case UndoOp::Kind::kDropTable: {
        (void)catalog_.AddTable(op.dropped_table->def());
        tables_[ToUpper(op.table)] = std::move(op.dropped_table);
        break;
      }
    }
  }
  if (wal_ != nullptr && !txn_->wal_records.empty()) {
    // Record the abort so replay ignores any (never-written) partials; we
    // never wrote the ops, so this is advisory only.
    WalRecord abort{WalRecordType::kAbort, txn_->id, "", 0, {}, {}, ""};
    (void)wal_->Append(abort);
  }
  if (coordinator_ != nullptr && txn_->used_coordinator) {
    coordinator_->AbortTxn(txn_->id);
  }
  txn_.reset();
}

void Database::AppendWal(WalRecord record) {
  txn_->wal_records.push_back(std::move(record));
}

Result<QueryResult> Database::ExecCreateTable(const CreateTableStmt& stmt,
                                              std::string_view sql) {
  if (stmt.def.columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  EASIA_RETURN_IF_ERROR(catalog_.AddTable(stmt.def));
  tables_[ToUpper(stmt.def.name)] = std::make_unique<Table>(stmt.def);
  UndoOp undo;
  undo.kind = UndoOp::Kind::kCreateTable;
  undo.table = stmt.def.name;
  txn_->undo.push_back(std::move(undo));
  WalRecord rec;
  rec.type = WalRecordType::kCreateTable;
  rec.txn_id = txn_->id;
  rec.ddl_sql = std::string(sql);
  AppendWal(std::move(rec));
  return DmlResult(0);
}

Result<QueryResult> Database::ExecDropTable(const DropTableStmt& stmt,
                                            std::string_view sql) {
  (void)sql;
  auto it = tables_.find(ToUpper(stmt.table));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + stmt.table);
  }
  if (it->second->RowCount() > 0) {
    // Check datalinked rows are not silently dropped: require empty table
    // when any DATALINK FILE LINK CONTROL column exists with values.
    for (const ColumnDef& col : it->second->def().columns) {
      if (col.type == DataType::kDatalink && col.datalink.has_value() &&
          col.datalink->file_link_control) {
        EASIA_ASSIGN_OR_RETURN(size_t idx,
                               it->second->def().ColumnIndex(col.name));
        bool any_linked = false;
        it->second->ForEachRow([&](RowId, const Row& row) {
          if (!row[idx].is_null()) any_linked = true;
        });
        if (any_linked) {
          return Status::FailedPrecondition(
              "cannot drop table with linked files; delete rows first");
        }
      }
    }
  }
  EASIA_RETURN_IF_ERROR(catalog_.DropTable(stmt.table));
  UndoOp undo;
  undo.kind = UndoOp::Kind::kDropTable;
  undo.table = stmt.table;
  undo.dropped_table = std::move(it->second);
  tables_.erase(it);
  txn_->undo.push_back(std::move(undo));
  WalRecord rec;
  rec.type = WalRecordType::kDropTable;
  rec.txn_id = txn_->id;
  rec.table = stmt.table;
  AppendWal(std::move(rec));
  return DmlResult(0);
}

Result<Row> Database::ValidateAndCoerce(const TableDef& def, Row row) const {
  for (size_t i = 0; i < def.columns.size(); ++i) {
    const ColumnDef& col = def.columns[i];
    if (row[i].is_null()) {
      if (col.not_null || def.IsPrimaryKeyColumn(col.name)) {
        return Status::ConstraintViolation("column " + def.name + "." +
                                           col.name + " may not be NULL");
      }
      continue;
    }
    EASIA_ASSIGN_OR_RETURN(row[i], row[i].CoerceTo(col.type));
    if (col.type == DataType::kVarchar && col.size > 0 &&
        row[i].AsString().size() > col.size) {
      return Status::ConstraintViolation(
          StrPrintf("value too long for %s.%s (max %zu)", def.name.c_str(),
                    col.name.c_str(), col.size));
    }
  }
  return row;
}

Status Database::CheckForeignKeysOnWrite(const TableDef& def,
                                         const Row& row) const {
  if (!options_.enforce_foreign_keys) return Status::OK();
  for (const ForeignKeyDef& fk : def.foreign_keys) {
    std::vector<Value> key_values;
    bool any_null = false;
    for (const std::string& col : fk.columns) {
      EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
      if (row[idx].is_null()) {
        any_null = true;
        break;
      }
      key_values.push_back(row[idx]);
    }
    if (any_null) continue;  // SQL: NULL FK values are not checked
    EASIA_ASSIGN_OR_RETURN(const Table* parent, GetTable(fk.ref_table));
    Result<RowId> found = parent->FindUnique(fk.ref_columns, key_values);
    if (!found.ok()) {
      return Status::ConstraintViolation(
          "foreign key violation: no row in " + fk.ref_table + " for " +
          def.name + "(" + Join(fk.columns, ",") + ")");
    }
  }
  return Status::OK();
}

Status Database::CheckNoChildren(const TableDef& def, const Row& old_row,
                                 const Row* new_row) const {
  if (!options_.enforce_foreign_keys) return Status::OK();
  for (const ColumnDef& col : def.columns) {
    std::vector<InboundReference> refs =
        catalog_.ReferencesTo(def.name, col.name);
    if (refs.empty()) continue;
    EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col.name));
    const Value& old_value = old_row[idx];
    if (old_value.is_null()) continue;
    if (new_row != nullptr && (*new_row)[idx].Equals(old_value)) {
      continue;  // value unchanged; children unaffected
    }
    for (const InboundReference& ref : refs) {
      EASIA_ASSIGN_OR_RETURN(const Table* child, GetTable(ref.from_table));
      EASIA_ASSIGN_OR_RETURN(size_t child_idx,
                             child->def().ColumnIndex(ref.from_column));
      if (child->AnyRowWithValue(child_idx, old_value)) {
        return Status::ConstraintViolation(
            "row is referenced by " + ref.from_table + "." + ref.from_column +
            " (RESTRICT)");
      }
    }
  }
  return Status::OK();
}

Status Database::PrepareDatalinkChange(const ColumnDef& col,
                                       const Value* old_value,
                                       const Value* new_value) {
  if (col.type != DataType::kDatalink || !col.datalink.has_value() ||
      !col.datalink->file_link_control) {
    return Status::OK();
  }
  if (coordinator_ == nullptr) {
    return Status::FailedPrecondition(
        "DATALINK column with FILE LINK CONTROL requires a file manager");
  }
  const std::string* old_url =
      (old_value != nullptr && !old_value->is_null()) ? &old_value->AsString()
                                                      : nullptr;
  const std::string* new_url =
      (new_value != nullptr && !new_value->is_null()) ? &new_value->AsString()
                                                      : nullptr;
  if (old_url != nullptr && new_url != nullptr && *old_url == *new_url) {
    return Status::OK();
  }
  txn_->used_coordinator = true;
  if (old_url != nullptr) {
    EASIA_RETURN_IF_ERROR(
        coordinator_->PrepareUnlink(txn_->id, *col.datalink, *old_url));
  }
  if (new_url != nullptr) {
    EASIA_RETURN_IF_ERROR(
        coordinator_->PrepareLink(txn_->id, *col.datalink, *new_url));
  }
  return Status::OK();
}

Result<QueryResult> Database::ExecInsert(const InsertStmt& stmt,
                                         const ExecContext& ctx) {
  (void)ctx;
  EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(stmt.table));
  const TableDef& def = table->def();
  // Map statement columns to table positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < def.columns.size(); ++i) positions.push_back(i);
  } else {
    for (const std::string& col : stmt.columns) {
      EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
      positions.push_back(idx);
    }
  }
  size_t inserted = 0;
  for (const auto& value_exprs : stmt.rows) {
    if (value_exprs.size() != positions.size()) {
      return Status::InvalidArgument(
          "INSERT value count does not match column count");
    }
    Row row(def.columns.size(), Value::Null());
    EvalEnv env;  // no row context
    for (size_t i = 0; i < positions.size(); ++i) {
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*value_exprs[i], env));
      row[positions[i]] = std::move(v);
    }
    EASIA_ASSIGN_OR_RETURN(row, ValidateAndCoerce(def, std::move(row)));
    EASIA_RETURN_IF_ERROR(CheckForeignKeysOnWrite(def, row));
    // SQL/MED link intents (may veto when the file is missing/linked).
    for (size_t i = 0; i < def.columns.size(); ++i) {
      EASIA_RETURN_IF_ERROR(
          PrepareDatalinkChange(def.columns[i], nullptr, &row[i]));
    }
    EASIA_ASSIGN_OR_RETURN(RowId id, table->Insert(row));
    UndoOp undo;
    undo.kind = UndoOp::Kind::kInsert;
    undo.table = def.name;
    undo.row_id = id;
    txn_->undo.push_back(std::move(undo));
    WalRecord rec;
    rec.type = WalRecordType::kInsert;
    rec.txn_id = txn_->id;
    rec.table = def.name;
    rec.row_id = id;
    rec.row = row;
    AppendWal(std::move(rec));
    ++inserted;
    counters_.rows_inserted.fetch_add(1, std::memory_order_relaxed);
  }
  return DmlResult(inserted);
}

Result<QueryResult> Database::ExecUpdate(const UpdateStmt& stmt,
                                         const ExecContext& ctx) {
  (void)ctx;
  EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(stmt.table));
  const TableDef& def = table->def();
  // Single-table schema for predicate/assignment evaluation.
  std::vector<ColumnBinding> schema;
  for (const ColumnDef& col : def.columns) {
    schema.push_back({def.name, col.name, col.type, &col});
  }
  std::vector<std::pair<size_t, const Expr*>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
    sets.emplace_back(idx, expr.get());
  }
  // Materialise target row ids first (avoid mutating while scanning).
  std::vector<RowId> targets;
  Status scan_status = Status::OK();
  table->ForEachRow([&](RowId id, const Row& row) {
    if (!scan_status.ok()) return;
    if (stmt.where != nullptr) {
      EvalEnv env{&schema, &row};
      Result<Value> cond = EvalExpr(*stmt.where, env);
      if (!cond.ok()) {
        scan_status = cond.status();
        return;
      }
      if (!IsTruthy(*cond)) return;
    }
    targets.push_back(id);
  });
  EASIA_RETURN_IF_ERROR(scan_status);
  size_t updated = 0;
  for (RowId id : targets) {
    EASIA_ASSIGN_OR_RETURN(Row old_row, table->Get(id));
    Row new_row = old_row;
    EvalEnv env{&schema, &old_row};
    for (const auto& [idx, expr] : sets) {
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, env));
      new_row[idx] = std::move(v);
    }
    EASIA_ASSIGN_OR_RETURN(new_row, ValidateAndCoerce(def, std::move(new_row)));
    EASIA_RETURN_IF_ERROR(CheckForeignKeysOnWrite(def, new_row));
    EASIA_RETURN_IF_ERROR(CheckNoChildren(def, old_row, &new_row));
    for (size_t i = 0; i < def.columns.size(); ++i) {
      EASIA_RETURN_IF_ERROR(
          PrepareDatalinkChange(def.columns[i], &old_row[i], &new_row[i]));
    }
    EASIA_RETURN_IF_ERROR(table->Update(id, new_row));
    UndoOp undo;
    undo.kind = UndoOp::Kind::kUpdate;
    undo.table = def.name;
    undo.row_id = id;
    undo.old_row = old_row;
    txn_->undo.push_back(std::move(undo));
    WalRecord rec;
    rec.type = WalRecordType::kUpdate;
    rec.txn_id = txn_->id;
    rec.table = def.name;
    rec.row_id = id;
    rec.row = new_row;
    rec.old_row = old_row;
    AppendWal(std::move(rec));
    ++updated;
    counters_.rows_updated.fetch_add(1, std::memory_order_relaxed);
  }
  return DmlResult(updated);
}

Result<QueryResult> Database::ExecDelete(const DeleteStmt& stmt,
                                         const ExecContext& ctx) {
  (void)ctx;
  EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(stmt.table));
  const TableDef& def = table->def();
  std::vector<ColumnBinding> schema;
  for (const ColumnDef& col : def.columns) {
    schema.push_back({def.name, col.name, col.type, &col});
  }
  std::vector<RowId> targets;
  Status scan_status = Status::OK();
  table->ForEachRow([&](RowId id, const Row& row) {
    if (!scan_status.ok()) return;
    if (stmt.where != nullptr) {
      EvalEnv env{&schema, &row};
      Result<Value> cond = EvalExpr(*stmt.where, env);
      if (!cond.ok()) {
        scan_status = cond.status();
        return;
      }
      if (!IsTruthy(*cond)) return;
    }
    targets.push_back(id);
  });
  EASIA_RETURN_IF_ERROR(scan_status);
  size_t deleted = 0;
  for (RowId id : targets) {
    EASIA_ASSIGN_OR_RETURN(Row old_row, table->Get(id));
    EASIA_RETURN_IF_ERROR(CheckNoChildren(def, old_row, nullptr));
    for (size_t i = 0; i < def.columns.size(); ++i) {
      EASIA_RETURN_IF_ERROR(
          PrepareDatalinkChange(def.columns[i], &old_row[i], nullptr));
    }
    EASIA_RETURN_IF_ERROR(table->Delete(id));
    UndoOp undo;
    undo.kind = UndoOp::Kind::kDelete;
    undo.table = def.name;
    undo.row_id = id;
    undo.old_row = old_row;
    txn_->undo.push_back(std::move(undo));
    WalRecord rec;
    rec.type = WalRecordType::kDelete;
    rec.txn_id = txn_->id;
    rec.table = def.name;
    rec.row_id = id;
    rec.old_row = old_row;
    AppendWal(std::move(rec));
    ++deleted;
    counters_.rows_deleted.fetch_add(1, std::memory_order_relaxed);
  }
  return DmlResult(deleted);
}

Result<QueryResult> Database::ExecCopy(const CopyStmt& stmt,
                                       const ExecContext& ctx) {
  (void)ctx;
  EASIA_ASSIGN_OR_RETURN(Table * table, GetMutableTable(stmt.table));
  const TableDef& def = table->def();
  EASIA_ASSIGN_OR_RETURN(store::BulkFile file,
                         store::ReadBulkFile(env_, stmt.path));
  // The bulk header must match the table positionally: loading a file
  // written against a different schema would silently scramble columns.
  if (file.columns.size() != def.columns.size()) {
    return Status::InvalidArgument(StrPrintf(
        "bulk file has %zu columns but table %s has %zu", file.columns.size(),
        def.name.c_str(), def.columns.size()));
  }
  for (size_t i = 0; i < def.columns.size(); ++i) {
    if (!EqualsIgnoreCase(file.columns[i], def.columns[i].name) ||
        file.types[i] != def.columns[i].type) {
      return Status::InvalidArgument(
          "bulk file column " + file.columns[i] + " does not match " +
          def.name + "." + def.columns[i].name);
    }
  }
  // One transaction (and one kBulkLoad WAL record) per chunk: a crash
  // mid-COPY recovers exactly the chunks whose commit reached the log, and
  // a bad row aborts only its own chunk, keeping the chunks before it.
  size_t inserted = 0;
  size_t chunk_no = 0;
  for (std::vector<Row>& chunk : file.chunks) {
    ++chunk_no;
    if (chunk.empty()) continue;
    EnsureTxn();
    WalRecord rec;
    rec.type = WalRecordType::kBulkLoad;
    rec.txn_id = txn_->id;
    rec.table = def.name;
    rec.bulk_rows.reserve(chunk.size());
    txn_->undo.reserve(txn_->undo.size() + chunk.size());
    auto load_row = [&](Row raw) -> Status {
      EASIA_ASSIGN_OR_RETURN(Row row, ValidateAndCoerce(def, std::move(raw)));
      EASIA_RETURN_IF_ERROR(CheckForeignKeysOnWrite(def, row));
      for (size_t i = 0; i < def.columns.size(); ++i) {
        EASIA_RETURN_IF_ERROR(
            PrepareDatalinkChange(def.columns[i], nullptr, &row[i]));
      }
      EASIA_ASSIGN_OR_RETURN(RowId id, table->Insert(row));
      if (rec.bulk_rows.empty()) rec.row_id = id;
      UndoOp undo;
      undo.kind = UndoOp::Kind::kInsert;
      undo.table = def.name;
      undo.row_id = id;
      txn_->undo.push_back(std::move(undo));
      rec.bulk_rows.push_back(std::move(row));
      return Status::OK();
    };
    Status chunk_status = Status::OK();
    for (Row& raw : chunk) {
      chunk_status = load_row(std::move(raw));
      if (!chunk_status.ok()) break;
    }
    if (!chunk_status.ok()) {
      RollbackInternal();
      counters_.txn_aborts.fetch_add(1, std::memory_order_relaxed);
      return chunk_status.WithContext(
          StrPrintf("copy %s chunk %zu", def.name.c_str(), chunk_no));
    }
    size_t chunk_rows = rec.bulk_rows.size();
    AppendWal(std::move(rec));
    Status commit = CommitInternal();
    if (!commit.ok()) {
      RollbackInternal();
      counters_.txn_aborts.fetch_add(1, std::memory_order_relaxed);
      return commit;
    }
    counters_.txn_commits.fetch_add(1, std::memory_order_relaxed);
    counters_.rows_inserted.fetch_add(chunk_rows, std::memory_order_relaxed);
    counters_.bulk_chunks.fetch_add(1, std::memory_order_relaxed);
    inserted += chunk_rows;
  }
  return DmlResult(inserted);
}

Result<QueryResult> Database::ExecSelect(const SelectStmt& stmt,
                                         const ExecContext& ctx) {
  obs::Tracer::Scope span(tracer_, "planner:select");
  counters_.queries.fetch_add(1, std::memory_order_relaxed);
  TableLookup lookup = [this](const std::string& name) {
    return GetTable(name);
  };
  DatalinkRewriter rewriter;
  if (coordinator_ != nullptr && ctx.resolve_datalinks) {
    rewriter = [this, &ctx](const ColumnDef& def,
                            const std::string& url) -> Result<std::string> {
      if (!def.datalink.has_value()) return url;
      return coordinator_->ResolveForRead(*def.datalink, url, ctx.user);
    };
  }
  ExecuteOptions exec_options;
  exec_options.cost_based = options_.cost_based_planner;
  exec_options.tracer = tracer_;
  exec_options.plan_observer = [this](const SelectPlan& plan) {
    advisor_.ObservePlan(plan);
  };
  return ExecuteSelect(stmt, lookup, rewriter, exec_options);
}

Result<QueryResult> Database::ExecExplain(const SelectStmt& stmt,
                                          bool analyze) {
  TableLookup lookup = [this](const std::string& name) {
    return GetTable(name);
  };
  PlannerOptions planner_options;
  planner_options.cost_based = options_.cost_based_planner;
  EASIA_ASSIGN_OR_RETURN(SelectPlan plan,
                         PlanSelect(stmt, lookup, planner_options));
  std::vector<std::string> lines = plan.Describe();
  if (analyze) {
    // Execute the same statement (deterministic planning: the plan shape
    // matches `plan`) with profiling on, then annotate the per-operator
    // Describe lines. DATALINK rewriting is presentation-only and the
    // rows are discarded, so a null rewriter is fine.
    PlanProfile profile;
    ExecuteOptions exec_options;
    exec_options.cost_based = options_.cost_based_planner;
    exec_options.profile = &profile;
    exec_options.tracer = tracer_;
    Result<QueryResult> executed =
        ExecuteSelect(stmt, lookup, nullptr, exec_options);
    if (!executed.ok()) return std::move(executed).status();
    auto annotate = [](std::string* line, const PlanProfile::Op& op) {
      *line += StrPrintf(" (est rows=%.2f", op.est_rows);
      if (op.actual_rows >= 0) {
        *line += StrPrintf(", actual rows=%lld",
                           static_cast<long long>(op.actual_rows));
      } else {
        *line += ", actual rows=n/a";
      }
      *line += StrPrintf(", %.3f ms)", op.seconds * 1000.0);
    };
    // Describe() emits the scan lines first, then one line per join, in
    // execution order — exactly how the profile is indexed.
    for (size_t i = 0; i < profile.scans.size() && i < lines.size(); ++i) {
      annotate(&lines[i], profile.scans[i]);
    }
    for (size_t j = 0; j < profile.joins.size(); ++j) {
      size_t at = profile.scans.size() + j;
      if (at < lines.size()) annotate(&lines[at], profile.joins[j]);
    }
    lines.push_back(StrPrintf(
        "total: %lld rows, %.3f ms",
        static_cast<long long>(profile.result_rows),
        profile.total_seconds * 1000.0));
  }
  QueryResult result;
  result.is_query = true;
  result.column_names.push_back("PLAN");
  result.column_types.push_back(DataType::kVarchar);
  for (std::string& line : lines) {
    result.rows.push_back({Value::Varchar(std::move(line))});
  }
  return result;
}

Status Database::ApplyIndexRecommendations(uint64_t min_hits) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return ApplyIndexRecommendationsLocked(min_hits);
}

Status Database::ApplyIndexRecommendationsLocked(uint64_t min_hits) {
  for (const stats::IndexRecommendation& rec :
       advisor_.Recommendations(min_hits)) {
    if (rec.kind != stats::IndexRecommendation::Kind::kEquality) {
      continue;  // radix prefix indexes are declared at CREATE TABLE time
    }
    auto it = tables_.find(ToUpper(rec.table));
    if (it == tables_.end()) continue;  // table dropped since observed
    EASIA_RETURN_IF_ERROR(it->second->CreateSecondaryIndex({rec.column}));
  }
  return Status::OK();
}

std::string Database::SerializeSnapshot() const {
  std::shared_lock<std::shared_mutex> read_lock(mu_);
  return SerializeSnapshotLocked();
}

std::string Database::SerializeSnapshotLocked() const {
  std::string out;
  out += kSnapshotMagic;
  DatabaseStats ds = stats();
  PutU64(&out, ds.statements);
  PutU64(&out, ds.queries);
  PutU64(&out, ds.rows_inserted);
  PutU64(&out, ds.rows_updated);
  PutU64(&out, ds.rows_deleted);
  PutU64(&out, ds.txn_commits);
  PutU64(&out, ds.txn_aborts);
  PutU64(&out, ds.bulk_chunks);
  PutU32(&out, static_cast<uint32_t>(tables_.size()));
  for (const auto& [key, table] : tables_) {
    PutLengthPrefixed(&out, table->def().ToSql());
    PutU64(&out, table->next_row_id());
    PutU32(&out, static_cast<uint32_t>(table->RowCount()));
    table->ForEachRow([&out](RowId id, const Row& row) {
      PutU64(&out, id);
      EncodeRow(&out, row);
    });
    // Persist the planner sketches wholesale: they carry widen-only
    // min/max history and the sample admission threshold, which a rebuild
    // from the rows above cannot reproduce.
    std::string stats_block;
    table->table_stats().EncodeTo(&stats_block);
    PutLengthPrefixed(&out, stats_block);
  }
  PutU32(&out, Crc32(std::string_view(out).substr(kSnapshotMagic.size())));
  return out;
}

Status Database::SaveSnapshot(const std::string& path) const {
  std::shared_lock<std::shared_mutex> read_lock(mu_);
  return SaveSnapshotLocked(path);
}

Status Database::SaveSnapshotLocked(const std::string& path) const {
  return env_->WriteFileAtomic(path, SerializeSnapshotLocked())
      .WithContext("snapshot");
}

Status Database::LoadSnapshot(const std::string& path) {
  EASIA_ASSIGN_OR_RETURN(std::string contents, env_->ReadFileToString(path));
  return LoadSnapshotFromString(contents);
}

Status Database::LoadSnapshotFromString(const std::string& contents) {
  std::unique_lock<std::shared_mutex> write_lock(mu_);
  Status s = LoadSnapshotFromStringLocked(contents);
  // Whatever happened to the in-memory state, cached derivations of it are
  // no longer trustworthy.
  commit_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return s;
}

Status Database::LoadSnapshotFromStringLocked(const std::string& contents) {
  std::string_view magic =
      std::string_view(contents).substr(0, kSnapshotMagic.size());
  bool has_table_stats = magic == kSnapshotMagic;
  bool has_bulk = has_table_stats || magic == kSnapshotMagicV3;
  bool has_stats = has_bulk || magic == kSnapshotMagicV2;
  if (contents.size() < kSnapshotMagic.size() + 4 ||
      (!has_stats && magic != kSnapshotMagicV1)) {
    return Status::Corruption("bad snapshot magic");
  }
  std::string_view body = std::string_view(contents).substr(
      kSnapshotMagic.size(), contents.size() - kSnapshotMagic.size() - 4);
  Decoder crc_dec(
      std::string_view(contents).substr(contents.size() - 4));
  EASIA_ASSIGN_OR_RETURN(uint32_t crc, crc_dec.GetU32());
  if (Crc32(body) != crc) return Status::Corruption("snapshot crc mismatch");
  Decoder dec(body);
  if (has_stats) {
    // Counters are restored monotonically: a snapshot taken earlier in
    // this process's life (backup round-trips, crash recovery into a
    // fresh Database) never moves a live counter backwards, so /metrics
    // counter families keep their Prometheus monotonicity contract.
    DatabaseStats ds;
    EASIA_ASSIGN_OR_RETURN(ds.statements, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(ds.queries, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(ds.rows_inserted, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(ds.rows_updated, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(ds.rows_deleted, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(ds.txn_commits, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(ds.txn_aborts, dec.GetU64());
    if (has_bulk) {
      EASIA_ASSIGN_OR_RETURN(ds.bulk_chunks, dec.GetU64());
    }
    auto restore = [](std::atomic<uint64_t>* counter, uint64_t persisted) {
      uint64_t cur = counter->load(std::memory_order_relaxed);
      while (cur < persisted && !counter->compare_exchange_weak(
                                    cur, persisted,
                                    std::memory_order_relaxed)) {
      }
    };
    restore(&counters_.statements, ds.statements);
    restore(&counters_.queries, ds.queries);
    restore(&counters_.rows_inserted, ds.rows_inserted);
    restore(&counters_.rows_updated, ds.rows_updated);
    restore(&counters_.rows_deleted, ds.rows_deleted);
    restore(&counters_.txn_commits, ds.txn_commits);
    restore(&counters_.txn_aborts, ds.txn_aborts);
    restore(&counters_.bulk_chunks, ds.bulk_chunks);
  }
  // Reset state.
  catalog_ = Catalog();
  tables_.clear();
  EASIA_ASSIGN_OR_RETURN(uint32_t table_count, dec.GetU32());
  // First pass may hit FK ordering problems; defer FK validation by adding
  // tables in two passes: create bare, then re-add with FKs. Simpler: retry
  // loop until fixpoint.
  struct PendingTable {
    TableDef def;
    uint64_t next_row_id;
    std::vector<std::pair<RowId, Row>> rows;
    std::string stats_block;  // empty for pre-V4 snapshots
  };
  std::vector<PendingTable> pending;
  for (uint32_t t = 0; t < table_count; ++t) {
    EASIA_ASSIGN_OR_RETURN(std::string ddl, dec.GetLengthPrefixed());
    EASIA_ASSIGN_OR_RETURN(Statement stmt, ParseSql(ddl));
    if (stmt.kind != Statement::Kind::kCreateTable) {
      return Status::Corruption("snapshot: bad DDL");
    }
    PendingTable pt;
    pt.def = std::move(stmt.create_table->def);
    EASIA_ASSIGN_OR_RETURN(pt.next_row_id, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(uint32_t row_count, dec.GetU32());
    for (uint32_t r = 0; r < row_count; ++r) {
      EASIA_ASSIGN_OR_RETURN(RowId id, dec.GetU64());
      EASIA_ASSIGN_OR_RETURN(Row row, DecodeRow(&dec));
      pt.rows.emplace_back(id, std::move(row));
    }
    if (has_table_stats) {
      EASIA_ASSIGN_OR_RETURN(pt.stats_block, dec.GetLengthPrefixed());
    }
    pending.push_back(std::move(pt));
  }
  // Add tables until fixpoint (handles FK dependency order).
  std::vector<bool> added(pending.size(), false);
  size_t remaining = pending.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (added[i]) continue;
      if (catalog_.AddTable(pending[i].def).ok()) {
        auto table = std::make_unique<Table>(pending[i].def);
        for (auto& [id, row] : pending[i].rows) {
          EASIA_RETURN_IF_ERROR(table->InsertWithId(id, std::move(row)));
        }
        if (!pending[i].stats_block.empty()) {
          // The persisted sketches override the ones the inserts above
          // just rebuilt (they carry deleted-value history).
          Decoder stats_dec(pending[i].stats_block);
          EASIA_RETURN_IF_ERROR(
              table->mutable_table_stats()->DecodeFrom(&stats_dec));
        }
        tables_[ToUpper(pending[i].def.name)] = std::move(table);
        added[i] = true;
        --remaining;
        progress = true;
      }
    }
  }
  if (remaining > 0) {
    return Status::Corruption("snapshot: unresolvable FK dependencies");
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  if (options_.snapshot_path.empty()) {
    return Status::FailedPrecondition("no snapshot path configured");
  }
  if (OwnsExplicitTxn()) {
    return Status::FailedPrecondition("cannot checkpoint inside transaction");
  }
  // Exclusive: the snapshot and the WAL truncation must see one state.
  std::unique_lock<std::shared_mutex> write_lock(mu_);
  EASIA_RETURN_IF_ERROR(SaveSnapshotLocked(options_.snapshot_path));
  if (!options_.wal_path.empty()) {
    wal_.reset();
    EASIA_RETURN_IF_ERROR(env_->Truncate(options_.wal_path));
    Result<WalWriter> writer = WalWriter::Open(env_, options_.wal_path);
    if (!writer.ok()) {
      wal_open_status_ = writer.status();
      return writer.status();
    }
    wal_ = std::make_unique<WalWriter>(std::move(*writer));
    wal_open_status_ = Status::OK();
  }
  return Status::OK();
}

}  // namespace easia::db
