#include "db/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace easia::db {

namespace {

// Reserved words only. DATALINK option words (LINKTYPE, URL, PERMISSION,
// ...) are deliberately NOT reserved: they are matched contextually by the
// parser so they stay usable as identifiers.
constexpr std::string_view kKeywords[] = {
    "SELECT", "FROM",   "WHERE",  "INSERT", "INTO",    "VALUES", "UPDATE",
    "SET",    "DELETE", "CREATE", "TABLE",  "DROP",    "PRIMARY", "KEY",
    "FOREIGN", "REFERENCES", "UNIQUE", "NOT", "NULL",  "AND",    "OR",
    "LIKE",   "IN",     "IS",     "ORDER",  "BY",      "ASC",    "DESC",
    "LIMIT",  "OFFSET", "AS",     "JOIN",   "INNER",   "ON",     "BEGIN",
    "COMMIT", "ROLLBACK", "GROUP", "HAVING", "DATALINK",
    "TRANSACTION", "WORK", "DISTINCT", "EXPLAIN", "COPY", "ANALYZE",
};

}  // namespace

bool IsSqlKeyword(std::string_view upper_word) {
  for (std::string_view k : kKeywords) {
    if (k == upper_word) return true;
  }
  return false;
}

Result<std::vector<Token>> LexSql(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word(sql.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = word;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          is_double = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        } else {
          i = save;
        }
      }
      token.kind = is_double ? TokenKind::kDouble : TokenKind::kInteger;
      token.literal = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrPrintf("sql: unterminated string at offset %zu", token.offset));
      }
      token.kind = TokenKind::kString;
      token.literal = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char symbols first.
    if (c == '<' && i + 1 < n && (sql[i + 1] == '>' || sql[i + 1] == '=')) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(sql.substr(i, 2));
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      token.kind = TokenKind::kSymbol;
      token.text = ">=";
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      token.kind = TokenKind::kSymbol;
      token.text = "<>";
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    static constexpr std::string_view kSingles = "(),.=<>+-*/;";
    if (kSingles.find(c) != std::string_view::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    return Status::ParseError(
        StrPrintf("sql: unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace easia::db
