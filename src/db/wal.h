#ifndef EASIA_DB_WAL_H_
#define EASIA_DB_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/table.h"

namespace easia::db {

/// Write-ahead-log record types. DDL records carry the statement SQL and
/// are replayed through the parser; DML records carry physical rows.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,
  kUpdate = 5,
  kDelete = 6,
  kCreateTable = 7,
  kDropTable = 8,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  std::string table;
  RowId row_id = 0;
  Row row;      // insert: new row; update: new row
  Row old_row;  // update/delete: previous row (for audit/backup tooling)
  std::string ddl_sql;

  std::string Encode() const;
  static Result<WalRecord> Decode(std::string_view payload);
};

/// Appends framed records (`u32 length, u32 crc32, payload`) to a log file.
/// A torn final record (crash mid-write) is tolerated by the reader.
class WalWriter {
 public:
  static Result<WalWriter> Open(const std::string& path);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  Status Append(const WalRecord& record);
  Status Sync();
  void Close();

 private:
  explicit WalWriter(std::FILE* file) : file_(file) {}
  std::FILE* file_ = nullptr;
};

/// Reads every intact record from a log file; stops silently at the first
/// torn or corrupt frame (standard redo-log semantics).
Result<std::vector<WalRecord>> ReadWal(const std::string& path);

}  // namespace easia::db

#endif  // EASIA_DB_WAL_H_
