#ifndef EASIA_DB_WAL_H_
#define EASIA_DB_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "db/table.h"

namespace easia::db {

/// The byte sink the WAL writes through (see common/io.h). Production code
/// gets the stdio+fsync implementation from io::RealEnv(); the
/// fault-injection harness substitutes one that tears writes, drops fsyncs
/// and stops persisting at a crash point.
using WalFile = io::LogFile;

/// Write-ahead-log record types. DDL records carry the statement SQL and
/// are replayed through the parser; DML records carry physical rows.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,
  kUpdate = 5,
  kDelete = 6,
  kCreateTable = 7,
  kDropTable = 8,
  /// One COPY chunk: `bulk_rows` inserted under consecutive RowIds
  /// starting at `row_id`. One record per N-row chunk replaces N kInsert
  /// records on the bulk-ingest path.
  kBulkLoad = 9,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  std::string table;
  RowId row_id = 0;
  Row row;      // insert: new row; update: new row
  Row old_row;  // update/delete: previous row (for audit/backup tooling)
  std::string ddl_sql;
  /// kBulkLoad only: the chunk's rows, RowIds row_id .. row_id+n-1.
  std::vector<Row> bulk_rows;

  std::string Encode() const;
  static Result<WalRecord> Decode(std::string_view payload);
};

/// Appends framed records (`u32 length, u32 crc32, payload`) to a log file.
/// A torn final record (crash mid-write) is tolerated by the reader.
class WalWriter {
 public:
  /// Opens against the host file system (io::RealEnv()).
  static Result<WalWriter> Open(const std::string& path);
  /// Opens through an explicit environment (fault injection, tests).
  static Result<WalWriter> Open(io::Env* env, const std::string& path);

  WalWriter(WalWriter&&) noexcept = default;
  WalWriter& operator=(WalWriter&&) noexcept = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter() = default;

  Status Append(const WalRecord& record);
  Status Sync();
  void Close();

 private:
  explicit WalWriter(std::unique_ptr<WalFile> file) : file_(std::move(file)) {}
  std::unique_ptr<WalFile> file_;
};

/// Reads every intact record from a log file; stops silently at the first
/// torn or corrupt frame (standard redo-log semantics).
Result<std::vector<WalRecord>> ReadWal(const std::string& path);
Result<std::vector<WalRecord>> ReadWal(io::Env* env, const std::string& path);

}  // namespace easia::db

#endif  // EASIA_DB_WAL_H_
