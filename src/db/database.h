#ifndef EASIA_DB_DATABASE_H_
#define EASIA_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "db/ast.h"
#include "db/schema.h"
#include "db/stats/index_advisor.h"
#include "db/table.h"
#include "db/wal.h"

namespace easia::obs {
class Tracer;
}  // namespace easia::obs

namespace easia::db {

/// The result of executing one SQL statement. For queries, `rows` holds the
/// projected values; for DML, `rows_affected` counts modified rows.
struct QueryResult {
  bool is_query = false;
  std::vector<std::string> column_names;
  std::vector<DataType> column_types;
  std::vector<Row> rows;
  size_t rows_affected = 0;

  Result<size_t> ColumnIndex(std::string_view name) const;
  /// Cell accessor with bounds checking (tests & web layer convenience).
  Result<Value> At(size_t row, std::string_view column) const;
};

/// The SQL/MED hook: the database engine delegates file-side effects of
/// DATALINK columns to a coordinator (implemented by med::DataLinkManager).
/// Link/unlink intents accumulate under a transaction id and are resolved
/// at COMMIT (two-phase: Prepare* may veto, Commit/Abort may not fail).
class DatalinkCoordinator {
 public:
  virtual ~DatalinkCoordinator() = default;

  /// Called when a DATALINK value is inserted (or set by UPDATE) under FILE
  /// LINK CONTROL. Must verify the file exists and is linkable, and pin it
  /// provisionally.
  virtual Status PrepareLink(uint64_t txn_id, const DatalinkOptions& options,
                             const std::string& url) = 0;

  /// Called when a DATALINK value is removed (DELETE, or UPDATE replacing).
  virtual Status PrepareUnlink(uint64_t txn_id,
                               const DatalinkOptions& options,
                               const std::string& url) = 0;

  /// Transaction outcome; must not fail.
  virtual void CommitTxn(uint64_t txn_id) = 0;
  virtual void AbortTxn(uint64_t txn_id) = 0;

  /// Rewrites a stored DATALINK URL into its SELECT form. Under READ
  /// PERMISSION DB this embeds an encrypted access token
  /// (`http://host/fs/dir/token;file`); under READ PERMISSION FS the URL is
  /// returned unchanged.
  virtual Result<std::string> ResolveForRead(const DatalinkOptions& options,
                                             const std::string& url,
                                             const std::string& user) = 0;
};

/// Per-statement execution context.
struct ExecContext {
  std::string user = "system";
  /// When false, SELECT returns raw stored DATALINK URLs (used by internal
  /// machinery; user-facing queries resolve tokens).
  bool resolve_datalinks = true;
};

struct DatabaseOptions {
  /// Write-ahead log path; empty runs fully in memory (tests, benches).
  std::string wal_path;
  /// Snapshot path used by Recover() and Checkpoint().
  std::string snapshot_path;
  /// Flush the log on every commit.
  bool sync_on_commit = true;
  /// File-system seam for WAL + snapshots; null uses io::RealEnv(). The
  /// fault-injection harness substitutes a crashing/torn-write environment.
  io::Env* env = nullptr;
  /// Statistics-driven planning (join order, build side, index-loop
  /// joins). False pins every SELECT to the static FROM-order plan shape.
  bool cost_based_planner = true;
  /// When true, every committed transaction also applies the index
  /// advisor's hot recommendations (see ApplyIndexRecommendations):
  /// equality patterns with at least `auto_index_min_hits` observations
  /// get a secondary index built on the spot. Off by default — the
  /// advisor then only *surfaces* recommendations (on /stats and through
  /// index_advisor()).
  bool auto_create_indexes = false;
  uint64_t auto_index_min_hits = 32;
  /// Node-local foreign-key enforcement (child lookup on write, RESTRICT
  /// check on delete/update). The shard coordinator (src/db/shard) turns
  /// this off on shard databases — a parent row may legitimately live on
  /// another shard — and enforces referential integrity globally instead.
  bool enforce_foreign_keys = true;
};

/// Cumulative engine counters.
struct DatabaseStats {
  uint64_t statements = 0;
  uint64_t queries = 0;
  uint64_t rows_inserted = 0;
  uint64_t rows_updated = 0;
  uint64_t rows_deleted = 0;
  uint64_t txn_commits = 0;
  uint64_t txn_aborts = 0;
  /// COPY chunks durably committed (one kBulkLoad WAL record each).
  uint64_t bulk_chunks = 0;
};

/// A single-node relational engine with SQL/MED DATALINK support:
/// catalogue + row storage + SQL execution + WAL-based durability +
/// transactional coordination with external file managers.
///
/// Concurrency: reader/writer mode over one `std::shared_mutex`. Parsed
/// statements are classified before execution:
///
///  * SELECT and EXPLAIN outside an explicit transaction run under a
///    *shared* lock against the committed (immutable-for-the-duration)
///    state — any number of web handlers, job workers and benches read in
///    parallel;
///  * INSERT/UPDATE/DELETE/DDL, and every statement issued between BEGIN
///    and COMMIT/ROLLBACK, hold the *exclusive* lock. An explicit
///    transaction keeps the exclusive lock from BEGIN until it commits,
///    rolls back, or fails, so readers never observe a half-applied
///    transaction. Explicit transactions must begin and finish on the same
///    thread (the lock is thread-owned).
///
/// Every successful mutating commit bumps a monotonically increasing
/// commit epoch (`commit_epoch()`); the web layer's render cache uses it
/// to invalidate cheaply without dependency tracking. Cumulative counters
/// are atomics, so shared-lock readers update them race-free.
class Database {
 public:
  explicit Database(std::string name, DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Wires in the SQL/MED coordinator (may be null for plain operation).
  void set_coordinator(DatalinkCoordinator* coordinator) {
    coordinator_ = coordinator;
  }

  /// Wires in the request tracer (may be null — the default — for
  /// untraced operation). Planner execution and mutating statements open
  /// spans that nest under whatever request span is current on the
  /// calling thread.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Mirrors index-advisor hit counts into a metrics registry
  /// (`easia_db_index_advisor_hits_total`). May be null (the default).
  void set_metrics_registry(obs::MetricsRegistry* metrics) {
    advisor_.set_metrics(metrics);
  }

  /// The hot-predicate observer fed by every planned SELECT. The /stats
  /// page reads its recommendations; tests reset it between workloads.
  stats::IndexAdvisor& index_advisor() { return advisor_; }
  const stats::IndexAdvisor& index_advisor() const { return advisor_; }

  /// Builds a secondary index for every equality recommendation with at
  /// least `min_hits` observations (exclusive lock; skips columns that
  /// gained an index since). Auto-created indexes are runtime-only: they
  /// are not WAL-logged and are rebuilt only when the advisor runs hot
  /// again after recovery.
  Status ApplyIndexRecommendations(uint64_t min_hits);

  /// Loads the snapshot (if any) and replays the WAL. Call once, before the
  /// first Execute, when options carry persistence paths.
  Status Recover();

  /// Parses and executes one SQL statement.
  Result<QueryResult> Execute(std::string_view sql,
                              const ExecContext& ctx = {});

  /// Executes an already-parsed statement (used by the QBE layer, which
  /// builds ASTs directly).
  Result<QueryResult> ExecuteStatement(const Statement& stmt,
                                       std::string_view original_sql,
                                       const ExecContext& ctx = {});

  // --- Explicit transactions (Execute("BEGIN") also works) ---
  Status Begin();
  Status Commit();
  Status Rollback();
  bool InTransaction() const {
    return explicit_txn_.load(std::memory_order_acquire);
  }

  /// Monotonically increasing counter, bumped once per successfully
  /// committed transaction that mutated anything (DML or DDL; snapshot
  /// restores bump it too). Reads never change it. Cached derivations of
  /// database state are valid exactly while the epoch they captured still
  /// matches.
  uint64_t commit_epoch() const {
    return commit_epoch_.load(std::memory_order_acquire);
  }

  // --- Replication hooks (src/db/repl) ---
  /// Invoked after every successfully committed *mutating* transaction,
  /// with the exclusive lock still held, so the replication log observes
  /// commits in exactly the order readers do. `epoch` is the commit epoch
  /// the commit advanced to and `records` the transaction's full WAL
  /// record list (kBegin .. kCommit). The callback must be cheap and must
  /// not re-enter the database. Pass an empty function to detach.
  using CommitListener =
      std::function<void(uint64_t epoch, const std::vector<WalRecord>&)>;
  void set_commit_listener(CommitListener listener) {
    commit_listener_ = std::move(listener);
  }

  /// Applies one replicated committed transaction shipped from a primary:
  /// `ops` are the transaction's WAL records (control records are
  /// skipped), applied under the exclusive lock in record order, after
  /// which the commit epoch is advanced to at least `epoch` — replicas
  /// mirror primary epochs rather than counting their own, so equal
  /// epochs mean equal visible state on every node (the WAL replay path
  /// is deterministic). Also appends the records to this node's own WAL
  /// when one is configured, keeping replicas independently durable.
  Status ApplyReplicatedCommit(const std::vector<WalRecord>& ops,
                               uint64_t epoch);

  /// Forces the commit epoch to at least `epoch` (monotonic; never moves
  /// backwards). Used when a replica bootstraps from a primary snapshot
  /// so its first replicated commit continues the primary's epoch line.
  void AdvanceCommitEpochTo(uint64_t epoch);

  const std::string& name() const { return name_; }
  const Catalog& catalog() const { return catalog_; }
  /// Raw table access for single-threaded callers (benches, the XUIS
  /// generator at setup). Concurrent callers must go through Execute,
  /// which brackets statement execution with the reader/writer lock.
  Result<const Table*> GetTable(const std::string& table) const;
  /// Snapshot of the cumulative counters (by value: the fields advance
  /// concurrently under shared-lock reads).
  DatabaseStats stats() const;

  // --- Persistence ---
  /// Writes a full snapshot of catalogue + data to `path`.
  Status SaveSnapshot(const std::string& path) const;
  /// Replaces in-memory state from a snapshot file.
  Status LoadSnapshot(const std::string& path);
  /// In-memory forms of the above (used by coordinated backup).
  std::string SerializeSnapshot() const;
  Status LoadSnapshotFromString(const std::string& image);
  /// Snapshot + truncate the WAL (coordinated backup point; med's backup
  /// manager snapshots linked files alongside under RECOVERY YES).
  Status Checkpoint();

 private:
  struct UndoOp {
    enum class Kind { kInsert, kUpdate, kDelete, kCreateTable, kDropTable };
    Kind kind;
    std::string table;
    RowId row_id = 0;
    Row old_row;
    /// For kDropTable undo: the dropped table is stashed here.
    std::unique_ptr<Table> dropped_table;
  };

  struct Txn {
    uint64_t id;
    bool implicit = false;
    std::vector<UndoOp> undo;
    std::vector<WalRecord> wal_records;
    bool used_coordinator = false;
  };

  Result<QueryResult> ExecCreateTable(const CreateTableStmt& stmt,
                                      std::string_view sql);
  Result<QueryResult> ExecDropTable(const DropTableStmt& stmt,
                                    std::string_view sql);
  Result<QueryResult> ExecInsert(const InsertStmt& stmt,
                                 const ExecContext& ctx);
  Result<QueryResult> ExecUpdate(const UpdateStmt& stmt,
                                 const ExecContext& ctx);
  Result<QueryResult> ExecDelete(const DeleteStmt& stmt,
                                 const ExecContext& ctx);
  Result<QueryResult> ExecSelect(const SelectStmt& stmt,
                                 const ExecContext& ctx);
  /// EXPLAIN SELECT: plans the query and returns one PLAN row per node.
  /// With `analyze`, the plan is also executed and every operator line
  /// annotated with estimated vs. actual rows and wall time.
  Result<QueryResult> ExecExplain(const SelectStmt& stmt, bool analyze);
  /// COPY <table> FROM '<path>': binary bulk ingest. Runs one transaction
  /// per chunk (one kBulkLoad WAL record each), so a crash mid-COPY keeps
  /// exactly the chunks whose commit reached the log. Must be called with
  /// the exclusive lock held and no transaction active; manages its own
  /// per-chunk transactions.
  Result<QueryResult> ExecCopy(const CopyStmt& stmt, const ExecContext& ctx);

  Result<Table*> GetMutableTable(const std::string& table);

  /// Applies one committed WAL operation during recovery.
  Status ApplyWalOp(const WalRecord& op);

  /// Validates a row against NOT NULL / VARCHAR size, coercing values.
  Result<Row> ValidateAndCoerce(const TableDef& def, Row row) const;
  /// FK child-side check: every FK value must have a parent.
  Status CheckForeignKeysOnWrite(const TableDef& def, const Row& row) const;
  /// FK parent-side check: no children may reference `row`'s old values
  /// being removed/changed.
  Status CheckNoChildren(const TableDef& def, const Row& old_row,
                         const Row* new_row) const;
  /// SQL/MED side effects for a changed datalink column value.
  Status PrepareDatalinkChange(const ColumnDef& col, const Value* old_value,
                               const Value* new_value);

  /// Starts an implicit txn when none is active. Returns true when the
  /// statement owns (and must finish) the transaction.
  bool EnsureTxn();
  Status CommitInternal();
  void RollbackInternal();
  void AppendWal(WalRecord record);

  /// True when the calling thread owns the open explicit transaction (and
  /// with it the exclusive lock).
  bool OwnsExplicitTxn() const;
  /// Drops the explicit-transaction flag and releases the exclusive lock
  /// held since BEGIN. Call only from the owning thread.
  void ReleaseExplicitLock();

  /// ApplyIndexRecommendations body; call with the exclusive lock held.
  Status ApplyIndexRecommendationsLocked(uint64_t min_hits);

  /// Lock-free bodies; the public wrappers take `mu_` in the right mode.
  std::string SerializeSnapshotLocked() const;
  Status SaveSnapshotLocked(const std::string& path) const;
  Status LoadSnapshotFromStringLocked(const std::string& image);

  std::string name_;
  DatabaseOptions options_;
  io::Env* env_ = nullptr;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  DatalinkCoordinator* coordinator_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  stats::IndexAdvisor advisor_;
  std::unique_ptr<Txn> txn_;
  uint64_t next_txn_id_ = 1;
  std::unique_ptr<WalWriter> wal_;
  /// Why the WAL is unavailable when `wal_path` is set but `wal_` is null
  /// (open failure at construction, or a failed checkpoint reopen). Commits
  /// of a durability-configured database fail with this status rather than
  /// silently losing the log.
  Status wal_open_status_ = Status::OK();

  /// Reader/writer statement gate (see class comment).
  mutable std::shared_mutex mu_;
  /// Exclusive lock held across an explicit BEGIN..COMMIT span.
  std::unique_lock<std::shared_mutex> explicit_lock_;
  std::atomic<bool> explicit_txn_{false};
  std::atomic<std::thread::id> explicit_owner_{};
  std::atomic<uint64_t> commit_epoch_{0};
  CommitListener commit_listener_;

  struct Counters {
    std::atomic<uint64_t> statements{0};
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> rows_inserted{0};
    std::atomic<uint64_t> rows_updated{0};
    std::atomic<uint64_t> rows_deleted{0};
    std::atomic<uint64_t> txn_commits{0};
    std::atomic<uint64_t> txn_aborts{0};
    std::atomic<uint64_t> bulk_chunks{0};
  };
  Counters counters_;
};

}  // namespace easia::db

#endif  // EASIA_DB_DATABASE_H_
