#ifndef EASIA_DB_DATALINK_OPTIONS_H_
#define EASIA_DB_DATALINK_OPTIONS_H_

#include <string>

namespace easia::db {

/// Per-column DATALINK options from the SQL/MED committee draft
/// (ISO/IEC CD 9075-9). The paper's RESULT_FILE example:
///
///   download_result DATALINK
///     LINKTYPE URL
///     FILE LINK CONTROL
///     READ PERMISSION DB
///
/// FILE LINK CONTROL makes the DBMS check existence and take control of the
/// referenced file at INSERT/UPDATE; READ PERMISSION DB gates file reads on
/// an encrypted access token issued through database privileges.
struct DatalinkOptions {
  enum class LinkType { kUrl };
  enum class Integrity { kNone, kSelective, kAll };
  enum class ReadPermission { kFs, kDb };
  enum class WritePermission { kFs, kBlocked };
  enum class Recovery { kNo, kYes };
  enum class OnUnlink { kNone, kRestore, kDelete };

  LinkType link_type = LinkType::kUrl;
  /// NO FILE LINK CONTROL (false) stores the URL as a plain string; the file
  /// manager is not involved at all.
  bool file_link_control = false;
  Integrity integrity = Integrity::kNone;
  ReadPermission read_permission = ReadPermission::kFs;
  WritePermission write_permission = WritePermission::kFs;
  Recovery recovery = Recovery::kNo;
  OnUnlink on_unlink = OnUnlink::kNone;

  /// Renders the option clause back to SQL text.
  std::string ToSql() const;

  bool operator==(const DatalinkOptions&) const = default;
};

}  // namespace easia::db

#endif  // EASIA_DB_DATALINK_OPTIONS_H_
