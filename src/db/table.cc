#include "db/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace easia::db {

void EncodeValue(std::string* dst, const Value& value) {
  if (value.is_null()) {
    PutU8(dst, 0xFF);
    return;
  }
  PutU8(dst, static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case DataType::kInteger:
    case DataType::kTimestamp:
      PutU64(dst, static_cast<uint64_t>(value.AsInt()));
      break;
    case DataType::kDouble:
      PutDouble(dst, value.AsDouble());
      break;
    case DataType::kVarchar:
    case DataType::kBlob:
    case DataType::kClob:
    case DataType::kDatalink:
      PutLengthPrefixed(dst, value.AsString());
      break;
  }
}

Result<Value> DecodeValue(Decoder* dec) {
  EASIA_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  if (tag == 0xFF) return Value::Null();
  if (tag > static_cast<uint8_t>(DataType::kDatalink)) {
    return Status::Corruption("bad value type tag");
  }
  DataType type = static_cast<DataType>(tag);
  switch (type) {
    case DataType::kInteger: {
      EASIA_ASSIGN_OR_RETURN(uint64_t v, dec->GetU64());
      return Value::Integer(static_cast<int64_t>(v));
    }
    case DataType::kTimestamp: {
      EASIA_ASSIGN_OR_RETURN(uint64_t v, dec->GetU64());
      return Value::Timestamp(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      EASIA_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return Value::Double(v);
    }
    case DataType::kVarchar: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Varchar(std::move(s));
    }
    case DataType::kBlob: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Blob(std::move(s));
    }
    case DataType::kClob: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Clob(std::move(s));
    }
    case DataType::kDatalink: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Datalink(std::move(s));
    }
  }
  return Status::Corruption("bad value type tag");
}

void EncodeRow(std::string* dst, const Row& row) {
  PutU32(dst, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(dst, v);
}

Result<Row> DecodeRow(Decoder* dec) {
  EASIA_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    EASIA_ASSIGN_OR_RETURN(Value v, DecodeValue(dec));
    row.push_back(std::move(v));
  }
  return row;
}

Table::Table(TableDef def) : def_(std::move(def)) {
  auto add_index = [&](const std::vector<std::string>& columns,
                       bool primary) {
    UniqueIndex index;
    index.is_primary = primary;
    for (const std::string& c : columns) {
      Result<size_t> idx = def_.ColumnIndex(c);
      if (idx.ok()) index.column_indexes.push_back(*idx);
    }
    if (!index.column_indexes.empty()) indexes_.push_back(std::move(index));
  };
  if (!def_.primary_key.empty()) add_index(def_.primary_key, true);
  for (const auto& unique : def_.unique_constraints) add_index(unique, false);
  // One non-unique secondary index per foreign key, so FK-browse queries
  // (`WHERE fk_col = v`) need not scan. Skip FKs already covered exactly
  // by a unique index.
  for (const ForeignKeyDef& fk : def_.foreign_keys) {
    SecondaryIndex index;
    for (const std::string& c : fk.columns) {
      Result<size_t> idx = def_.ColumnIndex(c);
      if (idx.ok()) index.column_indexes.push_back(*idx);
    }
    if (index.column_indexes.size() != fk.columns.size()) continue;
    bool covered = false;
    for (const UniqueIndex& u : indexes_) {
      if (u.column_indexes == index.column_indexes) covered = true;
    }
    for (const SecondaryIndex& s : secondary_indexes_) {
      if (s.column_indexes == index.column_indexes) covered = true;
    }
    if (!covered) secondary_indexes_.push_back(std::move(index));
  }
}

std::string Table::MakeKey(const Row& row,
                           const std::vector<size_t>& column_indexes) {
  std::string key;
  for (size_t idx : column_indexes) {
    PutLengthPrefixed(&key, row[idx].ToKeyString());
  }
  return key;
}

bool Table::AllNonNull(const Row& row, const std::vector<size_t>& cols) {
  for (size_t idx : cols) {
    if (row[idx].is_null()) return false;
  }
  return true;
}

Status Table::CheckUnique(const Row& row, RowId exclude_id) const {
  for (const UniqueIndex& index : indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    std::string key = MakeKey(row, index.column_indexes);
    auto it = index.entries.find(key);
    if (it != index.entries.end() && it->second != exclude_id) {
      return Status::ConstraintViolation(
          (index.is_primary ? "duplicate primary key in table "
                            : "unique constraint violated in table ") +
          def_.name);
    }
  }
  return Status::OK();
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (UniqueIndex& index : indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    index.entries[MakeKey(row, index.column_indexes)] = id;
  }
  for (SecondaryIndex& index : secondary_indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    index.entries.emplace(MakeKey(row, index.column_indexes), id);
  }
}

void Table::IndexRemove(RowId id, const Row& row) {
  for (UniqueIndex& index : indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    auto it = index.entries.find(MakeKey(row, index.column_indexes));
    if (it != index.entries.end() && it->second == id) {
      index.entries.erase(it);
    }
  }
  for (SecondaryIndex& index : secondary_indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    auto range = index.entries.equal_range(MakeKey(row, index.column_indexes));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        index.entries.erase(it);
        break;
      }
    }
  }
}

Result<RowId> Table::Insert(Row row) {
  if (row.size() != def_.columns.size()) {
    return Status::Internal("row arity mismatch in table " + def_.name);
  }
  EASIA_RETURN_IF_ERROR(CheckUnique(row, 0));
  RowId id = next_row_id_++;
  IndexInsert(id, row);
  rows_.emplace(id, std::move(row));
  return id;
}

Status Table::InsertWithId(RowId id, Row row) {
  if (row.size() != def_.columns.size()) {
    return Status::Internal("row arity mismatch in table " + def_.name);
  }
  if (rows_.count(id) != 0) {
    return Status::AlreadyExists(StrPrintf("rowid %llu already present",
                                           static_cast<unsigned long long>(id)));
  }
  EASIA_RETURN_IF_ERROR(CheckUnique(row, 0));
  IndexInsert(id, row);
  rows_.emplace(id, std::move(row));
  if (id >= next_row_id_) next_row_id_ = id + 1;
  return Status::OK();
}

Status Table::Update(RowId id, Row new_row) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("update: no such row in " + def_.name);
  }
  if (new_row.size() != def_.columns.size()) {
    return Status::Internal("row arity mismatch in table " + def_.name);
  }
  EASIA_RETURN_IF_ERROR(CheckUnique(new_row, id));
  IndexRemove(id, it->second);
  IndexInsert(id, new_row);
  it->second = std::move(new_row);
  return Status::OK();
}

Status Table::Delete(RowId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("delete: no such row in " + def_.name);
  }
  IndexRemove(id, it->second);
  rows_.erase(it);
  return Status::OK();
}

Result<const Row*> Table::Get(RowId id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("no such row in " + def_.name);
  }
  return &it->second;
}

Result<RowId> Table::FindUnique(const std::vector<std::string>& columns,
                                const std::vector<Value>& key_values) const {
  if (columns.size() != key_values.size()) {
    return Status::InvalidArgument("FindUnique: arity mismatch");
  }
  std::vector<size_t> col_indexes;
  for (const std::string& c : columns) {
    EASIA_ASSIGN_OR_RETURN(size_t idx, def_.ColumnIndex(c));
    col_indexes.push_back(idx);
  }
  // Try an exact-match unique index (same column set, same order).
  for (const UniqueIndex& index : indexes_) {
    if (index.column_indexes == col_indexes) {
      std::string key;
      for (const Value& v : key_values) {
        PutLengthPrefixed(&key, v.ToKeyString());
      }
      auto it = index.entries.find(key);
      if (it == index.entries.end()) {
        return Status::NotFound("no row with given key in " + def_.name);
      }
      return it->second;
    }
  }
  // Fall back to a scan.
  for (const auto& [id, row] : rows_) {
    bool match = true;
    for (size_t i = 0; i < col_indexes.size(); ++i) {
      if (!row[col_indexes[i]].Equals(key_values[i])) {
        match = false;
        break;
      }
    }
    if (match) return id;
  }
  return Status::NotFound("no row with given key in " + def_.name);
}

std::vector<std::vector<std::string>> Table::UniqueIndexColumns() const {
  std::vector<std::vector<std::string>> out;
  for (const UniqueIndex& index : indexes_) {
    std::vector<std::string> columns;
    for (size_t idx : index.column_indexes) {
      columns.push_back(def_.columns[idx].name);
    }
    out.push_back(std::move(columns));
  }
  return out;
}

std::vector<std::vector<std::string>> Table::SecondaryIndexColumns() const {
  std::vector<std::vector<std::string>> out;
  for (const SecondaryIndex& index : secondary_indexes_) {
    std::vector<std::string> columns;
    for (size_t idx : index.column_indexes) {
      columns.push_back(def_.columns[idx].name);
    }
    out.push_back(std::move(columns));
  }
  return out;
}

Result<std::vector<RowId>> Table::FindByIndex(
    const std::vector<std::string>& columns,
    const std::vector<Value>& key_values) const {
  if (columns.size() != key_values.size()) {
    return Status::InvalidArgument("FindByIndex: arity mismatch");
  }
  // SQL equality: a NULL key matches no row.
  for (const Value& v : key_values) {
    if (v.is_null()) return std::vector<RowId>{};
  }
  std::vector<size_t> col_indexes;
  for (const std::string& c : columns) {
    EASIA_ASSIGN_OR_RETURN(size_t idx, def_.ColumnIndex(c));
    col_indexes.push_back(idx);
  }
  std::string key;
  for (const Value& v : key_values) {
    PutLengthPrefixed(&key, v.ToKeyString());
  }
  for (const UniqueIndex& index : indexes_) {
    if (index.column_indexes != col_indexes) continue;
    auto it = index.entries.find(key);
    if (it == index.entries.end()) return std::vector<RowId>{};
    return std::vector<RowId>{it->second};
  }
  for (const SecondaryIndex& index : secondary_indexes_) {
    if (index.column_indexes != col_indexes) continue;
    auto range = index.entries.equal_range(key);
    std::vector<RowId> ids;
    for (auto it = range.first; it != range.second; ++it) {
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  // No covering index: scan in RowId order.
  std::vector<RowId> ids;
  for (const auto& [id, row] : rows_) {
    bool match = true;
    for (size_t i = 0; i < col_indexes.size(); ++i) {
      if (row[col_indexes[i]].is_null() ||
          !row[col_indexes[i]].Equals(key_values[i])) {
        match = false;
        break;
      }
    }
    if (match) ids.push_back(id);
  }
  return ids;
}

bool Table::AnyRowWithValue(size_t column_index, const Value& value) const {
  for (const auto& [id, row] : rows_) {
    if (!row[column_index].is_null() && row[column_index].Equals(value)) {
      return true;
    }
  }
  return false;
}

}  // namespace easia::db
