#include "db/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace easia::db {

void EncodeValue(std::string* dst, const Value& value) {
  if (value.is_null()) {
    PutU8(dst, 0xFF);
    return;
  }
  PutU8(dst, static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case DataType::kInteger:
    case DataType::kTimestamp:
      PutU64(dst, static_cast<uint64_t>(value.AsInt()));
      break;
    case DataType::kDouble:
      PutDouble(dst, value.AsDouble());
      break;
    case DataType::kVarchar:
    case DataType::kBlob:
    case DataType::kClob:
    case DataType::kDatalink:
      PutLengthPrefixed(dst, value.AsString());
      break;
  }
}

Result<Value> DecodeValue(Decoder* dec) {
  EASIA_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  if (tag == 0xFF) return Value::Null();
  if (tag > static_cast<uint8_t>(DataType::kDatalink)) {
    return Status::Corruption("bad value type tag");
  }
  DataType type = static_cast<DataType>(tag);
  switch (type) {
    case DataType::kInteger: {
      EASIA_ASSIGN_OR_RETURN(uint64_t v, dec->GetU64());
      return Value::Integer(static_cast<int64_t>(v));
    }
    case DataType::kTimestamp: {
      EASIA_ASSIGN_OR_RETURN(uint64_t v, dec->GetU64());
      return Value::Timestamp(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      EASIA_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return Value::Double(v);
    }
    case DataType::kVarchar: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Varchar(std::move(s));
    }
    case DataType::kBlob: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Blob(std::move(s));
    }
    case DataType::kClob: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Clob(std::move(s));
    }
    case DataType::kDatalink: {
      EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
      return Value::Datalink(std::move(s));
    }
  }
  return Status::Corruption("bad value type tag");
}

void EncodeRow(std::string* dst, const Row& row) {
  PutU32(dst, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(dst, v);
}

Result<Row> DecodeRow(Decoder* dec) {
  EASIA_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    EASIA_ASSIGN_OR_RETURN(Value v, DecodeValue(dec));
    row.push_back(std::move(v));
  }
  return row;
}

Table::Table(TableDef def) : def_(std::move(def)) {
  stats_.Reset(def_.columns.size());
  if (def_.columnar) {
    column_store_ = std::make_unique<store::ColumnStore>(def_);
    // Columnar tables carry a radix prefix index per VARCHAR column,
    // powering LIKE-prefix pushdown and /typeahead name lookups.
    for (size_t i = 0; i < def_.columns.size(); ++i) {
      if (def_.columns[i].type == DataType::kVarchar) {
        radix_indexes_.try_emplace(i);
      }
    }
  }
  auto add_index = [&](const std::vector<std::string>& columns,
                       bool primary) {
    UniqueIndex index;
    index.is_primary = primary;
    for (const std::string& c : columns) {
      Result<size_t> idx = def_.ColumnIndex(c);
      if (idx.ok()) index.column_indexes.push_back(*idx);
    }
    if (!index.column_indexes.empty()) indexes_.push_back(std::move(index));
  };
  if (!def_.primary_key.empty()) add_index(def_.primary_key, true);
  for (const auto& unique : def_.unique_constraints) add_index(unique, false);
  // One non-unique secondary index per foreign key, so FK-browse queries
  // (`WHERE fk_col = v`) need not scan. Skip FKs already covered exactly
  // by a unique index.
  for (const ForeignKeyDef& fk : def_.foreign_keys) {
    SecondaryIndex index;
    for (const std::string& c : fk.columns) {
      Result<size_t> idx = def_.ColumnIndex(c);
      if (idx.ok()) index.column_indexes.push_back(*idx);
    }
    if (index.column_indexes.size() != fk.columns.size()) continue;
    bool covered = false;
    for (const UniqueIndex& u : indexes_) {
      if (u.column_indexes == index.column_indexes) covered = true;
    }
    for (const SecondaryIndex& s : secondary_indexes_) {
      if (s.column_indexes == index.column_indexes) covered = true;
    }
    if (!covered) secondary_indexes_.push_back(std::move(index));
  }
}

std::string Table::MakeKey(const Row& row,
                           const std::vector<size_t>& column_indexes) {
  std::string key;
  for (size_t idx : column_indexes) {
    PutLengthPrefixed(&key, row[idx].ToKeyString());
  }
  return key;
}

bool Table::AllNonNull(const Row& row, const std::vector<size_t>& cols) {
  for (size_t idx : cols) {
    if (row[idx].is_null()) return false;
  }
  return true;
}

Status Table::CheckUnique(const Row& row, RowId exclude_id) const {
  for (const UniqueIndex& index : indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    std::string key = MakeKey(row, index.column_indexes);
    auto it = index.entries.find(key);
    if (it != index.entries.end() && it->second != exclude_id) {
      return Status::ConstraintViolation(
          (index.is_primary ? "duplicate primary key in table "
                            : "unique constraint violated in table ") +
          def_.name);
    }
  }
  return Status::OK();
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (UniqueIndex& index : indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    index.entries[MakeKey(row, index.column_indexes)] = id;
  }
  NonUniqueIndexInsert(id, row);
}

Status Table::ReserveUniqueEntries(RowId id, const Row& row) {
  for (size_t n = 0; n < indexes_.size(); ++n) {
    UniqueIndex& index = indexes_[n];
    if (!AllNonNull(row, index.column_indexes)) continue;
    auto [it, inserted] =
        index.entries.try_emplace(MakeKey(row, index.column_indexes), id);
    if (inserted) continue;
    // Unwind the entries the earlier indexes reserved for this row.
    for (size_t m = 0; m < n; ++m) {
      UniqueIndex& prev = indexes_[m];
      if (!AllNonNull(row, prev.column_indexes)) continue;
      auto pit = prev.entries.find(MakeKey(row, prev.column_indexes));
      if (pit != prev.entries.end() && pit->second == id) {
        prev.entries.erase(pit);
      }
    }
    return Status::ConstraintViolation(
        (index.is_primary ? "duplicate primary key in table "
                          : "unique constraint violated in table ") +
        def_.name);
  }
  return Status::OK();
}

void Table::NonUniqueIndexInsert(RowId id, const Row& row) {
  for (SecondaryIndex& index : secondary_indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    index.entries.emplace(MakeKey(row, index.column_indexes), id);
  }
  for (auto& [col, radix] : radix_indexes_) {
    if (!row[col].is_null()) radix.Insert(row[col].AsString(), id);
  }
}

void Table::IndexRemove(RowId id, const Row& row) {
  for (UniqueIndex& index : indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    auto it = index.entries.find(MakeKey(row, index.column_indexes));
    if (it != index.entries.end() && it->second == id) {
      index.entries.erase(it);
    }
  }
  for (SecondaryIndex& index : secondary_indexes_) {
    if (!AllNonNull(row, index.column_indexes)) continue;
    auto range = index.entries.equal_range(MakeKey(row, index.column_indexes));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        index.entries.erase(it);
        break;
      }
    }
  }
  for (auto& [col, radix] : radix_indexes_) {
    if (!row[col].is_null()) radix.Remove(row[col].AsString(), id);
  }
}

Result<RowId> Table::Insert(const Row& row) {
  if (row.size() != def_.columns.size()) {
    return Status::Internal("row arity mismatch in table " + def_.name);
  }
  RowId id = next_row_id_;
  EASIA_RETURN_IF_ERROR(ReserveUniqueEntries(id, row));
  ++next_row_id_;
  if (column_store_) {
    Status appended = column_store_->Append(id, row);
    if (!appended.ok()) {
      IndexRemove(id, row);  // release the reserved unique entries
      return appended;
    }
  } else {
    rows_.emplace(id, row);
  }
  NonUniqueIndexInsert(id, row);
  stats_.AddRow(row);
  return id;
}

Result<RowId> Table::Insert(Row&& row) {
  // Columnar tables never store the row itself, so the const-ref path is
  // already copy-free there.
  if (column_store_) return Insert(row);
  if (row.size() != def_.columns.size()) {
    return Status::Internal("row arity mismatch in table " + def_.name);
  }
  RowId id = next_row_id_;
  EASIA_RETURN_IF_ERROR(ReserveUniqueEntries(id, row));
  ++next_row_id_;
  NonUniqueIndexInsert(id, row);
  stats_.AddRow(row);
  rows_.emplace(id, std::move(row));
  return id;
}

Status Table::InsertWithId(RowId id, Row row) {
  if (row.size() != def_.columns.size()) {
    return Status::Internal("row arity mismatch in table " + def_.name);
  }
  bool present =
      column_store_ ? column_store_->Contains(id) : rows_.count(id) != 0;
  if (present) {
    return Status::AlreadyExists(StrPrintf("rowid %llu already present",
                                           static_cast<unsigned long long>(id)));
  }
  EASIA_RETURN_IF_ERROR(CheckUnique(row, 0));
  if (column_store_) {
    EASIA_RETURN_IF_ERROR(column_store_->Append(id, row));
  }
  IndexInsert(id, row);
  stats_.AddRow(row);
  if (!column_store_) rows_.emplace(id, std::move(row));
  if (id >= next_row_id_) next_row_id_ = id + 1;
  return Status::OK();
}

Status Table::Update(RowId id, Row new_row) {
  if (new_row.size() != def_.columns.size()) {
    return Status::Internal("row arity mismatch in table " + def_.name);
  }
  if (column_store_) {
    Result<Row> old_row = column_store_->Get(id);
    if (!old_row.ok()) {
      return Status::NotFound("update: no such row in " + def_.name);
    }
    EASIA_RETURN_IF_ERROR(CheckUnique(new_row, id));
    EASIA_RETURN_IF_ERROR(column_store_->Update(id, new_row));
    IndexRemove(id, *old_row);
    IndexInsert(id, new_row);
    stats_.RemoveRow(*old_row);
    stats_.AddRow(new_row);
    return Status::OK();
  }
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("update: no such row in " + def_.name);
  }
  EASIA_RETURN_IF_ERROR(CheckUnique(new_row, id));
  IndexRemove(id, it->second);
  IndexInsert(id, new_row);
  stats_.RemoveRow(it->second);
  stats_.AddRow(new_row);
  it->second = std::move(new_row);
  return Status::OK();
}

Status Table::Delete(RowId id) {
  if (column_store_) {
    Result<Row> old_row = column_store_->Get(id);
    if (!old_row.ok()) {
      return Status::NotFound("delete: no such row in " + def_.name);
    }
    EASIA_RETURN_IF_ERROR(column_store_->Delete(id));
    IndexRemove(id, *old_row);
    stats_.RemoveRow(*old_row);
    return Status::OK();
  }
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("delete: no such row in " + def_.name);
  }
  IndexRemove(id, it->second);
  stats_.RemoveRow(it->second);
  rows_.erase(it);
  return Status::OK();
}

Result<Row> Table::Get(RowId id) const {
  if (column_store_) {
    Result<Row> row = column_store_->Get(id);
    if (!row.ok()) return Status::NotFound("no such row in " + def_.name);
    return row;
  }
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("no such row in " + def_.name);
  }
  return it->second;
}

void Table::ForEachRow(
    const std::function<void(RowId, const Row&)>& fn) const {
  if (column_store_) {
    column_store_->ForEachRow(fn);
    return;
  }
  for (const auto& [id, row] : rows_) fn(id, row);
}

Result<RowId> Table::FindUnique(const std::vector<std::string>& columns,
                                const std::vector<Value>& key_values) const {
  if (columns.size() != key_values.size()) {
    return Status::InvalidArgument("FindUnique: arity mismatch");
  }
  std::vector<size_t> col_indexes;
  for (const std::string& c : columns) {
    EASIA_ASSIGN_OR_RETURN(size_t idx, def_.ColumnIndex(c));
    col_indexes.push_back(idx);
  }
  // Try an exact-match unique index (same column set, same order).
  for (const UniqueIndex& index : indexes_) {
    if (index.column_indexes == col_indexes) {
      std::string key;
      for (const Value& v : key_values) {
        PutLengthPrefixed(&key, v.ToKeyString());
      }
      auto it = index.entries.find(key);
      if (it == index.entries.end()) {
        return Status::NotFound("no row with given key in " + def_.name);
      }
      return it->second;
    }
  }
  // Fall back to a scan (first match in RowId order).
  RowId found = 0;
  bool has_found = false;
  ForEachRow([&](RowId id, const Row& row) {
    if (has_found) return;
    for (size_t i = 0; i < col_indexes.size(); ++i) {
      if (!row[col_indexes[i]].Equals(key_values[i])) return;
    }
    found = id;
    has_found = true;
  });
  if (has_found) return found;
  return Status::NotFound("no row with given key in " + def_.name);
}

std::vector<std::vector<std::string>> Table::UniqueIndexColumns() const {
  std::vector<std::vector<std::string>> out;
  for (const UniqueIndex& index : indexes_) {
    std::vector<std::string> columns;
    for (size_t idx : index.column_indexes) {
      columns.push_back(def_.columns[idx].name);
    }
    out.push_back(std::move(columns));
  }
  return out;
}

std::vector<std::vector<std::string>> Table::SecondaryIndexColumns() const {
  std::vector<std::vector<std::string>> out;
  for (const SecondaryIndex& index : secondary_indexes_) {
    std::vector<std::string> columns;
    for (size_t idx : index.column_indexes) {
      columns.push_back(def_.columns[idx].name);
    }
    out.push_back(std::move(columns));
  }
  return out;
}

Result<std::vector<RowId>> Table::FindByIndex(
    const std::vector<std::string>& columns,
    const std::vector<Value>& key_values) const {
  if (columns.size() != key_values.size()) {
    return Status::InvalidArgument("FindByIndex: arity mismatch");
  }
  // SQL equality: a NULL key matches no row.
  for (const Value& v : key_values) {
    if (v.is_null()) return std::vector<RowId>{};
  }
  std::vector<size_t> col_indexes;
  for (const std::string& c : columns) {
    EASIA_ASSIGN_OR_RETURN(size_t idx, def_.ColumnIndex(c));
    col_indexes.push_back(idx);
  }
  std::string key;
  for (const Value& v : key_values) {
    PutLengthPrefixed(&key, v.ToKeyString());
  }
  for (const UniqueIndex& index : indexes_) {
    if (index.column_indexes != col_indexes) continue;
    auto it = index.entries.find(key);
    if (it == index.entries.end()) return std::vector<RowId>{};
    return std::vector<RowId>{it->second};
  }
  for (const SecondaryIndex& index : secondary_indexes_) {
    if (index.column_indexes != col_indexes) continue;
    auto range = index.entries.equal_range(key);
    std::vector<RowId> ids;
    for (auto it = range.first; it != range.second; ++it) {
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  // No covering index: scan in RowId order.
  std::vector<RowId> ids;
  ForEachRow([&](RowId id, const Row& row) {
    for (size_t i = 0; i < col_indexes.size(); ++i) {
      if (row[col_indexes[i]].is_null() ||
          !row[col_indexes[i]].Equals(key_values[i])) {
        return;
      }
    }
    ids.push_back(id);
  });
  return ids;
}

bool Table::AnyRowWithValue(size_t column_index, const Value& value) const {
  bool found = false;
  ForEachRow([&](RowId /*id*/, const Row& row) {
    if (found) return;
    if (!row[column_index].is_null() && row[column_index].Equals(value)) {
      found = true;
    }
  });
  return found;
}

const store::RadixIndex* Table::FindRadix(std::string_view column) const {
  Result<size_t> idx = def_.ColumnIndex(column);
  if (!idx.ok()) return nullptr;
  auto it = radix_indexes_.find(*idx);
  return it == radix_indexes_.end() ? nullptr : &it->second;
}

bool Table::HasRadixIndex(std::string_view column) const {
  return FindRadix(column) != nullptr;
}

std::vector<RowId> Table::RadixPrefixRowIds(std::string_view column,
                                            std::string_view prefix) const {
  const store::RadixIndex* radix = FindRadix(column);
  if (radix == nullptr) return {};
  return radix->PrefixRowIds(prefix);
}

std::vector<std::string> Table::RadixPrefixValues(std::string_view column,
                                                  std::string_view prefix,
                                                  size_t limit) const {
  const store::RadixIndex* radix = FindRadix(column);
  if (radix == nullptr) return {};
  return radix->PrefixValues(prefix, limit);
}

Status Table::CreateSecondaryIndex(const std::vector<std::string>& columns) {
  SecondaryIndex index;
  for (const std::string& c : columns) {
    EASIA_ASSIGN_OR_RETURN(size_t idx, def_.ColumnIndex(c));
    index.column_indexes.push_back(idx);
  }
  if (index.column_indexes.empty()) {
    return Status::InvalidArgument("secondary index needs columns");
  }
  for (const UniqueIndex& u : indexes_) {
    if (u.column_indexes == index.column_indexes) return Status::OK();
  }
  for (const SecondaryIndex& s : secondary_indexes_) {
    if (s.column_indexes == index.column_indexes) return Status::OK();
  }
  ForEachRow([&](RowId id, const Row& row) {
    if (!AllNonNull(row, index.column_indexes)) return;
    index.entries.emplace(MakeKey(row, index.column_indexes), id);
  });
  secondary_indexes_.push_back(std::move(index));
  return Status::OK();
}

Table::StorageStats Table::GetStorageStats() const {
  StorageStats stats;
  stats.columnar = column_store_ != nullptr;
  stats.rows = RowCount();
  if (column_store_) stats.columnar_bytes = column_store_->ApproxBytes();
  for (const auto& [col, radix] : radix_indexes_) {
    store::RadixIndex::Stats rs = radix.GetStats();
    stats.radix_nodes += rs.nodes;
    stats.radix_bytes += rs.bytes;
  }
  return stats;
}

}  // namespace easia::db
