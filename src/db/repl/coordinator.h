#ifndef EASIA_DB_REPL_COORDINATOR_H_
#define EASIA_DB_REPL_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/database.h"
#include "db/repl/replica.h"
#include "db/repl/shipper.h"
#include "sim/network.h"

namespace easia::obs {
class MetricsRegistry;
}  // namespace easia::obs

namespace easia::db::repl {

struct CoordinatorOptions {
  /// sim::Network host the primary database lives on.
  std::string primary_host = "db";
  /// A replica may serve reads while its applied epoch is within this
  /// many commits of the primary's epoch. 0 = replicas must be fully
  /// caught up.
  uint64_t max_read_lag_epochs = 0;
  /// Replicas that must have applied a commit before Execute acks it
  /// (semi-synchronous replication). Clamped to the replica count; 0
  /// turns quorum acking off (fire-and-forget shipping). The quorum is
  /// also the failover safety bound: acked commits survive promotion as
  /// long as fewer than ack_quorum replicas are down simultaneously.
  size_t ack_quorum = 1;
  /// Primary is presumed dead when no heartbeat arrived for this long
  /// (seconds on the shared sim clock).
  double heartbeat_timeout_seconds = 5.0;
  size_t max_entries_per_shipment = 64;
  /// When false (default), MaybeFailover REFUSES to promote while enough
  /// replicas are down that one of them may hold acked commits the best
  /// live candidate lacks (down count >= ack_quorum and a down replica
  /// ahead of the candidate). When true, promotion proceeds anyway and
  /// those acked commits are knowingly lost (counted in
  /// lossy_failovers).
  bool allow_lossy_failover = false;
};

/// One row of the /stats replication table.
struct ReplicaInfo {
  std::string host;
  uint64_t last_applied_lsn = 0;
  uint64_t term = 1;
  uint64_t applied_epoch = 0;
  uint64_t lag_epochs = 0;
  bool down = false;
};

/// The descriptor a read executes against: which node's database to
/// query, and that node's applied commit epoch — the validator a cache
/// entry rendered from this read must carry. Using the *serving node's*
/// epoch (not the primary's) is load-bearing: a page rendered from a
/// lagging replica and stamped with the primary's newer epoch would be
/// served as fresh after the replica catches up, leaking stale data into
/// a "current" cache slot.
struct ReadTicket {
  Database* db = nullptr;
  uint64_t epoch = 0;
  std::string node;
  bool replica = false;
};

/// Routes statements across a primary and N replicas: reads go to a
/// fresh-enough replica (round-robin) with primary fallback, writes go to
/// the primary and ship synchronously under a semi-synchronous quorum.
/// Detects primary failure by heartbeat timeout and promotes the most
/// caught-up live replica by (term, LSN), starting a new timeline term
/// whose first entry is an epoch-barrier no-op — replicas that were down
/// across the failover and hold truncated old-timeline commits are fenced
/// by the term history and re-seeded via Bootstrap instead of silently
/// diverging.
///
/// Threading: RouteRead/read-Execute and the metric callbacks may run
/// concurrently with each other and with ONE writer thread (which owns
/// write-Execute, ShipAll, Heartbeat, MaybeFailover and the Network).
/// AddReplica is setup-time only.
class ReplicationCoordinator {
 public:
  ReplicationCoordinator(Database* primary, sim::Network* network,
                         CoordinatorOptions options = {});

  ReplicationCoordinator(const ReplicationCoordinator&) = delete;
  ReplicationCoordinator& operator=(const ReplicationCoordinator&) = delete;
  ~ReplicationCoordinator();

  /// Creates a replica on `host` (a sim host linked from the primary) and
  /// registers it for routing. Returns the node; the coordinator owns it.
  ReplicaNode* AddReplica(const std::string& host,
                          DatabaseOptions db_options = {});

  /// Routes one statement. SELECT/EXPLAIN execute on the ticket from
  /// RouteRead(). Everything else executes on the primary, ships to all
  /// reachable replicas, and — when ack_quorum > 0 — must be applied by
  /// at least the quorum before it is acked. Distinct failure codes tell
  /// the caller what a retry would do:
  ///
  ///   kUnavailable — the primary is down; nothing committed, a retry
  ///     after failover is safe.
  ///   kAborted — the statement COMMITTED on the primary but missed the
  ///     ack quorum. It is durable there yet unacked: a failover may
  ///     legitimately discard it, and a blind retry would double-apply
  ///     the DML. The message carries the committed LSN so callers can
  ///     make retries idempotent.
  Result<QueryResult> Execute(std::string_view sql,
                              const ExecContext& ctx = {});

  /// Picks the serving node for one read: round-robin over replicas whose
  /// applied epoch is within max_read_lag_epochs of the primary's, else
  /// the primary. Replicas on an older timeline term (not yet past the
  /// latest failover barrier, or diverged and awaiting bootstrap) never
  /// serve. After the primary is detected down (and until a failover
  /// promotes a new one), reads degrade to the most caught-up live
  /// replica.
  ReadTicket RouteRead();

  /// Ships pending log entries to every live replica; returns the first
  /// error (remaining replicas are still attempted). Replicas the log was
  /// trimmed past — and replicas whose timeline diverged across a
  /// failover — are re-seeded from a primary snapshot.
  Status ShipAll();

  /// Records a primary liveness signal at the network's current sim time.
  void Heartbeat();
  /// True when the last heartbeat is older than the timeout.
  bool PrimaryDown() const;
  /// Promotes the most caught-up live replica (max (term, LSN)) when the
  /// primary is down: truncates the log to its LSN, begins a new term
  /// with an epoch-barrier entry, re-targets writes and shipping, and
  /// removes it from the read-replica set. Returns the promoted host;
  /// kFailedPrecondition when the primary is still live or when the
  /// promotion would lose acked commits held only by down replicas (see
  /// CoordinatorOptions::allow_lossy_failover); kNotFound when no live
  /// replica exists.
  Result<std::string> MaybeFailover();

  Database* primary() const { return primary_; }
  const std::string& primary_host() const { return options_.primary_host; }
  ReplicationLog& log() { return log_; }
  WalShipper& shipper() { return *shipper_; }
  std::vector<ReplicaInfo> replica_info() const;

  /// Registers easia_repl_* pull-style families (lag/LSN gauges per
  /// replica, shipment/read/write/failover counters) on `metrics`.
  void RegisterMetrics(obs::MetricsRegistry* metrics);

  uint64_t reads_primary() const {
    return reads_primary_.load(std::memory_order_relaxed);
  }
  uint64_t reads_replica() const {
    return reads_replica_.load(std::memory_order_relaxed);
  }
  uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }
  uint64_t quorum_failures() const {
    return quorum_failures_.load(std::memory_order_relaxed);
  }
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// Promotions refused because a down replica may hold acked commits
  /// the candidate lacks.
  uint64_t failovers_refused() const {
    return failovers_refused_.load(std::memory_order_relaxed);
  }
  /// Promotions that proceeded despite that risk
  /// (allow_lossy_failover).
  uint64_t lossy_failovers() const {
    return lossy_failovers_.load(std::memory_order_relaxed);
  }

 private:
  void AttachListener(Database* db);

  sim::Network* network_;
  CoordinatorOptions options_;
  ReplicationLog log_;
  std::unique_ptr<WalShipper> shipper_;

  /// Guards primary_/replicas_ topology and the round-robin cursor
  /// against concurrent RouteRead callers (failover mutates topology from
  /// the writer thread under the same mutex).
  mutable std::mutex mu_;
  Database* primary_;
  std::vector<std::unique_ptr<ReplicaNode>> replicas_;
  /// Replicas promoted to primary stay owned here (primary_ aliases the
  /// promoted node's database).
  std::vector<std::unique_ptr<ReplicaNode>> promoted_;
  size_t round_robin_ = 0;

  std::atomic<double> last_heartbeat_;
  std::atomic<uint64_t> reads_primary_{0};
  std::atomic<uint64_t> reads_replica_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> quorum_failures_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> failovers_refused_{0};
  std::atomic<uint64_t> lossy_failovers_{0};
};

}  // namespace easia::db::repl

#endif  // EASIA_DB_REPL_COORDINATOR_H_
