#include "db/repl/coordinator.h"

#include <algorithm>
#include <utility>

#include "db/parser.h"
#include "obs/metrics.h"

namespace easia::db::repl {

namespace {

/// Replica freshness ordered by timeline first: an entry from a higher
/// term supersedes any LSN amount of older-term history (the old-term
/// tail past the failover boundary is dead data).
bool PositionLess(uint64_t term_a, uint64_t lsn_a, uint64_t term_b,
                  uint64_t lsn_b) {
  if (term_a != term_b) return term_a < term_b;
  return lsn_a < lsn_b;
}

}  // namespace

ReplicationCoordinator::ReplicationCoordinator(Database* primary,
                                               sim::Network* network,
                                               CoordinatorOptions options)
    : network_(network),
      options_(std::move(options)),
      primary_(primary),
      last_heartbeat_(network->Now()) {
  shipper_ = std::make_unique<WalShipper>(
      &log_, network_,
      WalShipper::Options{options_.primary_host,
                          options_.max_entries_per_shipment});
  AttachListener(primary_);
}

ReplicationCoordinator::~ReplicationCoordinator() {
  // Detach so a primary that outlives the coordinator does not call into
  // a destroyed log.
  primary_->set_commit_listener({});
}

void ReplicationCoordinator::AttachListener(Database* db) {
  db->set_commit_listener(
      [this](uint64_t epoch, const std::vector<WalRecord>& records) {
        log_.Append(epoch, records);
      });
}

ReplicaNode* ReplicationCoordinator::AddReplica(const std::string& host,
                                                DatabaseOptions db_options) {
  std::lock_guard<std::mutex> lock(mu_);
  replicas_.push_back(
      std::make_unique<ReplicaNode>(host, std::move(db_options)));
  return replicas_.back().get();
}

Result<QueryResult> ReplicationCoordinator::Execute(std::string_view sql,
                                                    const ExecContext& ctx) {
  EASIA_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.kind == Statement::Kind::kSelect ||
      stmt.kind == Statement::Kind::kExplain) {
    ReadTicket ticket = RouteRead();
    return ticket.db->ExecuteStatement(stmt, sql, ctx);
  }
  if (PrimaryDown()) {
    return Status::Unavailable(
        "repl: primary is down, writes unavailable until failover");
  }
  Database* primary;
  {
    std::lock_guard<std::mutex> lock(mu_);
    primary = primary_;
  }
  uint64_t lsn_before = log_.last_lsn();
  EASIA_ASSIGN_OR_RETURN(QueryResult result,
                         primary->ExecuteStatement(stmt, sql, ctx));
  if (log_.last_lsn() == lsn_before) return result;  // nothing committed
  writes_.fetch_add(1, std::memory_order_relaxed);
  Status ship = ShipAll();
  size_t quorum = options_.ack_quorum;
  if (quorum == 0) return result;
  uint64_t target = log_.last_lsn();
  uint64_t term = log_.current_term();
  size_t caught_up = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& replica : replicas_) {
      if (replica->down()) continue;
      // A replica counts toward the quorum only on the current timeline:
      // a diverged node left over from a failover can report an LSN past
      // the target without holding the commit at all.
      if (replica->term() != term) continue;
      if (replica->last_applied_lsn() >= target) ++caught_up;
    }
    quorum = std::min(quorum, replicas_.size());
  }
  if (caught_up < quorum) {
    // COMMITTED on the primary, durable there, but below the ack quorum.
    // kAborted (not kUnavailable) on purpose: this is not a
    // retry-until-it-works condition — the statement already applied
    // once, so a blind retry would double-apply it, and a failover may
    // legitimately discard it. The committed LSN is in the message so a
    // caller can de-duplicate an idempotent retry.
    quorum_failures_.fetch_add(1, std::memory_order_relaxed);
    std::string detail = "repl: commit at lsn " + std::to_string(target) +
                         " below ack quorum (" + std::to_string(caught_up) +
                         "/" + std::to_string(quorum) +
                         " replicas); durable on primary but unacked — do "
                         "not blindly retry";
    if (!ship.ok()) {
      detail += "; ship error: " + std::string(ship.message());
    }
    return Status::Aborted(std::move(detail));
  }
  return result;
}

ReadTicket ReplicationCoordinator::RouteRead() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t primary_epoch = primary_->commit_epoch();
  uint64_t current_term = log_.current_term();
  if (!PrimaryDown()) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      ReplicaNode& candidate =
          *replicas_[(round_robin_ + i) % replicas_.size()];
      if (candidate.down()) continue;
      // Fencing: a replica that has not crossed the latest failover
      // barrier (older term) may hold truncated old-timeline commits —
      // its epoch can even EXCEED the new primary's while its data is
      // wrong. It serves nothing until shipping re-validates or
      // bootstraps it onto the current timeline.
      if (candidate.term() != current_term) continue;
      uint64_t applied = candidate.applied_epoch();
      if (applied > primary_epoch) continue;
      if (applied + options_.max_read_lag_epochs < primary_epoch) continue;
      round_robin_ = (round_robin_ + i + 1) % replicas_.size();
      reads_replica_.fetch_add(1, std::memory_order_relaxed);
      return {&candidate.database(), applied, candidate.host(), true};
    }
    reads_primary_.fetch_add(1, std::memory_order_relaxed);
    return {primary_, primary_epoch, options_.primary_host, false};
  }
  // Primary presumed dead: degrade to the most caught-up live replica so
  // stale-bounded reads survive the failover window.
  ReplicaNode* best = nullptr;
  for (const auto& replica : replicas_) {
    if (replica->down()) continue;
    if (best == nullptr ||
        PositionLess(best->term(), best->last_applied_lsn(),
                     replica->term(), replica->last_applied_lsn())) {
      best = replica.get();
    }
  }
  if (best != nullptr) {
    reads_replica_.fetch_add(1, std::memory_order_relaxed);
    return {&best->database(), best->applied_epoch(), best->host(), true};
  }
  reads_primary_.fetch_add(1, std::memory_order_relaxed);
  return {primary_, primary_epoch, options_.primary_host, false};
}

Status ReplicationCoordinator::ShipAll() {
  std::vector<ReplicaNode*> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& replica : replicas_) {
      if (!replica->down()) targets.push_back(replica.get());
    }
  }
  Status first_error = Status::OK();
  for (ReplicaNode* replica : targets) {
    Result<size_t> shipped = shipper_->ShipTo(replica);
    if (shipped.ok()) continue;
    if (shipped.status().code() == StatusCode::kOutOfRange) {
      // The log was trimmed past this replica's resume point, or its
      // timeline diverged across a failover: re-seed it from a primary
      // snapshot (single-writer discipline means the snapshot is exactly
      // the state at the log head).
      Database* primary;
      {
        std::lock_guard<std::mutex> lock(mu_);
        primary = primary_;
      }
      Status bootstrap = replica->Bootstrap(primary->SerializeSnapshot(),
                                            log_.last_lsn(),
                                            primary->commit_epoch(),
                                            log_.current_term());
      if (bootstrap.ok()) continue;
      if (first_error.ok()) first_error = bootstrap;
      continue;
    }
    if (first_error.ok()) first_error = shipped.status();
  }
  return first_error;
}

void ReplicationCoordinator::Heartbeat() {
  last_heartbeat_.store(network_->Now(), std::memory_order_release);
}

bool ReplicationCoordinator::PrimaryDown() const {
  return network_->Now() -
             last_heartbeat_.load(std::memory_order_acquire) >
         options_.heartbeat_timeout_seconds;
}

Result<std::string> ReplicationCoordinator::MaybeFailover() {
  if (!PrimaryDown()) {
    return Status::FailedPrecondition("repl: primary is still live");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Most caught-up live replica by (term, LSN) wins: any commit acked
  // under quorum was applied by >= ack_quorum replicas, so while fewer
  // than ack_quorum replicas are down, at least one live replica holds
  // every acked commit and the max-position node covers all of them.
  // That is the safety bound — it does NOT hold once ack_quorum (or
  // more) replicas are down together, which the refusal check below
  // guards.
  size_t best = replicas_.size();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i]->down()) continue;
    if (best == replicas_.size() ||
        PositionLess(replicas_[best]->term(),
                     replicas_[best]->last_applied_lsn(),
                     replicas_[i]->term(),
                     replicas_[i]->last_applied_lsn())) {
      best = i;
    }
  }
  if (best == replicas_.size()) {
    return Status::NotFound("repl: no live replica to promote");
  }
  // Safety check: with >= ack_quorum replicas down, a commit may have
  // been acked exclusively through down replicas. If one of them is
  // ahead of the candidate, promoting would silently discard commits the
  // client saw acknowledged — refuse unless the operator opted into
  // lossy failover.
  size_t down_count = 0;
  for (const auto& replica : replicas_) {
    if (replica->down()) ++down_count;
  }
  if (options_.ack_quorum > 0 && down_count >= options_.ack_quorum) {
    for (const auto& replica : replicas_) {
      if (!replica->down()) continue;
      if (PositionLess(replicas_[best]->term(),
                       replicas_[best]->last_applied_lsn(),
                       replica->term(), replica->last_applied_lsn())) {
        if (!options_.allow_lossy_failover) {
          failovers_refused_.fetch_add(1, std::memory_order_relaxed);
          return Status::FailedPrecondition(
              "repl: down replica " + replica->host() + " (term " +
              std::to_string(replica->term()) + ", lsn " +
              std::to_string(replica->last_applied_lsn()) +
              ") may hold acked commits past promotion candidate " +
              replicas_[best]->host() + " (term " +
              std::to_string(replicas_[best]->term()) + ", lsn " +
              std::to_string(replicas_[best]->last_applied_lsn()) +
              "); refusing lossy failover — recover the replica or set "
              "allow_lossy_failover");
        }
        lossy_failovers_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  std::unique_ptr<ReplicaNode> promoted = std::move(replicas_[best]);
  replicas_.erase(replicas_.begin() + best);
  // Entries past the promoted LSN were never acked; they die with the
  // old primary. The new timeline term fences stragglers: a replica that
  // was down across this failover and still holds truncated entries will
  // fail the term-history check on its next shipment and be bootstrapped
  // instead of silently skipping new entries as "duplicates".
  log_.TruncateAfter(promoted->last_applied_lsn());
  log_.BeginTerm();
  // Epoch barrier: the dead primary handed out epochs up to
  // log_.max_epoch(); restart the new timeline strictly above them so an
  // epoch can never name two different states (render caches key on it).
  // The barrier itself is a no-op log entry, so surviving replicas adopt
  // the new term and epoch through the ordinary apply path.
  uint64_t barrier_epoch =
      std::max(log_.max_epoch(), promoted->database().commit_epoch()) + 1;
  promoted->database().AdvanceCommitEpochTo(barrier_epoch);
  log_.Append(barrier_epoch, {});
  primary_->set_commit_listener({});
  primary_ = &promoted->database();
  options_.primary_host = promoted->host();
  shipper_ = std::make_unique<WalShipper>(
      &log_, network_,
      WalShipper::Options{options_.primary_host,
                          options_.max_entries_per_shipment});
  AttachListener(primary_);
  promoted_.push_back(std::move(promoted));
  round_robin_ = 0;
  failovers_.fetch_add(1, std::memory_order_relaxed);
  last_heartbeat_.store(network_->Now(), std::memory_order_release);
  return options_.primary_host;
}

std::vector<ReplicaInfo> ReplicationCoordinator::replica_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t primary_epoch = primary_->commit_epoch();
  std::vector<ReplicaInfo> out;
  out.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    ReplicaInfo info;
    info.host = replica->host();
    info.last_applied_lsn = replica->last_applied_lsn();
    info.term = replica->term();
    info.applied_epoch = replica->applied_epoch();
    info.lag_epochs = primary_epoch > info.applied_epoch
                          ? primary_epoch - info.applied_epoch
                          : 0;
    info.down = replica->down();
    out.push_back(std::move(info));
  }
  return out;
}

void ReplicationCoordinator::RegisterMetrics(obs::MetricsRegistry* metrics) {
  using Samples = std::vector<std::pair<obs::Labels, double>>;
  (void)metrics->RegisterCallback(
      "easia_repl_replica_lag_epochs",
      "Commit epochs each replica trails the primary by",
      obs::MetricsRegistry::CallbackKind::kGauge, [this] {
        Samples out;
        for (const ReplicaInfo& info : replica_info()) {
          out.push_back({{{"replica", info.host}},
                         static_cast<double>(info.lag_epochs)});
        }
        return out;
      });
  (void)metrics->RegisterCallback(
      "easia_repl_replica_applied_lsn",
      "Last replication log sequence number applied per replica",
      obs::MetricsRegistry::CallbackKind::kGauge, [this] {
        Samples out;
        for (const ReplicaInfo& info : replica_info()) {
          out.push_back({{{"replica", info.host}},
                         static_cast<double>(info.last_applied_lsn)});
        }
        return out;
      });
  (void)metrics->RegisterCallback(
      "easia_repl_reads_total",
      "Reads routed by the replication coordinator, by serving node kind",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        return Samples{
            {{{"node", "primary"}}, static_cast<double>(reads_primary())},
            {{{"node", "replica"}}, static_cast<double>(reads_replica())}};
      });
  (void)metrics->RegisterCallback(
      "easia_repl_writes_total",
      "Mutating statements routed to the primary",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        return Samples{{{}, static_cast<double>(writes())}};
      });
  (void)metrics->RegisterCallback(
      "easia_repl_failovers_total", "Primary failovers performed",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        return Samples{{{}, static_cast<double>(failovers())}};
      });
  (void)metrics->RegisterCallback(
      "easia_repl_failovers_refused_total",
      "Promotions refused because a down replica may hold acked commits",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        return Samples{{{}, static_cast<double>(failovers_refused())}};
      });
  (void)metrics->RegisterCallback(
      "easia_repl_quorum_failures_total",
      "Commits that missed the replication ack quorum",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        return Samples{{{}, static_cast<double>(quorum_failures())}};
      });
  (void)metrics->RegisterCallback(
      "easia_repl_shipments_total",
      "WAL shipments transferred to replicas",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return Samples{{{},
                        static_cast<double>(shipper_->counters().shipments.load(
                            std::memory_order_relaxed))}};
      });
  (void)metrics->RegisterCallback(
      "easia_repl_shipped_bytes_total",
      "Bytes of WAL shipments transferred to replicas",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return Samples{
            {{},
             static_cast<double>(shipper_->counters().bytes_shipped.load(
                 std::memory_order_relaxed))}};
      });
  (void)metrics->RegisterCallback(
      "easia_repl_torn_shipments_total",
      "Shipments that arrived truncated or checksum-corrupt",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t torn = 0;
        for (const auto& replica : replicas_) {
          torn += replica->counters().torn_shipments.load(
              std::memory_order_relaxed);
        }
        for (const auto& replica : promoted_) {
          torn += replica->counters().torn_shipments.load(
              std::memory_order_relaxed);
        }
        return Samples{{{}, static_cast<double>(torn)}};
      });
}

}  // namespace easia::db::repl
