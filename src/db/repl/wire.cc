#include "db/repl/wire.h"

#include "common/coding.h"
#include "common/io.h"

namespace easia::db::repl {

std::string CommitEntry::Encode() const {
  std::string out;
  PutU64(&out, lsn);
  PutU64(&out, epoch);
  PutU32(&out, static_cast<uint32_t>(records.size()));
  for (const WalRecord& rec : records) {
    PutLengthPrefixed(&out, rec.Encode());
  }
  return out;
}

Result<CommitEntry> CommitEntry::Decode(std::string_view data) {
  Decoder dec(data);
  CommitEntry entry;
  EASIA_ASSIGN_OR_RETURN(entry.lsn, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(entry.epoch, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  entry.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EASIA_ASSIGN_OR_RETURN(std::string encoded, dec.GetLengthPrefixed());
    EASIA_ASSIGN_OR_RETURN(WalRecord rec, WalRecord::Decode(encoded));
    entry.records.push_back(std::move(rec));
  }
  if (!dec.Done()) {
    return Status::Corruption("repl: trailing bytes in commit entry");
  }
  return entry;
}

std::string EncodeShipment(const std::vector<CommitEntry>& entries) {
  std::string out;
  for (const CommitEntry& entry : entries) {
    io::AppendFrame(&out, entry.Encode());
  }
  return out;
}

namespace {

uint32_t ReadU32Le(std::string_view bytes, size_t pos) {
  return static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos])) |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 3])) << 24;
}

}  // namespace

Shipment DecodeShipment(std::string_view bytes) {
  Shipment out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      out.torn = true;
      break;
    }
    uint32_t length = ReadU32Le(bytes, pos);
    uint32_t crc = ReadU32Le(bytes, pos + 4);
    if (bytes.size() - pos - 8 < length) {
      out.torn = true;
      break;
    }
    std::string_view payload = bytes.substr(pos + 8, length);
    if (Crc32(payload) != crc) {
      out.torn = true;
      break;
    }
    Result<CommitEntry> entry = CommitEntry::Decode(payload);
    if (!entry.ok()) {
      out.torn = true;
      break;
    }
    out.entries.push_back(std::move(*entry));
    pos += 8 + length;
  }
  return out;
}

}  // namespace easia::db::repl
