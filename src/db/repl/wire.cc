#include "db/repl/wire.h"

#include "common/coding.h"
#include "common/io.h"

namespace easia::db::repl {

namespace {

// Frame payload kinds. The tag byte makes shipments self-describing: a
// decoder never has to guess whether frame 0 is a header.
constexpr char kFrameHeader = 0x01;
constexpr char kFrameEntry = 0x02;

}  // namespace

std::string CommitEntry::Encode() const {
  std::string out;
  PutU64(&out, lsn);
  PutU64(&out, term);
  PutU64(&out, epoch);
  PutU32(&out, static_cast<uint32_t>(records.size()));
  for (const WalRecord& rec : records) {
    PutLengthPrefixed(&out, rec.Encode());
  }
  return out;
}

Result<CommitEntry> CommitEntry::Decode(std::string_view data) {
  Decoder dec(data);
  CommitEntry entry;
  EASIA_ASSIGN_OR_RETURN(entry.lsn, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(entry.term, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(entry.epoch, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  entry.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EASIA_ASSIGN_OR_RETURN(std::string encoded, dec.GetLengthPrefixed());
    EASIA_ASSIGN_OR_RETURN(WalRecord rec, WalRecord::Decode(encoded));
    entry.records.push_back(std::move(rec));
  }
  if (!dec.Done()) {
    return Status::Corruption("repl: trailing bytes in commit entry");
  }
  return entry;
}

std::string ShipmentHeader::Encode() const {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(terms.size()));
  for (const TermRecord& rec : terms) {
    PutU64(&out, rec.term);
    PutU64(&out, rec.start_lsn);
  }
  return out;
}

Result<ShipmentHeader> ShipmentHeader::Decode(std::string_view data) {
  Decoder dec(data);
  ShipmentHeader header;
  EASIA_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  header.terms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TermRecord rec;
    EASIA_ASSIGN_OR_RETURN(rec.term, dec.GetU64());
    EASIA_ASSIGN_OR_RETURN(rec.start_lsn, dec.GetU64());
    header.terms.push_back(rec);
  }
  if (!dec.Done()) {
    return Status::Corruption("repl: trailing bytes in shipment header");
  }
  return header;
}

std::string EncodeShipment(const ShipmentHeader& header,
                           const std::vector<CommitEntry>& entries) {
  std::string out;
  std::string payload(1, kFrameHeader);
  payload += header.Encode();
  io::AppendFrame(&out, payload);
  for (const CommitEntry& entry : entries) {
    payload.assign(1, kFrameEntry);
    payload += entry.Encode();
    io::AppendFrame(&out, payload);
  }
  return out;
}

std::string EncodeShipment(const std::vector<CommitEntry>& entries) {
  std::string out;
  std::string payload;
  for (const CommitEntry& entry : entries) {
    payload.assign(1, kFrameEntry);
    payload += entry.Encode();
    io::AppendFrame(&out, payload);
  }
  return out;
}

namespace {

uint32_t ReadU32Le(std::string_view bytes, size_t pos) {
  return static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos])) |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 3])) << 24;
}

}  // namespace

Shipment DecodeShipment(std::string_view bytes) {
  Shipment out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      out.torn = true;
      break;
    }
    uint32_t length = ReadU32Le(bytes, pos);
    uint32_t crc = ReadU32Le(bytes, pos + 4);
    if (bytes.size() - pos - 8 < length) {
      out.torn = true;
      break;
    }
    std::string_view payload = bytes.substr(pos + 8, length);
    if (Crc32(payload) != crc || payload.empty()) {
      out.torn = true;
      break;
    }
    std::string_view body = payload.substr(1);
    if (payload[0] == kFrameHeader) {
      Result<ShipmentHeader> header = ShipmentHeader::Decode(body);
      if (!header.ok()) {
        out.torn = true;
        break;
      }
      out.header = std::move(*header);
      out.has_header = true;
    } else if (payload[0] == kFrameEntry) {
      Result<CommitEntry> entry = CommitEntry::Decode(body);
      if (!entry.ok()) {
        out.torn = true;
        break;
      }
      out.entries.push_back(std::move(*entry));
    } else {
      out.torn = true;
      break;
    }
    pos += 8 + length;
  }
  return out;
}

}  // namespace easia::db::repl
