#include "db/repl/shipper.h"

#include <utility>

namespace easia::db::repl {

uint64_t ReplicationLog::Append(uint64_t epoch,
                                const std::vector<WalRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  CommitEntry entry;
  entry.lsn = next_lsn_++;
  entry.epoch = epoch;
  entry.records = records;
  entries_.push_back(std::move(entry));
  return entries_.back().lsn;
}

std::vector<CommitEntry> ReplicationLog::EntriesAfter(uint64_t after_lsn,
                                                      size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CommitEntry> out;
  for (const CommitEntry& entry : entries_) {
    if (entry.lsn <= after_lsn) continue;
    out.push_back(entry);
    if (out.size() >= limit) break;
  }
  return out;
}

size_t ReplicationLog::TrimThrough(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  while (!entries_.empty() && entries_.front().lsn <= lsn) {
    entries_.pop_front();
    ++dropped;
  }
  return dropped;
}

void ReplicationLog::TruncateAfter(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty() && entries_.back().lsn > lsn) {
    entries_.pop_back();
  }
  next_lsn_ = entries_.empty() ? lsn + 1 : entries_.back().lsn + 1;
}

uint64_t ReplicationLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

uint64_t ReplicationLog::first_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? 0 : entries_.front().lsn;
}

size_t ReplicationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

WalShipper::WalShipper(ReplicationLog* log, sim::Network* network,
                       Options options)
    : log_(log), network_(network), options_(std::move(options)) {}

Result<size_t> WalShipper::ShipTo(ReplicaNode* replica) {
  size_t total_applied = 0;
  if (replica->last_applied_lsn() < log_->last_lsn()) {
    counters_.resumes.fetch_add(1, std::memory_order_relaxed);
  }
  while (replica->last_applied_lsn() < log_->last_lsn()) {
    uint64_t resume_lsn = replica->last_applied_lsn();
    std::vector<CommitEntry> batch =
        log_->EntriesAfter(resume_lsn, options_.max_entries_per_shipment);
    if (batch.empty() || batch.front().lsn != resume_lsn + 1) {
      return Status::OutOfRange(
          "repl: log trimmed past replica " + replica->host() +
          " (resume lsn " + std::to_string(resume_lsn) +
          ", log starts at " + std::to_string(log_->first_lsn()) + ")");
    }
    std::string bytes = EncodeShipment(batch);
    if (transport_fault_) transport_fault_(&bytes);
    Result<sim::TransferRecord> rec = network_->Transfer(
        options_.primary_host, replica->host(), bytes.size());
    if (!rec.ok()) {
      counters_.failed_transfers.fetch_add(1, std::memory_order_relaxed);
      return rec.status();
    }
    counters_.shipments.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_shipped.fetch_add(bytes.size(),
                                      std::memory_order_relaxed);
    EASIA_ASSIGN_OR_RETURN(ReplicaNode::ApplyOutcome outcome,
                           replica->ApplyShipment(bytes));
    counters_.entries_shipped.fetch_add(outcome.applied,
                                        std::memory_order_relaxed);
    total_applied += outcome.applied;
    if (outcome.applied == 0) {
      // A fully corrupt shipment applied nothing; looping again would
      // resend the same bytes through the same fault forever. Surface it
      // and let the caller retry once the transport heals.
      return Status::Corruption("repl: shipment to " + replica->host() +
                                " made no progress");
    }
  }
  return total_applied;
}

}  // namespace easia::db::repl
