#include "db/repl/shipper.h"

#include <algorithm>
#include <utility>

namespace easia::db::repl {

uint64_t ReplicationLog::Append(uint64_t epoch,
                                const std::vector<WalRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  CommitEntry entry;
  entry.lsn = next_lsn_++;
  entry.term = terms_.back().term;
  entry.epoch = epoch;
  entry.records = records;
  max_epoch_ = std::max(max_epoch_, epoch);
  entries_.push_back(std::move(entry));
  return entries_.back().lsn;
}

std::vector<CommitEntry> ReplicationLog::EntriesAfter(uint64_t after_lsn,
                                                      size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CommitEntry> out;
  for (const CommitEntry& entry : entries_) {
    if (entry.lsn <= after_lsn) continue;
    out.push_back(entry);
    if (out.size() >= limit) break;
  }
  return out;
}

size_t ReplicationLog::TrimThrough(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  while (!entries_.empty() && entries_.front().lsn <= lsn) {
    entries_.pop_front();
    ++dropped;
  }
  return dropped;
}

void ReplicationLog::TruncateAfter(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty() && entries_.back().lsn > lsn) {
    entries_.pop_back();
  }
  next_lsn_ = entries_.empty() ? lsn + 1 : entries_.back().lsn + 1;
  // Terms that would start past the new head never owned a surviving
  // entry; drop them (the term counter itself never goes backwards).
  while (terms_.size() > 1 && terms_.back().start_lsn > lsn + 1) {
    uint64_t dropped_term = terms_.back().term;
    terms_.pop_back();
    // Keep the highest term number ever used so BeginTerm stays monotone.
    terms_.back().term = std::max(terms_.back().term, dropped_term);
  }
}

uint64_t ReplicationLog::BeginTerm() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t next_term = terms_.back().term + 1;
  terms_.push_back({next_term, next_lsn_});
  return next_term;
}

uint64_t ReplicationLog::current_term() const {
  std::lock_guard<std::mutex> lock(mu_);
  return terms_.back().term;
}

std::vector<TermRecord> ReplicationLog::term_history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return terms_;
}

uint64_t ReplicationLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

uint64_t ReplicationLog::first_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? 0 : entries_.front().lsn;
}

uint64_t ReplicationLog::max_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_epoch_;
}

size_t ReplicationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

WalShipper::WalShipper(ReplicationLog* log, sim::Network* network,
                       Options options)
    : log_(log), network_(network), options_(std::move(options)) {}

Result<size_t> WalShipper::ShipTo(ReplicaNode* replica) {
  // A resume is a recovery, not a routine catch-up: count it only when a
  // ship SUCCEEDS after the previous ShipTo for this replica errored —
  // a still-failing retry is not a resume.
  Result<size_t> out = ShipEntries(replica);
  if (out.ok()) {
    if (failed_last_ship_.erase(replica->host()) > 0) {
      counters_.resumes.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    failed_last_ship_.insert(replica->host());
  }
  return out;
}

Result<size_t> WalShipper::ShipEntries(ReplicaNode* replica) {
  size_t total_applied = 0;
  // A replica still on an older term that has nothing left to receive by
  // LSN can only be a truncated-tail survivor of a failover it missed:
  // a timeline-consistent replica always trails the term-opening barrier
  // entry. Shipping can't repair it; it needs a snapshot bootstrap.
  if (replica->term() < log_->current_term() &&
      replica->last_applied_lsn() >= log_->last_lsn()) {
    return Status::OutOfRange(
        "repl: replica " + replica->host() + " is at term " +
        std::to_string(replica->term()) + " lsn " +
        std::to_string(replica->last_applied_lsn()) +
        " past the term-" + std::to_string(log_->current_term()) +
        " log head — diverged, bootstrap required");
  }
  while (replica->last_applied_lsn() < log_->last_lsn()) {
    uint64_t resume_lsn = replica->last_applied_lsn();
    std::vector<CommitEntry> batch =
        log_->EntriesAfter(resume_lsn, options_.max_entries_per_shipment);
    if (batch.empty() || batch.front().lsn != resume_lsn + 1) {
      return Status::OutOfRange(
          "repl: log trimmed past replica " + replica->host() +
          " (resume lsn " + std::to_string(resume_lsn) +
          ", log starts at " + std::to_string(log_->first_lsn()) + ")");
    }
    ShipmentHeader header;
    header.terms = log_->term_history();
    std::string bytes = EncodeShipment(header, batch);
    if (transport_fault_) transport_fault_(&bytes);
    Result<sim::TransferRecord> rec = network_->Transfer(
        options_.primary_host, replica->host(), bytes.size());
    if (!rec.ok()) {
      counters_.failed_transfers.fetch_add(1, std::memory_order_relaxed);
      return rec.status();
    }
    counters_.shipments.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_shipped.fetch_add(bytes.size(),
                                      std::memory_order_relaxed);
    EASIA_ASSIGN_OR_RETURN(ReplicaNode::ApplyOutcome outcome,
                           replica->ApplyShipment(bytes));
    counters_.entries_shipped.fetch_add(outcome.applied,
                                        std::memory_order_relaxed);
    total_applied += outcome.applied;
    if (outcome.applied == 0) {
      // A fully corrupt shipment applied nothing; looping again would
      // resend the same bytes through the same fault forever. Surface it
      // and let the caller retry once the transport heals.
      return Status::Corruption("repl: shipment to " + replica->host() +
                                " made no progress");
    }
  }
  return total_applied;
}

}  // namespace easia::db::repl
