#ifndef EASIA_DB_REPL_REPLICA_H_
#define EASIA_DB_REPL_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "db/database.h"
#include "db/repl/wire.h"

namespace easia::db::repl {

/// Cumulative per-replica counters (atomics: the apply path writes them
/// while metric callbacks and routing threads read them).
struct ReplicaCounters {
  std::atomic<uint64_t> shipments_applied{0};
  std::atomic<uint64_t> entries_applied{0};
  std::atomic<uint64_t> duplicate_entries{0};
  std::atomic<uint64_t> torn_shipments{0};
  /// Shipments rejected because this replica's (term, lsn) position fell
  /// off the shipped timeline (its tail was truncated by a failover it
  /// missed); each rejection sends it down the Bootstrap path.
  std::atomic<uint64_t> diverged_rejects{0};
};

/// One replica: a named sim host owning its own `db::Database`, fed
/// exclusively through ApplyShipment (never by direct DML — the
/// coordinator routes all writes to the primary). Tracks the LSN of the
/// last applied commit (the resume point for the shipper), the timeline
/// term that commit belonged to (the fencing input across failovers) and
/// the commit epoch its state mirrors (the staleness input for read
/// routing).
class ReplicaNode {
 public:
  /// `host` is the sim::Network host name shipments arrive on.
  /// `db_options` may carry a wal_path/env to make the replica
  /// independently durable; default is a pure in-memory replica.
  explicit ReplicaNode(std::string host, DatabaseOptions db_options = {});

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  const std::string& host() const { return host_; }
  Database& database() { return *db_; }
  const Database& database() const { return *db_; }

  /// LSN of the last commit applied here; the shipper resumes after it.
  uint64_t last_applied_lsn() const {
    return last_applied_lsn_.load(std::memory_order_acquire);
  }
  /// Timeline term of the last applied commit (1 until the first
  /// failover-era entry arrives). A replica whose term trails the log's
  /// current term has not crossed the latest failover boundary yet — and
  /// if its LSN exceeds that boundary, its tail is divergent.
  uint64_t term() const { return term_.load(std::memory_order_acquire); }
  /// Commit epoch this replica's visible state mirrors. Monotonic along a
  /// timeline: apply only ever advances it; only a divergence Bootstrap
  /// (timeline switch) may reset it to the new primary's epoch.
  uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }

  /// Administrative/crash state: a down replica receives no shipments and
  /// serves no reads until marked up again.
  void set_down(bool down) { down_.store(down, std::memory_order_release); }
  bool down() const { return down_.load(std::memory_order_acquire); }

  struct ApplyOutcome {
    size_t applied = 0;
    /// The shipment ended in a torn/corrupt frame; the intact prefix (if
    /// any) was applied and the shipper should resend from
    /// last_applied_lsn().
    bool torn = false;
  };

  /// Decodes `bytes` and applies its entries in order. When the shipment
  /// carries a term-history header, this replica's (term, lsn) position
  /// is validated against it first: a position past the end of its own
  /// term means a failover truncated this replica's tail while it was
  /// down — the state diverged, and the shipment fails kOutOfRange
  /// (bootstrap required) WITHOUT treating overlapping LSNs as
  /// duplicates. On a validated (or headerless same-term) timeline,
  /// entries at or below the current LSN are duplicates (a retried
  /// shipment) and are skipped; an entry that skips ahead of current
  /// LSN + 1 is a gap and fails kOutOfRange without applying anything
  /// further; an entry from an older term than this replica's is a
  /// fenced-out stale primary and fails kFailedPrecondition.
  /// `max_entries` is a crash seam for the fault harness: apply at most
  /// that many entries, as if the replica died mid-shipment.
  Result<ApplyOutcome> ApplyShipment(std::string_view bytes,
                                     size_t max_entries = SIZE_MAX);

  /// Replaces this replica's state with a primary snapshot image taken at
  /// (`lsn`, `epoch`) under timeline `term`: the bootstrap path for a
  /// new, trimmed-past or diverged replica. Subsequent shipments resume
  /// after `lsn`.
  Status Bootstrap(const std::string& snapshot_image, uint64_t lsn,
                   uint64_t epoch, uint64_t term = 1);

  const ReplicaCounters& counters() const { return counters_; }

 private:
  std::string host_;
  std::unique_ptr<Database> db_;
  std::atomic<uint64_t> last_applied_lsn_{0};
  std::atomic<uint64_t> term_{1};
  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<bool> down_{false};
  ReplicaCounters counters_;
};

}  // namespace easia::db::repl

#endif  // EASIA_DB_REPL_REPLICA_H_
