#ifndef EASIA_DB_REPL_REPLICA_H_
#define EASIA_DB_REPL_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "db/database.h"
#include "db/repl/wire.h"

namespace easia::db::repl {

/// Cumulative per-replica counters (atomics: the apply path writes them
/// while metric callbacks and routing threads read them).
struct ReplicaCounters {
  std::atomic<uint64_t> shipments_applied{0};
  std::atomic<uint64_t> entries_applied{0};
  std::atomic<uint64_t> duplicate_entries{0};
  std::atomic<uint64_t> torn_shipments{0};
};

/// One replica: a named sim host owning its own `db::Database`, fed
/// exclusively through ApplyShipment (never by direct DML — the
/// coordinator routes all writes to the primary). Tracks the LSN of the
/// last applied commit (the resume point for the shipper) and the commit
/// epoch its state mirrors (the staleness input for read routing).
class ReplicaNode {
 public:
  /// `host` is the sim::Network host name shipments arrive on.
  /// `db_options` may carry a wal_path/env to make the replica
  /// independently durable; default is a pure in-memory replica.
  explicit ReplicaNode(std::string host, DatabaseOptions db_options = {});

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  const std::string& host() const { return host_; }
  Database& database() { return *db_; }
  const Database& database() const { return *db_; }

  /// LSN of the last commit applied here; the shipper resumes after it.
  uint64_t last_applied_lsn() const {
    return last_applied_lsn_.load(std::memory_order_acquire);
  }
  /// Commit epoch this replica's visible state mirrors. Monotonic: apply
  /// only ever advances it, never rewinds (enforced, not assumed).
  uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }

  /// Administrative/crash state: a down replica receives no shipments and
  /// serves no reads until marked up again.
  void set_down(bool down) { down_.store(down, std::memory_order_release); }
  bool down() const { return down_.load(std::memory_order_acquire); }

  struct ApplyOutcome {
    size_t applied = 0;
    /// The shipment ended in a torn/corrupt frame; the intact prefix (if
    /// any) was applied and the shipper should resend from
    /// last_applied_lsn().
    bool torn = false;
  };

  /// Decodes `bytes` and applies its entries in order. Entries at or
  /// below the current LSN are duplicates (a retried shipment) and are
  /// skipped; an entry that skips ahead of current LSN + 1 is a gap and
  /// fails kOutOfRange without applying anything further (the replica
  /// must bootstrap if the shipper's log no longer reaches back far
  /// enough). `max_entries` is a crash seam for the fault harness: apply
  /// at most that many entries, as if the replica died mid-shipment.
  Result<ApplyOutcome> ApplyShipment(std::string_view bytes,
                                     size_t max_entries = SIZE_MAX);

  /// Replaces this replica's state with a primary snapshot image taken at
  /// (`lsn`, `epoch`): the bootstrap path for a new or trimmed-past
  /// replica. Subsequent shipments resume after `lsn`.
  Status Bootstrap(const std::string& snapshot_image, uint64_t lsn,
                   uint64_t epoch);

  const ReplicaCounters& counters() const { return counters_; }

 private:
  std::string host_;
  std::unique_ptr<Database> db_;
  std::atomic<uint64_t> last_applied_lsn_{0};
  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<bool> down_{false};
  ReplicaCounters counters_;
};

}  // namespace easia::db::repl

#endif  // EASIA_DB_REPL_REPLICA_H_
