#ifndef EASIA_DB_REPL_SHIPPER_H_
#define EASIA_DB_REPL_SHIPPER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/repl/replica.h"
#include "db/repl/wire.h"
#include "sim/network.h"

namespace easia::db::repl {

/// The primary-side shipping log: every committed mutating transaction is
/// appended as one CommitEntry under the next LSN (LSN 1 is the first
/// commit). Thread-safe — the commit listener appends under the primary's
/// exclusive lock while the shipper reads from the writer thread and
/// metric callbacks sample sizes from collection threads.
class ReplicationLog {
 public:
  /// Appends one committed transaction; returns the LSN it was assigned.
  uint64_t Append(uint64_t epoch, const std::vector<WalRecord>& records);

  /// Entries with LSN in (after_lsn, after_lsn + limit], in order. When
  /// `after_lsn` falls below the trim point the caller cannot resume from
  /// the log and must bootstrap the replica instead (detected by the
  /// first returned LSN not being after_lsn + 1).
  std::vector<CommitEntry> EntriesAfter(uint64_t after_lsn,
                                        size_t limit) const;

  /// Drops entries with LSN <= `lsn` (already applied by every replica);
  /// returns how many were dropped.
  size_t TrimThrough(uint64_t lsn);

  /// Discards entries with LSN > `lsn`. Failover uses this: commits past
  /// the promoted replica's LSN were never acked under quorum and die
  /// with the old primary.
  void TruncateAfter(uint64_t lsn);

  uint64_t last_lsn() const;
  /// Smallest LSN still in the log (0 when empty).
  uint64_t first_lsn() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<CommitEntry> entries_;
  uint64_t next_lsn_ = 1;
};

/// Cumulative shipper counters (atomics; sampled by metric callbacks).
struct ShipperCounters {
  std::atomic<uint64_t> shipments{0};
  std::atomic<uint64_t> entries_shipped{0};
  std::atomic<uint64_t> bytes_shipped{0};
  std::atomic<uint64_t> failed_transfers{0};
  std::atomic<uint64_t> resumes{0};
};

/// Ships log entries to replicas over sim::Network links, resuming each
/// replica from its own last-applied LSN. Batched: at most
/// `max_entries_per_shipment` commits per transfer. Not thread-safe with
/// respect to the Network — exactly one thread (the writer) may ship.
class WalShipper {
 public:
  struct Options {
    std::string primary_host = "db";
    size_t max_entries_per_shipment = 64;
  };

  WalShipper(ReplicationLog* log, sim::Network* network, Options options);

  /// Fault seam: invoked with the encoded shipment bytes before
  /// "transmission", free to truncate or corrupt them (torn-shipment
  /// injection). Pass nullptr to clear.
  void set_transport_fault(std::function<void(std::string*)> fault) {
    transport_fault_ = std::move(fault);
  }

  /// Ships until `replica` has applied everything currently in the log.
  /// Returns the number of entries applied, or the first transport/apply
  /// error (the replica keeps its clean prefix; a later call resumes from
  /// its advanced LSN). kOutOfRange means the log was trimmed past the
  /// replica's resume point and it needs a Bootstrap.
  Result<size_t> ShipTo(ReplicaNode* replica);

  const ShipperCounters& counters() const { return counters_; }
  const Options& options() const { return options_; }

 private:
  ReplicationLog* log_;
  sim::Network* network_;
  Options options_;
  std::function<void(std::string*)> transport_fault_;
  ShipperCounters counters_;
};

}  // namespace easia::db::repl

#endif  // EASIA_DB_REPL_SHIPPER_H_
