#ifndef EASIA_DB_REPL_SHIPPER_H_
#define EASIA_DB_REPL_SHIPPER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/repl/replica.h"
#include "db/repl/wire.h"
#include "sim/network.h"

namespace easia::db::repl {

/// The primary-side shipping log: every committed mutating transaction is
/// appended as one CommitEntry under the next LSN (LSN 1 is the first
/// commit) and the current timeline term. The term starts at 1 and is
/// bumped by BeginTerm at every failover; the term history (term ->
/// start LSN) rides along in every shipment so replicas can detect that
/// their tail was truncated by a failover they missed. Thread-safe — the
/// commit listener appends under the primary's exclusive lock while the
/// shipper reads from the writer thread and metric callbacks sample sizes
/// from collection threads.
class ReplicationLog {
 public:
  ReplicationLog() : terms_{{1, 1}} {}

  /// Appends one committed transaction under the current term; returns
  /// the LSN it was assigned.
  uint64_t Append(uint64_t epoch, const std::vector<WalRecord>& records);

  /// Entries with LSN in (after_lsn, after_lsn + limit], in order. When
  /// `after_lsn` falls below the trim point the caller cannot resume from
  /// the log and must bootstrap the replica instead (detected by the
  /// first returned LSN not being after_lsn + 1).
  std::vector<CommitEntry> EntriesAfter(uint64_t after_lsn,
                                        size_t limit) const;

  /// Drops entries with LSN <= `lsn` (already applied by every replica);
  /// returns how many were dropped. Term history is never trimmed.
  size_t TrimThrough(uint64_t lsn);

  /// Discards entries with LSN > `lsn`. Failover uses this: commits past
  /// the promoted replica's LSN were never acked under quorum and die
  /// with the old primary. Term records left dangling past the new head
  /// are dropped too (terms never renumber backwards — BeginTerm keeps
  /// counting up).
  void TruncateAfter(uint64_t lsn);

  /// Starts a new timeline at the current head (next LSN): called once
  /// per failover, after TruncateAfter. Returns the new term.
  uint64_t BeginTerm();

  uint64_t current_term() const;
  /// Snapshot of the term history for shipment headers.
  std::vector<TermRecord> term_history() const;

  uint64_t last_lsn() const;
  /// Smallest LSN still in the log (0 when empty).
  uint64_t first_lsn() const;
  /// Largest commit epoch ever appended — survives trims and truncation,
  /// so failover can fence the new timeline's epochs above every epoch
  /// the dead one may have handed out.
  uint64_t max_epoch() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<CommitEntry> entries_;
  std::vector<TermRecord> terms_;
  uint64_t next_lsn_ = 1;
  uint64_t max_epoch_ = 0;
};

/// Cumulative shipper counters (atomics; sampled by metric callbacks).
/// `resumes` counts recoveries: a ShipTo call for a replica whose
/// previous ShipTo ended in an error or torn outcome (ordinary catch-up
/// rounds are not resumes).
struct ShipperCounters {
  std::atomic<uint64_t> shipments{0};
  std::atomic<uint64_t> entries_shipped{0};
  std::atomic<uint64_t> bytes_shipped{0};
  std::atomic<uint64_t> failed_transfers{0};
  std::atomic<uint64_t> resumes{0};
};

/// Ships log entries to replicas over sim::Network links, resuming each
/// replica from its own last-applied LSN. Batched: at most
/// `max_entries_per_shipment` commits per transfer. Every shipment leads
/// with the log's term history so replicas can fence divergent tails.
/// Not thread-safe with respect to the Network — exactly one thread (the
/// writer) may ship.
class WalShipper {
 public:
  struct Options {
    std::string primary_host = "db";
    size_t max_entries_per_shipment = 64;
  };

  WalShipper(ReplicationLog* log, sim::Network* network, Options options);

  /// Fault seam: invoked with the encoded shipment bytes before
  /// "transmission", free to truncate or corrupt them (torn-shipment
  /// injection). Pass nullptr to clear.
  void set_transport_fault(std::function<void(std::string*)> fault) {
    transport_fault_ = std::move(fault);
  }

  /// Ships until `replica` has applied everything currently in the log.
  /// Returns the number of entries applied, or the first transport/apply
  /// error (the replica keeps its clean prefix; a later call resumes from
  /// its advanced LSN). kOutOfRange means the replica cannot be caught up
  /// from the log — trimmed past its resume point, or its timeline
  /// diverged across a failover — and it needs a Bootstrap.
  Result<size_t> ShipTo(ReplicaNode* replica);

  const ShipperCounters& counters() const { return counters_; }
  const Options& options() const { return options_; }

 private:
  Result<size_t> ShipEntries(ReplicaNode* replica);

  ReplicationLog* log_;
  sim::Network* network_;
  Options options_;
  std::function<void(std::string*)> transport_fault_;
  ShipperCounters counters_;
  /// Replicas whose previous ShipTo ended in an error (writer-thread
  /// only, like the Network).
  std::set<std::string> failed_last_ship_;
};

}  // namespace easia::db::repl

#endif  // EASIA_DB_REPL_SHIPPER_H_
