#include "db/repl/replica.h"

#include <utility>

namespace easia::db::repl {

ReplicaNode::ReplicaNode(std::string host, DatabaseOptions db_options)
    : host_(std::move(host)),
      db_(std::make_unique<Database>(host_, std::move(db_options))) {}

Result<ReplicaNode::ApplyOutcome> ReplicaNode::ApplyShipment(
    std::string_view bytes, size_t max_entries) {
  if (down()) {
    return Status::Unavailable("repl: replica " + host_ + " is down");
  }
  Shipment shipment = DecodeShipment(bytes);
  ApplyOutcome outcome;
  outcome.torn = shipment.torn;
  if (shipment.torn) {
    counters_.torn_shipments.fetch_add(1, std::memory_order_relaxed);
  }
  for (const CommitEntry& entry : shipment.entries) {
    if (outcome.applied >= max_entries) break;
    uint64_t lsn = last_applied_lsn_.load(std::memory_order_acquire);
    if (entry.lsn <= lsn) {
      // A retried shipment overlaps what we already applied; applying it
      // again would double-apply inserts, so skip silently.
      counters_.duplicate_entries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (entry.lsn != lsn + 1) {
      return Status::OutOfRange(
          "repl: shipment gap on " + host_ + ": at lsn " +
          std::to_string(lsn) + ", got " + std::to_string(entry.lsn) +
          " (bootstrap required)");
    }
    if (entry.epoch <= applied_epoch_.load(std::memory_order_acquire)) {
      return Status::Corruption("repl: non-monotonic epoch on " + host_);
    }
    EASIA_RETURN_IF_ERROR(
        db_->ApplyReplicatedCommit(entry.records, entry.epoch));
    last_applied_lsn_.store(entry.lsn, std::memory_order_release);
    applied_epoch_.store(entry.epoch, std::memory_order_release);
    ++outcome.applied;
    counters_.entries_applied.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.shipments_applied.fetch_add(1, std::memory_order_relaxed);
  return outcome;
}

Status ReplicaNode::Bootstrap(const std::string& snapshot_image,
                              uint64_t lsn, uint64_t epoch) {
  EASIA_RETURN_IF_ERROR(db_->LoadSnapshotFromString(snapshot_image));
  // The snapshot restore bumped the replica's local epoch; pin it to the
  // primary's epoch line so promoted-replica commits continue above every
  // epoch any cache has seen.
  db_->AdvanceCommitEpochTo(epoch);
  last_applied_lsn_.store(lsn, std::memory_order_release);
  applied_epoch_.store(epoch, std::memory_order_release);
  return Status::OK();
}

}  // namespace easia::db::repl
