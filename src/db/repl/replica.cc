#include "db/repl/replica.h"

#include <utility>

namespace easia::db::repl {

ReplicaNode::ReplicaNode(std::string host, DatabaseOptions db_options)
    : host_(std::move(host)),
      db_(std::make_unique<Database>(host_, std::move(db_options))) {}

Result<ReplicaNode::ApplyOutcome> ReplicaNode::ApplyShipment(
    std::string_view bytes, size_t max_entries) {
  if (down()) {
    return Status::Unavailable("repl: replica " + host_ + " is down");
  }
  Shipment shipment = DecodeShipment(bytes);
  ApplyOutcome outcome;
  outcome.torn = shipment.torn;
  if (shipment.torn) {
    counters_.torn_shipments.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t my_term = term_.load(std::memory_order_acquire);
  uint64_t my_lsn = last_applied_lsn_.load(std::memory_order_acquire);
  if (shipment.has_header && !shipment.header.terms.empty()) {
    // Timeline fencing: my (term, lsn) must lie inside my term's LSN
    // range in the shipped history. An LSN past the end of my term means
    // a failover truncated the log below me while I was down — every
    // entry I hold beyond that boundary is from a dead timeline, and the
    // LSN<=mine "duplicate" rule must NOT be trusted. Epochs cannot catch
    // this (they advance in lockstep with LSNs on both timelines), which
    // is exactly why the term exists.
    const std::vector<TermRecord>& terms = shipment.header.terms;
    uint64_t term_end = UINT64_MAX;
    bool found = false;
    for (size_t i = 0; i < terms.size(); ++i) {
      if (terms[i].term != my_term) continue;
      found = true;
      term_end = i + 1 < terms.size() ? terms[i + 1].start_lsn - 1
                                      : UINT64_MAX;
      break;
    }
    if (!found || my_lsn > term_end) {
      counters_.diverged_rejects.fetch_add(1, std::memory_order_relaxed);
      return Status::OutOfRange(
          "repl: replica " + host_ + " at term " + std::to_string(my_term) +
          " lsn " + std::to_string(my_lsn) +
          " diverged from the shipped timeline (bootstrap required)");
    }
  }
  for (const CommitEntry& entry : shipment.entries) {
    if (outcome.applied >= max_entries) break;
    uint64_t lsn = last_applied_lsn_.load(std::memory_order_acquire);
    uint64_t term = term_.load(std::memory_order_acquire);
    if (entry.term < term) {
      // A fenced-out old primary (or a stale retransmission from before a
      // failover) may never overwrite newer-timeline state.
      return Status::FailedPrecondition(
          "repl: stale term " + std::to_string(entry.term) + " entry on " +
          host_ + " (replica is at term " + std::to_string(term) + ")");
    }
    if (entry.lsn <= lsn) {
      if (entry.term > term) {
        // A newer-timeline entry at an LSN we already hold: our copy of
        // that LSN is from a dead timeline (headerless shipments can
        // still detect this much). Never skip it as a duplicate.
        counters_.diverged_rejects.fetch_add(1, std::memory_order_relaxed);
        return Status::OutOfRange(
            "repl: term " + std::to_string(entry.term) + " entry at lsn " +
            std::to_string(entry.lsn) + " overlaps term " +
            std::to_string(term) + " state on " + host_ +
            " (diverged, bootstrap required)");
      }
      // A retried shipment overlaps what we already applied; applying it
      // again would double-apply inserts, so skip silently.
      counters_.duplicate_entries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (entry.lsn != lsn + 1) {
      return Status::OutOfRange(
          "repl: shipment gap on " + host_ + ": at lsn " +
          std::to_string(lsn) + ", got " + std::to_string(entry.lsn) +
          " (bootstrap required)");
    }
    if (entry.epoch <= applied_epoch_.load(std::memory_order_acquire)) {
      return Status::Corruption("repl: non-monotonic epoch on " + host_);
    }
    EASIA_RETURN_IF_ERROR(
        db_->ApplyReplicatedCommit(entry.records, entry.epoch));
    last_applied_lsn_.store(entry.lsn, std::memory_order_release);
    term_.store(entry.term, std::memory_order_release);
    applied_epoch_.store(entry.epoch, std::memory_order_release);
    ++outcome.applied;
    counters_.entries_applied.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.shipments_applied.fetch_add(1, std::memory_order_relaxed);
  return outcome;
}

Status ReplicaNode::Bootstrap(const std::string& snapshot_image,
                              uint64_t lsn, uint64_t epoch, uint64_t term) {
  EASIA_RETURN_IF_ERROR(db_->LoadSnapshotFromString(snapshot_image));
  // The snapshot restore bumped the replica's local epoch; pin it to the
  // primary's epoch line so promoted-replica commits continue above every
  // epoch any cache has seen.
  db_->AdvanceCommitEpochTo(epoch);
  last_applied_lsn_.store(lsn, std::memory_order_release);
  term_.store(term, std::memory_order_release);
  applied_epoch_.store(epoch, std::memory_order_release);
  return Status::OK();
}

}  // namespace easia::db::repl
