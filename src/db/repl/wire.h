#ifndef EASIA_DB_REPL_WIRE_H_
#define EASIA_DB_REPL_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/wal.h"

namespace easia::db::repl {

/// One committed transaction on the replication wire: the primary's full
/// WAL record list for the transaction (kBegin .. kCommit), stamped with
/// the log sequence number it occupies in the shipping log, the timeline
/// term it was committed under (incremented at every failover), and the
/// commit epoch the primary advanced to when it committed. Replicas apply
/// entries strictly in LSN order and adopt the carried term and epoch, so
/// "same epoch" means "same committed state" on every node.
struct CommitEntry {
  uint64_t lsn = 0;
  uint64_t term = 1;
  uint64_t epoch = 0;
  std::vector<WalRecord> records;

  std::string Encode() const;
  static Result<CommitEntry> Decode(std::string_view data);
};

/// One timeline in the shipping log's history: `term` owns the LSNs from
/// `start_lsn` up to (exclusive) the next record's `start_lsn`. A new
/// record is appended at every failover, so the history is the fencing
/// oracle: a replica at (term t, lsn l) is on the shipped timeline iff
/// l never exceeds t's range — otherwise its tail was truncated by a
/// failover it missed and it silently diverged.
struct TermRecord {
  uint64_t term = 1;
  uint64_t start_lsn = 1;
};

/// Shipment header: the full term history of the shipping log at encode
/// time (one record per failover — small forever). Replicas validate
/// their own (term, lsn) position against it before applying anything.
struct ShipmentHeader {
  std::vector<TermRecord> terms;

  std::string Encode() const;
  static Result<ShipmentHeader> Decode(std::string_view data);
};

/// A decoded shipment. `torn` is set when the byte stream ended in a
/// truncated or checksum-corrupt frame: the entries before the tear are
/// intact and safe to apply (same contract as WAL recovery, which applies
/// the clean prefix and discards the tail). `has_header` is false for
/// headerless shipments (tests and tools may encode bare entry lists);
/// the real shipper always sends the header so replicas can fence.
struct Shipment {
  ShipmentHeader header;
  bool has_header = false;
  std::vector<CommitEntry> entries;
  bool torn = false;
};

/// Encodes a shipment as a concatenation of redo-log frames
/// (`u32 length, u32 crc32, payload`, little-endian — the same framing as
/// the WAL). Each payload starts with a one-byte frame kind: the term
/// history header first, then one CommitEntry per frame.
std::string EncodeShipment(const ShipmentHeader& header,
                           const std::vector<CommitEntry>& entries);
/// Headerless variant: entry frames only (no term history). Replicas
/// accept it but cannot run the timeline-divergence check.
std::string EncodeShipment(const std::vector<CommitEntry>& entries);

/// Walks the frames in `bytes`, CRC-checking each. Unlike io::ScanFrames
/// this reports the tear: a shipment that arrives truncated or corrupted
/// mid-flight yields its intact prefix plus `torn = true`, so the shipper
/// knows to resend from the replica's advanced LSN rather than assume
/// delivery.
Shipment DecodeShipment(std::string_view bytes);

}  // namespace easia::db::repl

#endif  // EASIA_DB_REPL_WIRE_H_
