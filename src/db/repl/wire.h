#ifndef EASIA_DB_REPL_WIRE_H_
#define EASIA_DB_REPL_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/wal.h"

namespace easia::db::repl {

/// One committed transaction on the replication wire: the primary's full
/// WAL record list for the transaction (kBegin .. kCommit), stamped with
/// the log sequence number it occupies in the shipping log and the commit
/// epoch the primary advanced to when it committed. Replicas apply
/// entries strictly in LSN order and adopt the carried epoch, so "same
/// epoch" means "same committed state" on every node.
struct CommitEntry {
  uint64_t lsn = 0;
  uint64_t epoch = 0;
  std::vector<WalRecord> records;

  std::string Encode() const;
  static Result<CommitEntry> Decode(std::string_view data);
};

/// A decoded shipment. `torn` is set when the byte stream ended in a
/// truncated or checksum-corrupt frame: the entries before the tear are
/// intact and safe to apply (same contract as WAL recovery, which applies
/// the clean prefix and discards the tail).
struct Shipment {
  std::vector<CommitEntry> entries;
  bool torn = false;
};

/// Encodes entries as a concatenation of redo-log frames
/// (`u32 length, u32 crc32, payload`, little-endian — the same framing as
/// the WAL), one CommitEntry per frame.
std::string EncodeShipment(const std::vector<CommitEntry>& entries);

/// Walks the frames in `bytes`, CRC-checking each. Unlike io::ScanFrames
/// this reports the tear: a shipment that arrives truncated or corrupted
/// mid-flight yields its intact prefix plus `torn = true`, so the shipper
/// knows to resend from the replica's advanced LSN rather than assume
/// delivery.
Shipment DecodeShipment(std::string_view bytes);

}  // namespace easia::db::repl

#endif  // EASIA_DB_REPL_WIRE_H_
