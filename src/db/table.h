#ifndef EASIA_DB_TABLE_H_
#define EASIA_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "db/schema.h"
#include "db/stats/table_stats.h"
#include "db/store/column_page.h"
#include "db/store/radix_index.h"
#include "db/value.h"

namespace easia::db {

using Row = std::vector<Value>;
using RowId = uint64_t;

/// Encodes row/value payloads for the WAL and snapshots.
void EncodeRow(std::string* dst, const Row& row);
Result<Row> DecodeRow(Decoder* dec);
void EncodeValue(std::string* dst, const Value& value);
Result<Value> DecodeValue(Decoder* dec);

/// Physical storage for one table: live rows plus maintained unique
/// indexes (primary key + UNIQUE constraints). This layer performs no
/// constraint *policy* (that belongs to Database); it only keeps indexes
/// consistent and detects duplicate keys.
///
/// Two storage kinds share this interface (chosen by `STORE COLUMNAR` in
/// the DDL): the classic RowId -> Row map, and a columnar page store
/// (store::ColumnStore) for catalogue-scale scan/aggregate workloads.
/// Columnar tables additionally maintain one store::RadixIndex per
/// VARCHAR column for `LIKE 'abc%'` pushdown and /typeahead, hooked into
/// the same IndexInsert/IndexRemove maintenance as the key indexes.
class Table {
 public:
  enum class StorageKind { kRowStore, kColumnar };

  explicit Table(TableDef def);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableDef& def() const { return def_; }

  StorageKind storage_kind() const {
    return column_store_ ? StorageKind::kColumnar : StorageKind::kRowStore;
  }

  /// Inserts a row (already validated/coerced) and returns its RowId.
  /// Fails with kConstraintViolation on a duplicate PK/UNIQUE key. The
  /// const-ref form copies only for row-store tables (columnar storage
  /// decomposes the row into column pages without keeping it), which
  /// makes it the right call on the bulk-ingest path where the caller
  /// still needs the row for the WAL record.
  Result<RowId> Insert(const Row& row);
  Result<RowId> Insert(Row&& row);

  /// Inserts with a caller-chosen RowId (WAL replay).
  Status InsertWithId(RowId id, Row row);

  Status Update(RowId id, Row new_row);
  Status Delete(RowId id);
  Result<Row> Get(RowId id) const;

  /// Row-store only (columnar tables keep no row map); production code
  /// iterates via ForEachRow, which works for both kinds.
  const std::map<RowId, Row>& rows() const { return rows_; }
  size_t RowCount() const {
    return column_store_ ? column_store_->LiveRows() : rows_.size();
  }

  /// Visits every live row in ascending RowId order (the canonical scan
  /// order for both storage kinds).
  void ForEachRow(const std::function<void(RowId, const Row&)>& fn) const;

  /// The columnar page store, or null for a row-store table. The planner
  /// and executor use it for filter/aggregate kernels.
  const store::ColumnStore* column_store() const {
    return column_store_.get();
  }

  /// Looks up the RowId whose values in `columns` equal `key_values`,
  /// using a unique index when one covers the columns, else scanning.
  /// Returns kNotFound when no row matches.
  Result<RowId> FindUnique(const std::vector<std::string>& columns,
                           const std::vector<Value>& key_values) const;

  /// True if any row has `value` in column `column_index`.
  bool AnyRowWithValue(size_t column_index, const Value& value) const;

  /// Column-name lists of the unique indexes (primary key first) and the
  /// non-unique secondary indexes, for planner access-path selection.
  std::vector<std::vector<std::string>> UniqueIndexColumns() const;
  std::vector<std::vector<std::string>> SecondaryIndexColumns() const;

  /// RowIds whose values in `columns` equal `key_values`, in ascending
  /// RowId order (matching scan order). Uses a unique or secondary index
  /// when one covers exactly these columns, else scans. NULL key values
  /// match nothing (SQL equality).
  Result<std::vector<RowId>> FindByIndex(
      const std::vector<std::string>& columns,
      const std::vector<Value>& key_values) const;

  /// True when `column` carries a radix prefix index (columnar VARCHAR).
  bool HasRadixIndex(std::string_view column) const;

  /// RowIds whose `column` value starts with `prefix`, ascending. Empty
  /// when the column has no radix index.
  std::vector<RowId> RadixPrefixRowIds(std::string_view column,
                                       std::string_view prefix) const;

  /// Distinct values of `column` starting with `prefix`, lexicographic,
  /// at most `limit` (0 = unlimited).
  std::vector<std::string> RadixPrefixValues(std::string_view column,
                                             std::string_view prefix,
                                             size_t limit) const;

  /// Key string over the given column indexes of a row.
  static std::string MakeKey(const Row& row,
                             const std::vector<size_t>& column_indexes);

  RowId next_row_id() const { return next_row_id_; }

  /// Incrementally maintained column statistics (row counts, NDV, min/max,
  /// value sample) fed from every mutation path, so WAL replay, snapshot
  /// loading and rollback all keep them current. The mutable accessor
  /// exists for snapshot loading, which overwrites the rebuilt sketches
  /// with the persisted ones (those carry widen-only history a rebuild
  /// from live rows cannot reproduce).
  const stats::TableStats& table_stats() const { return stats_; }
  stats::TableStats* mutable_table_stats() { return &stats_; }

  /// Creates a non-unique secondary index over `columns` and backfills it
  /// from the existing rows (index-advisor auto-creation). No-op when an
  /// index with exactly these columns already exists.
  Status CreateSecondaryIndex(const std::vector<std::string>& columns);

  /// Storage-level gauges for the obs registry.
  struct StorageStats {
    bool columnar = false;
    size_t rows = 0;
    size_t columnar_bytes = 0;  // 0 for row-store tables
    size_t radix_nodes = 0;
    size_t radix_bytes = 0;
  };
  StorageStats GetStorageStats() const;

 private:
  struct UniqueIndex {
    std::vector<size_t> column_indexes;
    /// Ordered map on purpose: bulk ingest feeds ascending keys, and the
    /// tree's rightmost insert path stays cache-resident — measured ~2.5x
    /// faster than hashing each string key into a scattered bucket table.
    std::map<std::string, RowId> entries;
    bool is_primary = false;
  };

  /// Non-unique index (one per foreign key): many rows may share a key.
  struct SecondaryIndex {
    std::vector<size_t> column_indexes;
    std::multimap<std::string, RowId> entries;
  };

  /// Checks that inserting/updating to `row` (excluding `exclude_id`) does
  /// not collide with a unique index; returns the violated index name.
  Status CheckUnique(const Row& row, RowId exclude_id) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexRemove(RowId id, const Row& row);
  /// Single-pass duplicate check + unique-index insert for the hot Insert
  /// path (one key build and one hash probe per index, versus CheckUnique
  /// followed by IndexInsert doing both twice). On conflict, entries
  /// reserved by earlier indexes are unwound and the same
  /// kConstraintViolation CheckUnique would return is reported.
  Status ReserveUniqueEntries(RowId id, const Row& row);
  void NonUniqueIndexInsert(RowId id, const Row& row);
  /// True when every indexed column of `row` is non-NULL (SQL allows NULLs
  /// to escape UNIQUE enforcement).
  static bool AllNonNull(const Row& row, const std::vector<size_t>& cols);

  const store::RadixIndex* FindRadix(std::string_view column) const;

  TableDef def_;
  /// Row-store payload; empty for columnar tables.
  std::map<RowId, Row> rows_;
  /// Columnar payload; null for row-store tables.
  std::unique_ptr<store::ColumnStore> column_store_;
  /// Prefix indexes over VARCHAR columns (columnar tables only), keyed by
  /// column index.
  std::map<size_t, store::RadixIndex> radix_indexes_;
  std::vector<UniqueIndex> indexes_;
  std::vector<SecondaryIndex> secondary_indexes_;
  stats::TableStats stats_;
  RowId next_row_id_ = 1;
};

}  // namespace easia::db

#endif  // EASIA_DB_TABLE_H_
