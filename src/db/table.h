#ifndef EASIA_DB_TABLE_H_
#define EASIA_DB_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "db/schema.h"
#include "db/value.h"

namespace easia::db {

using Row = std::vector<Value>;
using RowId = uint64_t;

/// Encodes row/value payloads for the WAL and snapshots.
void EncodeRow(std::string* dst, const Row& row);
Result<Row> DecodeRow(Decoder* dec);
void EncodeValue(std::string* dst, const Value& value);
Result<Value> DecodeValue(Decoder* dec);

/// Physical storage for one table: rows keyed by RowId plus maintained
/// unique indexes (primary key + UNIQUE constraints). This layer performs
/// no constraint *policy* (that belongs to Database); it only keeps indexes
/// consistent and detects duplicate keys.
class Table {
 public:
  explicit Table(TableDef def);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableDef& def() const { return def_; }

  /// Inserts a row (already validated/coerced) and returns its RowId.
  /// Fails with kConstraintViolation on a duplicate PK/UNIQUE key.
  Result<RowId> Insert(Row row);

  /// Inserts with a caller-chosen RowId (WAL replay).
  Status InsertWithId(RowId id, Row row);

  Status Update(RowId id, Row new_row);
  Status Delete(RowId id);
  Result<const Row*> Get(RowId id) const;

  const std::map<RowId, Row>& rows() const { return rows_; }
  size_t RowCount() const { return rows_.size(); }

  /// Looks up the RowId whose values in `columns` equal `key_values`,
  /// using a unique index when one covers the columns, else scanning.
  /// Returns kNotFound when no row matches.
  Result<RowId> FindUnique(const std::vector<std::string>& columns,
                           const std::vector<Value>& key_values) const;

  /// True if any row has `value` in column `column_index`.
  bool AnyRowWithValue(size_t column_index, const Value& value) const;

  /// Column-name lists of the unique indexes (primary key first) and the
  /// non-unique secondary indexes, for planner access-path selection.
  std::vector<std::vector<std::string>> UniqueIndexColumns() const;
  std::vector<std::vector<std::string>> SecondaryIndexColumns() const;

  /// RowIds whose values in `columns` equal `key_values`, in ascending
  /// RowId order (matching scan order). Uses a unique or secondary index
  /// when one covers exactly these columns, else scans. NULL key values
  /// match nothing (SQL equality).
  Result<std::vector<RowId>> FindByIndex(
      const std::vector<std::string>& columns,
      const std::vector<Value>& key_values) const;

  /// Key string over the given column indexes of a row.
  static std::string MakeKey(const Row& row,
                             const std::vector<size_t>& column_indexes);

  RowId next_row_id() const { return next_row_id_; }

 private:
  struct UniqueIndex {
    std::vector<size_t> column_indexes;
    std::map<std::string, RowId> entries;
    bool is_primary = false;
  };

  /// Non-unique index (one per foreign key): many rows may share a key.
  struct SecondaryIndex {
    std::vector<size_t> column_indexes;
    std::multimap<std::string, RowId> entries;
  };

  /// Checks that inserting/updating to `row` (excluding `exclude_id`) does
  /// not collide with a unique index; returns the violated index name.
  Status CheckUnique(const Row& row, RowId exclude_id) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexRemove(RowId id, const Row& row);
  /// True when every indexed column of `row` is non-NULL (SQL allows NULLs
  /// to escape UNIQUE enforcement).
  static bool AllNonNull(const Row& row, const std::vector<size_t>& cols);

  TableDef def_;
  std::map<RowId, Row> rows_;
  std::vector<UniqueIndex> indexes_;
  std::vector<SecondaryIndex> secondary_indexes_;
  RowId next_row_id_ = 1;
};

}  // namespace easia::db

#endif  // EASIA_DB_TABLE_H_
