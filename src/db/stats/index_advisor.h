#ifndef EASIA_DB_STATS_INDEX_ADVISOR_H_
#define EASIA_DB_STATS_INDEX_ADVISOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace easia::db {
struct SelectPlan;
}  // namespace easia::db

namespace easia::db::stats {

/// One hot-predicate pattern the advisor has seen often enough to report:
/// queries keep filtering `table.column` by equality (or LIKE-prefix)
/// through a sequential scan, and no existing index covers the column.
struct IndexRecommendation {
  std::string table;
  std::string column;
  enum class Kind { kEquality, kPrefix } kind = Kind::kEquality;
  uint64_t hits = 0;

  const char* kind_name() const {
    return kind == Kind::kEquality ? "equality" : "prefix";
  }
};

/// Watches executed plans for sequential scans carrying indexable pushed
/// predicates and counts how often each (table, column, predicate kind)
/// misses an index. The database feeds it every planned SELECT; the
/// /stats page surfaces the tally, and ApplyIndexRecommendations turns
/// hot equality patterns into secondary indexes.
///
/// Thread-safe: observation happens under the database's shared (read)
/// lock, so concurrent readers tally through the advisor's own mutex.
class IndexAdvisor {
 public:
  /// Optional: hit counts are mirrored into
  /// `easia_db_index_advisor_hits_total{table,column,kind}`.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Tallies every seq scan in `plan` whose pushed conjuncts contain a
  /// column-vs-literal equality or a LIKE with a literal prefix, when the
  /// scanned table has no index covering that column.
  void ObservePlan(const SelectPlan& plan);

  /// Patterns with at least `min_hits` observations, hottest first (ties
  /// broken by table then column name for determinism).
  std::vector<IndexRecommendation> Recommendations(uint64_t min_hits) const;

  /// Total observations tallied (all patterns).
  uint64_t total_observations() const;

  void Clear();

 private:
  struct Key {
    std::string table;
    std::string column;
    IndexRecommendation::Kind kind;
    bool operator<(const Key& o) const {
      if (table != o.table) return table < o.table;
      if (column != o.column) return column < o.column;
      return kind < o.kind;
    }
  };

  void Record(const std::string& table, const std::string& column,
              IndexRecommendation::Kind kind);

  mutable std::mutex mu_;
  std::map<Key, uint64_t> hits_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace easia::db::stats

#endif  // EASIA_DB_STATS_INDEX_ADVISOR_H_
