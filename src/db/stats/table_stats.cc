#include "db/stats/table_stats.h"

#include <algorithm>

namespace easia::db {
// Defined in table.cc; reused for the persisted stats block so sampled
// values round-trip with the exact same tagging as row payloads.
void EncodeValue(std::string* dst, const Value& value);
Result<Value> DecodeValue(Decoder* dec);
}  // namespace easia::db

namespace easia::db::stats {

namespace {

/// FNV-1a over the value's key encoding. ToKeyString normalises the
/// numeric family (3 INTEGER == 3.0 DOUBLE), so the sketch treats them as
/// one distinct value exactly like index keys and group keys do.
uint64_t KeyHash(const Value& v) {
  std::string key = v.ToKeyString();
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void ColumnSketch::Add(const Value& v) {
  if (v.is_null()) {
    ++null_count_;
    return;
  }
  ++non_null_;
  if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
  if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
  uint64_t h = KeyHash(v);
  if (!Admitted(h)) return;
  auto [it, inserted] = sample_.try_emplace(h);
  if (inserted) it->second.value = v;
  ++it->second.count;
  // Over budget: halve the admission range and evict entries that fall
  // out. Eviction only forgets values (estimates get coarser), never
  // invents them, so Remove stays exact for whatever remains admitted.
  while (sample_.size() > 2 * kSampleTarget && shift_ < 63) {
    ++shift_;
    for (auto e = sample_.begin(); e != sample_.end();) {
      if (!Admitted(e->first)) {
        e = sample_.erase(e);
      } else {
        ++e;
      }
    }
  }
}

void ColumnSketch::Remove(const Value& v) {
  if (v.is_null()) {
    if (null_count_ > 0) --null_count_;
    return;
  }
  if (non_null_ > 0) --non_null_;
  // min_/max_ stay as-is: widen-only bounds remain conservative.
  uint64_t h = KeyHash(v);
  if (!Admitted(h)) return;
  auto it = sample_.find(h);
  if (it == sample_.end()) return;
  if (--it->second.count == 0) sample_.erase(it);
}

double ColumnSketch::NullFraction() const {
  uint64_t total = rows();
  if (total == 0) return 0.0;
  return static_cast<double>(null_count_) / static_cast<double>(total);
}

double ColumnSketch::DistinctEstimate() const {
  if (non_null_ == 0) return 0.0;
  double est = static_cast<double>(sample_.size()) *
               static_cast<double>(uint64_t{1} << shift_);
  // Clamp to what the counters allow: at least one distinct value exists,
  // and there cannot be more distinct values than non-null rows.
  return std::min(std::max(est, 1.0), static_cast<double>(non_null_));
}

double ColumnSketch::EqualitySelectivity(const Value& literal) const {
  uint64_t total = rows();
  if (total == 0 || literal.is_null()) return 0.0;
  uint64_t h = KeyHash(literal);
  if (Admitted(h)) {
    // Admitted hashes carry exact counts — including zero when the value
    // was never inserted (or fully deleted).
    auto it = sample_.find(h);
    uint64_t count = it == sample_.end() ? 0 : it->second.count;
    return static_cast<double>(count) / static_cast<double>(total);
  }
  double ndv = DistinctEstimate();
  if (ndv <= 0.0) return 0.0;
  return (1.0 / ndv) * (static_cast<double>(non_null_) /
                        static_cast<double>(total));
}

double ColumnSketch::SelectivityOf(
    const std::function<bool(const Value&)>& pred, double fallback) const {
  uint64_t total = rows();
  if (total == 0) return 0.0;
  uint64_t sampled = 0;
  uint64_t matched = 0;
  for (const auto& [hash, entry] : sample_) {
    sampled += entry.count;
    if (pred(entry.value)) matched += entry.count;
  }
  if (sampled == 0) return fallback;
  double frac = static_cast<double>(matched) / static_cast<double>(sampled);
  return frac * (static_cast<double>(non_null_) /
                 static_cast<double>(total));
}

void ColumnSketch::EncodeTo(std::string* dst) const {
  PutU64(dst, null_count_);
  PutU64(dst, non_null_);
  EncodeValue(dst, min_);
  EncodeValue(dst, max_);
  PutU32(dst, shift_);
  PutU32(dst, static_cast<uint32_t>(sample_.size()));
  for (const auto& [hash, entry] : sample_) {
    PutU64(dst, hash);
    PutU64(dst, entry.count);
    EncodeValue(dst, entry.value);
  }
}

Status ColumnSketch::DecodeFrom(Decoder* dec) {
  EASIA_ASSIGN_OR_RETURN(null_count_, dec->GetU64());
  EASIA_ASSIGN_OR_RETURN(non_null_, dec->GetU64());
  EASIA_ASSIGN_OR_RETURN(min_, DecodeValue(dec));
  EASIA_ASSIGN_OR_RETURN(max_, DecodeValue(dec));
  EASIA_ASSIGN_OR_RETURN(shift_, dec->GetU32());
  EASIA_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  sample_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    EASIA_ASSIGN_OR_RETURN(uint64_t hash, dec->GetU64());
    SampleEntry entry;
    EASIA_ASSIGN_OR_RETURN(entry.count, dec->GetU64());
    EASIA_ASSIGN_OR_RETURN(entry.value, DecodeValue(dec));
    sample_.emplace(hash, std::move(entry));
  }
  return Status::OK();
}

void TableStats::Reset(size_t column_count) {
  columns_.assign(column_count, ColumnSketch());
}

void TableStats::AddRow(const std::vector<Value>& row) {
  size_t n = std::min(columns_.size(), row.size());
  for (size_t i = 0; i < n; ++i) columns_[i].Add(row[i]);
}

void TableStats::RemoveRow(const std::vector<Value>& row) {
  size_t n = std::min(columns_.size(), row.size());
  for (size_t i = 0; i < n; ++i) columns_[i].Remove(row[i]);
}

void TableStats::EncodeTo(std::string* dst) const {
  PutU32(dst, static_cast<uint32_t>(columns_.size()));
  for (const ColumnSketch& col : columns_) col.EncodeTo(dst);
}

Status TableStats::DecodeFrom(Decoder* dec) {
  EASIA_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  columns_.assign(n, ColumnSketch());
  for (uint32_t i = 0; i < n; ++i) {
    EASIA_RETURN_IF_ERROR(columns_[i].DecodeFrom(dec));
  }
  return Status::OK();
}

}  // namespace easia::db::stats
