#ifndef EASIA_DB_STATS_TABLE_STATS_H_
#define EASIA_DB_STATS_TABLE_STATS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "db/value.h"

namespace easia::db::stats {

/// Per-column statistics sketch, maintained incrementally on every
/// insert/update/delete. Three components:
///
///  * exact null / non-null row counters;
///  * widen-only min/max bounds over everything ever inserted (deletes do
///    not narrow them — they stay conservative range bounds);
///  * an adaptive hash sample: every distinct value whose 64-bit key hash
///    falls below the current admission threshold is kept together with
///    its exact row count. When the sample outgrows its budget the
///    threshold halves and out-of-range entries are evicted (classic
///    adaptive distinct sampling), so memory stays bounded while the
///    sample remains an unbiased value-hash sample.
///
/// The sample supports exact deletion (a value admitted by the threshold
/// is always present while its count is positive), which keeps the sketch
/// deterministic under WAL replay: the same operation sequence always
/// reproduces the same sketch state. No wall-clock or randomness is used
/// anywhere — hashing is FNV-1a over Value::ToKeyString.
///
/// Estimates derived from the sketch:
///  * NDV        = distinct sampled values * 2^shift (exact while shift=0);
///  * equality   = exact count/rows when the literal's hash is admitted,
///                 else (1/NDV) * non-null fraction;
///  * arbitrary predicate selectivity = count-weighted fraction of the
///    sample satisfying it (range and LIKE-prefix predicates use this).
class ColumnSketch {
 public:
  /// Distinct-value budget: the sample holds at most 2 * kSampleTarget
  /// entries before the admission threshold halves.
  static constexpr size_t kSampleTarget = 128;

  void Add(const Value& v);
  void Remove(const Value& v);

  uint64_t rows() const { return null_count_ + non_null_; }
  uint64_t null_count() const { return null_count_; }
  uint64_t non_null_count() const { return non_null_; }
  double NullFraction() const;

  /// Estimated number of distinct non-null values.
  double DistinctEstimate() const;

  /// Conservative bounds over every value ever inserted (NULL when the
  /// column never held a non-null value).
  const Value& min_value() const { return min_; }
  const Value& max_value() const { return max_; }

  /// Estimated fraction of ALL rows (nulls included, which never satisfy
  /// a comparison) equal to `literal`.
  double EqualitySelectivity(const Value& literal) const;

  /// Count-weighted fraction of sampled rows whose value satisfies
  /// `pred`, scaled by the non-null fraction; `fallback` when the sample
  /// is empty.
  double SelectivityOf(const std::function<bool(const Value&)>& pred,
                       double fallback) const;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Decoder* dec);

 private:
  struct SampleEntry {
    Value value;
    uint64_t count = 0;
  };

  bool Admitted(uint64_t hash) const {
    return shift_ == 0 || (hash >> (64 - shift_)) == 0;
  }

  uint64_t null_count_ = 0;
  uint64_t non_null_ = 0;
  Value min_ = Value::Null();
  Value max_ = Value::Null();
  /// Admission: hash < 2^(64-shift_). Monotonically increasing.
  uint32_t shift_ = 0;
  /// Admitted distinct values by key hash, with exact row counts.
  std::map<uint64_t, SampleEntry> sample_;
};

/// Statistics for one table: a ColumnSketch per column. Embedded in
/// db::Table and fed from the Insert/InsertWithId/Update/Delete choke
/// points, so WAL replay, snapshot loading and transaction rollback all
/// maintain it without extra plumbing.
class TableStats {
 public:
  void Reset(size_t column_count);

  void AddRow(const std::vector<Value>& row);
  void RemoveRow(const std::vector<Value>& row);

  size_t column_count() const { return columns_.size(); }
  const ColumnSketch& column(size_t i) const { return columns_[i]; }

  void EncodeTo(std::string* dst) const;
  /// Replaces this object's state with the decoded block (snapshot load:
  /// the persisted sketch carries history — deleted-value min/max
  /// widening, admission threshold — that a rebuild from live rows alone
  /// would lose).
  Status DecodeFrom(Decoder* dec);

 private:
  std::vector<ColumnSketch> columns_;
};

}  // namespace easia::db::stats

#endif  // EASIA_DB_STATS_TABLE_STATS_H_
