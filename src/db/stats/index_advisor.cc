#include "db/stats/index_advisor.h"

#include <algorithm>

#include "common/string_util.h"
#include "db/planner.h"

namespace easia::db::stats {

namespace {

/// True when some unique or secondary index of `table` leads with
/// `column` (so an equality on it already has an index access path), or —
/// for prefix patterns — a radix index exists on the column.
bool ColumnCovered(const Table& table, const std::string& column,
                   IndexRecommendation::Kind kind) {
  if (kind == IndexRecommendation::Kind::kPrefix) {
    return table.HasRadixIndex(column);
  }
  for (const auto& cols : table.UniqueIndexColumns()) {
    if (!cols.empty() && EqualsIgnoreCase(cols[0], column)) return true;
  }
  for (const auto& cols : table.SecondaryIndexColumns()) {
    if (!cols.empty() && EqualsIgnoreCase(cols[0], column)) return true;
  }
  return false;
}

/// The column name of a bare own-table reference, empty otherwise. A
/// qualified reference must name the scan's alias; the column must exist
/// in the table.
std::string OwnColumn(const Expr* e, const ScanPlan& scan) {
  if (e == nullptr || e->kind != Expr::Kind::kColumn) return "";
  if (!e->table.empty() && !EqualsIgnoreCase(e->table, scan.alias)) return "";
  const ColumnDef* def = scan.table->def().FindColumn(e->column);
  return def != nullptr ? def->name : "";
}

}  // namespace

void IndexAdvisor::ObservePlan(const SelectPlan& plan) {
  for (const ScanPlan& scan : plan.scans) {
    if (scan.access != ScanPlan::Access::kSeqScan || scan.table == nullptr) {
      continue;
    }
    for (const Expr* e : scan.pushed) {
      if (e == nullptr) continue;
      if (e->kind != Expr::Kind::kBinary) continue;
      if (e->op == Expr::Op::kEq) {
        // column = literal, either side order.
        std::string col;
        if (e->right != nullptr && e->right->kind == Expr::Kind::kLiteral &&
            !e->right->literal.is_null()) {
          col = OwnColumn(e->left.get(), scan);
        }
        if (col.empty() && e->left != nullptr &&
            e->left->kind == Expr::Kind::kLiteral &&
            !e->left->literal.is_null()) {
          col = OwnColumn(e->right.get(), scan);
        }
        if (col.empty() ||
            ColumnCovered(*scan.table, col,
                          IndexRecommendation::Kind::kEquality)) {
          continue;
        }
        Record(scan.table->def().name, col,
               IndexRecommendation::Kind::kEquality);
      } else if (e->op == Expr::Op::kLike) {
        if (e->right == nullptr || e->right->kind != Expr::Kind::kLiteral ||
            !e->right->literal.IsStringKind()) {
          continue;
        }
        if (LikePatternPrefix(e->right->literal.AsString()).empty()) {
          continue;  // leading wildcard: no index could narrow it
        }
        std::string col = OwnColumn(e->left.get(), scan);
        if (col.empty() ||
            ColumnCovered(*scan.table, col,
                          IndexRecommendation::Kind::kPrefix)) {
          continue;
        }
        Record(scan.table->def().name, col,
               IndexRecommendation::Kind::kPrefix);
      }
    }
  }
}

void IndexAdvisor::Record(const std::string& table, const std::string& column,
                          IndexRecommendation::Kind kind) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_[Key{table, column, kind}];
  }
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(
            "easia_db_index_advisor_hits_total",
            "Seq-scan predicates that an index on (table, column) would "
            "have served, by predicate kind.",
            {{"column", column},
             {"kind", kind == IndexRecommendation::Kind::kEquality
                          ? "equality"
                          : "prefix"},
             {"table", table}})
        ->Increment();
  }
}

std::vector<IndexRecommendation> IndexAdvisor::Recommendations(
    uint64_t min_hits) const {
  std::vector<IndexRecommendation> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, count] : hits_) {
      if (count < min_hits) continue;
      IndexRecommendation rec;
      rec.table = key.table;
      rec.column = key.column;
      rec.kind = key.kind;
      rec.hits = count;
      out.push_back(std::move(rec));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IndexRecommendation& a, const IndexRecommendation& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              if (a.table != b.table) return a.table < b.table;
              return a.column < b.column;
            });
  return out;
}

uint64_t IndexAdvisor::total_observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, count] : hits_) total += count;
  return total;
}

void IndexAdvisor::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_.clear();
}

}  // namespace easia::db::stats
