#include "db/value.h"

#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace easia::db {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kBlob:
      return "BLOB";
    case DataType::kClob:
      return "CLOB";
    case DataType::kDatalink:
      return "DATALINK";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromName(std::string_view name) {
  std::string upper = ToUpper(name);
  if (upper == "INTEGER" || upper == "INT" || upper == "BIGINT") {
    return DataType::kInteger;
  }
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
    return DataType::kDouble;
  }
  if (upper == "VARCHAR" || upper == "CHAR" || upper == "TEXT") {
    return DataType::kVarchar;
  }
  if (upper == "TIMESTAMP") return DataType::kTimestamp;
  if (upper == "BLOB") return DataType::kBlob;
  if (upper == "CLOB") return DataType::kClob;
  if (upper == "DATALINK") return DataType::kDatalink;
  return Status::ParseError("unknown data type: " + std::string(name));
}

Value Value::Integer(int64_t v) {
  Value out;
  out.null_ = false;
  out.type_ = DataType::kInteger;
  out.int_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.null_ = false;
  out.type_ = DataType::kDouble;
  out.double_ = v;
  return out;
}

Value Value::Varchar(std::string v) {
  Value out;
  out.null_ = false;
  out.type_ = DataType::kVarchar;
  out.str_ = std::move(v);
  return out;
}

Value Value::Timestamp(int64_t epoch_seconds) {
  Value out;
  out.null_ = false;
  out.type_ = DataType::kTimestamp;
  out.int_ = epoch_seconds;
  return out;
}

Value Value::Blob(std::string bytes) {
  Value out;
  out.null_ = false;
  out.type_ = DataType::kBlob;
  out.str_ = std::move(bytes);
  return out;
}

Value Value::Clob(std::string text) {
  Value out;
  out.null_ = false;
  out.type_ = DataType::kClob;
  out.str_ = std::move(text);
  return out;
}

Value Value::Datalink(std::string url) {
  Value out;
  out.null_ = false;
  out.type_ = DataType::kDatalink;
  out.str_ = std::move(url);
  return out;
}

int Value::Compare(const Value& other) const {
  if (null_ && other.null_) return 0;
  if (null_) return -1;
  if (other.null_) return 1;
  if (IsNumericKind() && other.IsNumericKind()) {
    // Two integer-backed values compare exactly: casting int64 to double
    // loses bits past 2^53, which would make distinct values near
    // INT64_MAX tie (and then "first seen wins" in MIN/MAX — an ordering
    // the shard-merge path cannot reproduce).
    if (type_ != DataType::kDouble && other.type_ != DataType::kDouble) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (IsStringKind() && other.IsStringKind()) {
    return str_.compare(other.str_) < 0 ? -1 : (str_ == other.str_ ? 0 : 1);
  }
  // Mixed kinds: compare by display form so ordering is total.
  std::string a = ToDisplayString();
  std::string b = other.ToDisplayString();
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

std::string Value::ToDisplayString() const {
  if (null_) return "NULL";
  switch (type_) {
    case DataType::kInteger:
    case DataType::kTimestamp:
      return StrPrintf("%lld", static_cast<long long>(int_));
    case DataType::kDouble: {
      std::string s = StrPrintf("%.10g", double_);
      return s;
    }
    case DataType::kVarchar:
    case DataType::kClob:
    case DataType::kDatalink:
      return str_;
    case DataType::kBlob:
      return StrPrintf("<blob %zu bytes>", str_.size());
  }
  return "";
}

std::string Value::ToSqlLiteral() const {
  if (null_) return "NULL";
  if (IsNumericKind()) return ToDisplayString();
  std::string out = "'";
  for (char c : str_) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string Value::ToKeyString() const {
  if (null_) return "\x00N";
  std::string out;
  if (IsNumericKind()) {
    // Normalise numerics so 3 (INTEGER) == 3.0 (DOUBLE) in keys. The raw
    // double bits partition values exactly like a %.17g rendering (which
    // round-trips doubles, -0.0 included) at a fraction of the cost, and
    // match the columnar kernels' group-key fragments.
    double d = AsDouble();
    out.resize(1 + sizeof(double));
    out[0] = '\x01';
    std::memcpy(&out[1], &d, sizeof(double));
  } else {
    out = "\x02";
    out += str_;
  }
  return out;
}

Result<Value> Value::CoerceTo(DataType target) const {
  if (null_) return Null();
  if (type_ == target) return *this;
  switch (target) {
    case DataType::kInteger:
      if (type_ == DataType::kDouble) {
        double r = std::round(double_);
        if (r != double_) {
          return Status::InvalidArgument(
              "cannot coerce non-integral DOUBLE to INTEGER");
        }
        return Integer(static_cast<int64_t>(r));
      }
      if (type_ == DataType::kTimestamp) return Integer(int_);
      if (type_ == DataType::kVarchar) {
        EASIA_ASSIGN_OR_RETURN(int64_t v, ParseInt64(str_));
        return Integer(v);
      }
      break;
    case DataType::kDouble:
      if (type_ == DataType::kInteger || type_ == DataType::kTimestamp) {
        return Double(static_cast<double>(int_));
      }
      if (type_ == DataType::kVarchar) {
        EASIA_ASSIGN_OR_RETURN(double v, ParseDouble(str_));
        return Double(v);
      }
      break;
    case DataType::kTimestamp:
      if (type_ == DataType::kInteger) return Timestamp(int_);
      if (type_ == DataType::kVarchar) {
        EASIA_ASSIGN_OR_RETURN(int64_t v, ParseInt64(str_));
        return Timestamp(v);
      }
      break;
    case DataType::kVarchar:
      if (IsNumericKind()) return Varchar(ToDisplayString());
      if (type_ == DataType::kClob) return Varchar(str_);
      break;
    case DataType::kClob:
      if (type_ == DataType::kVarchar) return Clob(str_);
      break;
    case DataType::kBlob:
      if (type_ == DataType::kVarchar || type_ == DataType::kClob) {
        return Blob(str_);
      }
      break;
    case DataType::kDatalink:
      if (type_ == DataType::kVarchar) return Datalink(str_);
      break;
  }
  return Status::InvalidArgument(
      StrPrintf("cannot coerce %s to %s",
                std::string(DataTypeName(type_)).c_str(),
                std::string(DataTypeName(target)).c_str()));
}

}  // namespace easia::db
