#include "db/shard/coordinator.h"

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/coding.h"
#include "common/string_util.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/stats/table_stats.h"
#include "obs/metrics.h"

namespace easia::db::shard {

namespace {

/// FNV-1a 64 over the partition key's canonical key-string encoding, so
/// INTEGER 5 and DOUBLE 5.0 (which compare equal and share a key string)
/// land on the same partition.
uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Renders a value as a SQL literal that parses back to the same value.
/// %.17g round-trips doubles exactly (the lexer accepts exponent forms);
/// quotes in strings are doubled per SQL.
std::string RenderLiteral(const Value& v) {
  if (v.is_null()) return "NULL";
  switch (v.type()) {
    case DataType::kInteger:
    case DataType::kTimestamp:
      return std::to_string(v.AsInt());
    case DataType::kDouble:
      return StrPrintf("%.17g", v.AsDouble());
    default:
      return "'" + ReplaceAll(v.AsString(), "'", "''") + "'";
  }
}

/// Approximate wire size of a row for sim-link metering.
uint64_t ApproxRowBytes(const Row& row) {
  uint64_t bytes = 0;
  for (const Value& v : row) {
    bytes += 16;
    if (!v.is_null() && v.IsStringKind()) bytes += v.AsString().size();
  }
  return bytes;
}

/// Splits a predicate into its top-level AND conjuncts.
void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kBinary && e->op == Expr::Op::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

/// Resolves which FROM entry a column reference binds to, mirroring the
/// executor's rule: a qualifier matches the entry's alias; an unqualified
/// name binds to the first entry whose table defines the column. -1 when
/// unresolved.
int ResolveColumnOwner(const Expr& col, const std::vector<TableRef>& from,
                       const std::vector<const TableDef*>& defs) {
  if (!col.table.empty()) {
    for (size_t i = 0; i < from.size(); ++i) {
      if (EqualsIgnoreCase(from[i].alias, col.table)) return static_cast<int>(i);
    }
    return -1;
  }
  for (size_t i = 0; i < from.size(); ++i) {
    if (defs[i] != nullptr && defs[i]->ColumnIndex(col.column).ok()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Collects the aggregate calls reachable by the executor's merge-time
/// walk, which recurses through binary operators only — every other node
/// kind is a leaf evaluated against the group's first row. Returns false
/// when an aggregate has a shape the scatter path cannot accumulate
/// (argument-count errors are left to the gather path to reproduce).
bool CollectAggregates(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return true;
  if (e->kind == Expr::Kind::kCall && IsAggregateFunction(e->func)) {
    if (e->star) {
      if (e->func != "COUNT") return false;
      out->push_back(e);
      return true;
    }
    if (e->args.size() != 1) return false;
    out->push_back(e);
    return true;
  }
  if (e->kind == Expr::Kind::kBinary) {
    return CollectAggregates(e->left.get(), out) &&
           CollectAggregates(e->right.get(), out);
  }
  return true;
}

/// Mirror of Database::ValidateAndCoerce (exact statuses and messages);
/// the shard databases would run the same checks, but the coordinator
/// must fail *before* any shard applies anything.
Result<Row> CoerceRowForTable(const TableDef& def, Row row) {
  for (size_t i = 0; i < def.columns.size(); ++i) {
    const ColumnDef& col = def.columns[i];
    if (row[i].is_null()) {
      if (col.not_null || def.IsPrimaryKeyColumn(col.name)) {
        return Status::ConstraintViolation("column " + def.name + "." +
                                           col.name + " may not be NULL");
      }
      continue;
    }
    EASIA_ASSIGN_OR_RETURN(row[i], row[i].CoerceTo(col.type));
    if (col.type == DataType::kVarchar && col.size > 0 &&
        row[i].AsString().size() > col.size) {
      return Status::ConstraintViolation(
          StrPrintf("value too long for %s.%s (max %zu)", def.name.c_str(),
                    col.name.c_str(), col.size));
    }
  }
  return row;
}

/// Canonical key for a row's primary-key values (dedup / exclusion sets).
std::string PkKey(const TableDef& def, const Row& row) {
  std::string key;
  for (const std::string& col : def.primary_key) {
    Result<size_t> idx = def.ColumnIndex(col);
    if (idx.ok()) PutLengthPrefixed(&key, row[*idx].ToKeyString());
  }
  return key;
}

QueryResult DmlResult(size_t rows_affected) {
  QueryResult r;
  r.is_query = false;
  r.rows_affected = rows_affected;
  return r;
}

/// Per-slot partial accumulator, mergeable across shards. Mirrors the
/// executor's EvalAggregate accumulation exactly (null skip, __int128
/// integer sums, Compare-based min/max).
struct SlotAcc {
  int64_t count = 0;
  __int128 isum = 0;
  double dsum = 0;
  bool all_int = true;
  Value min_v = Value::Null();
  Value max_v = Value::Null();
};

struct PartialGroup {
  int64_t rows = 0;  // COUNT(*) of the group
  uint64_t first_seq = UINT64_MAX;
  bool has_first = false;
  Row first_row;
  std::vector<SlotAcc> slots;
};

}  // namespace

/// Per-statement routing decision.
struct ShardCoordinator::SelectAnalysis {
  enum class Strategy { kSingle, kScatter, kGather };
  struct Route {
    const TableDef* def = nullptr;
    const PartState* state = nullptr;  // null: broadcast table
    std::vector<bool> scanned;
  };
  Strategy strategy = Strategy::kGather;
  bool missing_table = false;
  bool any_partitioned = false;
  size_t single_shard = 0;  // kSingle: target shard
  std::vector<Route> routes;
  std::vector<bool> union_scanned;
  size_t scanned_count = 0;
  size_t pruned_count = 0;
  /// Aggregate calls in walk order (items, HAVING, ORDER BY); scatter
  /// accumulates one SlotAcc per entry.
  std::vector<const Expr*> agg_nodes;
};

ShardCoordinator::ShardCoordinator(sim::Network* network, ShardOptions options)
    : network_(network), options_(std::move(options)) {
  DatabaseOptions db_opts = options_.shard_db_options;
  db_opts.enforce_foreign_keys = false;  // FKs are global; see CheckForeignKeys
  for (size_t i = 0; i < options_.shard_hosts.size(); ++i) {
    Shard shard;
    shard.host = options_.shard_hosts[i];
    shard.db =
        std::make_unique<Database>("SHARD" + std::to_string(i), db_opts);
    if (options_.replicas_per_shard > 0) {
      repl::CoordinatorOptions ropts = options_.repl_options;
      ropts.primary_host = shard.host;
      shard.repl = std::make_unique<repl::ReplicationCoordinator>(
          shard.db.get(), network_, ropts);
      for (size_t r = 1; r <= options_.replicas_per_shard; ++r) {
        shard.repl->AddReplica(shard.host + "-r" + std::to_string(r), db_opts);
      }
    }
    shards_.push_back(std::move(shard));
  }
}

ShardCoordinator::~ShardCoordinator() = default;

Result<QueryResult> ShardCoordinator::ShardWrite(size_t i,
                                                 std::string_view sql,
                                                 const ExecContext& ctx) {
  if (shards_[i].repl != nullptr) return shards_[i].repl->Execute(sql, ctx);
  return shards_[i].db->Execute(sql, ctx);
}

repl::ReadTicket ShardCoordinator::ShardRead(size_t i) {
  if (shards_[i].repl != nullptr) return shards_[i].repl->RouteRead();
  return {shards_[i].db.get(), shards_[i].db->commit_epoch(), shards_[i].host,
          false};
}

Database* ShardCoordinator::primary_db(size_t i) const {
  // After a shard failover the replication group's primary aliases a
  // promoted replica; shards_[i].db keeps owning the initial primary but
  // no longer receives writes.
  if (shards_[i].repl != nullptr) return shards_[i].repl->primary();
  return shards_[i].db.get();
}

Result<const Table*> ShardCoordinator::ShardTable(
    size_t i, const std::string& table) const {
  return primary_db(i)->GetTable(table);
}

size_t ShardCoordinator::ShardOfValue(const PartState& state,
                                      const Value& pk) const {
  uint64_t hash = Fnv1a64(pk.ToKeyString());
  uint64_t partition = hash % static_cast<uint64_t>(state.partitions);
  return static_cast<size_t>(partition % shards_.size());
}

uint64_t ShardCoordinator::SeqOf(const PartState& state,
                                 const Value& pk) const {
  auto it = state.seq.find(pk.ToKeyString());
  return it == state.seq.end() ? UINT64_MAX : it->second;
}

void ShardCoordinator::MeterToCoordinator(const std::string& from_host,
                                          uint64_t bytes) {
  if (bytes == 0 || from_host.empty() ||
      from_host == options_.coordinator_host) {
    return;
  }
  // Best effort: a lossy/down link must not fail the read that already
  // served from local table state.
  (void)network_->TransferAt(from_host, options_.coordinator_host, bytes,
                             network_->Now());
}

uint64_t ShardCoordinator::combined_epoch() const {
  uint64_t epoch = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    epoch += primary_db(i)->commit_epoch();
  }
  return epoch;
}

std::vector<ShardInfo> ShardCoordinator::shard_info() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ShardInfo> out;
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardInfo info;
    info.host = shards_[i].host;
    info.commit_epoch = primary_db(i)->commit_epoch();
    for (const auto& [name, state] : part_) {
      Result<const Table*> table = ShardTable(i, name);
      if (table.ok()) info.partitioned_rows += (*table)->RowCount();
    }
    if (shards_[i].repl != nullptr) {
      for (const repl::ReplicaInfo& r : shards_[i].repl->replica_info()) {
        info.max_replica_lag = std::max(info.max_replica_lag, r.lag_epochs);
        ++info.replicas;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

ShardCounters ShardCoordinator::counters() const {
  ShardCounters c;
  c.queries_single = queries_single_.load(std::memory_order_relaxed);
  c.queries_scatter = queries_scatter_.load(std::memory_order_relaxed);
  c.queries_gather = queries_gather_.load(std::memory_order_relaxed);
  c.scanned_shards = scanned_shards_.load(std::memory_order_relaxed);
  c.pruned_shards = pruned_shards_.load(std::memory_order_relaxed);
  c.writes = writes_.load(std::memory_order_relaxed);
  c.migrations = migrations_.load(std::memory_order_relaxed);
  return c;
}

void ShardCoordinator::SetScatterHook(std::function<void(size_t)> hook) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  scatter_hook_ = std::move(hook);
}

void ShardCoordinator::RegisterMetrics(obs::MetricsRegistry* metrics) {
  (void)metrics->RegisterCallback(
      "easia_shard_rows", "Rows of hash-partitioned tables per shard",
      obs::MetricsRegistry::CallbackKind::kGauge, [this] {
        std::vector<std::pair<obs::Labels, double>> out;
        std::vector<ShardInfo> info = shard_info();
        for (size_t i = 0; i < info.size(); ++i) {
          out.push_back({{{"shard", std::to_string(i)}},
                         static_cast<double>(info[i].partitioned_rows)});
        }
        return out;
      });
  (void)metrics->RegisterCallback(
      "easia_shard_lag_epochs",
      "Max replica lag (epochs) in each shard's replication group",
      obs::MetricsRegistry::CallbackKind::kGauge, [this] {
        std::vector<std::pair<obs::Labels, double>> out;
        std::vector<ShardInfo> info = shard_info();
        for (size_t i = 0; i < info.size(); ++i) {
          out.push_back({{{"shard", std::to_string(i)}},
                         static_cast<double>(info[i].max_replica_lag)});
        }
        return out;
      });
  (void)metrics->RegisterCallback(
      "easia_shard_queries_total", "SELECTs routed, by execution strategy",
      obs::MetricsRegistry::CallbackKind::kCounter, [this] {
        ShardCounters c = counters();
        return std::vector<std::pair<obs::Labels, double>>{
            {{{"strategy", "gather"}}, static_cast<double>(c.queries_gather)},
            {{{"strategy", "scatter"}}, static_cast<double>(c.queries_scatter)},
            {{{"strategy", "single"}}, static_cast<double>(c.queries_single)},
        };
      });
  auto simple = [&](const char* name, const char* help,
                    std::atomic<uint64_t>* counter) {
    (void)metrics->RegisterCallback(
        name, help, obs::MetricsRegistry::CallbackKind::kCounter, [counter] {
          return std::vector<std::pair<obs::Labels, double>>{
              {{}, static_cast<double>(counter->load(
                       std::memory_order_relaxed))}};
        });
  };
  simple("easia_shard_scanned_shards_total",
         "Shard scans performed by SELECT routing", &scanned_shards_);
  simple("easia_shard_pruned_shards_total",
         "Shard scans avoided by partition pruning", &pruned_shards_);
  simple("easia_shard_writes_total", "DML/DDL statements routed to shards",
         &writes_);
  simple("easia_shard_migrations_total",
         "Rows moved between shards by partition-key UPDATEs", &migrations_);
}

Result<QueryResult> ShardCoordinator::Execute(std::string_view sql,
                                              const ExecContext& ctx) {
  EASIA_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      std::shared_lock<std::shared_mutex> lock(mu_);
      return ExecSelect(*stmt.select, sql, ctx, /*explain=*/false,
                        /*analyze=*/false);
    }
    case Statement::Kind::kExplain: {
      std::shared_lock<std::shared_mutex> lock(mu_);
      return ExecSelect(*stmt.select, sql, ctx, /*explain=*/true,
                        stmt.explain_analyze);
    }
    case Statement::Kind::kBegin:
    case Statement::Kind::kCommit:
    case Statement::Kind::kRollback:
      return Status::FailedPrecondition(
          "explicit transactions are not supported on a sharded database");
    default:
      break;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  switch (stmt.kind) {
    case Statement::Kind::kInsert:
      return ExecInsert(*stmt.insert, sql, ctx);
    case Statement::Kind::kUpdate:
      return ExecUpdate(*stmt.update, sql, ctx);
    case Statement::Kind::kDelete:
      return ExecDelete(*stmt.del, sql, ctx);
    case Statement::Kind::kCreateTable:
    case Statement::Kind::kDropTable:
      return ExecDdl(stmt, sql, ctx);
    case Statement::Kind::kCopy:
      return ExecCopy(*stmt.copy, sql, ctx);
    default:
      return Status::Internal("unhandled statement kind");
  }
}

// ---------------------------------------------------------------------------
// SELECT planning
// ---------------------------------------------------------------------------

std::vector<bool> ShardCoordinator::PruneForTable(
    const PartState& state, const TableDef& def, const std::string& alias,
    const SelectStmt& stmt) const {
  const size_t n = shards_.size();
  std::vector<bool> scanned(n, true);
  if (def.primary_key.empty()) return scanned;
  const std::string& pk = def.primary_key[0];
  const bool pk_numeric = state.pk_type == DataType::kInteger ||
                          state.pk_type == DataType::kDouble ||
                          state.pk_type == DataType::kTimestamp;

  std::vector<const TableDef*> defs;
  const Catalog& cat = primary_db(0)->catalog();
  for (const TableRef& ref : stmt.from) {
    Result<const TableDef*> d = cat.GetTable(ref.table);
    defs.push_back(d.ok() ? *d : nullptr);
  }
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(stmt.where.get(), &conjuncts);
  for (const TableRef& ref : stmt.from) {
    CollectConjuncts(ref.join_condition.get(), &conjuncts);
  }

  auto is_our_pk = [&](const Expr& e) {
    if (e.kind != Expr::Kind::kColumn) return false;
    if (!EqualsIgnoreCase(e.column, pk)) return false;
    int owner = ResolveColumnOwner(e, stmt.from, defs);
    return owner >= 0 &&
           EqualsIgnoreCase(stmt.from[static_cast<size_t>(owner)].alias, alias);
  };
  auto intersect = [&](const std::vector<bool>& mask) {
    for (size_t s = 0; s < n; ++s) scanned[s] = scanned[s] && mask[s];
  };

  for (const Expr* c : conjuncts) {
    // pk = <literal>  (either side). Cross-kind comparisons (string pk vs
    // numeric literal) are skipped: hashing goes through the pk's key
    // encoding, which only matches within a kind class.
    if (c->kind == Expr::Kind::kBinary && c->op == Expr::Op::kEq &&
        c->left != nullptr && c->right != nullptr) {
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (c->left->kind == Expr::Kind::kColumn &&
          c->right->kind == Expr::Kind::kLiteral) {
        col = c->left.get();
        lit = c->right.get();
      } else if (c->right->kind == Expr::Kind::kColumn &&
                 c->left->kind == Expr::Kind::kLiteral) {
        col = c->right.get();
        lit = c->left.get();
      }
      if (col != nullptr && is_our_pk(*col)) {
        std::vector<bool> mask(n, false);
        if (!lit->literal.is_null()) {  // `pk = NULL` never matches: all-false
          if (lit->literal.IsNumericKind() != pk_numeric) continue;
          Result<Value> coerced = lit->literal.CoerceTo(state.pk_type);
          if (!coerced.ok()) continue;
          mask[ShardOfValue(state, *coerced)] = true;
        }
        intersect(mask);
        continue;
      }
    }
    // pk IN (<literals>): union of hashes. NULL list items never match and
    // drop out; any non-literal or uncoercible item abandons the conjunct.
    if (c->kind == Expr::Kind::kInList && !c->negated && c->left != nullptr &&
        c->left->kind == Expr::Kind::kColumn && is_our_pk(*c->left)) {
      std::vector<bool> mask(n, false);
      bool bounded = true;
      for (const auto& arg : c->args) {
        if (arg->kind != Expr::Kind::kLiteral) {
          bounded = false;
          break;
        }
        if (arg->literal.is_null()) continue;
        if (arg->literal.IsNumericKind() != pk_numeric) {
          bounded = false;
          break;
        }
        Result<Value> coerced = arg->literal.CoerceTo(state.pk_type);
        if (!coerced.ok()) {
          bounded = false;
          break;
        }
        mask[ShardOfValue(state, *coerced)] = true;
      }
      if (!bounded) continue;
      intersect(mask);
      continue;
    }
    // pk < / <= / > / >= <literal>: prune shards whose pk min/max sketch
    // (stats) proves no local row can satisfy. The raw literal is compared
    // (no coercion — rounding would corrupt the bound); sketches only
    // widen, so a replica lagging behind its primary stays covered.
    if (c->kind == Expr::Kind::kBinary && c->left != nullptr &&
        c->right != nullptr &&
        (c->op == Expr::Op::kLt || c->op == Expr::Op::kLe ||
         c->op == Expr::Op::kGt || c->op == Expr::Op::kGe)) {
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      Expr::Op op = c->op;
      if (c->left->kind == Expr::Kind::kColumn &&
          c->right->kind == Expr::Kind::kLiteral) {
        col = c->left.get();
        lit = c->right.get();
      } else if (c->right->kind == Expr::Kind::kColumn &&
                 c->left->kind == Expr::Kind::kLiteral) {
        col = c->right.get();
        lit = c->left.get();
        switch (op) {  // L op pk  ==  pk (flipped) L
          case Expr::Op::kLt: op = Expr::Op::kGt; break;
          case Expr::Op::kLe: op = Expr::Op::kGe; break;
          case Expr::Op::kGt: op = Expr::Op::kLt; break;
          default: op = Expr::Op::kLe; break;
        }
      }
      if (col != nullptr && is_our_pk(*col)) {
        const Value& bound = lit->literal;
        std::vector<bool> mask(n, false);
        if (!bound.is_null() && bound.IsNumericKind() == pk_numeric) {
          for (size_t s = 0; s < n; ++s) {
            Result<const Table*> table = ShardTable(s, def.name);
            if (!table.ok()) {
              mask[s] = true;  // unknown state: conservatively scan
              continue;
            }
            const stats::ColumnSketch& sketch =
                (*table)->table_stats().column(state.pk_index);
            const Value& mn = sketch.min_value();
            const Value& mx = sketch.max_value();
            if (mn.is_null() || mx.is_null()) continue;  // never held a row
            bool can_match = true;
            switch (op) {
              case Expr::Op::kLt: can_match = mn.Compare(bound) < 0; break;
              case Expr::Op::kLe: can_match = mn.Compare(bound) <= 0; break;
              case Expr::Op::kGt: can_match = mx.Compare(bound) > 0; break;
              default: can_match = mx.Compare(bound) >= 0; break;
            }
            mask[s] = can_match;
          }
        }
        // NULL bound: comparison is never TRUE — all shards prune.
        if (bound.is_null()) {
          intersect(mask);
          continue;
        }
        if (bound.IsNumericKind() != pk_numeric) continue;
        intersect(mask);
        continue;
      }
    }
  }
  return scanned;
}

ShardCoordinator::SelectAnalysis ShardCoordinator::Analyze(
    const SelectStmt& stmt) const {
  SelectAnalysis a;
  const size_t n = shards_.size();
  const Catalog& cat = primary_db(0)->catalog();
  std::vector<const TableDef*> defs;
  for (const TableRef& ref : stmt.from) {
    Result<const TableDef*> def = cat.GetTable(ref.table);
    if (!def.ok()) {
      a.missing_table = true;
      break;
    }
    defs.push_back(*def);
  }
  if (a.missing_table || stmt.from.empty()) {
    // Forward to shard 0: its catalogue mirror reproduces the single-node
    // behaviour (including the "no table named X" error).
    a.strategy = SelectAnalysis::Strategy::kSingle;
    a.single_shard = 0;
    a.scanned_count = 1;
    return a;
  }
  a.routes.resize(stmt.from.size());
  a.union_scanned.assign(n, false);
  bool order_dirty = false;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    SelectAnalysis::Route& route = a.routes[i];
    route.def = defs[i];
    auto pit = part_.find(ToUpper(defs[i]->name));
    if (pit == part_.end()) {
      route.scanned.assign(n, false);  // broadcast: local on every shard
      continue;
    }
    a.any_partitioned = true;
    route.state = &pit->second;
    order_dirty = order_dirty || pit->second.order_dirty;
    route.scanned = options_.enable_pruning
                        ? PruneForTable(pit->second, *defs[i],
                                        stmt.from[i].alias, stmt)
                        : std::vector<bool>(n, true);
  }
  if (!a.any_partitioned) {
    a.strategy = SelectAnalysis::Strategy::kSingle;
    a.single_shard = 0;
    a.scanned_count = 1;
    return a;
  }
  // Colocated-join pruning: pk = pk equality between two partitioned
  // tables with equal partition counts means matching rows share a shard,
  // so each side's route intersects with the other's.
  if (options_.enable_pruning) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(stmt.where.get(), &conjuncts);
    for (const TableRef& ref : stmt.from) {
      CollectConjuncts(ref.join_condition.get(), &conjuncts);
    }
    for (const Expr* c : conjuncts) {
      if (c->kind != Expr::Kind::kBinary || c->op != Expr::Op::kEq) continue;
      if (c->left == nullptr || c->right == nullptr) continue;
      if (c->left->kind != Expr::Kind::kColumn ||
          c->right->kind != Expr::Kind::kColumn) {
        continue;
      }
      int o1 = ResolveColumnOwner(*c->left, stmt.from, defs);
      int o2 = ResolveColumnOwner(*c->right, stmt.from, defs);
      if (o1 < 0 || o2 < 0 || o1 == o2) continue;
      SelectAnalysis::Route& r1 = a.routes[static_cast<size_t>(o1)];
      SelectAnalysis::Route& r2 = a.routes[static_cast<size_t>(o2)];
      if (r1.state == nullptr || r2.state == nullptr) continue;
      if (r1.def->primary_key.empty() || r2.def->primary_key.empty()) continue;
      if (!EqualsIgnoreCase(c->left->column, r1.def->primary_key[0])) continue;
      if (!EqualsIgnoreCase(c->right->column, r2.def->primary_key[0])) continue;
      if (r1.state->partitions != r2.state->partitions) continue;
      for (size_t s = 0; s < n; ++s) {
        bool both = r1.scanned[s] && r2.scanned[s];
        r1.scanned[s] = both;
        r2.scanned[s] = both;
      }
    }
  }
  for (const SelectAnalysis::Route& route : a.routes) {
    if (route.state == nullptr) continue;
    for (size_t s = 0; s < n; ++s) {
      if (route.scanned[s]) a.union_scanned[s] = true;
    }
  }
  a.scanned_count = static_cast<size_t>(
      std::count(a.union_scanned.begin(), a.union_scanned.end(), true));
  a.pruned_count = n - a.scanned_count;

  // All matching partitioned rows on one shard (or none anywhere) and
  // insertion order intact: the statement forwards whole. Broadcast
  // tables are full copies everywhere, so joins stay correct.
  if (a.scanned_count == 0 ||
      (a.scanned_count == 1 && !order_dirty)) {
    a.strategy = SelectAnalysis::Strategy::kSingle;
    a.single_shard = 0;
    for (size_t s = 0; s < n; ++s) {
      if (a.union_scanned[s]) a.single_shard = s;
    }
    return a;
  }

  // Scatter: single partitioned table, aggregate shape, no DISTINCT, and
  // every aggregate reachable by the merge walk is accumulable.
  if (options_.enable_scatter && stmt.from.size() == 1 &&
      a.routes[0].state != nullptr && !stmt.distinct) {
    bool aggregate_query = !stmt.group_by.empty() || stmt.having != nullptr;
    for (const SelectItem& item : stmt.items) {
      if (item.expr != nullptr && item.expr->ContainsAggregate()) {
        aggregate_query = true;
      }
    }
    if (aggregate_query) {
      bool collectable = true;
      for (const SelectItem& item : stmt.items) {
        if (item.expr != nullptr) {
          collectable =
              collectable && CollectAggregates(item.expr.get(), &a.agg_nodes);
        }
      }
      if (stmt.having != nullptr) {
        collectable =
            collectable && CollectAggregates(stmt.having.get(), &a.agg_nodes);
      }
      for (const OrderItem& item : stmt.order_by) {
        collectable =
            collectable && CollectAggregates(item.expr.get(), &a.agg_nodes);
      }
      if (collectable) {
        a.strategy = SelectAnalysis::Strategy::kScatter;
        return a;
      }
      a.agg_nodes.clear();
    }
  }
  a.strategy = SelectAnalysis::Strategy::kGather;
  return a;
}

Result<QueryResult> ShardCoordinator::ExecSelect(const SelectStmt& stmt,
                                                 std::string_view sql,
                                                 const ExecContext& ctx,
                                                 bool explain, bool analyze) {
  SelectAnalysis a = Analyze(stmt);
  const size_t n = shards_.size();
  if (!explain || analyze) {
    scanned_shards_.fetch_add(a.scanned_count, std::memory_order_relaxed);
    pruned_shards_.fetch_add(a.pruned_count, std::memory_order_relaxed);
  }

  if (!explain) {
    switch (a.strategy) {
      case SelectAnalysis::Strategy::kSingle: {
        queries_single_.fetch_add(1, std::memory_order_relaxed);
        repl::ReadTicket ticket = ShardRead(a.single_shard);
        Result<QueryResult> r = ticket.db->Execute(sql, ctx);
        if (r.ok()) {
          uint64_t bytes = 0;
          for (const Row& row : r->rows) bytes += ApproxRowBytes(row);
          MeterToCoordinator(ticket.node, bytes);
        }
        return r;
      }
      case SelectAnalysis::Strategy::kScatter: {
        bool fell_back = false;
        Result<QueryResult> r = RunScatter(stmt, a, ctx, &fell_back, nullptr);
        if (fell_back) {
          queries_gather_.fetch_add(1, std::memory_order_relaxed);
        } else {
          queries_scatter_.fetch_add(1, std::memory_order_relaxed);
        }
        return r;
      }
      case SelectAnalysis::Strategy::kGather: {
        queries_gather_.fetch_add(1, std::memory_order_relaxed);
        return RunGather(stmt, a, ctx, nullptr);
      }
    }
  }

  // EXPLAIN [ANALYZE]: one PLAN column like the single-node database,
  // prefixed with the shard routing header.
  const char* strategy_name =
      a.strategy == SelectAnalysis::Strategy::kSingle    ? "single"
      : a.strategy == SelectAnalysis::Strategy::kScatter ? "scatter"
                                                         : "gather";
  std::vector<std::string> lines;
  lines.push_back(StrPrintf("shard: strategy=%s scanned %zu of %zu shards "
                            "(%zu pruned)",
                            strategy_name, a.scanned_count, n,
                            a.pruned_count));
  switch (a.strategy) {
    case SelectAnalysis::Strategy::kSingle: {
      lines.push_back(StrPrintf("  shard %zu host=%s: forwarded",
                                a.single_shard,
                                shards_[a.single_shard].host.c_str()));
      repl::ReadTicket ticket = ShardRead(a.single_shard);
      // `sql` is the whole EXPLAIN [ANALYZE] statement; the shard renders
      // its own plan (and per-operator actuals under ANALYZE).
      Result<QueryResult> sub = ticket.db->Execute(sql, ctx);
      if (!sub.ok()) return sub;
      for (const Row& row : sub->rows) {
        lines.push_back("  " + row[0].ToDisplayString());
      }
      break;
    }
    case SelectAnalysis::Strategy::kScatter: {
      std::vector<int64_t> actual;
      bool fell_back = false;
      Result<QueryResult> run = QueryResult{};
      if (analyze) {
        run = RunScatter(stmt, a, ctx, &fell_back, &actual);
        if (!run.ok()) return run;
      }
      const SelectAnalysis::Route& route = a.routes[0];
      for (size_t s = 0; s < n; ++s) {
        if (!route.scanned[s]) {
          lines.push_back(StrPrintf("  shard %zu host=%s: pruned", s,
                                    shards_[s].host.c_str()));
          continue;
        }
        double est = 0;
        Result<const Table*> table = ShardTable(s, route.def->name);
        if (table.ok()) est = static_cast<double>((*table)->RowCount());
        std::string line = StrPrintf(
            "  shard %zu host=%s: partial aggregate %s (est rows=%.2f", s,
            shards_[s].host.c_str(), route.def->name.c_str(), est);
        if (analyze && s < actual.size() && actual[s] >= 0) {
          line += StrPrintf(", actual rows=%lld",
                            static_cast<long long>(actual[s]));
        }
        line += ")";
        lines.push_back(std::move(line));
      }
      if (fell_back) {
        lines.push_back("  scatter fell back to gather (exactness)");
      }
      if (analyze) {
        lines.push_back(StrPrintf("total: %zu rows", run->rows.size()));
      }
      break;
    }
    case SelectAnalysis::Strategy::kGather: {
      std::vector<int64_t> fetched;
      Result<QueryResult> run = QueryResult{};
      if (analyze) {
        run = RunGather(stmt, a, ctx, &fetched);
        if (!run.ok()) return run;
      }
      for (const SelectAnalysis::Route& route : a.routes) {
        if (route.state == nullptr) {
          lines.push_back(StrPrintf("  table %s: broadcast (served locally)",
                                    route.def->name.c_str()));
          continue;
        }
        for (size_t s = 0; s < n; ++s) {
          if (!route.scanned[s]) {
            lines.push_back(StrPrintf("  table %s shard %zu host=%s: pruned",
                                      route.def->name.c_str(), s,
                                      shards_[s].host.c_str()));
            continue;
          }
          double est = 0;
          Result<const Table*> table = ShardTable(s, route.def->name);
          if (table.ok()) est = static_cast<double>((*table)->RowCount());
          lines.push_back(StrPrintf(
              "  table %s shard %zu host=%s: gather scan (est rows=%.2f)",
              route.def->name.c_str(), s, shards_[s].host.c_str(), est));
        }
      }
      if (analyze) {
        for (size_t s = 0; s < fetched.size(); ++s) {
          if (fetched[s] >= 0) {
            lines.push_back(
                StrPrintf("  shard %zu host=%s: fetched %lld rows", s,
                          shards_[s].host.c_str(),
                          static_cast<long long>(fetched[s])));
          }
        }
        lines.push_back(StrPrintf("total: %zu rows", run->rows.size()));
      }
      break;
    }
  }
  QueryResult result;
  result.is_query = true;
  result.column_names = {"PLAN"};
  result.column_types = {DataType::kVarchar};
  for (std::string& line : lines) {
    result.rows.push_back({Value::Varchar(std::move(line))});
  }
  return result;
}

// ---------------------------------------------------------------------------
// Scatter: per-shard partial aggregation, merged at the coordinator
// ---------------------------------------------------------------------------

Result<QueryResult> ShardCoordinator::RunScatter(
    const SelectStmt& stmt, const SelectAnalysis& a, const ExecContext& ctx,
    bool* fell_back, std::vector<int64_t>* actual_rows) {
  *fell_back = false;
  const size_t n = shards_.size();
  const SelectAnalysis::Route& route = a.routes[0];
  const PartState& state = *route.state;
  const TableDef& def = *route.def;
  const std::string& alias = stmt.from[0].alias;
  if (actual_rows != nullptr) actual_rows->assign(n, -1);

  std::unordered_map<const Expr*, size_t> slot_of;
  for (size_t i = 0; i < a.agg_nodes.size(); ++i) slot_of[a.agg_nodes[i]] = i;

  struct ShardScan {
    Status status = Status::OK();
    std::map<std::string, PartialGroup> groups;
    int64_t matched = 0;
    uint64_t bytes = 0;
    std::string node;
    bool ran = false;
  };
  std::vector<ShardScan> scans(n);

  auto scan_shard = [&](size_t s) {
    ShardScan& out = scans[s];
    out.ran = true;
    repl::ReadTicket ticket = ShardRead(s);
    out.node = ticket.node;
    Result<const Table*> src = ticket.db->GetTable(def.name);
    if (!src.ok()) {
      out.status = src.status();
      return;
    }
    const Table* table = *src;
    std::vector<ColumnBinding> schema;
    for (const ColumnDef& col : table->def().columns) {
      schema.push_back({alias, col.name, col.type, &col});
    }
    const size_t pk_index = state.pk_index;
    const bool per_row_seq = state.order_dirty;
    table->ForEachRow([&](RowId, const Row& row) {
      if (!out.status.ok()) return;
      EvalEnv env{&schema, &row};
      if (stmt.where != nullptr) {
        Result<Value> cond = EvalExpr(*stmt.where, env);
        if (!cond.ok()) {
          out.status = cond.status();
          return;
        }
        if (!IsTruthy(*cond)) return;
      }
      ++out.matched;
      std::string key;
      for (const auto& group_expr : stmt.group_by) {
        Result<Value> v = EvalExpr(*group_expr, env);
        if (!v.ok()) {
          out.status = v.status();
          return;
        }
        PutLengthPrefixed(&key, v->ToKeyString());
      }
      auto [it, inserted] = out.groups.emplace(key, PartialGroup{});
      PartialGroup& group = it->second;
      if (inserted) {
        group.slots.resize(a.agg_nodes.size());
        out.bytes += key.size() + 48 * a.agg_nodes.size();
      }
      ++group.rows;
      // Shard-local RowId order refines global insertion order unless a
      // migration dirtied it; then every row's sequence is looked up.
      if (inserted || per_row_seq) {
        uint64_t seq = SeqOf(state, row[pk_index]);
        if (!group.has_first || seq < group.first_seq) {
          group.first_seq = seq;
          group.first_row = row;
          group.has_first = true;
          if (inserted) out.bytes += ApproxRowBytes(row);
        }
      }
      for (size_t i = 0; i < a.agg_nodes.size(); ++i) {
        const Expr* agg = a.agg_nodes[i];
        if (agg->star) continue;  // COUNT(*): group.rows covers it
        Result<Value> arg = EvalExpr(*agg->args[0], env);
        if (!arg.ok()) {
          out.status = arg.status();
          return;
        }
        const Value& v = *arg;
        if (v.is_null()) continue;
        SlotAcc& acc = group.slots[i];
        ++acc.count;
        if (v.IsNumericKind()) {
          acc.dsum += v.AsDouble();
          if (v.type() == DataType::kDouble) {
            acc.all_int = false;
          } else {
            acc.isum += static_cast<__int128>(v.AsInt());
          }
        } else if (agg->func == "SUM" || agg->func == "AVG") {
          out.status =
              Status::InvalidArgument(agg->func + " over non-numeric column");
          return;
        }
        if (acc.min_v.is_null() || v.Compare(acc.min_v) < 0) acc.min_v = v;
        if (acc.max_v.is_null() || v.Compare(acc.max_v) > 0) acc.max_v = v;
      }
    });
  };

  std::vector<size_t> to_scan;
  for (size_t s = 0; s < n; ++s) {
    if (route.scanned[s]) to_scan.push_back(s);
  }
  const bool serial = !options_.parallel_scatter || scatter_hook_ != nullptr;
  if (serial) {
    for (size_t s : to_scan) {
      // The hook may fail over this shard's primary; the read ticket is
      // acquired after, so the scan observes the post-failover topology.
      if (scatter_hook_) scatter_hook_(s);
      scan_shard(s);
    }
  } else {
    std::vector<std::thread> workers;
    workers.reserve(to_scan.size());
    for (size_t s : to_scan) {
      workers.emplace_back([&scan_shard, s] { scan_shard(s); });
    }
    for (std::thread& w : workers) w.join();
  }
  // sim::Network is not thread-safe: meter after the join.
  for (size_t s : to_scan) {
    if (scans[s].ran && scans[s].status.ok()) {
      MeterToCoordinator(scans[s].node, scans[s].bytes);
    }
  }
  if (actual_rows != nullptr) {
    for (size_t s : to_scan) (*actual_rows)[s] = scans[s].matched;
  }

  // Exactness gates: any shard-side evaluation error, and any SUM/AVG that
  // saw a double (floating-point addition is order-dependent), re-run via
  // gather — which reproduces single-node behaviour, errors included.
  bool fallback = false;
  for (size_t s : to_scan) {
    if (!scans[s].status.ok()) fallback = true;
  }
  std::map<std::string, PartialGroup> merged;
  if (!fallback) {
    for (size_t s : to_scan) {
      for (auto& [key, partial] : scans[s].groups) {
        auto [it, inserted] = merged.emplace(key, PartialGroup{});
        PartialGroup& m = it->second;
        if (inserted) m.slots.resize(a.agg_nodes.size());
        m.rows += partial.rows;
        if (partial.has_first &&
            (!m.has_first || partial.first_seq < m.first_seq)) {
          m.first_seq = partial.first_seq;
          m.first_row = std::move(partial.first_row);
          m.has_first = true;
        }
        for (size_t i = 0; i < m.slots.size(); ++i) {
          SlotAcc& dst = m.slots[i];
          const SlotAcc& src = partial.slots[i];
          dst.count += src.count;
          dst.isum += src.isum;
          dst.dsum += src.dsum;
          dst.all_int = dst.all_int && src.all_int;
          if (!src.min_v.is_null() &&
              (dst.min_v.is_null() || src.min_v.Compare(dst.min_v) < 0)) {
            dst.min_v = src.min_v;
          }
          if (!src.max_v.is_null() &&
              (dst.max_v.is_null() || src.max_v.Compare(dst.max_v) > 0)) {
            dst.max_v = src.max_v;
          }
        }
      }
    }
    for (const auto& [key, group] : merged) {
      for (size_t i = 0; i < a.agg_nodes.size(); ++i) {
        const std::string& func = a.agg_nodes[i]->func;
        if ((func == "SUM" || func == "AVG") && group.slots[i].count > 0 &&
            !group.slots[i].all_int) {
          fallback = true;
        }
      }
    }
  }
  if (fallback) {
    *fell_back = true;
    return RunGather(stmt, a, ctx, nullptr);
  }

  // An aggregate without GROUP BY over no rows still yields one group.
  if (merged.empty() && stmt.group_by.empty()) {
    PartialGroup empty;
    empty.slots.resize(a.agg_nodes.size());
    merged.emplace(std::string(), std::move(empty));
  }
  // Single-node group output order is first-encounter order; the merged
  // equivalent is ascending global first-row sequence.
  std::vector<const PartialGroup*> ordered;
  ordered.reserve(merged.size());
  for (const auto& [key, group] : merged) ordered.push_back(&group);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const PartialGroup* x, const PartialGroup* y) {
                     return x->first_seq < y->first_seq;
                   });

  // Output columns: the executor's naming/typing rules over the shard
  // schema (identical on every shard).
  std::vector<ColumnBinding> schema;
  for (const ColumnDef& col : def.columns) {
    schema.push_back({alias, col.name, col.type, &col});
  }
  struct OutputItem {
    std::string name;
    DataType type = DataType::kVarchar;
    const Expr* expr = nullptr;  // null: plain column from the first row
    size_t direct_index = 0;
  };
  std::vector<OutputItem> outputs;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      for (size_t c = 0; c < schema.size(); ++c) {
        if (!item.star_table.empty() &&
            !EqualsIgnoreCase(schema[c].table_alias, item.star_table)) {
          continue;
        }
        outputs.push_back({schema[c].column, schema[c].type, nullptr, c});
      }
      if (!item.star_table.empty() && outputs.empty()) {
        return Status::NotFound("unknown table in select list: " +
                                item.star_table);
      }
      continue;
    }
    outputs.push_back({DefaultItemName(item, i),
                       GuessItemType(*item.expr, schema), item.expr.get(), 0});
  }
  if (outputs.empty()) return Status::InvalidArgument("empty select list");

  // Merge-time expression evaluation: aggregate calls read their merged
  // slot; binary nodes recurse (matching EvalAggregate's walk); everything
  // else evaluates against the group's global first row.
  std::function<Result<Value>(const Expr&, const PartialGroup&)> merge_eval =
      [&](const Expr& e, const PartialGroup& g) -> Result<Value> {
    if (e.kind == Expr::Kind::kCall && IsAggregateFunction(e.func)) {
      if (e.star) return Value::Integer(g.rows);
      auto it = slot_of.find(&e);
      if (it == slot_of.end()) {
        return Status::Internal("unmapped aggregate in scatter merge");
      }
      const SlotAcc& acc = g.slots[it->second];
      if (e.func == "COUNT") return Value::Integer(acc.count);
      if (acc.count == 0) return Value::Null();
      if (e.func == "SUM") return FinishSum(acc.all_int, acc.isum, acc.dsum);
      if (e.func == "AVG") {
        return FinishAvg(acc.all_int, acc.isum, acc.dsum, acc.count);
      }
      if (e.func == "MIN") return acc.min_v;
      return acc.max_v;
    }
    if (e.kind == Expr::Kind::kBinary) {
      EASIA_ASSIGN_OR_RETURN(Value lhs, merge_eval(*e.left, g));
      EASIA_ASSIGN_OR_RETURN(Value rhs, merge_eval(*e.right, g));
      Expr bin;
      bin.kind = Expr::Kind::kBinary;
      bin.op = e.op;
      bin.left = Expr::MakeLiteral(std::move(lhs));
      bin.right = Expr::MakeLiteral(std::move(rhs));
      EvalEnv env;
      return EvalExpr(bin, env);
    }
    if (!g.has_first) return Value::Null();
    EvalEnv env{&schema, &g.first_row};
    return EvalExpr(e, env);
  };

  struct ProjectedRow {
    Row values;
    Row sort_keys;
  };
  std::vector<ProjectedRow> projected;
  for (const PartialGroup* group : ordered) {
    if (stmt.having != nullptr) {
      EASIA_ASSIGN_OR_RETURN(Value keep, merge_eval(*stmt.having, *group));
      if (!IsTruthy(keep)) continue;
    }
    ProjectedRow out;
    for (const OutputItem& item : outputs) {
      if (item.expr == nullptr) {
        out.values.push_back(group->has_first
                                 ? group->first_row[item.direct_index]
                                 : Value::Null());
        continue;
      }
      EASIA_ASSIGN_OR_RETURN(Value v, merge_eval(*item.expr, *group));
      out.values.push_back(std::move(v));
    }
    for (const OrderItem& item : stmt.order_by) {
      bool matched = false;
      if (item.expr->kind == Expr::Kind::kColumn && item.expr->table.empty()) {
        for (size_t i = 0; i < outputs.size(); ++i) {
          if (EqualsIgnoreCase(outputs[i].name, item.expr->column)) {
            out.sort_keys.push_back(out.values[i]);
            matched = true;
            break;
          }
        }
      }
      if (!matched) {
        EASIA_ASSIGN_OR_RETURN(Value v, merge_eval(*item.expr, *group));
        out.sort_keys.push_back(std::move(v));
      }
    }
    projected.push_back(std::move(out));
  }
  if (!stmt.order_by.empty()) {
    std::stable_sort(projected.begin(), projected.end(),
                     [&](const ProjectedRow& x, const ProjectedRow& y) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         int cmp = x.sort_keys[i].Compare(y.sort_keys[i]);
                         if (cmp != 0) {
                           return stmt.order_by[i].descending ? cmp > 0
                                                              : cmp < 0;
                         }
                       }
                       return false;
                     });
  }
  size_t begin = std::min(static_cast<size_t>(std::max<int64_t>(
                              stmt.offset, 0)),
                          projected.size());
  size_t end = projected.size();
  if (stmt.limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(stmt.limit));
  }
  QueryResult result;
  result.is_query = true;
  for (const OutputItem& item : outputs) {
    result.column_names.push_back(item.name);
    result.column_types.push_back(item.type);
  }
  for (size_t i = begin; i < end; ++i) {
    result.rows.push_back(std::move(projected[i].values));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Gather: fetch rows in global order, execute at the coordinator
// ---------------------------------------------------------------------------

Result<QueryResult> ShardCoordinator::RunGather(
    const SelectStmt& stmt, const SelectAnalysis& a, const ExecContext& ctx,
    std::vector<int64_t>* fetched_rows) {
  (void)ctx;
  const size_t n = shards_.size();
  if (fetched_rows != nullptr) fetched_rows->assign(n, -1);
  std::map<std::string, uint64_t> host_bytes;
  // One coordinator-local row-store table per distinct FROM table, filled
  // in global insertion order so the planner sees single-node row order.
  std::map<std::string, std::unique_ptr<Table>> temp;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    const SelectAnalysis::Route& route = a.routes[i];
    std::string key = ToUpper(route.def->name);
    if (temp.count(key) > 0) continue;
    TableDef temp_def = *route.def;
    temp_def.columnar = false;
    auto local = std::make_unique<Table>(std::move(temp_def));
    if (route.state == nullptr) {
      // Broadcast table: shard 0's copy is in single-node insertion order.
      repl::ReadTicket ticket = ShardRead(0);
      EASIA_ASSIGN_OR_RETURN(const Table* src,
                             ticket.db->GetTable(route.def->name));
      Status insert_status = Status::OK();
      uint64_t bytes = 0;
      src->ForEachRow([&](RowId, const Row& row) {
        if (!insert_status.ok()) return;
        bytes += ApproxRowBytes(row);
        Result<RowId> inserted = local->Insert(row);
        if (!inserted.ok()) insert_status = inserted.status();
      });
      EASIA_RETURN_IF_ERROR(insert_status);
      host_bytes[ticket.node] += bytes;
    } else {
      std::vector<std::pair<uint64_t, Row>> rows;
      const size_t pk_index = route.state->pk_index;
      for (size_t s = 0; s < n; ++s) {
        if (!route.scanned[s]) continue;
        if (scatter_hook_) scatter_hook_(s);
        repl::ReadTicket ticket = ShardRead(s);
        EASIA_ASSIGN_OR_RETURN(const Table* src,
                               ticket.db->GetTable(route.def->name));
        uint64_t bytes = 0;
        int64_t count = 0;
        src->ForEachRow([&](RowId, const Row& row) {
          rows.emplace_back(SeqOf(*route.state, row[pk_index]), row);
          bytes += ApproxRowBytes(row);
          ++count;
        });
        host_bytes[ticket.node] += bytes;
        if (fetched_rows != nullptr) {
          int64_t& slot = (*fetched_rows)[s];
          slot = (slot < 0 ? 0 : slot) + count;
        }
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [](const std::pair<uint64_t, Row>& x,
                          const std::pair<uint64_t, Row>& y) {
                         return x.first < y.first;
                       });
      for (auto& [seq, row] : rows) {
        Result<RowId> inserted = local->Insert(std::move(row));
        if (!inserted.ok()) return inserted.status();
      }
    }
    temp.emplace(std::move(key), std::move(local));
  }
  for (const auto& [host, bytes] : host_bytes) {
    MeterToCoordinator(host, bytes);
  }
  TableLookup lookup = [&temp](const std::string& name) -> Result<const Table*> {
    auto it = temp.find(ToUpper(name));
    if (it == temp.end()) return Status::NotFound("no table named " + name);
    return it->second.get();
  };
  ExecuteOptions exec_options;
  exec_options.cost_based = options_.shard_db_options.cost_based_planner;
  return ExecuteSelect(stmt, lookup, nullptr, exec_options);
}

// ---------------------------------------------------------------------------
// Cross-shard constraint checks (the shard databases run with
// enforce_foreign_keys off; messages mirror Database exactly)
// ---------------------------------------------------------------------------

Status ShardCoordinator::CheckForeignKeys(
    const TableDef& def, const Row& row,
    const std::vector<const Row*>& pending_same_table) {
  for (const ForeignKeyDef& fk : def.foreign_keys) {
    std::vector<Value> key_values;
    bool any_null = false;
    for (const std::string& col : fk.columns) {
      EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
      if (row[idx].is_null()) {
        any_null = true;
        break;
      }
      key_values.push_back(row[idx]);
    }
    if (any_null) continue;  // SQL: NULL FK values are not checked
    bool found = false;
    auto pit = part_.find(ToUpper(fk.ref_table));
    if (pit == part_.end()) {
      // Broadcast parent: every shard holds it; shard 0 answers.
      Result<const Table*> parent = ShardTable(0, fk.ref_table);
      if (parent.ok()) {
        found = (*parent)->FindUnique(fk.ref_columns, key_values).ok();
      }
    } else {
      // Partitioned parent referenced by its partition key: the parent row
      // can only live on its hash shard, and within a kind class equal
      // values share the key-string encoding the hash uses (numeric keys
      // are the AsDouble bits, string keys the raw bytes), so the targeted
      // probe is authoritative — absent there means absent everywhere. Any
      // other reference shape — a non-partition-key reference, or a
      // mixed-kind comparison, where display-form equality can cross the
      // key-encoding boundary — probes every shard.
      const PartState& pstate = pit->second;
      bool authoritative = false;
      if (fk.ref_columns.size() == 1) {
        const Catalog& cat = primary_db(0)->catalog();
        Result<const TableDef*> parent_def = cat.GetTable(fk.ref_table);
        const bool pk_numeric = pstate.pk_type == DataType::kInteger ||
                                pstate.pk_type == DataType::kDouble ||
                                pstate.pk_type == DataType::kTimestamp;
        if (parent_def.ok() &&
            EqualsIgnoreCase(fk.ref_columns[0],
                             (*parent_def)->columns[pstate.pk_index].name) &&
            key_values[0].IsNumericKind() == pk_numeric) {
          Result<Value> coerced = key_values[0].CoerceTo(pstate.pk_type);
          if (coerced.ok()) {
            size_t target = ShardOfValue(pstate, *coerced);
            Result<const Table*> parent = ShardTable(target, fk.ref_table);
            if (parent.ok()) {
              found = (*parent)->FindUnique(fk.ref_columns, key_values).ok();
              authoritative = true;
            }
          }
        }
      }
      if (!authoritative) {
        for (size_t s = 0; s < shards_.size() && !found; ++s) {
          Result<const Table*> parent = ShardTable(s, fk.ref_table);
          if (parent.ok()) {
            found = (*parent)->FindUnique(fk.ref_columns, key_values).ok();
          }
        }
      }
    }
    if (!found && EqualsIgnoreCase(fk.ref_table, def.name)) {
      // Self-referencing FK: rows inserted earlier in this statement are
      // already visible on a single-node database.
      for (const Row* pending : pending_same_table) {
        bool matches = true;
        for (size_t k = 0; k < fk.ref_columns.size() && matches; ++k) {
          Result<size_t> ridx = def.ColumnIndex(fk.ref_columns[k]);
          matches = ridx.ok() && !(*pending)[*ridx].is_null() &&
                    (*pending)[*ridx].Equals(key_values[k]);
        }
        if (matches) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      return Status::ConstraintViolation(
          "foreign key violation: no row in " + fk.ref_table + " for " +
          def.name + "(" + Join(fk.columns, ",") + ")");
    }
  }
  return Status::OK();
}

Status ShardCoordinator::CheckNoChildren(
    const TableDef& def, const Row& old_row, const Row* new_row,
    const std::set<std::string>& excluded_self_keys) {
  const Catalog& cat = primary_db(0)->catalog();
  for (const ColumnDef& col : def.columns) {
    std::vector<InboundReference> refs = cat.ReferencesTo(def.name, col.name);
    if (refs.empty()) continue;
    EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col.name));
    const Value& old_value = old_row[idx];
    if (old_value.is_null()) continue;
    if (new_row != nullptr && (*new_row)[idx].Equals(old_value)) {
      continue;  // value unchanged; children unaffected
    }
    for (const InboundReference& ref : refs) {
      Result<const TableDef*> child_def = cat.GetTable(ref.from_table);
      if (!child_def.ok()) continue;
      EASIA_ASSIGN_OR_RETURN(size_t child_idx,
                             (*child_def)->ColumnIndex(ref.from_column));
      bool self = EqualsIgnoreCase(ref.from_table, def.name);
      // Broadcast children are identical everywhere; shard 0 answers.
      size_t probe_shards =
          part_.count(ToUpper(ref.from_table)) > 0 ? shards_.size() : 1;
      bool referenced = false;
      for (size_t s = 0; s < probe_shards && !referenced; ++s) {
        Result<const Table*> child = ShardTable(s, ref.from_table);
        if (!child.ok()) continue;
        if (!self || excluded_self_keys.empty()) {
          referenced = (*child)->AnyRowWithValue(child_idx, old_value);
        } else {
          // DELETE processes targets in global order; same-statement rows
          // already deleted must not count as children (a single-node
          // database has physically removed them by this point).
          (*child)->ForEachRow([&](RowId, const Row& child_row) {
            if (referenced) return;
            if (child_row[child_idx].is_null() ||
                !child_row[child_idx].Equals(old_value)) {
              return;
            }
            if (excluded_self_keys.count(PkKey(**child_def, child_row)) > 0) {
              return;
            }
            referenced = true;
          });
        }
      }
      if (referenced) {
        return Status::ConstraintViolation("row is referenced by " +
                                           ref.from_table + "." +
                                           ref.from_column + " (RESTRICT)");
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DML routing
// ---------------------------------------------------------------------------

namespace {

std::string RenderInsert(const TableDef& def, const Row& row) {
  std::string sql = "INSERT INTO " + def.name + " VALUES (";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += RenderLiteral(row[i]);
  }
  sql += ")";
  return sql;
}

std::string RenderPkPredicate(const TableDef& def, const Row& row) {
  std::string sql;
  for (const std::string& col : def.primary_key) {
    Result<size_t> idx = def.ColumnIndex(col);
    if (!idx.ok()) continue;
    if (!sql.empty()) sql += " AND ";
    sql += col + " = " + RenderLiteral(row[*idx]);
  }
  return sql;
}

std::string RenderPkDelete(const TableDef& def, const Row& row) {
  return "DELETE FROM " + def.name + " WHERE " + RenderPkPredicate(def, row);
}

}  // namespace

Result<QueryResult> ShardCoordinator::ExecCopy(const CopyStmt& stmt,
                                               std::string_view sql,
                                               const ExecContext& ctx) {
  if (part_.count(ToUpper(stmt.table)) > 0) {
    return Status::FailedPrecondition(
        "COPY into a hash-partitioned table is not supported; "
        "use INSERT so rows route to their partitions");
  }
  // Broadcast COPY fans the statement out to every shard, so a mid-fan-out
  // failure (or a per-chunk abort — COPY commits chunk by chunk, so even
  // the failing shard can keep earlier chunks) would leave the broadcast
  // table divergent across shards. Snapshot the pk keys present before the
  // copy (broadcast tables are identical everywhere, so shard 0's set
  // serves) so compensation can delete exactly the rows this statement
  // added, mirroring broadcast INSERT.
  const Catalog& cat = primary_db(0)->catalog();
  Result<const TableDef*> def_result = cat.GetTable(stmt.table);
  const TableDef* def = def_result.ok() ? *def_result : nullptr;
  std::set<std::string> before;
  bool can_compensate = def != nullptr && !def->primary_key.empty();
  if (can_compensate) {
    Result<const Table*> table = ShardTable(0, def->name);
    if (table.ok()) {
      (*table)->ForEachRow([&](RowId, const Row& row) {
        before.insert(PkKey(*def, row));
      });
    } else {
      can_compensate = false;
    }
  }
  Result<QueryResult> first = Status::Internal("no shards configured");
  for (size_t i = 0; i < shards_.size(); ++i) {
    Result<QueryResult> r = ShardWrite(i, sql, ctx);
    if (!r.ok()) {
      // Best-effort compensation on every shard written so far, the
      // failing shard's own committed chunks included.
      if (can_compensate) {
        for (size_t u = 0; u <= i && u < shards_.size(); ++u) {
          Result<const Table*> table = ShardTable(u, def->name);
          if (!table.ok()) continue;
          std::vector<Row> added;
          (*table)->ForEachRow([&](RowId, const Row& row) {
            if (before.count(PkKey(*def, row)) == 0) added.push_back(row);
          });
          for (const Row& row : added) {
            (void)ShardWrite(u, RenderPkDelete(*def, row), ctx);
          }
        }
      }
      return r;
    }
    if (i == 0) first = std::move(r);
  }
  return first;
}

Result<QueryResult> ShardCoordinator::ExecInsert(const InsertStmt& stmt,
                                                 std::string_view sql,
                                                 const ExecContext& ctx) {
  const Catalog& cat = primary_db(0)->catalog();
  Result<const TableDef*> def_result = cat.GetTable(stmt.table);
  if (!def_result.ok()) {
    // Shard 0 reproduces the single-node "no table named X" error.
    return ShardWrite(0, sql, ctx);
  }
  const TableDef& def = **def_result;
  auto pit = part_.find(ToUpper(def.name));
  PartState* state = pit == part_.end() ? nullptr : &pit->second;

  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < def.columns.size(); ++i) positions.push_back(i);
  } else {
    for (const std::string& col : stmt.columns) {
      EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
      positions.push_back(idx);
    }
  }

  // Evaluate and validate every row up front, in statement order: a
  // single-node INSERT is atomic (implicit-transaction rollback), so the
  // fan-out must not start until the whole statement is known good.
  std::vector<Row> rows;
  rows.reserve(stmt.rows.size());
  std::vector<size_t> targets;
  std::set<std::string> statement_keys;
  std::vector<const Row*> pending;
  for (const auto& value_exprs : stmt.rows) {
    if (value_exprs.size() != positions.size()) {
      return Status::InvalidArgument(
          "INSERT value count does not match column count");
    }
    Row row(def.columns.size(), Value::Null());
    EvalEnv env;  // no row context
    for (size_t i = 0; i < positions.size(); ++i) {
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*value_exprs[i], env));
      row[positions[i]] = std::move(v);
    }
    EASIA_ASSIGN_OR_RETURN(row, CoerceRowForTable(def, std::move(row)));
    EASIA_RETURN_IF_ERROR(CheckForeignKeys(def, row, pending));
    size_t target = state != nullptr
                        ? ShardOfValue(*state, row[state->pk_index])
                        : 0;
    if (!def.primary_key.empty()) {
      if (!statement_keys.insert(PkKey(def, row)).second) {
        return Status::ConstraintViolation("duplicate primary key in table " +
                                           def.name);
      }
      std::vector<Value> pk_values;
      for (const std::string& col : def.primary_key) {
        EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
        pk_values.push_back(row[idx]);
      }
      Result<const Table*> table = ShardTable(target, def.name);
      if (table.ok() && (*table)->FindUnique(def.primary_key, pk_values).ok()) {
        return Status::ConstraintViolation("duplicate primary key in table " +
                                           def.name);
      }
    }
    if (state != nullptr) targets.push_back(target);
    rows.push_back(std::move(row));
    pending.push_back(&rows.back());
  }

  if (state == nullptr) {
    // Broadcast: every shard applies the identical statement.
    Result<QueryResult> first = Status::Internal("no shards configured");
    for (size_t s = 0; s < shards_.size(); ++s) {
      Result<QueryResult> r = ShardWrite(s, sql, ctx);
      if (!r.ok()) {
        // Best-effort compensation on shards already written.
        if (!def.primary_key.empty()) {
          for (size_t u = 0; u < s; ++u) {
            for (const Row& row : rows) {
              (void)ShardWrite(u, RenderPkDelete(def, row), ctx);
            }
          }
        }
        return r;
      }
      if (s == 0) first = std::move(r);
    }
    return first;
  }

  if (rows.empty()) return DmlResult(0);
  bool single_target = true;
  for (size_t t : targets) single_target = single_target && t == targets[0];
  if (single_target) {
    // The whole statement lands on one shard: forward it verbatim (no
    // literal re-rendering, so e.g. doubles stay byte-identical).
    EASIA_ASSIGN_OR_RETURN(QueryResult r, ShardWrite(targets[0], sql, ctx));
    for (const Row& row : rows) {
      state->seq[row[state->pk_index].ToKeyString()] = state->next_seq++;
    }
    return r;
  }
  // Rows split across shards: apply per row in statement order, undoing
  // earlier rows (best effort) if a later one fails.
  for (size_t i = 0; i < rows.size(); ++i) {
    Result<QueryResult> r = ShardWrite(targets[i], RenderInsert(def, rows[i]),
                                       ctx);
    if (!r.ok()) {
      for (size_t u = 0; u < i; ++u) {
        (void)ShardWrite(targets[u], RenderPkDelete(def, rows[u]), ctx);
      }
      return r;
    }
  }
  for (const Row& row : rows) {
    state->seq[row[state->pk_index].ToKeyString()] = state->next_seq++;
  }
  return DmlResult(rows.size());
}

Result<QueryResult> ShardCoordinator::ExecUpdate(const UpdateStmt& stmt,
                                                 std::string_view sql,
                                                 const ExecContext& ctx) {
  const Catalog& cat = primary_db(0)->catalog();
  Result<const TableDef*> def_result = cat.GetTable(stmt.table);
  if (!def_result.ok()) return ShardWrite(0, sql, ctx);
  const TableDef& def = **def_result;
  auto pit = part_.find(ToUpper(def.name));
  PartState* state = pit == part_.end() ? nullptr : &pit->second;

  std::vector<ColumnBinding> schema;
  for (const ColumnDef& col : def.columns) {
    schema.push_back({def.name, col.name, col.type, &col});
  }
  std::vector<std::pair<size_t, const Expr*>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
    sets.emplace_back(idx, expr.get());
  }
  bool pk_assigned = false;
  if (state != nullptr) {
    for (const auto& [idx, expr] : sets) {
      if (idx == state->pk_index) pk_assigned = true;
    }
  }

  // Materialise targets across shards in global insertion order —
  // identical to the order a single-node full scan visits them in.
  struct Target {
    size_t shard = 0;
    uint64_t seq = 0;
    Row old_row;
    Row new_row;
  };
  std::vector<Target> targets;
  size_t scan_shards = state != nullptr ? shards_.size() : 1;
  for (size_t s = 0; s < scan_shards; ++s) {
    EASIA_ASSIGN_OR_RETURN(const Table* table, ShardTable(s, def.name));
    Status scan_status = Status::OK();
    table->ForEachRow([&](RowId id, const Row& row) {
      if (!scan_status.ok()) return;
      if (stmt.where != nullptr) {
        EvalEnv env{&schema, &row};
        Result<Value> cond = EvalExpr(*stmt.where, env);
        if (!cond.ok()) {
          scan_status = cond.status();
          return;
        }
        if (!IsTruthy(*cond)) return;
      }
      Target target;
      target.shard = s;
      target.seq = state != nullptr ? SeqOf(*state, row[state->pk_index])
                                    : static_cast<uint64_t>(id);
      target.old_row = row;
      targets.push_back(std::move(target));
    });
    EASIA_RETURN_IF_ERROR(scan_status);
  }
  std::stable_sort(targets.begin(), targets.end(),
                   [](const Target& x, const Target& y) {
                     return x.seq < y.seq;
                   });

  // Validate sequentially in that order, tracking pk keys vacated and
  // taken by earlier targets — mirrors single-node row-at-a-time apply.
  std::set<std::string> vacated;
  std::set<std::string> taken;
  for (Target& target : targets) {
    Row new_row = target.old_row;
    EvalEnv env{&schema, &target.old_row};
    for (const auto& [idx, expr] : sets) {
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, env));
      new_row[idx] = std::move(v);
    }
    EASIA_ASSIGN_OR_RETURN(new_row, CoerceRowForTable(def, std::move(new_row)));
    EASIA_RETURN_IF_ERROR(CheckForeignKeys(def, new_row, {}));
    EASIA_RETURN_IF_ERROR(CheckNoChildren(def, target.old_row, &new_row, {}));
    if (!def.primary_key.empty()) {
      std::string old_key = PkKey(def, target.old_row);
      std::string new_key = PkKey(def, new_row);
      if (new_key != old_key) {
        bool duplicate = taken.count(new_key) > 0;
        if (!duplicate && vacated.count(new_key) == 0) {
          std::vector<Value> pk_values;
          for (const std::string& col : def.primary_key) {
            EASIA_ASSIGN_OR_RETURN(size_t idx, def.ColumnIndex(col));
            pk_values.push_back(new_row[idx]);
          }
          size_t probe = state != nullptr
                             ? ShardOfValue(*state, new_row[state->pk_index])
                             : 0;
          Result<const Table*> table = ShardTable(probe, def.name);
          if (table.ok() &&
              (*table)->FindUnique(def.primary_key, pk_values).ok()) {
            duplicate = true;
          }
        }
        if (duplicate) {
          return Status::ConstraintViolation(
              "duplicate primary key in table " + def.name);
        }
        vacated.insert(old_key);
        taken.insert(new_key);
      }
    }
    target.new_row = std::move(new_row);
  }

  if (targets.empty()) {
    // Still fan out: a shard-side scan error cannot exist (the coordinator
    // scanned the same rows), and zero-target UPDATEs are no-ops anyway.
    return DmlResult(0);
  }

  if (state == nullptr || !pk_assigned) {
    // Row placement is stable: every shard applies the original statement
    // to its local rows (broadcast shards all hold every row).
    size_t affected = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      EASIA_ASSIGN_OR_RETURN(QueryResult r, ShardWrite(s, sql, ctx));
      if (state != nullptr) {
        affected += r.rows_affected;
      } else if (s == 0) {
        affected = r.rows_affected;
      }
    }
    return DmlResult(affected);
  }

  // Partition-key reassignment: rows may change shards. Apply per target
  // in global order; a cross-shard move is DELETE@old + INSERT@new with
  // the global sequence carried over (the row keeps its logical position,
  // like a single-node UPDATE keeps its RowId).
  size_t affected = 0;
  for (Target& target : targets) {
    const Value& old_pk = target.old_row[state->pk_index];
    const Value& new_pk = target.new_row[state->pk_index];
    size_t destination = ShardOfValue(*state, new_pk);
    if (destination == target.shard) {
      std::string set_sql;
      for (const auto& [idx, expr] : sets) {
        if (!set_sql.empty()) set_sql += ", ";
        set_sql += def.columns[idx].name + " = " +
                   RenderLiteral(target.new_row[idx]);
      }
      std::string row_sql = "UPDATE " + def.name + " SET " + set_sql +
                            " WHERE " + def.primary_key[0] + " = " +
                            RenderLiteral(old_pk);
      EASIA_ASSIGN_OR_RETURN(QueryResult r,
                             ShardWrite(target.shard, row_sql, ctx));
      (void)r;
    } else {
      EASIA_RETURN_IF_ERROR(
          ShardWrite(target.shard, RenderPkDelete(def, target.old_row), ctx)
              .status());
      Result<QueryResult> inserted =
          ShardWrite(destination, RenderInsert(def, target.new_row), ctx);
      if (!inserted.ok()) {
        // Best effort: put the old row back where it was.
        (void)ShardWrite(target.shard, RenderInsert(def, target.old_row), ctx);
        return inserted.status();
      }
      migrations_.fetch_add(1, std::memory_order_relaxed);
      state->order_dirty = true;
    }
    uint64_t seq = target.seq == UINT64_MAX ? state->next_seq++ : target.seq;
    state->seq.erase(old_pk.ToKeyString());
    state->seq[new_pk.ToKeyString()] = seq;
    ++affected;
  }
  return DmlResult(affected);
}

Result<QueryResult> ShardCoordinator::ExecDelete(const DeleteStmt& stmt,
                                                 std::string_view sql,
                                                 const ExecContext& ctx) {
  const Catalog& cat = primary_db(0)->catalog();
  Result<const TableDef*> def_result = cat.GetTable(stmt.table);
  if (!def_result.ok()) return ShardWrite(0, sql, ctx);
  const TableDef& def = **def_result;
  auto pit = part_.find(ToUpper(def.name));
  PartState* state = pit == part_.end() ? nullptr : &pit->second;

  std::vector<ColumnBinding> schema;
  for (const ColumnDef& col : def.columns) {
    schema.push_back({def.name, col.name, col.type, &col});
  }
  struct Target {
    uint64_t seq = 0;
    Row row;
  };
  std::vector<Target> targets;
  size_t scan_shards = state != nullptr ? shards_.size() : 1;
  for (size_t s = 0; s < scan_shards; ++s) {
    EASIA_ASSIGN_OR_RETURN(const Table* table, ShardTable(s, def.name));
    Status scan_status = Status::OK();
    table->ForEachRow([&](RowId id, const Row& row) {
      if (!scan_status.ok()) return;
      if (stmt.where != nullptr) {
        EvalEnv env{&schema, &row};
        Result<Value> cond = EvalExpr(*stmt.where, env);
        if (!cond.ok()) {
          scan_status = cond.status();
          return;
        }
        if (!IsTruthy(*cond)) return;
      }
      Target target;
      target.seq = state != nullptr ? SeqOf(*state, row[state->pk_index])
                                    : static_cast<uint64_t>(id);
      target.row = row;
      targets.push_back(std::move(target));
    });
    EASIA_RETURN_IF_ERROR(scan_status);
  }
  std::stable_sort(targets.begin(), targets.end(),
                   [](const Target& x, const Target& y) {
                     return x.seq < y.seq;
                   });
  // RESTRICT checks in global order: a single-node DELETE removes rows
  // one at a time, so a child deleted earlier in the same statement no
  // longer blocks its parent.
  std::set<std::string> deleted_keys;
  for (const Target& target : targets) {
    EASIA_RETURN_IF_ERROR(
        CheckNoChildren(def, target.row, nullptr, deleted_keys));
    if (!def.primary_key.empty()) deleted_keys.insert(PkKey(def, target.row));
  }
  size_t affected = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    EASIA_ASSIGN_OR_RETURN(QueryResult r, ShardWrite(s, sql, ctx));
    if (state != nullptr) {
      affected += r.rows_affected;
    } else if (s == 0) {
      affected = r.rows_affected;
    }
  }
  // Sequence entries for deleted keys go stale, which is harmless: they
  // are only consulted for live rows, and a re-insert overwrites.
  return DmlResult(affected);
}

Result<QueryResult> ShardCoordinator::ExecDdl(const Statement& stmt,
                                              std::string_view sql,
                                              const ExecContext& ctx) {
  if (stmt.kind == Statement::Kind::kCreateTable) {
    const TableDef& def = stmt.create_table->def;
    Result<QueryResult> first = Status::Internal("no shards configured");
    for (size_t s = 0; s < shards_.size(); ++s) {
      Result<QueryResult> r = ShardWrite(s, sql, ctx);
      if (!r.ok()) {
        // Validation errors fail on shard 0 before anything applies; a
        // later-shard (replication) failure compensates best-effort.
        for (size_t u = 0; u < s; ++u) {
          (void)ShardWrite(u, "DROP TABLE " + def.name, ctx);
        }
        return r;
      }
      if (s == 0) first = std::move(r);
    }
    if (def.partitions > 0) {
      PartState state;
      Result<size_t> idx = def.ColumnIndex(def.partition_by);
      state.pk_index = idx.ok() ? *idx : 0;
      state.pk_type = def.columns[state.pk_index].type;
      state.partitions = def.partitions;
      part_[ToUpper(def.name)] = std::move(state);
    }
    return first;
  }
  // DROP TABLE
  Result<QueryResult> first = Status::Internal("no shards configured");
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<QueryResult> r = ShardWrite(s, sql, ctx);
    if (!r.ok()) return r;
    if (s == 0) first = std::move(r);
  }
  part_.erase(ToUpper(stmt.drop_table->table));
  return first;
}

}  // namespace easia::db::shard
