#ifndef EASIA_DB_SHARD_COORDINATOR_H_
#define EASIA_DB_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "db/repl/coordinator.h"
#include "sim/network.h"

namespace easia::obs {
class MetricsRegistry;
}  // namespace easia::obs

namespace easia::db::shard {

struct ShardOptions {
  /// sim::Network host the coordinator (scatter/gather merge point) runs
  /// on. Fetched partials and gathered rows are metered from each serving
  /// shard node to this host.
  std::string coordinator_host = "web";
  /// One primary host per shard, in shard-index order. Every host (and
  /// every derived replica host, see replicas_per_shard) must already
  /// exist in the network with links to/from coordinator_host.
  std::vector<std::string> shard_hosts;
  /// When > 0, each shard becomes a replication group: a primary plus this
  /// many replicas (hosts named "<shard_host>-r1".."-rK") under a
  /// repl::ReplicationCoordinator. Writes then carry the PR 8 acked-commit
  /// semantics through the scatter path: kUnavailable = primary down and
  /// nothing committed, kAborted = committed below the ack quorum.
  size_t replicas_per_shard = 0;
  /// Template for each shard's replication coordinator (primary_host is
  /// overwritten per shard). Ignored when replicas_per_shard == 0.
  repl::CoordinatorOptions repl_options;
  /// Template for every shard (and replica) database. enforce_foreign_keys
  /// is forced off: foreign keys are a cross-shard property, enforced
  /// globally by this coordinator instead of per shard.
  DatabaseOptions shard_db_options;
  /// Partition pruning from equality / IN / range predicates on the
  /// partition key. Off = every query scans all shards (ablation knob).
  bool enable_pruning = true;
  /// Per-shard partial aggregation for eligible aggregate SELECTs. Off =
  /// aggregates take the gather path (every matching row ships to the
  /// coordinator, which then aggregates locally) — the ablation
  /// bench_f16 measures scatter against.
  bool enable_scatter = true;
  /// Scan shards on worker threads during scatter aggregation. Forced
  /// serial while a scatter hook is installed (see SetScatterHook).
  bool parallel_scatter = true;
};

/// One row of the /stats shard table.
struct ShardInfo {
  std::string host;
  /// Rows of hash-partitioned tables resident on this shard.
  size_t partitioned_rows = 0;
  uint64_t commit_epoch = 0;
  /// Max replica lag (epochs) in this shard's replication group; 0
  /// without replication.
  uint64_t max_replica_lag = 0;
  size_t replicas = 0;
};

struct ShardCounters {
  uint64_t queries_single = 0;   // routed whole to one shard
  uint64_t queries_scatter = 0;  // per-shard partial aggregation, merged
  uint64_t queries_gather = 0;   // rows fetched, executed at coordinator
  uint64_t scanned_shards = 0;   // shard scans performed by SELECT/EXPLAIN
  uint64_t pruned_shards = 0;    // shard scans avoided by pruning
  uint64_t writes = 0;           // DML/DDL statements routed
  uint64_t migrations = 0;       // rows moved between shards by pk UPDATE
};

/// Hash-partitions tables across sim-linked shard databases and plans
/// SQL over them (DESIGN.md §4k).
///
/// `CREATE TABLE ... PARTITION BY HASH(<pk>) PARTITIONS N` declares a
/// partitioned table: DDL fans out to every shard (each shard's catalogue
/// is a full mirror), and each row routes to partition
/// FNV1a(key) % N, hosted on shard (partition % shards). Tables without a
/// partition clause are broadcast: identical on every shard, so any shard
/// can serve them locally in a join.
///
/// SELECT strategies, chosen per statement:
///   single  — no partitioned table in FROM, or every partitioned table
///             prunes to the same one shard: the original SQL forwards to
///             that shard (its catalogue mirror plans it like a
///             single-node database).
///   scatter — single-table aggregate over a partitioned table: shards
///             accumulate partial groups (COUNT/SUM/MIN/MAX/AVG with the
///             order-independent __int128 SUM rule, executor.h) in
///             parallel; the coordinator merges and finishes the query.
///             Falls back to gather whenever exactness cannot be proven
///             (non-integer SUM/AVG, a shard-side evaluation error).
///   gather  — everything else: each FROM table's rows are fetched in
///             global insertion order and the unmodified statement runs on
///             the existing cost-based planner/executor at the
///             coordinator, so joins reuse the single-node cost model and
///             results match single-node execution exactly.
///
/// Threading: Execute takes a coordinator-wide reader/writer lock (reads
/// shared, writes exclusive). Every access to the shard databases must go
/// through this coordinator — that invariant is what makes lock-free
/// direct table scans inside scatter/gather safe.
class ShardCoordinator {
 public:
  ShardCoordinator(sim::Network* network, ShardOptions options);

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;
  ~ShardCoordinator();

  /// Routes one SQL statement. Shard-side statuses (including
  /// kConstraintViolation messages and the replication layer's
  /// kAborted / kUnavailable) pass through verbatim. Explicit
  /// transactions and COPY into partitioned tables are rejected.
  Result<QueryResult> Execute(std::string_view sql,
                              const ExecContext& ctx = {});

  size_t num_shards() const { return shards_.size(); }
  /// Shard i's CURRENT primary database (for test assertions; production
  /// access goes through Execute). After a shard failover this is the
  /// promoted replica, not the initial primary.
  Database* shard_db(size_t i) { return primary_db(i); }
  /// Shard i's replication coordinator, or nullptr when
  /// replicas_per_shard == 0 (crash-harness seam: fail over one shard).
  repl::ReplicationCoordinator* repl(size_t i) {
    return shards_[i].repl.get();
  }
  const std::string& shard_host(size_t i) const { return shards_[i].host; }

  /// Sum of the shard primaries' commit epochs: a web-cache validator
  /// that changes whenever any shard's data changes. With the default
  /// max_read_lag_epochs = 0 replicas only serve fully caught up, so the
  /// sum is exact; with a lag bound it may over-stamp by that bound.
  uint64_t combined_epoch() const;

  std::vector<ShardInfo> shard_info() const;
  ShardCounters counters() const;

  /// Registers pull-style easia_shard_* families: per-shard row / lag
  /// gauges, per-strategy query counters, scanned/pruned shard counters.
  void RegisterMetrics(obs::MetricsRegistry* metrics);

  /// Test seam: invoked with the shard index right before that shard is
  /// scanned during scatter/gather. Installing a hook forces serial
  /// scanning, so the hook can fail over a shard's primary *between*
  /// per-shard scans of one running statement (repl_crash_test).
  void SetScatterHook(std::function<void(size_t)> hook);

  /// The catalogue mirror (shard 0's current primary) for metadata
  /// consumers.
  const Catalog& catalog() const { return primary_db(0)->catalog(); }

 private:
  struct Shard {
    std::string host;
    std::unique_ptr<Database> db;
    std::unique_ptr<repl::ReplicationCoordinator> repl;
  };

  /// Routing state for one hash-partitioned table.
  struct PartState {
    size_t pk_index = 0;
    DataType pk_type = DataType::kInteger;
    int partitions = 1;
    /// pk key-string -> global insertion sequence, assigned at INSERT in
    /// statement order. Lets scatter/gather reconstruct the row order a
    /// single-node table would have, so first-row-of-group and group
    /// output order match single-node execution exactly. Deletes leave
    /// stale entries (harmless: a re-insert overwrites).
    std::unordered_map<std::string, uint64_t> seq;
    uint64_t next_seq = 0;
    /// Set when a pk UPDATE migrated a row between shards: shard-local
    /// scan order no longer refines global order, so single-shard routing
    /// is disabled and scatter falls back to per-row sequence lookups.
    bool order_dirty = false;
  };

  struct SelectAnalysis;

  Result<QueryResult> ExecSelect(const SelectStmt& stmt,
                                 std::string_view sql, const ExecContext& ctx,
                                 bool explain, bool analyze);
  SelectAnalysis Analyze(const SelectStmt& stmt) const;
  std::vector<bool> PruneForTable(const PartState& state,
                                  const TableDef& def, const std::string& alias,
                                  const SelectStmt& stmt) const;
  Result<QueryResult> RunScatter(const SelectStmt& stmt,
                                 const SelectAnalysis& analysis,
                                 const ExecContext& ctx, bool* fell_back,
                                 std::vector<int64_t>* actual_rows);
  Result<QueryResult> RunGather(const SelectStmt& stmt,
                                const SelectAnalysis& analysis,
                                const ExecContext& ctx,
                                std::vector<int64_t>* fetched_rows);

  Result<QueryResult> ExecInsert(const InsertStmt& stmt, std::string_view sql,
                                 const ExecContext& ctx);
  Result<QueryResult> ExecUpdate(const UpdateStmt& stmt, std::string_view sql,
                                 const ExecContext& ctx);
  Result<QueryResult> ExecDelete(const DeleteStmt& stmt, std::string_view sql,
                                 const ExecContext& ctx);
  Result<QueryResult> ExecDdl(const Statement& stmt, std::string_view sql,
                              const ExecContext& ctx);
  Result<QueryResult> ExecCopy(const CopyStmt& stmt, std::string_view sql,
                               const ExecContext& ctx);

  /// Write-path execution on one shard (repl::Execute when replicated).
  Result<QueryResult> ShardWrite(size_t i, std::string_view sql,
                                 const ExecContext& ctx);
  /// Read ticket for one shard (stale-bounded replica routing when
  /// replicated).
  repl::ReadTicket ShardRead(size_t i);

  size_t ShardOfValue(const PartState& state, const Value& pk) const;
  uint64_t SeqOf(const PartState& state, const Value& pk) const;
  /// FK enforcement across shards, mirroring Database's single-node
  /// messages (the shard databases run with enforce_foreign_keys off).
  Status CheckForeignKeys(const TableDef& def, const Row& row,
                          const std::vector<const Row*>& pending_same_table);
  Status CheckNoChildren(const TableDef& def, const Row& old_row,
                         const Row* new_row,
                         const std::set<std::string>& excluded_self_keys);
  /// Shard i's CURRENT primary: the replication group's promoted head
  /// after a failover, else the initial database. Every coordinator-side
  /// read of shard state (tables, catalogue, commit epochs) must go
  /// through this — shards_[i].db stops receiving writes once its group
  /// fails over.
  Database* primary_db(size_t i) const;
  /// All live rows of `table` on shard `i`'s current primary.
  Result<const Table*> ShardTable(size_t i, const std::string& table) const;
  void MeterToCoordinator(const std::string& from_host, uint64_t bytes);

  sim::Network* network_;
  ShardOptions options_;
  std::vector<Shard> shards_;
  std::map<std::string, PartState> part_;  // key: upper-cased table name

  mutable std::shared_mutex mu_;
  std::function<void(size_t)> scatter_hook_;

  std::atomic<uint64_t> queries_single_{0};
  std::atomic<uint64_t> queries_scatter_{0};
  std::atomic<uint64_t> queries_gather_{0};
  std::atomic<uint64_t> scanned_shards_{0};
  std::atomic<uint64_t> pruned_shards_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> migrations_{0};
};

}  // namespace easia::db::shard

#endif  // EASIA_DB_SHARD_COORDINATOR_H_
