#ifndef EASIA_DB_PARSER_H_
#define EASIA_DB_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "db/ast.h"

namespace easia::db {

/// Parses a single SQL statement (trailing ';' optional). The dialect
/// covers what the EASIA web layer generates plus SQL/MED DATALINK column
/// definitions:
///
///   CREATE TABLE t (c DATALINK LINKTYPE URL FILE LINK CONTROL
///                   READ PERMISSION DB ..., PRIMARY KEY (...),
///                   FOREIGN KEY (...) REFERENCES t2 (...))
///   SELECT [DISTINCT] items FROM t [JOIN u ON ...] [WHERE ...]
///     [GROUP BY ...] [HAVING ...] [ORDER BY ...] [LIMIT n [OFFSET m]]
///   INSERT INTO t [(cols)] VALUES (...), (...)
///   UPDATE t SET c = e [, ...] [WHERE ...]
///   DELETE FROM t [WHERE ...]
///   BEGIN | COMMIT | ROLLBACK
Result<Statement> ParseSql(std::string_view sql);

/// Parses just an expression (used by tests and the ops condition layer).
Result<std::unique_ptr<Expr>> ParseExpression(std::string_view text);

}  // namespace easia::db

#endif  // EASIA_DB_PARSER_H_
