#ifndef EASIA_DB_EXECUTOR_H_
#define EASIA_DB_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/ast.h"
#include "db/table.h"

namespace easia::db {

struct QueryResult;  // database.h

/// One column of an intermediate (joined) row.
struct ColumnBinding {
  std::string table_alias;  // FROM-clause alias
  std::string column;       // column name
  DataType type = DataType::kVarchar;
  const ColumnDef* def = nullptr;  // source column definition (may be null)
};

/// Expression evaluation environment: a schema plus (optionally) a current
/// row. INSERT value lists evaluate with `row == nullptr`.
struct EvalEnv {
  const std::vector<ColumnBinding>* schema = nullptr;
  const Row* row = nullptr;
};

/// Evaluates a scalar expression. SQL three-valued logic is approximated:
/// comparisons with NULL yield NULL (represented as a NULL value), and
/// WHERE treats non-TRUE as reject. Supported scalar functions: UPPER,
/// LOWER, LENGTH, ABS, SUBSTR(s, start[, len]), COALESCE.
Result<Value> EvalExpr(const Expr& expr, const EvalEnv& env);

/// Truthiness of a predicate result (NULL and false both reject).
bool IsTruthy(const Value& value);

/// Resolves tables by name for the executor.
using TableLookup =
    std::function<Result<const Table*>(const std::string& name)>;

/// Rewrites a DATALINK value for presentation (token form); nullable.
using DatalinkRewriter = std::function<Result<std::string>(
    const ColumnDef& def, const std::string& url)>;

/// Execution knobs. `use_planner = false` selects the legacy path
/// (materialised nested-loop joins, whole-WHERE filter) — kept for plan
/// correctness tests and before/after benchmarks.
struct ExecuteOptions {
  bool use_planner = true;
};

/// Executes a SELECT: planned scans and joins (predicate pushdown, index
/// access, hash joins, LIMIT short-circuit — see db/planner.h), then WHERE
/// residual, GROUP BY / aggregates (COUNT/SUM/AVG/MIN/MAX), HAVING,
/// ORDER BY, DISTINCT, LIMIT/OFFSET and projection. `rewriter`, when set,
/// is applied to projected DATALINK columns (SQL/MED READ PERMISSION DB
/// token insertion).
Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                  const TableLookup& lookup,
                                  const DatalinkRewriter& rewriter,
                                  const ExecuteOptions& options = {});

}  // namespace easia::db

#endif  // EASIA_DB_EXECUTOR_H_
