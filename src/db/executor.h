#ifndef EASIA_DB_EXECUTOR_H_
#define EASIA_DB_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/ast.h"
#include "db/table.h"

namespace easia::obs {
class Tracer;
}  // namespace easia::obs

namespace easia::db {

struct QueryResult;  // database.h
struct SelectPlan;   // planner.h

/// One column of an intermediate (joined) row.
struct ColumnBinding {
  std::string table_alias;  // FROM-clause alias
  std::string column;       // column name
  DataType type = DataType::kVarchar;
  const ColumnDef* def = nullptr;  // source column definition (may be null)
};

/// Expression evaluation environment: a schema plus (optionally) a current
/// row. INSERT value lists evaluate with `row == nullptr`.
struct EvalEnv {
  const std::vector<ColumnBinding>* schema = nullptr;
  const Row* row = nullptr;
};

/// Evaluates a scalar expression. SQL three-valued logic is approximated:
/// comparisons with NULL yield NULL (represented as a NULL value), and
/// WHERE treats non-TRUE as reject. Supported scalar functions: UPPER,
/// LOWER, LENGTH, ABS, SUBSTR(s, start[, len]), COALESCE.
Result<Value> EvalExpr(const Expr& expr, const EvalEnv& env);

/// Truthiness of a predicate result (NULL and false both reject).
bool IsTruthy(const Value& value);

/// SUM/AVG finalization rule shared by the row executor, the columnar
/// AggregateScan kernel and the shard coordinator's partial-aggregate
/// merge (src/db/shard). `isum` is the exact 128-bit total of the
/// integer-kind inputs, `dsum` the running double total of all numeric
/// inputs, `all_int` whether every non-NULL input was integer-kind. The
/// rule is order-independent, so partial accumulators merged across
/// shards finalize identically to a single-node pass.
inline Value FinishSum(bool all_int, __int128 isum, double dsum) {
  if (!all_int) return Value::Double(dsum);
  constexpr __int128 kInt64Min = std::numeric_limits<int64_t>::min();
  constexpr __int128 kInt64Max = std::numeric_limits<int64_t>::max();
  if (isum >= kInt64Min && isum <= kInt64Max) {
    return Value::Integer(static_cast<int64_t>(isum));
  }
  return Value::Double(static_cast<double>(isum));
}

inline Value FinishAvg(bool all_int, __int128 isum, double dsum,
                       int64_t count) {
  if (all_int) {
    return Value::Double(static_cast<double>(isum) /
                         static_cast<double>(count));
  }
  return Value::Double(dsum / static_cast<double>(count));
}

/// Output-column naming and typing rules for SELECT items. Shared with
/// the shard coordinator's scatter/gather merge (src/db/shard) so merged
/// results carry byte-identical column names and types.
std::string DefaultItemName(const SelectItem& item, size_t index);
DataType GuessItemType(const Expr& expr,
                       const std::vector<ColumnBinding>& schema);

/// Resolves tables by name for the executor.
using TableLookup =
    std::function<Result<const Table*>(const std::string& name)>;

/// Rewrites a DATALINK value for presentation (token form); nullable.
using DatalinkRewriter = std::function<Result<std::string>(
    const ColumnDef& def, const std::string& url)>;

/// Per-operator execution profile, filled when ExecuteOptions::profile is
/// set. Operators are indexed like SelectPlan::Describe() lines: `scans`
/// and `joins` follow the plan's execution order. EXPLAIN ANALYZE renders
/// estimated vs. actual rows and per-operator wall time from this.
struct PlanProfile {
  struct Op {
    double est_rows = -1;     // planner estimate (-1: not estimated)
    int64_t actual_rows = -1;  // rows the operator produced (-1: unknown)
    double seconds = 0;        // wall time attributed to the operator
  };
  std::vector<Op> scans;
  std::vector<Op> joins;
  int64_t result_rows = -1;
  double total_seconds = 0;
};

/// Execution knobs. `use_planner = false` selects the legacy path
/// (materialised nested-loop joins, whole-WHERE filter) — kept for plan
/// correctness tests and before/after benchmarks.
struct ExecuteOptions {
  bool use_planner = true;
  /// Forwarded to PlannerOptions::cost_based: statistics-driven join
  /// order / strategy / build-side choices. False pins the static
  /// FROM-order plan shape.
  bool cost_based = true;
  /// When set, filled with per-operator estimates, actual row counts and
  /// timings (EXPLAIN ANALYZE).
  PlanProfile* profile = nullptr;
  /// When set, row production opens per-operator spans under the caller's
  /// current span.
  obs::Tracer* tracer = nullptr;
  /// Called with the final plan before execution (index advisor hook).
  std::function<void(const SelectPlan&)> plan_observer;
};

/// Executes a SELECT: planned scans and joins (predicate pushdown, index
/// access, hash joins, LIMIT short-circuit — see db/planner.h), then WHERE
/// residual, GROUP BY / aggregates (COUNT/SUM/AVG/MIN/MAX), HAVING,
/// ORDER BY, DISTINCT, LIMIT/OFFSET and projection. `rewriter`, when set,
/// is applied to projected DATALINK columns (SQL/MED READ PERMISSION DB
/// token insertion).
Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                  const TableLookup& lookup,
                                  const DatalinkRewriter& rewriter,
                                  const ExecuteOptions& options = {});

}  // namespace easia::db

#endif  // EASIA_DB_EXECUTOR_H_
