#include "db/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "common/string_util.h"
#include "db/database.h"
#include "db/planner.h"
#include "db/store/column_page.h"
#include "obs/trace.h"

namespace easia::db {

namespace {

/// Resolves a column reference against a schema; reports ambiguity.
Result<size_t> ResolveColumn(const std::vector<ColumnBinding>& schema,
                             const std::string& table,
                             const std::string& column) {
  size_t found = schema.size();
  for (size_t i = 0; i < schema.size(); ++i) {
    const ColumnBinding& b = schema[i];
    if (!table.empty() && !EqualsIgnoreCase(b.table_alias, table)) continue;
    if (!EqualsIgnoreCase(b.column, column)) continue;
    if (found != schema.size()) {
      return Status::InvalidArgument("ambiguous column reference: " + column);
    }
    found = i;
  }
  if (found == schema.size()) {
    return Status::NotFound(
        "unknown column: " + (table.empty() ? column : table + "." + column));
  }
  return found;
}

Result<Value> EvalBinary(Expr::Op op, const Value& lhs, const Value& rhs) {
  // Logical connectives use SQL-ish semantics with NULL as unknown.
  if (op == Expr::Op::kAnd) {
    if (!lhs.is_null() && !IsTruthy(lhs)) return Value::Integer(0);
    if (!rhs.is_null() && !IsTruthy(rhs)) return Value::Integer(0);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Integer(1);
  }
  if (op == Expr::Op::kOr) {
    if (!lhs.is_null() && IsTruthy(lhs)) return Value::Integer(1);
    if (!rhs.is_null() && IsTruthy(rhs)) return Value::Integer(1);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Integer(0);
  }
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  switch (op) {
    case Expr::Op::kEq:
      return Value::Integer(lhs.Compare(rhs) == 0 ? 1 : 0);
    case Expr::Op::kNe:
      return Value::Integer(lhs.Compare(rhs) != 0 ? 1 : 0);
    case Expr::Op::kLt:
      return Value::Integer(lhs.Compare(rhs) < 0 ? 1 : 0);
    case Expr::Op::kLe:
      return Value::Integer(lhs.Compare(rhs) <= 0 ? 1 : 0);
    case Expr::Op::kGt:
      return Value::Integer(lhs.Compare(rhs) > 0 ? 1 : 0);
    case Expr::Op::kGe:
      return Value::Integer(lhs.Compare(rhs) >= 0 ? 1 : 0);
    case Expr::Op::kLike:
    case Expr::Op::kNotLike: {
      if (!lhs.IsStringKind() || !rhs.IsStringKind()) {
        return Status::InvalidArgument("LIKE requires string operands");
      }
      bool m = LikeMatch(lhs.AsString(), rhs.AsString());
      if (op == Expr::Op::kNotLike) m = !m;
      return Value::Integer(m ? 1 : 0);
    }
    case Expr::Op::kAdd:
    case Expr::Op::kSub:
    case Expr::Op::kMul:
    case Expr::Op::kDiv: {
      if (!lhs.IsNumericKind() || !rhs.IsNumericKind()) {
        return Status::InvalidArgument("arithmetic requires numeric operands");
      }
      bool integral = lhs.type() != DataType::kDouble &&
                      rhs.type() != DataType::kDouble;
      double a = lhs.AsDouble();
      double b = rhs.AsDouble();
      double r = 0;
      switch (op) {
        case Expr::Op::kAdd: r = a + b; break;
        case Expr::Op::kSub: r = a - b; break;
        case Expr::Op::kMul: r = a * b; break;
        case Expr::Op::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          if (integral) {
            return Value::Integer(lhs.AsInt() / rhs.AsInt());
          }
          r = a / b;
          break;
        default:
          break;
      }
      if (integral && op != Expr::Op::kDiv) {
        return Value::Integer(static_cast<int64_t>(r));
      }
      return Value::Double(r);
    }
    default:
      return Status::Internal("bad binary operator");
  }
}

Result<Value> EvalCall(const Expr& expr, const EvalEnv& env) {
  if (IsAggregateFunction(expr.func)) {
    return Status::InvalidArgument("aggregate function " + expr.func +
                                   " not allowed here");
  }
  std::vector<Value> args;
  for (const auto& a : expr.args) {
    EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, env));
    args.push_back(std::move(v));
  }
  auto need = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::InvalidArgument(expr.func + ": wrong argument count");
    }
    return Status::OK();
  };
  if (expr.func == "UPPER" || expr.func == "LOWER") {
    EASIA_RETURN_IF_ERROR(need(1, 1));
    if (args[0].is_null()) return Value::Null();
    std::string s = args[0].AsString();
    return Value::Varchar(expr.func == "UPPER" ? ToUpper(s) : ToLower(s));
  }
  if (expr.func == "LENGTH") {
    EASIA_RETURN_IF_ERROR(need(1, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].IsStringKind()) {
      return Value::Integer(static_cast<int64_t>(args[0].AsString().size()));
    }
    return Value::Integer(
        static_cast<int64_t>(args[0].ToDisplayString().size()));
  }
  if (expr.func == "ABS") {
    EASIA_RETURN_IF_ERROR(need(1, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == DataType::kDouble) {
      return Value::Double(std::fabs(args[0].AsDouble()));
    }
    return Value::Integer(std::llabs(args[0].AsInt()));
  }
  if (expr.func == "SUBSTR" || expr.func == "SUBSTRING") {
    EASIA_RETURN_IF_ERROR(need(2, 3));
    if (args[0].is_null()) return Value::Null();
    const std::string& s = args[0].AsString();
    int64_t start = args[1].AsInt();  // 1-based per SQL
    if (start < 1) start = 1;
    size_t from = static_cast<size_t>(start - 1);
    if (from >= s.size()) return Value::Varchar("");
    size_t len = s.size() - from;
    if (args.size() == 3 && !args[2].is_null()) {
      int64_t l = args[2].AsInt();
      if (l < 0) l = 0;
      len = std::min<size_t>(len, static_cast<size_t>(l));
    }
    return Value::Varchar(s.substr(from, len));
  }
  if (expr.func == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  return Status::Unimplemented("unknown function " + expr.func);
}

/// Collects top-level AND-ed `column = literal` conjuncts of `expr` into
/// `out` (column name -> literal). Other conjuncts are ignored (they are
/// still applied by the generic WHERE filter).
void CollectEqualityConjuncts(const Expr& expr, const std::string& alias,
                              std::map<std::string, Value>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == Expr::Op::kAnd) {
    CollectEqualityConjuncts(*expr.left, alias, out);
    CollectEqualityConjuncts(*expr.right, alias, out);
    return;
  }
  if (expr.kind != Expr::Kind::kBinary || expr.op != Expr::Op::kEq) return;
  const Expr* column = nullptr;
  const Expr* literal = nullptr;
  for (const Expr* side : {expr.left.get(), expr.right.get()}) {
    if (side->kind == Expr::Kind::kColumn) column = side;
    if (side->kind == Expr::Kind::kLiteral) literal = side;
  }
  if (column == nullptr || literal == nullptr) return;
  if (!column->table.empty() && !EqualsIgnoreCase(column->table, alias)) {
    return;
  }
  out->emplace(ToUpper(column->column), literal->literal);
}

/// Point-lookup fast path: for a single-table query whose WHERE pins every
/// primary-key column with `=` literals, fetch the row through the unique
/// index instead of scanning. This is the shape every hyperlink-browse and
/// /object click produces. Returns true when it applied.
bool TryUniqueLookup(const SelectStmt& stmt, const Table& table,
                     std::vector<Row>* rows) {
  if (stmt.from.size() != 1 || stmt.where == nullptr) return false;
  const TableDef& def = table.def();
  if (def.primary_key.empty()) return false;
  std::map<std::string, Value> equalities;
  CollectEqualityConjuncts(*stmt.where, stmt.from[0].alias, &equalities);
  std::vector<Value> key_values;
  for (const std::string& pk : def.primary_key) {
    auto it = equalities.find(ToUpper(pk));
    if (it == equalities.end() || it->second.is_null()) return false;
    // Coerce the literal to the column type so index keys agree.
    const ColumnDef* col = def.FindColumn(pk);
    Result<Value> coerced = it->second.CoerceTo(col->type);
    if (!coerced.ok()) return false;
    key_values.push_back(std::move(*coerced));
  }
  Result<RowId> id = table.FindUnique(def.primary_key, key_values);
  if (id.ok()) {
    Result<Row> row = table.Get(*id);
    if (row.ok()) rows->push_back(std::move(*row));
  }
  return true;  // applied (possibly zero rows)
}

}  // namespace

bool IsTruthy(const Value& value) {
  if (value.is_null()) return false;
  if (value.IsNumericKind()) return value.AsDouble() != 0;
  return !value.AsString().empty();
}

Result<Value> EvalExpr(const Expr& expr, const EvalEnv& env) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumn: {
      if (env.schema == nullptr || env.row == nullptr) {
        return Status::InvalidArgument("column reference '" + expr.column +
                                       "' outside row context");
      }
      EASIA_ASSIGN_OR_RETURN(
          size_t idx, ResolveColumn(*env.schema, expr.table, expr.column));
      return (*env.row)[idx];
    }
    case Expr::Kind::kUnary: {
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.left, env));
      if (expr.op == Expr::Op::kNot) {
        if (v.is_null()) return Value::Null();
        return Value::Integer(IsTruthy(v) ? 0 : 1);
      }
      if (expr.op == Expr::Op::kNeg) {
        if (v.is_null()) return Value::Null();
        if (v.type() == DataType::kDouble) return Value::Double(-v.AsDouble());
        if (v.IsNumericKind()) return Value::Integer(-v.AsInt());
        return Status::InvalidArgument("unary minus on non-numeric value");
      }
      return Status::Internal("bad unary operator");
    }
    case Expr::Kind::kBinary: {
      EASIA_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.left, env));
      EASIA_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.right, env));
      return EvalBinary(expr.op, lhs, rhs);
    }
    case Expr::Kind::kIsNull: {
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.left, env));
      bool null = v.is_null();
      return Value::Integer((expr.negated ? !null : null) ? 1 : 0);
    }
    case Expr::Kind::kInList: {
      EASIA_ASSIGN_OR_RETURN(Value needle, EvalExpr(*expr.left, env));
      if (needle.is_null()) return Value::Null();
      for (const auto& item : expr.args) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*item, env));
        if (!v.is_null() && needle.Compare(v) == 0) {
          return Value::Integer(expr.negated ? 0 : 1);
        }
      }
      return Value::Integer(expr.negated ? 1 : 0);
    }
    case Expr::Kind::kCall:
      return EvalCall(expr, env);
  }
  return Status::Internal("bad expression kind");
}

namespace {

/// Evaluates an expression that may contain aggregate calls over a group of
/// rows. Non-aggregate subtrees evaluate on the group's first row.
Result<Value> EvalAggregate(const Expr& expr,
                            const std::vector<ColumnBinding>& schema,
                            const std::vector<const Row*>& group) {
  if (expr.kind == Expr::Kind::kCall && IsAggregateFunction(expr.func)) {
    if (expr.func == "COUNT" && expr.star) {
      return Value::Integer(static_cast<int64_t>(group.size()));
    }
    if (expr.args.size() != 1) {
      return Status::InvalidArgument(expr.func + " takes one argument");
    }
    int64_t count = 0;
    // SUM/AVG accumulate twice: exactly in 128-bit integer arithmetic and
    // approximately in double. The wide total is authoritative while every
    // value was integer-kind, and narrows back to INTEGER when it fits
    // int64 (degrading to DOUBLE past the rails); mixed-kind input
    // degrades to the double total. The rule is order-independent, so
    // per-shard partial sums merge exactly (src/db/shard). Identical rule
    // to the columnar AggregateScan kernel — the differential-fuzz suite
    // holds the two to bit-equality.
    double sum = 0;
    __int128 isum = 0;
    bool all_int = true;
    Value min_v = Value::Null();
    Value max_v = Value::Null();
    for (const Row* row : group) {
      EvalEnv env{&schema, row};
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], env));
      if (v.is_null()) continue;
      ++count;
      if (v.IsNumericKind()) {
        sum += v.AsDouble();
        if (v.type() == DataType::kDouble) {
          all_int = false;
        } else {
          isum += v.AsInt();
        }
      } else if (expr.func == "SUM" || expr.func == "AVG") {
        return Status::InvalidArgument(expr.func + " over non-numeric column");
      }
      if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
      if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
    }
    if (expr.func == "COUNT") return Value::Integer(count);
    if (count == 0) return Value::Null();
    if (expr.func == "SUM") return FinishSum(all_int, isum, sum);
    if (expr.func == "AVG") return FinishAvg(all_int, isum, sum, count);
    if (expr.func == "MIN") return min_v;
    if (expr.func == "MAX") return max_v;
  }
  // Recurse; leaves evaluate against the first row.
  switch (expr.kind) {
    case Expr::Kind::kBinary: {
      EASIA_ASSIGN_OR_RETURN(Value l, EvalAggregate(*expr.left, schema, group));
      EASIA_ASSIGN_OR_RETURN(Value r,
                             EvalAggregate(*expr.right, schema, group));
      return EvalBinary(expr.op, l, r);
    }
    case Expr::Kind::kUnary:
    case Expr::Kind::kIsNull:
    case Expr::Kind::kInList:
    case Expr::Kind::kCall:
    case Expr::Kind::kColumn:
    case Expr::Kind::kLiteral: {
      if (group.empty()) return Value::Null();
      EvalEnv env{&schema, group[0]};
      return EvalExpr(expr, env);
    }
  }
  return Status::Internal("bad aggregate expression");
}

}  // namespace

std::string DefaultItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind == Expr::Kind::kColumn) {
    return item.expr->column;
  }
  if (item.expr != nullptr) return item.expr->ToString();
  return StrPrintf("col%zu", index + 1);
}

DataType GuessItemType(const Expr& expr,
                       const std::vector<ColumnBinding>& schema) {
  if (expr.kind == Expr::Kind::kColumn) {
    for (const ColumnBinding& b : schema) {
      if ((expr.table.empty() || EqualsIgnoreCase(b.table_alias, expr.table)) &&
          EqualsIgnoreCase(b.column, expr.column)) {
        return b.type;
      }
    }
  }
  if (expr.kind == Expr::Kind::kLiteral) return expr.literal.type();
  if (expr.kind == Expr::Kind::kCall) {
    if (expr.func == "COUNT" || expr.func == "LENGTH") {
      return DataType::kInteger;
    }
    if (expr.func == "AVG") return DataType::kDouble;
  }
  return DataType::kVarchar;
}

namespace {

const ColumnDef* SourceColumnDef(const Expr& expr,
                                 const std::vector<ColumnBinding>& schema) {
  if (expr.kind != Expr::Kind::kColumn) return nullptr;
  for (const ColumnBinding& b : schema) {
    if ((expr.table.empty() || EqualsIgnoreCase(b.table_alias, expr.table)) &&
        EqualsIgnoreCase(b.column, expr.column)) {
      return b.def;
    }
  }
  return nullptr;
}

/// Legacy row production: materialised nested-loop joins left to right,
/// then the whole WHERE as one filter. Kept as the reference
/// implementation for planner equivalence tests and benchmarks.
Status BuildRowsNaive(const SelectStmt& stmt, const TableLookup& lookup,
                      std::vector<ColumnBinding>* schema_out,
                      std::vector<Row>* rows_out) {
  std::vector<ColumnBinding> schema;
  std::vector<Row> rows;
  bool first = true;
  for (const TableRef& ref : stmt.from) {
    EASIA_ASSIGN_OR_RETURN(const Table* table, lookup(ref.table));
    std::vector<ColumnBinding> add;
    for (const ColumnDef& col : table->def().columns) {
      add.push_back({ref.alias, col.name, col.type, &col});
    }
    std::vector<ColumnBinding> new_schema = schema;
    new_schema.insert(new_schema.end(), add.begin(), add.end());
    std::vector<Row> new_rows;
    if (first) {
      if (!TryUniqueLookup(stmt, *table, &new_rows)) {
        table->ForEachRow(
            [&new_rows](RowId, const Row& row) { new_rows.push_back(row); });
      }
    } else {
      std::vector<Row> right_rows;
      table->ForEachRow([&right_rows](RowId, const Row& row) {
        right_rows.push_back(row);
      });
      for (const Row& left : rows) {
        for (const Row& right : right_rows) {
          Row combined = left;
          combined.insert(combined.end(), right.begin(), right.end());
          if (ref.join_condition != nullptr) {
            EvalEnv env{&new_schema, &combined};
            EASIA_ASSIGN_OR_RETURN(Value cond,
                                   EvalExpr(*ref.join_condition, env));
            if (!IsTruthy(cond)) continue;
          }
          new_rows.push_back(std::move(combined));
        }
      }
    }
    schema = std::move(new_schema);
    rows = std::move(new_rows);
    first = false;
  }
  if (stmt.where != nullptr) {
    std::vector<Row> filtered;
    for (Row& row : rows) {
      EvalEnv env{&schema, &row};
      EASIA_ASSIGN_OR_RETURN(Value cond, EvalExpr(*stmt.where, env));
      if (IsTruthy(cond)) filtered.push_back(std::move(row));
    }
    rows = std::move(filtered);
  }
  *schema_out = std::move(schema);
  *rows_out = std::move(rows);
  return Status::OK();
}

/// Accumulates wall time into `*slot` for the guard's lifetime (null slot:
/// inert). Used for per-operator profile timings.
struct TimeGuard {
  explicit TimeGuard(double* s) : slot(s) {
    if (slot != nullptr) t0 = std::chrono::steady_clock::now();
  }
  ~TimeGuard() {
    if (slot != nullptr) {
      *slot += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    }
  }
  double* slot;
  std::chrono::steady_clock::time_point t0;
};

/// Planned row production: per-scan access paths with pushed predicates,
/// hash, index-loop or nested-loop joins, residual WHERE, and optional
/// early cutoff once LIMIT(+OFFSET) rows survive every filter.
///
/// Output order matches BuildRowsNaive exactly. For FROM-order plans the
/// production is naturally left-major, RowId-minor: index fetches return
/// RowIds ascending, and hash buckets preserve insertion order for equal
/// keys. When the cost-based planner reordered the joins, each produced
/// row is remapped back to the original FROM column order and the result
/// sorted by its tuple of per-table RowIds (FROM order, lexicographic) —
/// which is precisely the order the nested loops over RowId-ascending
/// streams would have produced.
Status BuildRowsPlanned(const SelectPlan& plan,
                        std::vector<ColumnBinding>* schema_out,
                        std::vector<Row>* rows_out, PlanProfile* profile,
                        obs::Tracer* tracer) {
  const size_t n = plan.scans.size();
  // cum_schemas[d] covers scans[0..d-1]; cum_schemas[n] is the full schema.
  std::vector<std::vector<ColumnBinding>> scan_schemas(n);
  std::vector<std::vector<ColumnBinding>> cum_schemas(n + 1);
  for (size_t i = 0; i < n; ++i) {
    for (const ColumnDef& col : plan.scans[i].table->def().columns) {
      scan_schemas[i].push_back({plan.scans[i].alias, col.name, col.type,
                                 &col});
    }
    cum_schemas[i + 1] = cum_schemas[i];
    cum_schemas[i + 1].insert(cum_schemas[i + 1].end(),
                              scan_schemas[i].begin(), scan_schemas[i].end());
  }

  // Scans attached by an index-loop join are never materialised up front:
  // their rows are fetched per accumulated left row inside the join.
  std::vector<bool> via_index_loop(n, false);
  for (size_t j = 0; j + 1 < n; ++j) {
    if (plan.joins[j].strategy == JoinPlan::Strategy::kIndexLoop) {
      via_index_loop[j + 1] = true;
    }
  }

  // Materialise each remaining scan through its access path, keeping the
  // source RowId of every surviving row (order restoration needs them).
  // Pushed predicates are re-evaluated on every fetched row — including
  // index hits — so the index key coercion can never change which rows
  // qualify.
  std::vector<std::vector<Row>> base(n);
  std::vector<std::vector<RowId>> base_ids(n);
  for (size_t i = 0; i < n; ++i) {
    if (via_index_loop[i]) continue;
    const ScanPlan& scan = plan.scans[i];
    obs::Tracer::Scope span(tracer, "exec:scan:" + scan.alias);
    TimeGuard tg(profile != nullptr ? &profile->scans[i].seconds : nullptr);
    std::vector<Row> fetched;
    std::vector<RowId> fetched_ids;
    if (scan.access == ScanPlan::Access::kSeqScan) {
      if (scan.kernel_filter) {
        // Columnar filter kernel: matching RowIds over the raw arrays, then
        // materialise only survivors. The pushed predicates are still
        // re-evaluated below, so the kernel can only narrow the candidate
        // set, never change which rows qualify.
        for (RowId id :
             scan.table->column_store()->FilterScan(scan.kernel_predicates)) {
          EASIA_ASSIGN_OR_RETURN(Row row, scan.table->Get(id));
          fetched.push_back(std::move(row));
          fetched_ids.push_back(id);
        }
      } else {
        scan.table->ForEachRow([&fetched, &fetched_ids](RowId id,
                                                        const Row& row) {
          fetched.push_back(row);
          fetched_ids.push_back(id);
        });
      }
    } else if (scan.access == ScanPlan::Access::kPrefixScan) {
      // Radix candidates are a superset of the LIKE matches (the pattern's
      // wildcard tail still applies); the pushed LIKE conjunct below does
      // the exact filtering.
      for (RowId id : scan.table->RadixPrefixRowIds(scan.index_columns[0],
                                                    scan.prefix)) {
        EASIA_ASSIGN_OR_RETURN(Row row, scan.table->Get(id));
        fetched.push_back(std::move(row));
        fetched_ids.push_back(id);
      }
    } else {
      EASIA_ASSIGN_OR_RETURN(
          std::vector<RowId> ids,
          scan.table->FindByIndex(scan.index_columns, scan.key_values));
      for (RowId id : ids) {
        EASIA_ASSIGN_OR_RETURN(Row row, scan.table->Get(id));
        fetched.push_back(std::move(row));
        fetched_ids.push_back(id);
      }
    }
    for (size_t r = 0; r < fetched.size(); ++r) {
      EvalEnv env{&scan_schemas[i], &fetched[r]};
      bool keep = true;
      for (const Expr* e : scan.pushed) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
        if (!IsTruthy(v)) {
          keep = false;
          break;
        }
      }
      if (keep) {
        base[i].push_back(std::move(fetched[r]));
        base_ids[i].push_back(fetched_ids[r]);
      }
    }
    if (profile != nullptr) {
      profile->scans[i].actual_rows = static_cast<int64_t>(base[i].size());
    }
  }

  // Hash tables for hash joins: right-side base row indexes keyed by their
  // join keys. Rows with a NULL key can never match and are left out.
  std::vector<std::multimap<std::string, size_t>> hashes(n);
  for (size_t j = 0; j + 1 < n; ++j) {
    const JoinPlan& join = plan.joins[j];
    if (join.strategy != JoinPlan::Strategy::kHashJoin) continue;
    TimeGuard tg(profile != nullptr ? &profile->joins[j].seconds : nullptr);
    for (size_t r = 0; r < base[j + 1].size(); ++r) {
      EvalEnv env{&scan_schemas[j + 1], &base[j + 1][r]};
      std::string key;
      bool null_key = false;
      for (const Expr* e : join.right_keys) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
        if (v.is_null()) {
          null_key = true;
          break;
        }
        PutLengthPrefixed(&key, v.ToKeyString());
      }
      if (!null_key) hashes[j + 1].emplace(std::move(key), r);
    }
  }

  // Order-restoration bookkeeping for reordered plans: per-exec-position
  // column offsets, exec position of each FROM entry, and the RowId chosen
  // at each depth of the current DFS path.
  const bool restore = plan.reordered;
  std::vector<size_t> offset(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    offset[i + 1] = offset[i] + scan_schemas[i].size();
  }
  std::vector<size_t> pos_of_from(n, 0);
  for (size_t p = 0; p < n; ++p) pos_of_from[plan.scans[p].from_index] = p;
  std::vector<RowId> rid_stack(n, 0);
  struct KeyedRow {
    std::vector<RowId> key;  // RowIds in FROM order
    Row row;                 // columns in FROM order
  };
  std::vector<KeyedRow> keyed;

  // Depth-first pipelined production; `extend` returns true to stop early
  // once the LIMIT cutoff is satisfied (the planner never reorders a
  // cutoff plan, so restoration and early exit never mix).
  std::vector<Row> out;
  int64_t produced = 0;
  std::vector<double> incl(n + 2, 0.0);  // inclusive DFS time per depth
  std::vector<int64_t> join_out(n, 0);   // rows surviving joins[depth-1]
  std::vector<int64_t> loop_scan_rows(n, 0);  // index-loop fetched+filtered
  const int64_t cutoff = plan.row_cutoff;
  std::function<Result<bool>(Row&, size_t)> extend =
      [&](Row& so_far, size_t depth) -> Result<bool> {
    TimeGuard tg(profile != nullptr ? &incl[depth] : nullptr);
    if (depth == n) {
      EvalEnv env{&cum_schemas[n], &so_far};
      for (const Expr* e : plan.residual_where) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
        if (!IsTruthy(v)) return false;
      }
      if (restore) {
        KeyedRow kr;
        kr.key.reserve(n);
        kr.row.reserve(so_far.size());
        for (size_t f = 0; f < n; ++f) {
          size_t p = pos_of_from[f];
          kr.key.push_back(rid_stack[p]);
          for (size_t c = offset[p]; c < offset[p + 1]; ++c) {
            kr.row.push_back(so_far[c]);
          }
        }
        keyed.push_back(std::move(kr));
      } else {
        out.push_back(so_far);
      }
      ++produced;
      return cutoff >= 0 && produced >= cutoff;
    }
    const JoinPlan& join = plan.joins[depth - 1];
    auto try_right = [&](const Row& right, RowId rid) -> Result<bool> {
      size_t old_size = so_far.size();
      so_far.insert(so_far.end(), right.begin(), right.end());
      rid_stack[depth] = rid;
      bool keep = true;
      EvalEnv env{&cum_schemas[depth + 1], &so_far};
      for (const Expr* e : join.residual) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
        if (!IsTruthy(v)) {
          keep = false;
          break;
        }
      }
      bool stop = false;
      if (keep) {
        ++join_out[depth - 1];
        EASIA_ASSIGN_OR_RETURN(stop, extend(so_far, depth + 1));
      }
      so_far.resize(old_size);
      return stop;
    };
    if (join.strategy == JoinPlan::Strategy::kHashJoin) {
      EvalEnv env{&cum_schemas[depth], &so_far};
      std::string key;
      for (const Expr* e : join.left_keys) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
        if (v.is_null()) return false;  // NULL never equi-joins
        PutLengthPrefixed(&key, v.ToKeyString());
      }
      auto range = hashes[depth].equal_range(key);
      for (auto it = range.first; it != range.second; ++it) {
        EASIA_ASSIGN_OR_RETURN(
            bool stop,
            try_right(base[depth][it->second], base_ids[depth][it->second]));
        if (stop) return true;
      }
      return false;
    }
    if (join.strategy == JoinPlan::Strategy::kIndexLoop) {
      // Per left row: evaluate the key, fetch matching right rows through
      // the index (RowIds ascending, so per-key order matches the hash
      // path), apply the scan's pushed predicates per fetched row.
      const ScanPlan& scan = plan.scans[depth];
      EvalEnv env{&cum_schemas[depth], &so_far};
      std::vector<Value> key_values;
      for (const Expr* e : join.left_keys) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, env));
        if (v.is_null()) return false;  // NULL never equi-joins
        key_values.push_back(std::move(v));
      }
      EASIA_ASSIGN_OR_RETURN(
          std::vector<RowId> ids,
          scan.table->FindByIndex(join.index_columns, key_values));
      for (RowId id : ids) {
        EASIA_ASSIGN_OR_RETURN(Row row, scan.table->Get(id));
        EvalEnv renv{&scan_schemas[depth], &row};
        bool keep = true;
        for (const Expr* e : scan.pushed) {
          EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, renv));
          if (!IsTruthy(v)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        ++loop_scan_rows[depth];
        EASIA_ASSIGN_OR_RETURN(bool stop, try_right(row, id));
        if (stop) return true;
      }
      return false;
    }
    for (size_t r = 0; r < base[depth].size(); ++r) {
      EASIA_ASSIGN_OR_RETURN(bool stop,
                             try_right(base[depth][r], base_ids[depth][r]));
      if (stop) return true;
    }
    return false;
  };
  {
    obs::Tracer::Scope span(tracer, n > 1 ? "exec:join-pipeline"
                                          : "exec:scan-output");
    for (size_t r = 0; r < base[0].size(); ++r) {
      Row so_far = base[0][r];
      rid_stack[0] = base_ids[0][r];
      EASIA_ASSIGN_OR_RETURN(bool stop, extend(so_far, 1));
      if (stop) break;
    }
  }
  if (restore) {
    std::sort(keyed.begin(), keyed.end(),
              [](const KeyedRow& a, const KeyedRow& b) {
                return a.key < b.key;
              });
    out.reserve(keyed.size());
    for (KeyedRow& kr : keyed) out.push_back(std::move(kr.row));
    std::vector<ColumnBinding> schema;
    for (size_t f = 0; f < n; ++f) {
      const std::vector<ColumnBinding>& s = scan_schemas[pos_of_from[f]];
      schema.insert(schema.end(), s.begin(), s.end());
    }
    *schema_out = std::move(schema);
  } else {
    *schema_out = std::move(cum_schemas[n]);
  }
  *rows_out = std::move(out);
  if (profile != nullptr) {
    for (size_t j = 0; j + 1 < n; ++j) {
      profile->joins[j].actual_rows = join_out[j];
      // Exclusive DFS time at the depth this join runs (join j executes in
      // extend() calls at depth j + 1; deeper time belongs to later ops).
      profile->joins[j].seconds +=
          std::max(0.0, incl[j + 1] - incl[j + 2]);
    }
    for (size_t i = 0; i < n; ++i) {
      if (via_index_loop[i]) {
        profile->scans[i].actual_rows = loop_scan_rows[i];
      }
    }
  }
  return Status::OK();
}

/// Everything downstream of row production: projection, aggregates,
/// DISTINCT, ORDER BY, OFFSET/LIMIT, DATALINK rewrite. `rows` must already
/// be WHERE-filtered.
Result<QueryResult> FinishSelect(const SelectStmt& stmt,
                                 const std::vector<ColumnBinding>& schema,
                                 std::vector<Row> rows,
                                 const DatalinkRewriter& rewriter) {
  // --- Expand projection items ---
  struct OutputItem {
    std::string name;
    DataType type;
    const ColumnDef* source_def;
    const Expr* expr;  // null only for expanded stars (uses column index)
    size_t direct_index;  // when expr == nullptr
  };
  std::vector<std::unique_ptr<Expr>> synthesized;
  std::vector<OutputItem> outputs;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      for (size_t c = 0; c < schema.size(); ++c) {
        if (!item.star_table.empty() &&
            !EqualsIgnoreCase(schema[c].table_alias, item.star_table)) {
          continue;
        }
        outputs.push_back({schema[c].column, schema[c].type, schema[c].def,
                           nullptr, c});
      }
      if (!item.star_table.empty() && outputs.empty()) {
        return Status::NotFound("unknown table in select list: " +
                                item.star_table);
      }
      continue;
    }
    outputs.push_back({DefaultItemName(item, i),
                       GuessItemType(*item.expr, schema),
                       SourceColumnDef(*item.expr, schema), item.expr.get(),
                       0});
  }
  if (outputs.empty()) {
    return Status::InvalidArgument("empty select list");
  }

  QueryResult result;
  result.is_query = true;
  for (const OutputItem& o : outputs) {
    result.column_names.push_back(o.name);
    result.column_types.push_back(o.type);
  }

  bool aggregate_query = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && item.expr->ContainsAggregate()) {
      aggregate_query = true;
    }
  }

  // Pair each output row with sort keys computed in the input environment
  // (or group environment for aggregates).
  struct ProjectedRow {
    Row values;
    Row sort_keys;
  };
  std::vector<ProjectedRow> projected;

  auto compute_sort_keys = [&](const EvalEnv& env, const Row& out_values)
      -> Result<Row> {
    Row keys;
    for (const OrderItem& item : stmt.order_by) {
      // ORDER BY may reference an output alias or 1-based output position.
      if (item.expr->kind == Expr::Kind::kColumn && item.expr->table.empty()) {
        bool matched = false;
        for (size_t i = 0; i < outputs.size(); ++i) {
          if (EqualsIgnoreCase(outputs[i].name, item.expr->column)) {
            keys.push_back(out_values[i]);
            matched = true;
            break;
          }
        }
        if (matched) continue;
      }
      if (item.expr->kind == Expr::Kind::kLiteral &&
          item.expr->literal.type() == DataType::kInteger) {
        int64_t pos = item.expr->literal.AsInt();
        if (pos >= 1 && static_cast<size_t>(pos) <= out_values.size()) {
          keys.push_back(out_values[static_cast<size_t>(pos) - 1]);
          continue;
        }
      }
      EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, env));
      keys.push_back(std::move(v));
    }
    return keys;
  };

  if (aggregate_query) {
    // Group rows by GROUP BY key (single group when absent).
    std::map<std::string, std::vector<const Row*>> groups;
    std::vector<std::string> group_order;
    for (const Row& row : rows) {
      EvalEnv env{&schema, &row};
      std::string key;
      for (const auto& g : stmt.group_by) {
        EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, env));
        PutLengthPrefixed(&key, v.ToKeyString());
      }
      auto [it, inserted] = groups.emplace(key, std::vector<const Row*>());
      if (inserted) group_order.push_back(key);
      it->second.push_back(&row);
    }
    if (groups.empty() && stmt.group_by.empty()) {
      groups.emplace("", std::vector<const Row*>());
      group_order.push_back("");
    }
    for (const std::string& key : group_order) {
      const std::vector<const Row*>& group = groups[key];
      if (stmt.having != nullptr) {
        EASIA_ASSIGN_OR_RETURN(Value h,
                               EvalAggregate(*stmt.having, schema, group));
        if (!IsTruthy(h)) continue;
      }
      ProjectedRow out;
      for (const OutputItem& o : outputs) {
        if (o.expr == nullptr) {
          // Star expansion in aggregate context: take from first row.
          out.values.push_back(group.empty() ? Value::Null()
                                             : (*group[0])[o.direct_index]);
          continue;
        }
        EASIA_ASSIGN_OR_RETURN(Value v, EvalAggregate(*o.expr, schema, group));
        out.values.push_back(std::move(v));
      }
      // Sort keys for aggregate rows: aggregate-aware evaluation.
      for (const OrderItem& item : stmt.order_by) {
        bool matched = false;
        if (item.expr->kind == Expr::Kind::kColumn &&
            item.expr->table.empty()) {
          for (size_t i = 0; i < outputs.size(); ++i) {
            if (EqualsIgnoreCase(outputs[i].name, item.expr->column)) {
              out.sort_keys.push_back(out.values[i]);
              matched = true;
              break;
            }
          }
        }
        if (!matched) {
          EASIA_ASSIGN_OR_RETURN(Value v,
                                 EvalAggregate(*item.expr, schema, group));
          out.sort_keys.push_back(std::move(v));
        }
      }
      projected.push_back(std::move(out));
    }
  } else {
    for (const Row& row : rows) {
      EvalEnv env{&schema, &row};
      ProjectedRow out;
      for (const OutputItem& o : outputs) {
        if (o.expr == nullptr) {
          out.values.push_back(row[o.direct_index]);
        } else {
          EASIA_ASSIGN_OR_RETURN(Value v, EvalExpr(*o.expr, env));
          out.values.push_back(std::move(v));
        }
      }
      EASIA_ASSIGN_OR_RETURN(out.sort_keys, compute_sort_keys(env, out.values));
      projected.push_back(std::move(out));
    }
  }

  // --- DISTINCT ---
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<ProjectedRow> unique_rows;
    for (ProjectedRow& pr : projected) {
      std::string key;
      for (const Value& v : pr.values) {
        PutLengthPrefixed(&key, v.ToKeyString());
      }
      if (seen.insert(key).second) unique_rows.push_back(std::move(pr));
    }
    projected = std::move(unique_rows);
  }

  // --- ORDER BY (stable) ---
  if (!stmt.order_by.empty()) {
    std::stable_sort(projected.begin(), projected.end(),
                     [&](const ProjectedRow& a, const ProjectedRow& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         int c = a.sort_keys[i].Compare(b.sort_keys[i]);
                         if (c != 0) {
                           return stmt.order_by[i].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }

  // --- OFFSET / LIMIT ---
  size_t begin = std::min<size_t>(static_cast<size_t>(std::max<int64_t>(
                                      stmt.offset, 0)),
                                  projected.size());
  size_t end = projected.size();
  if (stmt.limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(stmt.limit));
  }

  // --- DATALINK presentation rewrite ---
  for (size_t r = begin; r < end; ++r) {
    Row& values = projected[r].values;
    if (rewriter != nullptr) {
      for (size_t c = 0; c < outputs.size(); ++c) {
        const ColumnDef* def = outputs[c].source_def;
        if (def != nullptr && def->type == DataType::kDatalink &&
            !values[c].is_null()) {
          EASIA_ASSIGN_OR_RETURN(std::string rewritten,
                                 rewriter(*def, values[c].AsString()));
          values[c] = Value::Datalink(std::move(rewritten));
        }
      }
    }
    result.rows.push_back(std::move(values));
  }
  return result;
}

/// Whole-query columnar aggregation: one AggregateScan kernel call replaces
/// row materialisation, grouping and per-group expression walking. Only
/// reached when the planner proved the query maps exactly onto the kernel
/// (plan.aggregate.fast_path), so names, types and values agree with the
/// FinishSelect row path.
Result<QueryResult> ExecuteAggregateFast(const SelectStmt& stmt,
                                         const SelectPlan& plan) {
  const ScanPlan& scan = plan.scans[0];
  const store::ColumnStore* cs = scan.table->column_store();
  EASIA_ASSIGN_OR_RETURN(
      std::vector<store::AggGroup> groups,
      cs->AggregateScan(scan.kernel_predicates, plan.aggregate.group_by_cols,
                        plan.aggregate.aggs));

  std::vector<ColumnBinding> schema;
  for (const ColumnDef& col : scan.table->def().columns) {
    schema.push_back({scan.alias, col.name, col.type, &col});
  }
  QueryResult result;
  result.is_query = true;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    result.column_names.push_back(DefaultItemName(stmt.items[i], i));
    result.column_types.push_back(GuessItemType(*stmt.items[i].expr, schema));
  }
  for (store::AggGroup& g : groups) {
    Row out;
    for (const AggregatePlan::Item& item : plan.aggregate.items) {
      if (item.is_aggregate) {
        out.push_back(std::move(g.aggregates[item.index]));
      } else {
        // Copied, not moved: a source column may appear in several items.
        out.push_back(g.first_row[item.index]);
      }
    }
    result.rows.push_back(std::move(out));
  }
  return result;
}

}  // namespace

Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                  const TableLookup& lookup,
                                  const DatalinkRewriter& rewriter,
                                  const ExecuteOptions& options) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  PlanProfile* profile = options.profile;
  const auto t0 = std::chrono::steady_clock::now();
  auto run = [&]() -> Result<QueryResult> {
    std::vector<ColumnBinding> schema;
    std::vector<Row> rows;
    if (!options.use_planner) {
      EASIA_RETURN_IF_ERROR(BuildRowsNaive(stmt, lookup, &schema, &rows));
      return FinishSelect(stmt, schema, std::move(rows), rewriter);
    }
    PlannerOptions planner_options;
    planner_options.cost_based = options.cost_based;
    EASIA_ASSIGN_OR_RETURN(SelectPlan plan,
                           PlanSelect(stmt, lookup, planner_options));
    if (options.plan_observer != nullptr) options.plan_observer(plan);
    if (profile != nullptr) {
      profile->scans.assign(plan.scans.size(), PlanProfile::Op{});
      profile->joins.assign(plan.joins.size(), PlanProfile::Op{});
      for (size_t i = 0; i < plan.scans.size(); ++i) {
        profile->scans[i].est_rows = plan.scans[i].est_rows;
      }
      for (size_t j = 0; j < plan.joins.size(); ++j) {
        profile->joins[j].est_rows = plan.joins[j].est_rows;
      }
    }
    if (plan.aggregate.fast_path) {
      obs::Tracer::Scope span(options.tracer, "exec:aggregate-kernel");
      TimeGuard tg(profile != nullptr && !profile->scans.empty()
                       ? &profile->scans[0].seconds
                       : nullptr);
      return ExecuteAggregateFast(stmt, plan);
    }
    EASIA_RETURN_IF_ERROR(
        BuildRowsPlanned(plan, &schema, &rows, profile, options.tracer));
    obs::Tracer::Scope span(options.tracer, "exec:finish");
    return FinishSelect(stmt, schema, std::move(rows), rewriter);
  };
  Result<QueryResult> result = run();
  if (profile != nullptr) {
    profile->total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (result.ok()) {
      profile->result_rows = static_cast<int64_t>(result->rows.size());
    }
  }
  return result;
}

}  // namespace easia::db
