#include "db/store/bulk_loader.h"

#include <algorithm>

#include "common/coding.h"
#include "db/table.h"

namespace easia::db::store {

std::string SerializeBulk(const TableDef& def, const std::vector<Row>& rows,
                          size_t chunk_rows) {
  if (chunk_rows == 0) chunk_rows = kDefaultChunkRows;
  std::string out(kBulkMagic);
  PutU32(&out, static_cast<uint32_t>(def.columns.size()));
  for (const ColumnDef& col : def.columns) {
    PutLengthPrefixed(&out, col.name);
    PutU8(&out, static_cast<uint8_t>(col.type));
  }
  for (size_t start = 0; start < rows.size(); start += chunk_rows) {
    size_t end = std::min(rows.size(), start + chunk_rows);
    std::string payload;
    PutU32(&payload, static_cast<uint32_t>(end - start));
    for (size_t i = start; i < end; ++i) {
      EncodeRow(&payload, rows[i]);
    }
    PutU32(&out, Crc32(payload));
    PutLengthPrefixed(&out, payload);
  }
  return out;
}

Status WriteBulkFile(io::Env* env, const std::string& path,
                     const TableDef& def, const std::vector<Row>& rows,
                     size_t chunk_rows) {
  return env->WriteFileAtomic(path, SerializeBulk(def, rows, chunk_rows));
}

Result<BulkFile> ParseBulk(std::string_view contents) {
  if (contents.substr(0, kBulkMagic.size()) != kBulkMagic) {
    return Status::Corruption("bulk file: bad magic");
  }
  Decoder dec(contents.substr(kBulkMagic.size()));
  BulkFile file;
  EASIA_ASSIGN_OR_RETURN(uint32_t ncols, dec.GetU32());
  for (uint32_t i = 0; i < ncols; ++i) {
    EASIA_ASSIGN_OR_RETURN(std::string_view name, dec.GetLengthPrefixed());
    EASIA_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
    if (type > static_cast<uint8_t>(DataType::kDatalink)) {
      return Status::Corruption("bulk file: bad column type");
    }
    file.columns.emplace_back(name);
    file.types.push_back(static_cast<DataType>(type));
  }
  while (!dec.Done()) {
    EASIA_ASSIGN_OR_RETURN(uint32_t crc, dec.GetU32());
    EASIA_ASSIGN_OR_RETURN(std::string_view payload, dec.GetLengthPrefixed());
    if (Crc32(payload) != crc) {
      return Status::Corruption("bulk file: chunk checksum mismatch");
    }
    Decoder chunk_dec(payload);
    EASIA_ASSIGN_OR_RETURN(uint32_t nrows, chunk_dec.GetU32());
    std::vector<Row> chunk;
    chunk.reserve(nrows);
    for (uint32_t i = 0; i < nrows; ++i) {
      EASIA_ASSIGN_OR_RETURN(Row row, DecodeRow(&chunk_dec));
      if (row.size() != file.columns.size()) {
        return Status::Corruption("bulk file: row width mismatch");
      }
      chunk.push_back(std::move(row));
    }
    if (!chunk_dec.Done()) {
      return Status::Corruption("bulk file: trailing bytes in chunk");
    }
    file.chunks.push_back(std::move(chunk));
  }
  return file;
}

Result<BulkFile> ReadBulkFile(io::Env* env, const std::string& path) {
  EASIA_ASSIGN_OR_RETURN(std::string contents, env->ReadFileToString(path));
  Result<BulkFile> parsed = ParseBulk(contents);
  if (!parsed.ok()) return parsed.status().WithContext("bulk file " + path);
  return parsed;
}

}  // namespace easia::db::store
