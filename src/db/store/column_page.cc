#include "db/store/column_page.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"
#include "db/executor.h"

namespace easia::db::store {
namespace {

/// Appends a group-key fragment for one cell. The encoding only needs to
/// partition rows exactly like Value::ToKeyString: a class tag plus the
/// raw double bits (numeric) or length-prefixed bytes (text). Double bits
/// are equal exactly when the %.17g rendering is, -0.0 included.
void AppendKeyFragment(bool is_null, bool numeric, double num,
                       std::string_view text, std::string* key) {
  if (is_null) {
    key->push_back('\x00');
    return;
  }
  if (numeric) {
    key->push_back('\x01');
    char bits[sizeof(double)];
    std::memcpy(bits, &num, sizeof(double));
    key->append(bits, sizeof(double));
    return;
  }
  key->push_back('\x02');
  uint32_t len = static_cast<uint32_t>(text.size());
  key->append(reinterpret_cast<const char*>(&len), sizeof(len));
  key->append(text.data(), text.size());
}

/// Per-aggregate running state. SUM/AVG over integer columns accumulate
/// twice: exactly in 128-bit integer arithmetic and approximately in
/// double. The wide total is authoritative while every input was
/// integer-kind (narrowing back to INTEGER when it fits int64, DOUBLE
/// otherwise) — the same order-independent rule as the row-path
/// EvalAggregate (FinishSum/FinishAvg in db/executor.h), so the two
/// executors stay bit-identical and shard partials merge exactly.
struct AggAcc {
  size_t non_null = 0;
  double sum = 0;
  __int128 isum = 0;
  bool all_int = true;
  bool has_extreme = false;
  bool extreme_numeric = false;
  double extreme_num = 0;
  int64_t extreme_int = 0;  // exact track for fixed-int columns
  std::string extreme_text;
  size_t extreme_slot = 0;  // slot holding the current MIN/MAX value
};

struct GroupState {
  size_t first_slot = 0;
  size_t count = 0;
  std::vector<AggAcc> accs;
};

}  // namespace

ColumnStore::ColumnStore(const TableDef& def) {
  columns_.reserve(def.columns.size());
  for (const ColumnDef& col : def.columns) {
    Column c;
    c.type = col.type;
    columns_.push_back(std::move(c));
  }
}

bool ColumnStore::GetBit(const std::vector<uint64_t>& words, size_t i) {
  size_t word = i / 64;
  if (word >= words.size()) return false;
  return (words[word] >> (i % 64)) & 1;
}

void ColumnStore::SetBit(std::vector<uint64_t>* words, size_t i, bool value) {
  size_t word = i / 64;
  if (word >= words->size()) words->resize(word + 1, 0);
  if (value) {
    (*words)[word] |= (uint64_t{1} << (i % 64));
  } else {
    (*words)[word] &= ~(uint64_t{1} << (i % 64));
  }
}

Status ColumnStore::WriteCell(Column* c, size_t slot, const Value& v,
                              bool append) {
  if (v.is_null()) {
    if (append) {
      if (IsFixedInt(c->type)) {
        c->ints.push_back(0);
      } else if (c->type == DataType::kDouble) {
        c->doubles.push_back(0);
      } else {
        c->text_off.push_back(0);
        c->text_len.push_back(0);
      }
    }
    SetBit(&c->null_bits, slot, true);
    return Status::OK();
  }
  if (IsFixedInt(c->type)) {
    if (!v.IsNumericKind()) {
      return Status::Internal("columnar store: non-numeric value in " +
                              std::string(DataTypeName(c->type)) + " column");
    }
    if (append) {
      c->ints.push_back(v.AsInt());
    } else {
      c->ints[slot] = v.AsInt();
    }
  } else if (c->type == DataType::kDouble) {
    if (!v.IsNumericKind()) {
      return Status::Internal(
          "columnar store: non-numeric value in DOUBLE column");
    }
    if (append) {
      c->doubles.push_back(v.AsDouble());
    } else {
      c->doubles[slot] = v.AsDouble();
    }
  } else {
    if (!v.IsStringKind()) {
      return Status::Internal(
          "columnar store: non-string value in text column");
    }
    // Text updates append fresh bytes; the old span becomes arena garbage
    // (no compaction — ingest-mostly workload).
    uint32_t off = static_cast<uint32_t>(c->arena.size());
    c->arena += v.AsString();
    uint32_t len = static_cast<uint32_t>(v.AsString().size());
    if (append) {
      c->text_off.push_back(off);
      c->text_len.push_back(len);
    } else {
      c->text_off[slot] = off;
      c->text_len[slot] = len;
    }
  }
  SetBit(&c->null_bits, slot, false);
  return Status::OK();
}

Status ColumnStore::Append(RowId id, const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::Internal("columnar store: row width mismatch");
  }
  size_t slot = slot_ids_.size();
  // One hash probe doubles as the duplicate check and the insert.
  auto [it, inserted] = slot_of_.try_emplace(id, static_cast<uint32_t>(slot));
  if (!inserted) {
    return Status::Internal("columnar store: duplicate row id");
  }
  if (!slot_ids_.empty() && id < slot_ids_.back()) slots_monotonic_ = false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    Status written = WriteCell(&columns_[i], slot, row[i], /*append=*/true);
    if (!written.ok()) {
      slot_of_.erase(it);
      return written;
    }
  }
  slot_ids_.push_back(id);
  SetBit(&live_bits_, slot, true);
  return Status::OK();
}

Status ColumnStore::Update(RowId id, const Row& row) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("columnar store: row not found");
  }
  if (row.size() != columns_.size()) {
    return Status::Internal("columnar store: row width mismatch");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    EASIA_RETURN_IF_ERROR(WriteCell(&columns_[i], it->second, row[i],
                                    /*append=*/false));
  }
  return Status::OK();
}

Status ColumnStore::Delete(RowId id) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("columnar store: row not found");
  }
  SetBit(&live_bits_, it->second, false);
  slot_of_.erase(it);
  return Status::OK();
}

Value ColumnStore::MaterialiseCell(const Column& c, size_t slot) const {
  if (GetBit(c.null_bits, slot)) return Value::Null();
  switch (c.type) {
    case DataType::kInteger:
      return Value::Integer(c.ints[slot]);
    case DataType::kTimestamp:
      return Value::Timestamp(c.ints[slot]);
    case DataType::kDouble:
      return Value::Double(c.doubles[slot]);
    case DataType::kVarchar:
      return Value::Varchar(std::string(TextAt(c, slot)));
    case DataType::kBlob:
      return Value::Blob(std::string(TextAt(c, slot)));
    case DataType::kClob:
      return Value::Clob(std::string(TextAt(c, slot)));
    case DataType::kDatalink:
      return Value::Datalink(std::string(TextAt(c, slot)));
  }
  return Value::Null();
}

void ColumnStore::MaterialiseRow(size_t slot, Row* row) const {
  row->clear();
  row->reserve(columns_.size());
  for (const Column& c : columns_) {
    row->push_back(MaterialiseCell(c, slot));
  }
}

Result<Row> ColumnStore::Get(RowId id) const {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("columnar store: row not found");
  }
  Row row;
  MaterialiseRow(it->second, &row);
  return row;
}

template <typename Fn>
void ColumnStore::ForEachLiveSlot(Fn&& fn) const {
  if (slots_monotonic_) {
    for (size_t slot = 0; slot < slot_ids_.size(); ++slot) {
      if (SlotLive(slot)) fn(slot_ids_[slot], slot);
    }
  } else {
    // The hash map has no iteration order; rebuild the ascending-RowId
    // order the scan contract promises. Only reached after out-of-order
    // appends (WAL replay of interleaved transactions), never on the bulk
    // ingest path.
    std::vector<std::pair<RowId, uint32_t>> ordered(slot_of_.begin(),
                                                    slot_of_.end());
    std::sort(ordered.begin(), ordered.end());
    for (const auto& [id, slot] : ordered) fn(id, slot);
  }
}

void ColumnStore::ForEachRow(
    const std::function<void(RowId, const Row&)>& fn) const {
  Row scratch;
  ForEachLiveSlot([&](RowId id, size_t slot) {
    MaterialiseRow(slot, &scratch);
    fn(id, scratch);
  });
}

bool ColumnStore::EvalPredicate(const ColPredicate& p, size_t slot) const {
  const Column& c = columns_[p.column];
  bool is_null = GetBit(c.null_bits, slot);
  switch (p.op) {
    case ColPredicate::Op::kIsNull:
      return is_null;
    case ColPredicate::Op::kIsNotNull:
      return !is_null;
    default:
      break;
  }
  // Any comparison against NULL is NULL, which the executor rejects.
  if (is_null || p.literal.is_null()) return false;
  if (p.op == ColPredicate::Op::kLike || p.op == ColPredicate::Op::kNotLike) {
    bool match = LikeMatch(TextAt(c, slot), p.literal.AsString());
    return p.op == ColPredicate::Op::kLike ? match : !match;
  }
  int cmp;
  if (IsText(c.type)) {
    cmp = std::string_view(TextAt(c, slot)).compare(p.literal.AsString());
  } else {
    // Value::Compare collapses the numeric family onto double.
    double lhs = IsFixedInt(c.type) ? static_cast<double>(c.ints[slot])
                                    : c.doubles[slot];
    double rhs = p.literal.AsDouble();
    cmp = lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  }
  switch (p.op) {
    case ColPredicate::Op::kEq:
      return cmp == 0;
    case ColPredicate::Op::kNe:
      return cmp != 0;
    case ColPredicate::Op::kLt:
      return cmp < 0;
    case ColPredicate::Op::kLe:
      return cmp <= 0;
    case ColPredicate::Op::kGt:
      return cmp > 0;
    case ColPredicate::Op::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

bool ColumnStore::PassesAll(const std::vector<ColPredicate>& preds,
                            size_t slot) const {
  for (const ColPredicate& p : preds) {
    if (!EvalPredicate(p, slot)) return false;
  }
  return true;
}

std::vector<RowId> ColumnStore::FilterScan(
    const std::vector<ColPredicate>& predicates) const {
  std::vector<RowId> out;
  ForEachLiveSlot([&](RowId id, size_t slot) {
    if (PassesAll(predicates, slot)) out.push_back(id);
  });
  return out;
}

Result<std::vector<AggGroup>> ColumnStore::AggregateScan(
    const std::vector<ColPredicate>& predicates,
    const std::vector<size_t>& group_by,
    const std::vector<AggSpec>& aggs) const {
  for (const AggSpec& a : aggs) {
    if (a.fn == AggSpec::Fn::kCountStar) continue;
    if (a.column >= columns_.size()) {
      return Status::Internal("columnar aggregate: bad column index");
    }
    if ((a.fn == AggSpec::Fn::kSum || a.fn == AggSpec::Fn::kAvg) &&
        IsText(columns_[a.column].type)) {
      return Status::InvalidArgument("SUM/AVG over non-numeric column");
    }
  }

  std::map<std::string, size_t> group_index;
  std::vector<GroupState> groups;
  std::string key;
  ForEachLiveSlot([&](RowId /*id*/, size_t slot) {
    if (!PassesAll(predicates, slot)) return;
    key.clear();
    for (size_t col : group_by) {
      const Column& c = columns_[col];
      bool cell_null = GetBit(c.null_bits, slot);
      if (IsText(c.type)) {
        AppendKeyFragment(cell_null, /*numeric=*/false, 0,
                          cell_null ? std::string_view() : TextAt(c, slot),
                          &key);
      } else {
        double num = cell_null ? 0
                     : IsFixedInt(c.type)
                         ? static_cast<double>(c.ints[slot])
                         : c.doubles[slot];
        AppendKeyFragment(cell_null, /*numeric=*/true, num, {}, &key);
      }
    }
    auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      GroupState state;
      state.first_slot = slot;
      state.accs.resize(aggs.size());
      groups.push_back(std::move(state));
    }
    GroupState& g = groups[it->second];
    ++g.count;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggSpec& a = aggs[i];
      if (a.fn == AggSpec::Fn::kCountStar) continue;
      const Column& c = columns_[a.column];
      if (GetBit(c.null_bits, slot)) continue;  // aggregates skip NULLs
      AggAcc& acc = g.accs[i];
      ++acc.non_null;
      switch (a.fn) {
        case AggSpec::Fn::kCount:
          break;
        case AggSpec::Fn::kSum:
        case AggSpec::Fn::kAvg: {
          if (c.type == DataType::kDouble) {
            acc.all_int = false;
            acc.sum += c.doubles[slot];
          } else {
            acc.sum += static_cast<double>(c.ints[slot]);
            acc.isum += c.ints[slot];
          }
          break;
        }
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax: {
          bool better;
          if (IsText(c.type)) {
            std::string_view text = TextAt(c, slot);
            if (!acc.has_extreme) {
              better = true;
            } else {
              int cmp = text.compare(acc.extreme_text);
              better = a.fn == AggSpec::Fn::kMin ? cmp < 0 : cmp > 0;
            }
            if (better) {
              acc.extreme_text.assign(text);
              acc.extreme_slot = slot;
            }
          } else if (IsFixedInt(c.type)) {
            // Integer columns compare exactly — a double track would tie
            // distinct values past 2^53 (see Value::Compare).
            int64_t num = c.ints[slot];
            if (!acc.has_extreme) {
              better = true;
            } else {
              better = a.fn == AggSpec::Fn::kMin ? num < acc.extreme_int
                                                 : num > acc.extreme_int;
            }
            if (better) {
              acc.extreme_int = num;
              acc.extreme_numeric = true;
              acc.extreme_slot = slot;
            }
          } else {
            double num = c.doubles[slot];
            if (!acc.has_extreme) {
              better = true;
            } else {
              better = a.fn == AggSpec::Fn::kMin ? num < acc.extreme_num
                                                 : num > acc.extreme_num;
            }
            if (better) {
              acc.extreme_num = num;
              acc.extreme_numeric = true;
              acc.extreme_slot = slot;
            }
          }
          acc.has_extreme = true;
          break;
        }
        default:
          break;
      }
    }
  });

  // Zero matching rows without GROUP BY still aggregates once.
  if (group_by.empty() && groups.empty()) {
    GroupState state;
    state.accs.resize(aggs.size());
    state.first_slot = SIZE_MAX;
    groups.push_back(std::move(state));
  }

  std::vector<AggGroup> out;
  out.reserve(groups.size());
  for (const GroupState& g : groups) {
    AggGroup group;
    if (g.count == 0) {
      group.first_row.assign(columns_.size(), Value::Null());
    } else {
      MaterialiseRow(g.first_slot, &group.first_row);
    }
    group.aggregates.reserve(aggs.size());
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggSpec& a = aggs[i];
      const AggAcc& acc = g.accs[i];
      switch (a.fn) {
        case AggSpec::Fn::kCountStar:
          group.aggregates.push_back(
              Value::Integer(static_cast<int64_t>(g.count)));
          break;
        case AggSpec::Fn::kCount:
          group.aggregates.push_back(
              Value::Integer(static_cast<int64_t>(acc.non_null)));
          break;
        case AggSpec::Fn::kSum:
          if (acc.non_null == 0) {
            group.aggregates.push_back(Value::Null());
          } else {
            group.aggregates.push_back(
                FinishSum(acc.all_int, acc.isum, acc.sum));
          }
          break;
        case AggSpec::Fn::kAvg:
          if (acc.non_null == 0) {
            group.aggregates.push_back(Value::Null());
          } else {
            group.aggregates.push_back(
                FinishAvg(acc.all_int, acc.isum, acc.sum,
                          static_cast<int64_t>(acc.non_null)));
          }
          break;
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          if (!acc.has_extreme) {
            group.aggregates.push_back(Value::Null());
          } else {
            group.aggregates.push_back(
                MaterialiseCell(columns_[a.column], acc.extreme_slot));
          }
          break;
      }
    }
    out.push_back(std::move(group));
  }
  return out;
}

size_t ColumnStore::ApproxBytes() const {
  size_t bytes = 0;
  for (const Column& c : columns_) {
    bytes += c.ints.capacity() * sizeof(int64_t) +
             c.doubles.capacity() * sizeof(double) +
             c.text_off.capacity() * sizeof(uint32_t) +
             c.text_len.capacity() * sizeof(uint32_t) + c.arena.capacity() +
             c.null_bits.capacity() * sizeof(uint64_t);
  }
  bytes += slot_ids_.capacity() * sizeof(RowId) +
           live_bits_.capacity() * sizeof(uint64_t) +
           slot_of_.size() * (sizeof(RowId) + sizeof(uint32_t) + 48);
  return bytes;
}

}  // namespace easia::db::store
