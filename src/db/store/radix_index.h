#ifndef EASIA_DB_STORE_RADIX_INDEX_H_
#define EASIA_DB_STORE_RADIX_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace easia::db::store {

/// Compressed radix (patricia) trie over the raw bytes of a TEXT column,
/// mapping each stored value to the RowIds that hold it. Powers
/// `LIKE 'abc%'` pushdown and the /typeahead name lookup, mirroring the
/// star-catalogue name cross-index pattern: prefix lookups walk at most
/// `prefix.size()` edges and then enumerate one subtree, independent of
/// table size.
///
/// Not thread-safe; the owning Table is guarded by the database statement
/// gate like every other index.
class RadixIndex {
 public:
  RadixIndex();

  RadixIndex(const RadixIndex&) = delete;
  RadixIndex& operator=(const RadixIndex&) = delete;
  RadixIndex(RadixIndex&&) = default;
  RadixIndex& operator=(RadixIndex&&) = default;

  /// Adds `id` under `key`. Duplicate (key, id) pairs are ignored.
  void Insert(std::string_view key, uint64_t id);

  /// Removes one (key, id) pair; no-op when absent. Emptied leaves are
  /// pruned and single-child chains re-compressed so the trie never grows
  /// monotonically under churn.
  void Remove(std::string_view key, uint64_t id);

  /// RowIds of every key that starts with `prefix`, ascending. An empty
  /// prefix enumerates every indexed row.
  std::vector<uint64_t> PrefixRowIds(std::string_view prefix) const;

  /// Distinct stored values starting with `prefix`, in lexicographic
  /// (byte) order, at most `limit` of them (0 = unlimited).
  std::vector<std::string> PrefixValues(std::string_view prefix,
                                        size_t limit) const;

  struct Stats {
    size_t nodes = 0;    // trie nodes, including the root
    size_t bytes = 0;    // approximate heap footprint
    size_t entries = 0;  // (key, id) pairs
  };
  Stats GetStats() const;

  size_t entries() const { return entries_; }

  void Clear();

 private:
  struct Node {
    /// Compressed edge label from the parent (empty only for the root).
    std::string edge;
    /// RowIds whose value ends exactly at this node, sorted ascending.
    std::vector<uint64_t> rows;
    /// Children sorted by the first byte of their edge (all distinct).
    std::vector<std::unique_ptr<Node>> children;
  };

  static void CollectRows(const Node& node, std::vector<uint64_t>* out);
  static void CollectValues(const Node& node, std::string* scratch,
                            size_t limit, std::vector<std::string>* out);
  static void AccountNode(const Node& node, Stats* stats);

  /// Child of `node` whose edge starts with byte `b`, else null.
  static Node* FindChild(const Node& node, char b);

  Node root_;
  size_t node_count_ = 1;
  size_t entries_ = 0;
};

}  // namespace easia::db::store

#endif  // EASIA_DB_STORE_RADIX_INDEX_H_
