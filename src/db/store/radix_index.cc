#include "db/store/radix_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace easia::db::store {
namespace {

/// Length of the shared prefix of `a` and `b`.
size_t CommonPrefix(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

RadixIndex::RadixIndex() = default;

RadixIndex::Node* RadixIndex::FindChild(const Node& node, char b) {
  // Children are few (distinct first bytes); linear scan beats binary
  // search bookkeeping at this fan-out and keeps insertion simple.
  for (const auto& child : node.children) {
    if (!child->edge.empty() && child->edge[0] == b) return child.get();
  }
  return nullptr;
}

void RadixIndex::Insert(std::string_view key, uint64_t id) {
  Node* node = &root_;
  std::string_view rest = key;
  while (true) {
    if (rest.empty()) {
      auto it = std::lower_bound(node->rows.begin(), node->rows.end(), id);
      if (it != node->rows.end() && *it == id) return;  // duplicate pair
      node->rows.insert(it, id);
      ++entries_;
      return;
    }
    Node* child = FindChild(*node, rest[0]);
    if (child == nullptr) {
      auto leaf = std::make_unique<Node>();
      leaf->edge.assign(rest);
      leaf->rows.push_back(id);
      // Keep children ordered by first byte for lexicographic walks.
      auto pos = std::upper_bound(
          node->children.begin(), node->children.end(), leaf,
          [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
            return static_cast<unsigned char>(a->edge[0]) <
                   static_cast<unsigned char>(b->edge[0]);
          });
      node->children.insert(pos, std::move(leaf));
      ++node_count_;
      ++entries_;
      return;
    }
    size_t shared = CommonPrefix(rest, child->edge);
    if (shared < child->edge.size()) {
      // Split the child's edge: child keeps the tail under a new
      // intermediate node that owns the shared head.
      auto tail = std::make_unique<Node>();
      tail->edge = child->edge.substr(shared);
      tail->rows = std::move(child->rows);
      tail->children = std::move(child->children);
      child->edge.resize(shared);
      child->rows.clear();
      child->children.clear();
      child->children.push_back(std::move(tail));
      ++node_count_;
    }
    rest.remove_prefix(shared);
    node = child;
  }
}

void RadixIndex::Remove(std::string_view key, uint64_t id) {
  // Collect the path so emptied nodes can be pruned bottom-up.
  std::vector<Node*> path = {&root_};
  Node* node = &root_;
  std::string_view rest = key;
  while (!rest.empty()) {
    Node* child = FindChild(*node, rest[0]);
    if (child == nullptr) return;  // key absent
    size_t shared = CommonPrefix(rest, child->edge);
    if (shared < child->edge.size()) return;  // key absent
    rest.remove_prefix(shared);
    node = child;
    path.push_back(node);
  }
  auto it = std::lower_bound(node->rows.begin(), node->rows.end(), id);
  if (it == node->rows.end() || *it != id) return;  // pair absent
  node->rows.erase(it);
  --entries_;

  // Prune empty leaves and re-merge single-child pass-through nodes so
  // delete-heavy churn cannot grow the trie without bound.
  for (size_t depth = path.size(); depth-- > 1;) {
    Node* current = path[depth];
    Node* parent = path[depth - 1];
    if (current->rows.empty() && current->children.empty()) {
      for (auto child_it = parent->children.begin();
           child_it != parent->children.end(); ++child_it) {
        if (child_it->get() == current) {
          parent->children.erase(child_it);
          --node_count_;
          break;
        }
      }
    } else if (current->rows.empty() && current->children.size() == 1) {
      std::unique_ptr<Node> only = std::move(current->children.front());
      current->children.clear();
      current->edge += only->edge;
      current->rows = std::move(only->rows);
      current->children = std::move(only->children);
      --node_count_;
    }
  }
}

void RadixIndex::CollectRows(const Node& node, std::vector<uint64_t>* out) {
  out->insert(out->end(), node.rows.begin(), node.rows.end());
  for (const auto& child : node.children) CollectRows(*child, out);
}

std::vector<uint64_t> RadixIndex::PrefixRowIds(std::string_view prefix) const {
  const Node* node = &root_;
  std::string_view rest = prefix;
  while (!rest.empty()) {
    const Node* child = FindChild(*node, rest[0]);
    if (child == nullptr) return {};
    size_t shared = CommonPrefix(rest, child->edge);
    if (shared < rest.size() && shared < child->edge.size()) return {};
    rest.remove_prefix(shared);
    node = child;
  }
  std::vector<uint64_t> out;
  CollectRows(*node, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void RadixIndex::CollectValues(const Node& node, std::string* scratch,
                               size_t limit, std::vector<std::string>* out) {
  if (limit != 0 && out->size() >= limit) return;
  scratch->append(node.edge);
  if (!node.rows.empty()) out->push_back(*scratch);
  for (const auto& child : node.children) {
    if (limit != 0 && out->size() >= limit) break;
    CollectValues(*child, scratch, limit, out);
  }
  scratch->resize(scratch->size() - node.edge.size());
}

std::vector<std::string> RadixIndex::PrefixValues(std::string_view prefix,
                                                  size_t limit) const {
  const Node* node = &root_;
  std::string matched;
  std::string_view rest = prefix;
  while (!rest.empty()) {
    const Node* child = FindChild(*node, rest[0]);
    if (child == nullptr) return {};
    size_t shared = CommonPrefix(rest, child->edge);
    if (shared < rest.size() && shared < child->edge.size()) return {};
    rest.remove_prefix(shared);
    node = child;
    matched += node->edge;
  }
  // `matched` already includes the final node's full edge, so walk its
  // subtree with the edge stripped from the scratch prefix.
  std::vector<std::string> out;
  std::string scratch = matched.substr(0, matched.size() - node->edge.size());
  if (node == &root_) scratch.clear();
  CollectValues(*node, &scratch, limit, &out);
  return out;
}

void RadixIndex::AccountNode(const Node& node, Stats* stats) {
  ++stats->nodes;
  stats->bytes += sizeof(Node) + node.edge.capacity() +
                  node.rows.capacity() * sizeof(uint64_t) +
                  node.children.capacity() * sizeof(std::unique_ptr<Node>);
  stats->entries += node.rows.size();
  for (const auto& child : node.children) AccountNode(*child, stats);
}

RadixIndex::Stats RadixIndex::GetStats() const {
  Stats stats;
  AccountNode(root_, &stats);
  assert(stats.nodes == node_count_);
  assert(stats.entries == entries_);
  return stats;
}

void RadixIndex::Clear() {
  root_.children.clear();
  root_.rows.clear();
  node_count_ = 1;
  entries_ = 0;
}

}  // namespace easia::db::store
