#ifndef EASIA_DB_STORE_COLUMN_PAGE_H_
#define EASIA_DB_STORE_COLUMN_PAGE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/schema.h"
#include "db/value.h"

namespace easia::db {

// Shared row aliases (identical to the declarations in db/table.h; store
// headers cannot include table.h because Table embeds store types).
using Row = std::vector<Value>;
using RowId = uint64_t;

namespace store {

/// One pushed predicate in kernel form: `column <op> literal`, IS [NOT]
/// NULL, or LIKE. Literals are pre-checked by the planner to match the
/// column's storage family, so kernels never hit mixed-kind comparisons.
struct ColPredicate {
  enum class Op {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kIsNull,
    kIsNotNull,
    kLike,
    kNotLike,
  };
  size_t column = 0;
  Op op = Op::kEq;
  Value literal;  // unused for IS [NOT] NULL
};

/// One aggregate function in kernel form.
struct AggSpec {
  enum class Fn { kCountStar, kCount, kSum, kMin, kMax, kAvg };
  Fn fn = Fn::kCountStar;
  size_t column = 0;  // unused for kCountStar
};

/// One output group of AggregateScan, in first-seen row order.
struct AggGroup {
  /// The group's first member fully materialised (the executor evaluates
  /// non-aggregate select items against it, matching row-path semantics).
  /// All-NULL for the zero-row global group.
  Row first_row;
  std::vector<Value> aggregates;  // one per AggSpec, in order
};

/// Columnar table storage: one typed array per column (fixed-width int64
/// and double vectors, arena-backed text with offset/length pairs) plus a
/// null bitmap and a liveness bitmap, in the spirit of the scan-oriented
/// catalogue stores behind SDSS-scale archives. Slots are append-only;
/// UPDATE overwrites fixed-width cells in place and appends text bytes,
/// DELETE tombstones the slot. The arena is not compacted — acceptable for
/// an ingest-mostly scientific catalogue.
///
/// Scan kernels (FilterScan / AggregateScan) run over the raw arrays
/// without materialising Values, which is where the columnar layout pays:
/// the row path pays a Row materialisation plus expression-tree walk per
/// row, the kernels pay a branch and a comparison per cell.
class ColumnStore {
 public:
  explicit ColumnStore(const TableDef& def);

  /// Appends a row under `id`. The row must be fully coerced to the table's
  /// column types (Table validates before calling).
  Status Append(RowId id, const Row& row);
  Status Update(RowId id, const Row& row);
  Status Delete(RowId id);

  bool Contains(RowId id) const { return slot_of_.count(id) > 0; }
  Result<Row> Get(RowId id) const;
  size_t LiveRows() const { return slot_of_.size(); }

  /// Visits live rows in ascending RowId order (the row-store scan order).
  void ForEachRow(const std::function<void(RowId, const Row&)>& fn) const;

  /// RowIds of live rows satisfying every predicate, ascending. With no
  /// predicates this is a full scan of live rows.
  std::vector<RowId> FilterScan(
      const std::vector<ColPredicate>& predicates) const;

  /// Grouped aggregation over rows satisfying every predicate, groups in
  /// first-seen order (ascending RowId of first member). With an empty
  /// `group_by`, returns exactly one global group even when no row
  /// matches (zero-row aggregate semantics: COUNT = 0, SUM/AVG/MIN/MAX =
  /// NULL), mirroring the executor's row-path behaviour.
  Result<std::vector<AggGroup>> AggregateScan(
      const std::vector<ColPredicate>& predicates,
      const std::vector<size_t>& group_by,
      const std::vector<AggSpec>& aggs) const;

  /// Approximate heap footprint of the column arrays + bitmaps + arena.
  size_t ApproxBytes() const;

 private:
  /// One column's storage. Exactly one payload vector is populated,
  /// chosen by the storage family of `type`.
  struct Column {
    DataType type = DataType::kVarchar;
    std::vector<int64_t> ints;        // kInteger / kTimestamp
    std::vector<double> doubles;      // kDouble
    std::vector<uint32_t> text_off;   // string kinds: arena offset
    std::vector<uint32_t> text_len;   // string kinds: byte length
    std::string arena;                // string kinds: payload bytes
    std::vector<uint64_t> null_bits;  // bit set = NULL
  };

  static bool IsFixedInt(DataType t) {
    return t == DataType::kInteger || t == DataType::kTimestamp;
  }
  static bool IsText(DataType t) {
    return !(IsFixedInt(t) || t == DataType::kDouble);
  }

  static bool GetBit(const std::vector<uint64_t>& words, size_t i);
  static void SetBit(std::vector<uint64_t>* words, size_t i, bool value);

  std::string_view TextAt(const Column& c, size_t slot) const {
    return std::string_view(c.arena).substr(c.text_off[slot],
                                            c.text_len[slot]);
  }
  Value MaterialiseCell(const Column& c, size_t slot) const;
  void MaterialiseRow(size_t slot, Row* row) const;
  Status WriteCell(Column* c, size_t slot, const Value& v, bool append);

  bool SlotLive(size_t slot) const { return GetBit(live_bits_, slot); }
  /// Evaluates one kernel predicate at `slot` with SQL three-valued logic
  /// collapsed to accept/reject (NULL comparisons reject, as in the
  /// executor's IsTruthy gate).
  bool EvalPredicate(const ColPredicate& p, size_t slot) const;
  bool PassesAll(const std::vector<ColPredicate>& preds, size_t slot) const;

  /// Visits live slots in ascending RowId order.
  template <typename Fn>
  void ForEachLiveSlot(Fn&& fn) const;

  std::vector<Column> columns_;
  std::vector<RowId> slot_ids_;       // slot -> RowId
  std::vector<uint64_t> live_bits_;   // bit set = live
  /// Live rows only. Point lookups dominate (Append/Update/Delete/Get);
  /// the one ordered traversal (ForEachLiveSlot's non-monotonic fallback)
  /// sorts a scratch copy instead of paying a tree walk per insert.
  std::unordered_map<RowId, uint32_t> slot_of_;
  /// True while slots were appended in ascending RowId order, letting the
  /// kernels scan arrays linearly instead of chasing the map.
  bool slots_monotonic_ = true;
};

}  // namespace store
}  // namespace easia::db

#endif  // EASIA_DB_STORE_COLUMN_PAGE_H_
