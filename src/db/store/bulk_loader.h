#ifndef EASIA_DB_STORE_BULK_LOADER_H_
#define EASIA_DB_STORE_BULK_LOADER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "db/schema.h"
#include "db/store/column_page.h"

namespace easia::db::store {

/// Binary bulk-ingest file format behind `COPY <table> FROM '<path>'`:
///
///   "EASIABULK1"                          magic
///   u32 column_count
///   column_count x { length-prefixed name, u8 DataType }
///   repeated chunks:
///     u32 crc32(payload)
///     length-prefixed payload = u32 row_count + row_count x EncodeRow
///
/// Rows are pre-encoded in the WAL's row encoding, so ingest skips SQL
/// parsing entirely: the loader decodes straight into Row vectors and the
/// executor writes one batch WAL record per chunk. Chunks are individually
/// checksummed; unlike the WAL, a torn or corrupt chunk is an error (bulk
/// files are written atomically, not appended).
inline constexpr std::string_view kBulkMagic = "EASIABULK1";

/// Default rows per chunk; one WAL record and one commit per chunk.
inline constexpr size_t kDefaultChunkRows = 1024;

/// A parsed bulk file: the column header plus decoded row chunks.
struct BulkFile {
  std::vector<std::string> columns;
  std::vector<DataType> types;
  std::vector<std::vector<Row>> chunks;

  size_t total_rows() const {
    size_t n = 0;
    for (const auto& chunk : chunks) n += chunk.size();
    return n;
  }
};

/// Serialises `rows` for table `def` into the bulk format,
/// `chunk_rows` rows per chunk (0 falls back to kDefaultChunkRows).
std::string SerializeBulk(const TableDef& def, const std::vector<Row>& rows,
                          size_t chunk_rows);

/// SerializeBulk + atomic write through the Env seam.
Status WriteBulkFile(io::Env* env, const std::string& path,
                     const TableDef& def, const std::vector<Row>& rows,
                     size_t chunk_rows);

Result<BulkFile> ParseBulk(std::string_view contents);

Result<BulkFile> ReadBulkFile(io::Env* env, const std::string& path);

}  // namespace easia::db::store

#endif  // EASIA_DB_STORE_BULK_LOADER_H_
