#include "db/schema.h"

#include "common/string_util.h"

namespace easia::db {

std::string DatalinkOptions::ToSql() const {
  std::string out = "DATALINK LINKTYPE URL";
  out += file_link_control ? " FILE LINK CONTROL" : " NO FILE LINK CONTROL";
  if (file_link_control) {
    switch (integrity) {
      case Integrity::kNone:
        break;
      case Integrity::kSelective:
        out += " INTEGRITY SELECTIVE";
        break;
      case Integrity::kAll:
        out += " INTEGRITY ALL";
        break;
    }
    out += read_permission == ReadPermission::kDb ? " READ PERMISSION DB"
                                                  : " READ PERMISSION FS";
    out += write_permission == WritePermission::kBlocked
               ? " WRITE PERMISSION BLOCKED"
               : " WRITE PERMISSION FS";
    out += recovery == Recovery::kYes ? " RECOVERY YES" : " RECOVERY NO";
    switch (on_unlink) {
      case OnUnlink::kNone:
        break;
      case OnUnlink::kRestore:
        out += " ON UNLINK RESTORE";
        break;
      case OnUnlink::kDelete:
        out += " ON UNLINK DELETE";
        break;
    }
  }
  return out;
}

std::string ColumnDef::ToSql() const {
  std::string out = name + " ";
  if (type == DataType::kDatalink && datalink.has_value()) {
    out += datalink->ToSql();
  } else {
    out += DataTypeName(type);
    if (type == DataType::kVarchar && size > 0) {
      out += StrPrintf("(%zu)", size);
    }
  }
  if (not_null) out += " NOT NULL";
  return out;
}

Result<size_t> TableDef::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, column_name)) return i;
  }
  return Status::NotFound("no column '" + std::string(column_name) +
                          "' in table " + name);
}

const ColumnDef* TableDef::FindColumn(std::string_view column_name) const {
  for (const ColumnDef& c : columns) {
    if (EqualsIgnoreCase(c.name, column_name)) return &c;
  }
  return nullptr;
}

bool TableDef::IsPrimaryKeyColumn(std::string_view column_name) const {
  for (const std::string& pk : primary_key) {
    if (EqualsIgnoreCase(pk, column_name)) return true;
  }
  return false;
}

std::string TableDef::ToSql() const {
  std::string out = "CREATE TABLE " + name + " (\n";
  for (size_t i = 0; i < columns.size(); ++i) {
    out += "  " + columns[i].ToSql();
    if (i + 1 < columns.size() || !primary_key.empty() ||
        !foreign_keys.empty() || !unique_constraints.empty()) {
      out += ",";
    }
    out += "\n";
  }
  if (!primary_key.empty()) {
    out += "  PRIMARY KEY (" + Join(primary_key, ", ") + ")";
    out += (!foreign_keys.empty() || !unique_constraints.empty()) ? ",\n"
                                                                  : "\n";
  }
  for (size_t i = 0; i < foreign_keys.size(); ++i) {
    const ForeignKeyDef& fk = foreign_keys[i];
    out += "  FOREIGN KEY (" + Join(fk.columns, ", ") + ") REFERENCES " +
           fk.ref_table + " (" + Join(fk.ref_columns, ", ") + ")";
    out += (i + 1 < foreign_keys.size() || !unique_constraints.empty())
               ? ",\n"
               : "\n";
  }
  for (size_t i = 0; i < unique_constraints.size(); ++i) {
    out += "  UNIQUE (" + Join(unique_constraints[i], ", ") + ")";
    out += i + 1 < unique_constraints.size() ? ",\n" : "\n";
  }
  out += ")";
  if (columnar) out += " STORE COLUMNAR";
  if (partitions > 0) {
    out += " PARTITION BY HASH(" + partition_by + ") PARTITIONS " +
           std::to_string(partitions);
  }
  return out;
}

Status Catalog::AddTable(TableDef def) {
  std::string key = ToUpper(def.name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table " + def.name + " already exists");
  }
  // Validate FK targets.
  for (const ForeignKeyDef& fk : def.foreign_keys) {
    if (fk.columns.size() != fk.ref_columns.size()) {
      return Status::InvalidArgument(
          "foreign key column count mismatch in table " + def.name);
    }
    // Self-references are allowed; otherwise the target must exist already.
    if (!EqualsIgnoreCase(fk.ref_table, def.name)) {
      auto it = tables_.find(ToUpper(fk.ref_table));
      if (it == tables_.end()) {
        return Status::NotFound("foreign key in " + def.name +
                                " references unknown table " + fk.ref_table);
      }
      for (const std::string& rc : fk.ref_columns) {
        if (it->second.FindColumn(rc) == nullptr) {
          return Status::NotFound("foreign key references unknown column " +
                                  fk.ref_table + "." + rc);
        }
      }
    }
    for (const std::string& c : fk.columns) {
      if (def.FindColumn(c) == nullptr) {
        return Status::NotFound("foreign key uses unknown column " +
                                def.name + "." + c);
      }
    }
  }
  for (const std::string& pk : def.primary_key) {
    if (def.FindColumn(pk) == nullptr) {
      return Status::NotFound("primary key uses unknown column " + def.name +
                              "." + pk);
    }
  }
  if (def.partitions > 0) {
    // Hash partitioning routes every row by one value that UPDATE cannot
    // silently reroute past the unique check and that FindUnique can
    // locate — exactly the single-column primary key.
    if (def.primary_key.size() != 1 ||
        !EqualsIgnoreCase(def.primary_key[0], def.partition_by)) {
      return Status::InvalidArgument(
          "PARTITION BY HASH column " + def.partition_by + " in table " +
          def.name + " must be the table's single primary-key column");
    }
  }
  tables_.emplace(std::move(key), std::move(def));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToUpper(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  // Refuse to drop a table other tables reference.
  for (const auto& [other_key, other] : tables_) {
    if (other_key == key) continue;
    for (const ForeignKeyDef& fk : other.foreign_keys) {
      if (EqualsIgnoreCase(fk.ref_table, name)) {
        return Status::FailedPrecondition("table " + name +
                                          " is referenced by " + other.name);
      }
    }
  }
  tables_.erase(it);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToUpper(name)) != 0;
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, def] : tables_) out.push_back(def.name);
  return out;
}

std::vector<InboundReference> Catalog::ReferencesTo(
    const std::string& table, const std::string& column) const {
  std::vector<InboundReference> out;
  for (const auto& [key, def] : tables_) {
    for (const ForeignKeyDef& fk : def.foreign_keys) {
      if (!EqualsIgnoreCase(fk.ref_table, table)) continue;
      for (size_t i = 0; i < fk.ref_columns.size(); ++i) {
        if (EqualsIgnoreCase(fk.ref_columns[i], column)) {
          out.push_back({def.name, fk.columns[i]});
        }
      }
    }
  }
  return out;
}

const ForeignKeyDef* Catalog::ForeignKeyOn(const std::string& table,
                                           const std::string& column) const {
  auto it = tables_.find(ToUpper(table));
  if (it == tables_.end()) return nullptr;
  for (const ForeignKeyDef& fk : it->second.foreign_keys) {
    if (!fk.columns.empty() && EqualsIgnoreCase(fk.columns[0], column)) {
      return &fk;
    }
  }
  return nullptr;
}

}  // namespace easia::db
