#include "db/planner.h"

#include <map>
#include <optional>
#include <set>

#include "common/string_util.h"

namespace easia::db {

namespace {

/// Flattens the top-level AND tree of `expr` into conjuncts. Splitting is
/// sound under SQL three-valued logic: AND(a, b) is truthy iff both a and b
/// are truthy, so filtering by each conjunct in turn rejects exactly the
/// same rows as filtering by the conjunction.
void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == Expr::Op::kAnd) {
    SplitConjuncts(*expr.left, out);
    SplitConjuncts(*expr.right, out);
    return;
  }
  out->push_back(&expr);
}

/// Column namespace of the FROM list used to decide which tables a
/// predicate touches.
struct AliasSchema {
  std::string alias;
  const Table* table;
};

/// Resolves one column reference to the FROM entry that owns it. Returns
/// nullopt when the reference is unknown or ambiguous — the caller then
/// refuses to move the enclosing conjunct, so the executor surfaces the
/// same error the unplanned path would.
std::optional<size_t> ResolveAlias(const std::vector<AliasSchema>& aliases,
                                   const std::string& table,
                                   const std::string& column) {
  std::optional<size_t> found;
  for (size_t i = 0; i < aliases.size(); ++i) {
    if (!table.empty() && !EqualsIgnoreCase(aliases[i].alias, table)) {
      continue;
    }
    if (aliases[i].table->def().FindColumn(column) == nullptr) continue;
    if (found.has_value()) return std::nullopt;  // ambiguous
    found = i;
  }
  return found;
}

/// Collects the set of FROM entries referenced by `expr` into `out`.
/// Returns false when any reference fails to resolve uniquely.
bool CollectAliases(const Expr& expr, const std::vector<AliasSchema>& aliases,
                    std::set<size_t>* out) {
  if (expr.kind == Expr::Kind::kColumn) {
    std::optional<size_t> idx = ResolveAlias(aliases, expr.table, expr.column);
    if (!idx.has_value()) return false;
    out->insert(*idx);
    return true;
  }
  if (expr.left != nullptr && !CollectAliases(*expr.left, aliases, out)) {
    return false;
  }
  if (expr.right != nullptr && !CollectAliases(*expr.right, aliases, out)) {
    return false;
  }
  for (const auto& a : expr.args) {
    if (!CollectAliases(*a, aliases, out)) return false;
  }
  return true;
}

/// A conjunct awaiting placement, with the FROM entries it references.
struct Conjunct {
  const Expr* expr;
  std::set<size_t> aliases;
  /// ON conjuncts may not float ahead of their join (the unplanned
  /// executor evaluates them there); WHERE conjuncts have no floor.
  size_t min_join = 0;
  bool placed = false;
};

/// True when `expr` is `column = literal` (either side order) over the
/// given FROM entry; fills the column name and literal.
bool MatchColumnEqualsLiteral(const Expr& expr,
                              const std::vector<AliasSchema>& aliases,
                              size_t alias_index, std::string* column,
                              Value* literal) {
  if (expr.kind != Expr::Kind::kBinary || expr.op != Expr::Op::kEq) {
    return false;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  for (const Expr* side : {expr.left.get(), expr.right.get()}) {
    if (side->kind == Expr::Kind::kColumn) col = side;
    if (side->kind == Expr::Kind::kLiteral) lit = side;
  }
  if (col == nullptr || lit == nullptr || lit->literal.is_null()) {
    return false;
  }
  std::optional<size_t> owner = ResolveAlias(aliases, col->table, col->column);
  if (!owner.has_value() || *owner != alias_index) return false;
  *column = col->column;
  *literal = lit->literal;
  return true;
}

/// Hash-join keys must agree with the executor's equality semantics:
/// Value::Compare treats numeric kinds as one family and string kinds as
/// another, and Value::ToKeyString (the hash key) mirrors exactly that
/// split. Mixed numeric/string comparisons fall back to display-form
/// equality, which ToKeyString does not model — such pairs stay in the
/// nested-loop/residual path.
bool HashComparable(DataType a, DataType b) {
  auto numeric = [](DataType t) {
    return t == DataType::kInteger || t == DataType::kDouble ||
           t == DataType::kTimestamp;
  };
  return (numeric(a) && numeric(b)) || (!numeric(a) && !numeric(b));
}

/// True when `expr` is `x = y` with bare hash-comparable column refs on
/// both sides, one resolving to `right_index` and the other to an earlier
/// FROM entry. Orients the pair as (left expr, right expr).
bool MatchEquiJoin(const Expr& expr, const std::vector<AliasSchema>& aliases,
                   size_t right_index, const Expr** left_key,
                   const Expr** right_key) {
  if (expr.kind != Expr::Kind::kBinary || expr.op != Expr::Op::kEq) {
    return false;
  }
  if (expr.left->kind != Expr::Kind::kColumn ||
      expr.right->kind != Expr::Kind::kColumn) {
    return false;
  }
  std::optional<size_t> a =
      ResolveAlias(aliases, expr.left->table, expr.left->column);
  std::optional<size_t> b =
      ResolveAlias(aliases, expr.right->table, expr.right->column);
  if (!a.has_value() || !b.has_value()) return false;
  const Expr* left = nullptr;
  const Expr* right = nullptr;
  if (*a < right_index && *b == right_index) {
    left = expr.left.get();
    right = expr.right.get();
  } else if (*b < right_index && *a == right_index) {
    left = expr.right.get();
    right = expr.left.get();
  } else {
    return false;
  }
  auto column_type = [&](const Expr* col, size_t idx) {
    return aliases[idx].table->def().FindColumn(col->column)->type;
  };
  size_t left_idx = (left == expr.left.get()) ? *a : *b;
  if (!HashComparable(column_type(left, left_idx),
                      column_type(right, right_index))) {
    return false;
  }
  *left_key = left;
  *right_key = right;
  return true;
}

/// Picks the access path for one scan from its pushed-down equality
/// predicates: a unique index whose columns are all pinned beats a
/// secondary (FK) index beats a sequential scan.
void ChooseAccessPath(ScanPlan* scan,
                      const std::vector<AliasSchema>& aliases,
                      size_t alias_index) {
  // Equality predicates available on this table, by upper-cased column.
  std::map<std::string, Value> equalities;
  for (const Expr* e : scan->pushed) {
    std::string column;
    Value literal;
    if (MatchColumnEqualsLiteral(*e, aliases, alias_index, &column,
                                 &literal)) {
      equalities.emplace(ToUpper(column), std::move(literal));
    }
  }
  if (equalities.empty()) return;
  const TableDef& def = scan->table->def();
  auto try_index = [&](const std::vector<std::string>& columns,
                       ScanPlan::Access access) {
    std::vector<Value> key;
    for (const std::string& col : columns) {
      auto it = equalities.find(ToUpper(col));
      if (it == equalities.end()) return false;
      const ColumnDef* cdef = def.FindColumn(col);
      if (cdef == nullptr) return false;
      // Coerce the literal so index keys agree with stored values. A
      // literal that cannot coerce (e.g. 'abc' against INTEGER) can still
      // be display-equal to nothing, so a plain scan handles it.
      Result<Value> coerced = it->second.CoerceTo(cdef->type);
      if (!coerced.ok()) return false;
      key.push_back(std::move(*coerced));
    }
    scan->access = access;
    scan->index_columns = columns;
    scan->key_values = std::move(key);
    return true;
  };
  for (const std::vector<std::string>& columns :
       scan->table->UniqueIndexColumns()) {
    if (try_index(columns, ScanPlan::Access::kUniqueLookup)) return;
  }
  for (const std::vector<std::string>& columns :
       scan->table->SecondaryIndexColumns()) {
    if (try_index(columns, ScanPlan::Access::kIndexScan)) return;
  }
}

std::string DescribeExprList(const std::vector<const Expr*>& exprs) {
  std::vector<std::string> parts;
  for (const Expr* e : exprs) parts.push_back(e->ToString());
  return Join(parts, " AND ");
}

}  // namespace

Result<SelectPlan> PlanSelect(const SelectStmt& stmt,
                              const TableLookup& lookup) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  SelectPlan plan;
  plan.stmt = &stmt;
  std::vector<AliasSchema> aliases;
  for (const TableRef& ref : stmt.from) {
    EASIA_ASSIGN_OR_RETURN(const Table* table, lookup(ref.table));
    aliases.push_back({ref.alias, table});
    ScanPlan scan;
    scan.table = table;
    scan.alias = ref.alias;
    plan.scans.push_back(std::move(scan));
  }
  plan.joins.resize(plan.scans.size() > 0 ? plan.scans.size() - 1 : 0);

  // --- Gather conjuncts from WHERE and every ON condition ---
  std::vector<Conjunct> conjuncts;
  if (stmt.where != nullptr) {
    std::vector<const Expr*> parts;
    SplitConjuncts(*stmt.where, &parts);
    for (const Expr* e : parts) {
      Conjunct c;
      c.expr = e;
      c.min_join = 0;
      if (!CollectAliases(*e, aliases, &c.aliases)) {
        // Unknown/ambiguous reference: leave the conjunct in the final
        // residual so evaluation reports the same error as before.
        plan.residual_where.push_back(e);
        continue;
      }
      conjuncts.push_back(std::move(c));
    }
  }
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    const Expr* cond = stmt.from[i].join_condition.get();
    if (cond == nullptr) continue;
    std::vector<const Expr*> parts;
    SplitConjuncts(*cond, &parts);
    // If any part fails to resolve, or references a table joined later,
    // keep the whole condition at this join (the unplanned executor
    // evaluates it there, over the tables joined so far).
    bool splittable = true;
    std::vector<Conjunct> local;
    for (const Expr* e : parts) {
      Conjunct c;
      c.expr = e;
      c.min_join = i;
      if (!CollectAliases(*e, aliases, &c.aliases) ||
          (!c.aliases.empty() && *c.aliases.rbegin() > i)) {
        splittable = false;
        break;
      }
      local.push_back(std::move(c));
    }
    if (!splittable) {
      plan.joins[i - 1].residual.push_back(cond);
      continue;
    }
    for (Conjunct& c : local) conjuncts.push_back(std::move(c));
  }

  // --- Place conjuncts: scan pushdown, join keys, join/where residual ---
  for (Conjunct& c : conjuncts) {
    if (c.aliases.size() == 1 && c.min_join == 0) {
      plan.scans[*c.aliases.begin()].pushed.push_back(c.expr);
      c.placed = true;
    } else if (c.aliases.size() == 1) {
      // Single-table ON conjunct: push to its scan only when that table is
      // the one being joined (or earlier); pushing earlier than min_join
      // would skip rows the unplanned ON evaluation also skips, so it is
      // always safe for inner joins.
      plan.scans[*c.aliases.begin()].pushed.push_back(c.expr);
      c.placed = true;
    }
  }
  for (Conjunct& c : conjuncts) {
    if (c.placed || c.aliases.empty()) continue;
    size_t last = *c.aliases.rbegin();
    if (last == 0) continue;  // multi-ref over first table only: residual
    const Expr* left_key = nullptr;
    const Expr* right_key = nullptr;
    if (MatchEquiJoin(*c.expr, aliases, last, &left_key, &right_key)) {
      JoinPlan& join = plan.joins[last - 1];
      join.strategy = JoinPlan::Strategy::kHashJoin;
      join.left_keys.push_back(left_key);
      join.right_keys.push_back(right_key);
    } else {
      plan.joins[last - 1].residual.push_back(c.expr);
    }
    c.placed = true;
  }
  for (Conjunct& c : conjuncts) {
    if (!c.placed) {
      // Constant conjuncts (no column refs) and multi-ref conjuncts over
      // the first table land in the final residual.
      if (c.aliases.empty() || *c.aliases.rbegin() == 0) {
        plan.residual_where.push_back(c.expr);
        c.placed = true;
      }
    }
  }

  // --- Access paths ---
  for (size_t i = 0; i < plan.scans.size(); ++i) {
    ChooseAccessPath(&plan.scans[i], aliases, i);
  }

  // --- LIMIT short-circuit ---
  bool aggregate_query = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && item.expr->ContainsAggregate()) {
      aggregate_query = true;
    }
  }
  if (stmt.limit >= 0 && stmt.order_by.empty() && !aggregate_query &&
      !stmt.distinct) {
    plan.row_cutoff = stmt.limit + std::max<int64_t>(stmt.offset, 0);
  }
  return plan;
}

std::vector<std::string> SelectPlan::Describe() const {
  std::vector<std::string> lines;
  for (size_t i = 0; i < scans.size(); ++i) {
    const ScanPlan& scan = scans[i];
    std::string line =
        "scan " + scan.table->def().name + " AS " + scan.alias + ": ";
    switch (scan.access) {
      case ScanPlan::Access::kSeqScan:
        line += "seq scan";
        break;
      case ScanPlan::Access::kUniqueLookup:
        line += "unique lookup via (" + Join(scan.index_columns, ", ") + ")";
        break;
      case ScanPlan::Access::kIndexScan:
        line += "index scan via (" + Join(scan.index_columns, ", ") + ")";
        break;
    }
    if (!scan.pushed.empty()) {
      line += ", pushed: " + DescribeExprList(scan.pushed);
    }
    lines.push_back(std::move(line));
  }
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinPlan& join = joins[i];
    std::string line = "join " + scans[i + 1].alias + ": ";
    if (join.strategy == JoinPlan::Strategy::kHashJoin) {
      std::vector<std::string> keys;
      for (size_t k = 0; k < join.left_keys.size(); ++k) {
        keys.push_back(join.left_keys[k]->ToString() + " = " +
                       join.right_keys[k]->ToString());
      }
      line += "hash join on (" + Join(keys, ", ") + ")";
    } else {
      line += "nested loop";
    }
    if (!join.residual.empty()) {
      line += ", residual: " + DescribeExprList(join.residual);
    }
    lines.push_back(std::move(line));
  }
  if (!residual_where.empty()) {
    lines.push_back("where residual: " + DescribeExprList(residual_where));
  }
  if (row_cutoff >= 0) {
    lines.push_back(StrPrintf("limit short-circuit: %lld",
                              static_cast<long long>(row_cutoff)));
  }
  return lines;
}

}  // namespace easia::db
