#include "db/planner.h"

#include <map>
#include <optional>
#include <set>

#include "common/string_util.h"

namespace easia::db {

namespace {

/// Flattens the top-level AND tree of `expr` into conjuncts. Splitting is
/// sound under SQL three-valued logic: AND(a, b) is truthy iff both a and b
/// are truthy, so filtering by each conjunct in turn rejects exactly the
/// same rows as filtering by the conjunction.
void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == Expr::Op::kAnd) {
    SplitConjuncts(*expr.left, out);
    SplitConjuncts(*expr.right, out);
    return;
  }
  out->push_back(&expr);
}

/// Column namespace of the FROM list used to decide which tables a
/// predicate touches.
struct AliasSchema {
  std::string alias;
  const Table* table;
};

/// Resolves one column reference to the FROM entry that owns it. Returns
/// nullopt when the reference is unknown or ambiguous — the caller then
/// refuses to move the enclosing conjunct, so the executor surfaces the
/// same error the unplanned path would.
std::optional<size_t> ResolveAlias(const std::vector<AliasSchema>& aliases,
                                   const std::string& table,
                                   const std::string& column) {
  std::optional<size_t> found;
  for (size_t i = 0; i < aliases.size(); ++i) {
    if (!table.empty() && !EqualsIgnoreCase(aliases[i].alias, table)) {
      continue;
    }
    if (aliases[i].table->def().FindColumn(column) == nullptr) continue;
    if (found.has_value()) return std::nullopt;  // ambiguous
    found = i;
  }
  return found;
}

/// Collects the set of FROM entries referenced by `expr` into `out`.
/// Returns false when any reference fails to resolve uniquely.
bool CollectAliases(const Expr& expr, const std::vector<AliasSchema>& aliases,
                    std::set<size_t>* out) {
  if (expr.kind == Expr::Kind::kColumn) {
    std::optional<size_t> idx = ResolveAlias(aliases, expr.table, expr.column);
    if (!idx.has_value()) return false;
    out->insert(*idx);
    return true;
  }
  if (expr.left != nullptr && !CollectAliases(*expr.left, aliases, out)) {
    return false;
  }
  if (expr.right != nullptr && !CollectAliases(*expr.right, aliases, out)) {
    return false;
  }
  for (const auto& a : expr.args) {
    if (!CollectAliases(*a, aliases, out)) return false;
  }
  return true;
}

/// A conjunct awaiting placement, with the FROM entries it references.
struct Conjunct {
  const Expr* expr;
  std::set<size_t> aliases;
  /// ON conjuncts may not float ahead of their join (the unplanned
  /// executor evaluates them there); WHERE conjuncts have no floor.
  size_t min_join = 0;
  bool placed = false;
};

/// True when `expr` is `column = literal` (either side order) over the
/// given FROM entry; fills the column name and literal.
bool MatchColumnEqualsLiteral(const Expr& expr,
                              const std::vector<AliasSchema>& aliases,
                              size_t alias_index, std::string* column,
                              Value* literal) {
  if (expr.kind != Expr::Kind::kBinary || expr.op != Expr::Op::kEq) {
    return false;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  for (const Expr* side : {expr.left.get(), expr.right.get()}) {
    if (side->kind == Expr::Kind::kColumn) col = side;
    if (side->kind == Expr::Kind::kLiteral) lit = side;
  }
  if (col == nullptr || lit == nullptr || lit->literal.is_null()) {
    return false;
  }
  std::optional<size_t> owner = ResolveAlias(aliases, col->table, col->column);
  if (!owner.has_value() || *owner != alias_index) return false;
  *column = col->column;
  *literal = lit->literal;
  return true;
}

/// Hash-join keys must agree with the executor's equality semantics:
/// Value::Compare treats numeric kinds as one family and string kinds as
/// another, and Value::ToKeyString (the hash key) mirrors exactly that
/// split. Mixed numeric/string comparisons fall back to display-form
/// equality, which ToKeyString does not model — such pairs stay in the
/// nested-loop/residual path.
bool HashComparable(DataType a, DataType b) {
  auto numeric = [](DataType t) {
    return t == DataType::kInteger || t == DataType::kDouble ||
           t == DataType::kTimestamp;
  };
  return (numeric(a) && numeric(b)) || (!numeric(a) && !numeric(b));
}

/// True when `expr` is `x = y` with bare hash-comparable column refs on
/// both sides, one resolving to `right_index` and the other to an earlier
/// FROM entry. Orients the pair as (left expr, right expr).
bool MatchEquiJoin(const Expr& expr, const std::vector<AliasSchema>& aliases,
                   size_t right_index, const Expr** left_key,
                   const Expr** right_key) {
  if (expr.kind != Expr::Kind::kBinary || expr.op != Expr::Op::kEq) {
    return false;
  }
  if (expr.left->kind != Expr::Kind::kColumn ||
      expr.right->kind != Expr::Kind::kColumn) {
    return false;
  }
  std::optional<size_t> a =
      ResolveAlias(aliases, expr.left->table, expr.left->column);
  std::optional<size_t> b =
      ResolveAlias(aliases, expr.right->table, expr.right->column);
  if (!a.has_value() || !b.has_value()) return false;
  const Expr* left = nullptr;
  const Expr* right = nullptr;
  if (*a < right_index && *b == right_index) {
    left = expr.left.get();
    right = expr.right.get();
  } else if (*b < right_index && *a == right_index) {
    left = expr.right.get();
    right = expr.left.get();
  } else {
    return false;
  }
  auto column_type = [&](const Expr* col, size_t idx) {
    return aliases[idx].table->def().FindColumn(col->column)->type;
  };
  size_t left_idx = (left == expr.left.get()) ? *a : *b;
  if (!HashComparable(column_type(left, left_idx),
                      column_type(right, right_index))) {
    return false;
  }
  *left_key = left;
  *right_key = right;
  return true;
}

/// True when `type` joins the numeric comparison family of Value::Compare.
bool IsNumericType(DataType type) {
  return type == DataType::kInteger || type == DataType::kDouble ||
         type == DataType::kTimestamp;
}

/// Translates one pushed conjunct into a ColumnStore kernel predicate.
/// Only shapes whose kernel evaluation provably agrees with EvalExpr
/// convert: plain-column IS [NOT] NULL, and column-vs-literal comparisons
/// where the literal sits in the column's comparison family (mixed
/// families fall back to display-form equality, which the kernel does not
/// model). Returns false to leave the conjunct on the row-at-a-time path.
bool ConvertToColPredicate(const Expr& expr,
                           const std::vector<AliasSchema>& aliases,
                           size_t alias_index, store::ColPredicate* out) {
  const TableDef& def = aliases[alias_index].table->def();
  auto own_column = [&](const Expr* e, size_t* index) {
    if (e->kind != Expr::Kind::kColumn) return false;
    std::optional<size_t> owner = ResolveAlias(aliases, e->table, e->column);
    if (!owner.has_value() || *owner != alias_index) return false;
    Result<size_t> idx = def.ColumnIndex(e->column);
    if (!idx.ok()) return false;
    *index = *idx;
    return true;
  };
  if (expr.kind == Expr::Kind::kIsNull) {
    if (!own_column(expr.left.get(), &out->column)) return false;
    out->op = expr.negated ? store::ColPredicate::Op::kIsNotNull
                           : store::ColPredicate::Op::kIsNull;
    return true;
  }
  if (expr.kind != Expr::Kind::kBinary) return false;
  using Op = store::ColPredicate::Op;
  if (expr.op == Expr::Op::kLike || expr.op == Expr::Op::kNotLike) {
    // LIKE is not symmetric: only `column LIKE literal` converts.
    if (!own_column(expr.left.get(), &out->column)) return false;
    if (expr.right->kind != Expr::Kind::kLiteral ||
        !expr.right->literal.IsStringKind()) {
      return false;
    }
    if (IsNumericType(def.columns[out->column].type)) return false;
    out->op = expr.op == Expr::Op::kLike ? Op::kLike : Op::kNotLike;
    out->literal = expr.right->literal;
    return true;
  }
  Op op;
  Op flipped;
  switch (expr.op) {
    case Expr::Op::kEq: op = Op::kEq; flipped = Op::kEq; break;
    case Expr::Op::kNe: op = Op::kNe; flipped = Op::kNe; break;
    case Expr::Op::kLt: op = Op::kLt; flipped = Op::kGt; break;
    case Expr::Op::kLe: op = Op::kLe; flipped = Op::kGe; break;
    case Expr::Op::kGt: op = Op::kGt; flipped = Op::kLt; break;
    case Expr::Op::kGe: op = Op::kGe; flipped = Op::kLe; break;
    default:
      return false;
  }
  const Expr* lit = nullptr;
  if (own_column(expr.left.get(), &out->column) &&
      expr.right->kind == Expr::Kind::kLiteral) {
    lit = expr.right.get();
    out->op = op;
  } else if (own_column(expr.right.get(), &out->column) &&
             expr.left->kind == Expr::Kind::kLiteral) {
    lit = expr.left.get();
    out->op = flipped;
  } else {
    return false;
  }
  if (lit->literal.is_null()) return false;
  bool column_numeric = IsNumericType(def.columns[out->column].type);
  if (column_numeric != lit->literal.IsNumericKind()) return false;
  out->literal = lit->literal;
  return true;
}

/// Picks the access path for one scan from its pushed-down equality
/// predicates: a unique index whose columns are all pinned beats a
/// secondary (FK) index beats a radix prefix scan beats a sequential scan.
void ChooseAccessPath(ScanPlan* scan,
                      const std::vector<AliasSchema>& aliases,
                      size_t alias_index) {
  // Equality predicates available on this table, by upper-cased column.
  std::map<std::string, Value> equalities;
  for (const Expr* e : scan->pushed) {
    std::string column;
    Value literal;
    if (MatchColumnEqualsLiteral(*e, aliases, alias_index, &column,
                                 &literal)) {
      equalities.emplace(ToUpper(column), std::move(literal));
    }
  }
  const TableDef& def = scan->table->def();
  auto try_index = [&](const std::vector<std::string>& columns,
                       ScanPlan::Access access) {
    std::vector<Value> key;
    for (const std::string& col : columns) {
      auto it = equalities.find(ToUpper(col));
      if (it == equalities.end()) return false;
      const ColumnDef* cdef = def.FindColumn(col);
      if (cdef == nullptr) return false;
      // Coerce the literal so index keys agree with stored values. A
      // literal that cannot coerce (e.g. 'abc' against INTEGER) can still
      // be display-equal to nothing, so a plain scan handles it.
      Result<Value> coerced = it->second.CoerceTo(cdef->type);
      if (!coerced.ok()) return false;
      key.push_back(std::move(*coerced));
    }
    scan->access = access;
    scan->index_columns = columns;
    scan->key_values = std::move(key);
    return true;
  };
  if (!equalities.empty()) {
    for (const std::vector<std::string>& columns :
         scan->table->UniqueIndexColumns()) {
      if (try_index(columns, ScanPlan::Access::kUniqueLookup)) return;
    }
    for (const std::vector<std::string>& columns :
         scan->table->SecondaryIndexColumns()) {
      if (try_index(columns, ScanPlan::Access::kIndexScan)) return;
    }
  }
  // Radix prefix scan: a pushed `col LIKE 'prefix...'` conjunct over a
  // radix-indexed TEXT column narrows the scan to rows starting with the
  // pattern's literal prefix. The conjunct stays in `pushed` and is still
  // re-evaluated per fetched row, so the wildcard tail (and any other
  // conjunct) filters exactly as before.
  for (const Expr* e : scan->pushed) {
    if (e->kind != Expr::Kind::kBinary || e->op != Expr::Op::kLike) continue;
    if (e->left->kind != Expr::Kind::kColumn ||
        e->right->kind != Expr::Kind::kLiteral ||
        !e->right->literal.IsStringKind()) {
      continue;
    }
    std::optional<size_t> owner =
        ResolveAlias(aliases, e->left->table, e->left->column);
    if (!owner.has_value() || *owner != alias_index) continue;
    Result<size_t> col = def.ColumnIndex(e->left->column);
    if (!col.ok() || !scan->table->HasRadixIndex(def.columns[*col].name)) {
      continue;
    }
    std::string prefix = LikePatternPrefix(e->right->literal.AsString());
    if (prefix.empty()) continue;  // leading wildcard: nothing to narrow
    scan->access = ScanPlan::Access::kPrefixScan;
    scan->prefix = std::move(prefix);
    scan->index_columns = {def.columns[*col].name};
    return;
  }
}

/// Decides whether the whole aggregate query maps onto one columnar
/// AggregateScan kernel call, and fills the kernel spec when it does. Every
/// bail-out leaves the query on the row path, which handles the general
/// case; the fast path only claims shapes it evaluates identically.
void PlanAggregateFastPath(const SelectStmt& stmt,
                           const std::vector<AliasSchema>& aliases,
                           SelectPlan* plan) {
  if (plan->scans.size() != 1) return;
  ScanPlan& scan = plan->scans[0];
  if (scan.access != ScanPlan::Access::kSeqScan ||
      scan.table->storage_kind() != Table::StorageKind::kColumnar) {
    return;
  }
  if (!scan.pushed.empty() && !scan.kernel_filter) return;
  if (!plan->residual_where.empty()) return;
  if (stmt.having != nullptr || !stmt.order_by.empty() || stmt.distinct ||
      stmt.limit >= 0 || stmt.offset > 0) {
    return;
  }
  const TableDef& def = scan.table->def();
  auto plain_column = [&](const Expr& e, size_t* index) {
    if (e.kind != Expr::Kind::kColumn) return false;
    std::optional<size_t> owner = ResolveAlias(aliases, e.table, e.column);
    if (!owner.has_value() || *owner != 0) return false;
    Result<size_t> idx = def.ColumnIndex(e.column);
    if (!idx.ok()) return false;
    *index = *idx;
    return true;
  };
  std::vector<size_t> group_cols;
  for (const auto& g : stmt.group_by) {
    size_t idx;
    if (!plain_column(*g, &idx)) return;
    group_cols.push_back(idx);
  }
  std::vector<store::AggSpec> aggs;
  std::vector<AggregatePlan::Item> items;
  for (const SelectItem& item : stmt.items) {
    if (item.star || item.expr == nullptr) return;
    const Expr& e = *item.expr;
    size_t idx = 0;
    if (plain_column(e, &idx)) {
      // The DATALINK presentation rewrite applies to direct column
      // outputs, which the kernel result path does not run.
      if (def.columns[idx].type == DataType::kDatalink) return;
      items.push_back({false, idx});
      continue;
    }
    if (e.kind != Expr::Kind::kCall || !IsAggregateFunction(e.func)) return;
    store::AggSpec spec;
    if (e.func == "COUNT" && e.star) {
      spec.fn = store::AggSpec::Fn::kCountStar;
    } else {
      if (e.args.size() != 1 || !plain_column(*e.args[0], &spec.column)) {
        return;
      }
      bool numeric = IsNumericType(def.columns[spec.column].type);
      if (e.func == "COUNT") {
        spec.fn = store::AggSpec::Fn::kCount;
      } else if (e.func == "SUM" || e.func == "AVG") {
        // The row path only errors on SUM/AVG when a non-null non-numeric
        // value is actually aggregated (all-NULL groups pass); a static
        // kernel check cannot reproduce that, so text columns stay there.
        if (!numeric) return;
        spec.fn = e.func == "SUM" ? store::AggSpec::Fn::kSum
                                  : store::AggSpec::Fn::kAvg;
      } else if (e.func == "MIN") {
        spec.fn = store::AggSpec::Fn::kMin;
      } else if (e.func == "MAX") {
        spec.fn = store::AggSpec::Fn::kMax;
      } else {
        return;
      }
    }
    items.push_back({true, aggs.size()});
    aggs.push_back(spec);
  }
  plan->aggregate.fast_path = true;
  plan->aggregate.group_by_cols = std::move(group_cols);
  plan->aggregate.aggs = std::move(aggs);
  plan->aggregate.items = std::move(items);
}

std::string DescribeExprList(const std::vector<const Expr*>& exprs) {
  std::vector<std::string> parts;
  for (const Expr* e : exprs) parts.push_back(e->ToString());
  return Join(parts, " AND ");
}

}  // namespace

Result<SelectPlan> PlanSelect(const SelectStmt& stmt,
                              const TableLookup& lookup) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  SelectPlan plan;
  plan.stmt = &stmt;
  std::vector<AliasSchema> aliases;
  for (const TableRef& ref : stmt.from) {
    EASIA_ASSIGN_OR_RETURN(const Table* table, lookup(ref.table));
    aliases.push_back({ref.alias, table});
    ScanPlan scan;
    scan.table = table;
    scan.alias = ref.alias;
    plan.scans.push_back(std::move(scan));
  }
  plan.joins.resize(plan.scans.size() > 0 ? plan.scans.size() - 1 : 0);

  // --- Gather conjuncts from WHERE and every ON condition ---
  std::vector<Conjunct> conjuncts;
  if (stmt.where != nullptr) {
    std::vector<const Expr*> parts;
    SplitConjuncts(*stmt.where, &parts);
    for (const Expr* e : parts) {
      Conjunct c;
      c.expr = e;
      c.min_join = 0;
      if (!CollectAliases(*e, aliases, &c.aliases)) {
        // Unknown/ambiguous reference: leave the conjunct in the final
        // residual so evaluation reports the same error as before.
        plan.residual_where.push_back(e);
        continue;
      }
      conjuncts.push_back(std::move(c));
    }
  }
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    const Expr* cond = stmt.from[i].join_condition.get();
    if (cond == nullptr) continue;
    std::vector<const Expr*> parts;
    SplitConjuncts(*cond, &parts);
    // If any part fails to resolve, or references a table joined later,
    // keep the whole condition at this join (the unplanned executor
    // evaluates it there, over the tables joined so far).
    bool splittable = true;
    std::vector<Conjunct> local;
    for (const Expr* e : parts) {
      Conjunct c;
      c.expr = e;
      c.min_join = i;
      if (!CollectAliases(*e, aliases, &c.aliases) ||
          (!c.aliases.empty() && *c.aliases.rbegin() > i)) {
        splittable = false;
        break;
      }
      local.push_back(std::move(c));
    }
    if (!splittable) {
      plan.joins[i - 1].residual.push_back(cond);
      continue;
    }
    for (Conjunct& c : local) conjuncts.push_back(std::move(c));
  }

  // --- Place conjuncts: scan pushdown, join keys, join/where residual ---
  for (Conjunct& c : conjuncts) {
    if (c.aliases.size() == 1 && c.min_join == 0) {
      plan.scans[*c.aliases.begin()].pushed.push_back(c.expr);
      c.placed = true;
    } else if (c.aliases.size() == 1) {
      // Single-table ON conjunct: push to its scan only when that table is
      // the one being joined (or earlier); pushing earlier than min_join
      // would skip rows the unplanned ON evaluation also skips, so it is
      // always safe for inner joins.
      plan.scans[*c.aliases.begin()].pushed.push_back(c.expr);
      c.placed = true;
    }
  }
  for (Conjunct& c : conjuncts) {
    if (c.placed || c.aliases.empty()) continue;
    size_t last = *c.aliases.rbegin();
    if (last == 0) continue;  // multi-ref over first table only: residual
    const Expr* left_key = nullptr;
    const Expr* right_key = nullptr;
    if (MatchEquiJoin(*c.expr, aliases, last, &left_key, &right_key)) {
      JoinPlan& join = plan.joins[last - 1];
      join.strategy = JoinPlan::Strategy::kHashJoin;
      join.left_keys.push_back(left_key);
      join.right_keys.push_back(right_key);
    } else {
      plan.joins[last - 1].residual.push_back(c.expr);
    }
    c.placed = true;
  }
  for (Conjunct& c : conjuncts) {
    if (!c.placed) {
      // Constant conjuncts (no column refs) and multi-ref conjuncts over
      // the first table land in the final residual.
      if (c.aliases.empty() || *c.aliases.rbegin() == 0) {
        plan.residual_where.push_back(c.expr);
        c.placed = true;
      }
    }
  }

  // --- Access paths ---
  for (size_t i = 0; i < plan.scans.size(); ++i) {
    ChooseAccessPath(&plan.scans[i], aliases, i);
  }

  // --- Columnar filter kernels ---
  // A columnar seq scan whose pushed conjuncts all convert runs the
  // vectorised filter instead of materialising every row. All-or-nothing:
  // partial conversion could change which conjunct errors first.
  for (size_t i = 0; i < plan.scans.size(); ++i) {
    ScanPlan& scan = plan.scans[i];
    if (scan.access != ScanPlan::Access::kSeqScan || scan.pushed.empty() ||
        scan.table->storage_kind() != Table::StorageKind::kColumnar) {
      continue;
    }
    std::vector<store::ColPredicate> preds;
    bool all = true;
    for (const Expr* e : scan.pushed) {
      store::ColPredicate p;
      if (!ConvertToColPredicate(*e, aliases, i, &p)) {
        all = false;
        break;
      }
      preds.push_back(std::move(p));
    }
    if (all) {
      scan.kernel_filter = true;
      scan.kernel_predicates = std::move(preds);
    }
  }

  // --- Aggregation ---
  bool aggregate_query = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && item.expr->ContainsAggregate()) {
      aggregate_query = true;
    }
  }
  plan.aggregate.present = aggregate_query;
  if (aggregate_query) PlanAggregateFastPath(stmt, aliases, &plan);

  // --- LIMIT short-circuit ---
  if (stmt.limit >= 0 && stmt.order_by.empty() && !aggregate_query &&
      !stmt.distinct) {
    plan.row_cutoff = stmt.limit + std::max<int64_t>(stmt.offset, 0);
  }
  return plan;
}

std::vector<std::string> SelectPlan::Describe() const {
  std::vector<std::string> lines;
  for (size_t i = 0; i < scans.size(); ++i) {
    const ScanPlan& scan = scans[i];
    std::string line =
        "scan " + scan.table->def().name + " AS " + scan.alias + ": ";
    switch (scan.access) {
      case ScanPlan::Access::kSeqScan:
        line += "seq scan";
        break;
      case ScanPlan::Access::kUniqueLookup:
        line += "unique lookup via (" + Join(scan.index_columns, ", ") + ")";
        break;
      case ScanPlan::Access::kIndexScan:
        line += "index scan via (" + Join(scan.index_columns, ", ") + ")";
        break;
      case ScanPlan::Access::kPrefixScan:
        line += "prefix scan via (" + Join(scan.index_columns, ", ") +
                "), prefix '" + scan.prefix + "'";
        break;
    }
    if (!scan.pushed.empty()) {
      line += ", pushed: " + DescribeExprList(scan.pushed);
      if (scan.kernel_filter) line += " [columnar filter]";
    }
    lines.push_back(std::move(line));
  }
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinPlan& join = joins[i];
    std::string line = "join " + scans[i + 1].alias + ": ";
    if (join.strategy == JoinPlan::Strategy::kHashJoin) {
      std::vector<std::string> keys;
      for (size_t k = 0; k < join.left_keys.size(); ++k) {
        keys.push_back(join.left_keys[k]->ToString() + " = " +
                       join.right_keys[k]->ToString());
      }
      line += "hash join on (" + Join(keys, ", ") + ")";
    } else {
      line += "nested loop";
    }
    if (!join.residual.empty()) {
      line += ", residual: " + DescribeExprList(join.residual);
    }
    lines.push_back(std::move(line));
  }
  if (!residual_where.empty()) {
    lines.push_back("where residual: " + DescribeExprList(residual_where));
  }
  if (aggregate.present && stmt != nullptr) {
    std::vector<std::string> parts;
    for (const SelectItem& item : stmt->items) {
      parts.push_back(item.star ? "*" : item.expr->ToString());
    }
    std::string line = "aggregate: " + Join(parts, ", ");
    if (!stmt->group_by.empty()) {
      std::vector<std::string> keys;
      for (const auto& g : stmt->group_by) keys.push_back(g->ToString());
      line += " group by (" + Join(keys, ", ") + ")";
    }
    line += aggregate.fast_path ? " [columnar fast path]" : " [row path]";
    lines.push_back(std::move(line));
  }
  if (row_cutoff >= 0) {
    lines.push_back(StrPrintf("limit short-circuit: %lld",
                              static_cast<long long>(row_cutoff)));
  }
  return lines;
}

}  // namespace easia::db
