#include "db/planner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "common/string_util.h"

namespace easia::db {

namespace {

/// Flattens the top-level AND tree of `expr` into conjuncts. Splitting is
/// sound under SQL three-valued logic: AND(a, b) is truthy iff both a and b
/// are truthy, so filtering by each conjunct in turn rejects exactly the
/// same rows as filtering by the conjunction.
void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == Expr::Op::kAnd) {
    SplitConjuncts(*expr.left, out);
    SplitConjuncts(*expr.right, out);
    return;
  }
  out->push_back(&expr);
}

/// Column namespace of the FROM list used to decide which tables a
/// predicate touches.
struct AliasSchema {
  std::string alias;
  const Table* table;
};

/// Resolves one column reference to the FROM entry that owns it. Returns
/// nullopt when the reference is unknown or ambiguous — the caller then
/// refuses to move the enclosing conjunct, so the executor surfaces the
/// same error the unplanned path would.
std::optional<size_t> ResolveAlias(const std::vector<AliasSchema>& aliases,
                                   const std::string& table,
                                   const std::string& column) {
  std::optional<size_t> found;
  for (size_t i = 0; i < aliases.size(); ++i) {
    if (!table.empty() && !EqualsIgnoreCase(aliases[i].alias, table)) {
      continue;
    }
    if (aliases[i].table->def().FindColumn(column) == nullptr) continue;
    if (found.has_value()) return std::nullopt;  // ambiguous
    found = i;
  }
  return found;
}

/// Collects the set of FROM entries referenced by `expr` into `out`.
/// Returns false when any reference fails to resolve uniquely.
bool CollectAliases(const Expr& expr, const std::vector<AliasSchema>& aliases,
                    std::set<size_t>* out) {
  if (expr.kind == Expr::Kind::kColumn) {
    std::optional<size_t> idx = ResolveAlias(aliases, expr.table, expr.column);
    if (!idx.has_value()) return false;
    out->insert(*idx);
    return true;
  }
  if (expr.left != nullptr && !CollectAliases(*expr.left, aliases, out)) {
    return false;
  }
  if (expr.right != nullptr && !CollectAliases(*expr.right, aliases, out)) {
    return false;
  }
  for (const auto& a : expr.args) {
    if (!CollectAliases(*a, aliases, out)) return false;
  }
  return true;
}

/// A conjunct awaiting placement, with the FROM entries it references.
/// ON conjuncts are treated like WHERE conjuncts here: every join the
/// engine executes is an inner join, where pushing a condition earlier
/// than its syntactic position skips exactly the rows the unplanned ON
/// evaluation also skips.
struct Conjunct {
  const Expr* expr;
  std::set<size_t> aliases;
  bool placed = false;
};

/// True when `expr` is `column = literal` (either side order) over the
/// given FROM entry; fills the column name and literal.
bool MatchColumnEqualsLiteral(const Expr& expr,
                              const std::vector<AliasSchema>& aliases,
                              size_t alias_index, std::string* column,
                              Value* literal) {
  if (expr.kind != Expr::Kind::kBinary || expr.op != Expr::Op::kEq) {
    return false;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  for (const Expr* side : {expr.left.get(), expr.right.get()}) {
    if (side->kind == Expr::Kind::kColumn) col = side;
    if (side->kind == Expr::Kind::kLiteral) lit = side;
  }
  if (col == nullptr || lit == nullptr || lit->literal.is_null()) {
    return false;
  }
  std::optional<size_t> owner = ResolveAlias(aliases, col->table, col->column);
  if (!owner.has_value() || *owner != alias_index) return false;
  *column = col->column;
  *literal = lit->literal;
  return true;
}

/// Hash-join keys must agree with the executor's equality semantics:
/// Value::Compare treats numeric kinds as one family and string kinds as
/// another, and Value::ToKeyString (the hash key) mirrors exactly that
/// split. Mixed numeric/string comparisons fall back to display-form
/// equality, which ToKeyString does not model — such pairs stay in the
/// nested-loop/residual path.
bool HashComparable(DataType a, DataType b) {
  auto numeric = [](DataType t) {
    return t == DataType::kInteger || t == DataType::kDouble ||
           t == DataType::kTimestamp;
  };
  return (numeric(a) && numeric(b)) || (!numeric(a) && !numeric(b));
}

/// True when `type` joins the numeric comparison family of Value::Compare.
bool IsNumericType(DataType type) {
  return type == DataType::kInteger || type == DataType::kDouble ||
         type == DataType::kTimestamp;
}

/// Translates one pushed conjunct into a ColumnStore kernel predicate.
/// Only shapes whose kernel evaluation provably agrees with EvalExpr
/// convert: plain-column IS [NOT] NULL, and column-vs-literal comparisons
/// where the literal sits in the column's comparison family (mixed
/// families fall back to display-form equality, which the kernel does not
/// model). Returns false to leave the conjunct on the row-at-a-time path.
bool ConvertToColPredicate(const Expr& expr,
                           const std::vector<AliasSchema>& aliases,
                           size_t alias_index, store::ColPredicate* out) {
  const TableDef& def = aliases[alias_index].table->def();
  auto own_column = [&](const Expr* e, size_t* index) {
    if (e->kind != Expr::Kind::kColumn) return false;
    std::optional<size_t> owner = ResolveAlias(aliases, e->table, e->column);
    if (!owner.has_value() || *owner != alias_index) return false;
    Result<size_t> idx = def.ColumnIndex(e->column);
    if (!idx.ok()) return false;
    *index = *idx;
    return true;
  };
  if (expr.kind == Expr::Kind::kIsNull) {
    if (!own_column(expr.left.get(), &out->column)) return false;
    out->op = expr.negated ? store::ColPredicate::Op::kIsNotNull
                           : store::ColPredicate::Op::kIsNull;
    return true;
  }
  if (expr.kind != Expr::Kind::kBinary) return false;
  using Op = store::ColPredicate::Op;
  if (expr.op == Expr::Op::kLike || expr.op == Expr::Op::kNotLike) {
    // LIKE is not symmetric: only `column LIKE literal` converts.
    if (!own_column(expr.left.get(), &out->column)) return false;
    if (expr.right->kind != Expr::Kind::kLiteral ||
        !expr.right->literal.IsStringKind()) {
      return false;
    }
    if (IsNumericType(def.columns[out->column].type)) return false;
    out->op = expr.op == Expr::Op::kLike ? Op::kLike : Op::kNotLike;
    out->literal = expr.right->literal;
    return true;
  }
  Op op;
  Op flipped;
  switch (expr.op) {
    case Expr::Op::kEq: op = Op::kEq; flipped = Op::kEq; break;
    case Expr::Op::kNe: op = Op::kNe; flipped = Op::kNe; break;
    case Expr::Op::kLt: op = Op::kLt; flipped = Op::kGt; break;
    case Expr::Op::kLe: op = Op::kLe; flipped = Op::kGe; break;
    case Expr::Op::kGt: op = Op::kGt; flipped = Op::kLt; break;
    case Expr::Op::kGe: op = Op::kGe; flipped = Op::kLe; break;
    default:
      return false;
  }
  const Expr* lit = nullptr;
  if (own_column(expr.left.get(), &out->column) &&
      expr.right->kind == Expr::Kind::kLiteral) {
    lit = expr.right.get();
    out->op = op;
  } else if (own_column(expr.right.get(), &out->column) &&
             expr.left->kind == Expr::Kind::kLiteral) {
    lit = expr.left.get();
    out->op = flipped;
  } else {
    return false;
  }
  if (lit->literal.is_null()) return false;
  bool column_numeric = IsNumericType(def.columns[out->column].type);
  if (column_numeric != lit->literal.IsNumericKind()) return false;
  out->literal = lit->literal;
  return true;
}

/// Picks the access path for one scan from its pushed-down equality
/// predicates: a unique index whose columns are all pinned beats a
/// secondary (FK) index beats a radix prefix scan beats a sequential scan.
void ChooseAccessPath(ScanPlan* scan,
                      const std::vector<AliasSchema>& aliases,
                      size_t alias_index) {
  // Equality predicates available on this table, by upper-cased column.
  std::map<std::string, Value> equalities;
  for (const Expr* e : scan->pushed) {
    std::string column;
    Value literal;
    if (MatchColumnEqualsLiteral(*e, aliases, alias_index, &column,
                                 &literal)) {
      equalities.emplace(ToUpper(column), std::move(literal));
    }
  }
  const TableDef& def = scan->table->def();
  auto try_index = [&](const std::vector<std::string>& columns,
                       ScanPlan::Access access) {
    std::vector<Value> key;
    for (const std::string& col : columns) {
      auto it = equalities.find(ToUpper(col));
      if (it == equalities.end()) return false;
      const ColumnDef* cdef = def.FindColumn(col);
      if (cdef == nullptr) return false;
      // Coerce the literal so index keys agree with stored values. A
      // literal that cannot coerce (e.g. 'abc' against INTEGER) can still
      // be display-equal to nothing, so a plain scan handles it.
      Result<Value> coerced = it->second.CoerceTo(cdef->type);
      if (!coerced.ok()) return false;
      key.push_back(std::move(*coerced));
    }
    scan->access = access;
    scan->index_columns = columns;
    scan->key_values = std::move(key);
    return true;
  };
  if (!equalities.empty()) {
    for (const std::vector<std::string>& columns :
         scan->table->UniqueIndexColumns()) {
      if (try_index(columns, ScanPlan::Access::kUniqueLookup)) return;
    }
    for (const std::vector<std::string>& columns :
         scan->table->SecondaryIndexColumns()) {
      if (try_index(columns, ScanPlan::Access::kIndexScan)) return;
    }
  }
  // Radix prefix scan: a pushed `col LIKE 'prefix...'` conjunct over a
  // radix-indexed TEXT column narrows the scan to rows starting with the
  // pattern's literal prefix. The conjunct stays in `pushed` and is still
  // re-evaluated per fetched row, so the wildcard tail (and any other
  // conjunct) filters exactly as before.
  for (const Expr* e : scan->pushed) {
    if (e->kind != Expr::Kind::kBinary || e->op != Expr::Op::kLike) continue;
    if (e->left->kind != Expr::Kind::kColumn ||
        e->right->kind != Expr::Kind::kLiteral ||
        !e->right->literal.IsStringKind()) {
      continue;
    }
    std::optional<size_t> owner =
        ResolveAlias(aliases, e->left->table, e->left->column);
    if (!owner.has_value() || *owner != alias_index) continue;
    Result<size_t> col = def.ColumnIndex(e->left->column);
    if (!col.ok() || !scan->table->HasRadixIndex(def.columns[*col].name)) {
      continue;
    }
    std::string prefix = LikePatternPrefix(e->right->literal.AsString());
    if (prefix.empty()) continue;  // leading wildcard: nothing to narrow
    scan->access = ScanPlan::Access::kPrefixScan;
    scan->prefix = std::move(prefix);
    scan->index_columns = {def.columns[*col].name};
    return;
  }
}

/// Decides whether the whole aggregate query maps onto one columnar
/// AggregateScan kernel call, and fills the kernel spec when it does. Every
/// bail-out leaves the query on the row path, which handles the general
/// case; the fast path only claims shapes it evaluates identically.
void PlanAggregateFastPath(const SelectStmt& stmt,
                           const std::vector<AliasSchema>& aliases,
                           SelectPlan* plan) {
  if (plan->scans.size() != 1) return;
  ScanPlan& scan = plan->scans[0];
  if (scan.access != ScanPlan::Access::kSeqScan ||
      scan.table->storage_kind() != Table::StorageKind::kColumnar) {
    return;
  }
  if (!scan.pushed.empty() && !scan.kernel_filter) return;
  if (!plan->residual_where.empty()) return;
  if (stmt.having != nullptr || !stmt.order_by.empty() || stmt.distinct ||
      stmt.limit >= 0 || stmt.offset > 0) {
    return;
  }
  const TableDef& def = scan.table->def();
  auto plain_column = [&](const Expr& e, size_t* index) {
    if (e.kind != Expr::Kind::kColumn) return false;
    std::optional<size_t> owner = ResolveAlias(aliases, e.table, e.column);
    if (!owner.has_value() || *owner != 0) return false;
    Result<size_t> idx = def.ColumnIndex(e.column);
    if (!idx.ok()) return false;
    *index = *idx;
    return true;
  };
  std::vector<size_t> group_cols;
  for (const auto& g : stmt.group_by) {
    size_t idx;
    if (!plain_column(*g, &idx)) return;
    group_cols.push_back(idx);
  }
  std::vector<store::AggSpec> aggs;
  std::vector<AggregatePlan::Item> items;
  for (const SelectItem& item : stmt.items) {
    if (item.star || item.expr == nullptr) return;
    const Expr& e = *item.expr;
    size_t idx = 0;
    if (plain_column(e, &idx)) {
      // The DATALINK presentation rewrite applies to direct column
      // outputs, which the kernel result path does not run.
      if (def.columns[idx].type == DataType::kDatalink) return;
      items.push_back({false, idx});
      continue;
    }
    if (e.kind != Expr::Kind::kCall || !IsAggregateFunction(e.func)) return;
    store::AggSpec spec;
    if (e.func == "COUNT" && e.star) {
      spec.fn = store::AggSpec::Fn::kCountStar;
    } else {
      if (e.args.size() != 1 || !plain_column(*e.args[0], &spec.column)) {
        return;
      }
      bool numeric = IsNumericType(def.columns[spec.column].type);
      if (e.func == "COUNT") {
        spec.fn = store::AggSpec::Fn::kCount;
      } else if (e.func == "SUM" || e.func == "AVG") {
        // The row path only errors on SUM/AVG when a non-null non-numeric
        // value is actually aggregated (all-NULL groups pass); a static
        // kernel check cannot reproduce that, so text columns stay there.
        if (!numeric) return;
        spec.fn = e.func == "SUM" ? store::AggSpec::Fn::kSum
                                  : store::AggSpec::Fn::kAvg;
      } else if (e.func == "MIN") {
        spec.fn = store::AggSpec::Fn::kMin;
      } else if (e.func == "MAX") {
        spec.fn = store::AggSpec::Fn::kMax;
      } else {
        return;
      }
    }
    items.push_back({true, aggs.size()});
    aggs.push_back(spec);
  }
  plan->aggregate.fast_path = true;
  plan->aggregate.group_by_cols = std::move(group_cols);
  plan->aggregate.aggs = std::move(aggs);
  plan->aggregate.items = std::move(items);
}

std::string DescribeExprList(const std::vector<const Expr*>& exprs) {
  std::vector<std::string> parts;
  for (const Expr* e : exprs) parts.push_back(e->ToString());
  return Join(parts, " AND ");
}

// ---------------------------------------------------------------------------
// Cost model. Quantities are rough "rows touched" counts; the only consumer
// is a relative comparison between alternative shapes of the same query, so
// the units merely need to be consistent.
// ---------------------------------------------------------------------------

constexpr double kDefaultSelectivity = 0.33;
/// Deviating from the FROM-order/hash-join shape must beat it by BOTH a
/// ratio and an absolute margin. A reordered plan pays an extra
/// order-restoring sort of its result, and on small catalogues plan
/// stability (deterministic EXPLAIN shapes) is worth more than a few dozen
/// rows of estimated savings.
constexpr double kReorderRatio = 0.9;
constexpr double kMinCostGain = 1000.0;

/// Statistics sketch behind a bare own-column reference, else null.
const stats::ColumnSketch* SketchFor(const Expr* e,
                                     const std::vector<AliasSchema>& aliases,
                                     size_t alias_index) {
  if (e == nullptr || e->kind != Expr::Kind::kColumn) return nullptr;
  std::optional<size_t> owner = ResolveAlias(aliases, e->table, e->column);
  if (!owner.has_value() || *owner != alias_index) return nullptr;
  const Table* table = aliases[alias_index].table;
  Result<size_t> idx = table->def().ColumnIndex(e->column);
  const stats::TableStats& ts = table->table_stats();
  if (!idx.ok() || *idx >= ts.column_count()) return nullptr;
  return &ts.column(*idx);
}

/// Estimated fraction of the table's rows satisfying one pushed conjunct.
double PushedSelectivity(const Expr& e,
                         const std::vector<AliasSchema>& aliases,
                         size_t alias_index) {
  if (e.kind == Expr::Kind::kIsNull) {
    const stats::ColumnSketch* s =
        SketchFor(e.left.get(), aliases, alias_index);
    if (s == nullptr) return kDefaultSelectivity;
    return e.negated ? 1.0 - s->NullFraction() : s->NullFraction();
  }
  if (e.kind != Expr::Kind::kBinary) return kDefaultSelectivity;
  if (e.op == Expr::Op::kLike || e.op == Expr::Op::kNotLike) {
    const stats::ColumnSketch* s =
        SketchFor(e.left.get(), aliases, alias_index);
    if (s == nullptr || e.right == nullptr ||
        e.right->kind != Expr::Kind::kLiteral ||
        !e.right->literal.IsStringKind()) {
      return kDefaultSelectivity;
    }
    std::string prefix = LikePatternPrefix(e.right->literal.AsString());
    double sel =
        prefix.empty()
            ? kDefaultSelectivity
            : s->SelectivityOf(
                  [&prefix](const Value& v) {
                    return v.IsStringKind() &&
                           v.AsString().compare(0, prefix.size(), prefix) ==
                               0;
                  },
                  /*fallback=*/0.1);
    return e.op == Expr::Op::kLike ? sel : std::max(0.0, 1.0 - sel);
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (e.left != nullptr && e.right != nullptr) {
    if (e.left->kind == Expr::Kind::kColumn &&
        e.right->kind == Expr::Kind::kLiteral) {
      col = e.left.get();
      lit = e.right.get();
    } else if (e.right->kind == Expr::Kind::kColumn &&
               e.left->kind == Expr::Kind::kLiteral) {
      col = e.right.get();
      lit = e.left.get();
      flipped = true;
    }
  }
  if (col == nullptr || lit->literal.is_null()) return kDefaultSelectivity;
  const stats::ColumnSketch* s = SketchFor(col, aliases, alias_index);
  if (s == nullptr) return kDefaultSelectivity;
  Expr::Op op = e.op;
  if (flipped) {
    switch (op) {
      case Expr::Op::kLt: op = Expr::Op::kGt; break;
      case Expr::Op::kLe: op = Expr::Op::kGe; break;
      case Expr::Op::kGt: op = Expr::Op::kLt; break;
      case Expr::Op::kGe: op = Expr::Op::kLe; break;
      default: break;
    }
  }
  const Value& v = lit->literal;
  switch (op) {
    case Expr::Op::kEq:
      return s->EqualitySelectivity(v);
    case Expr::Op::kNe:
      return std::max(0.0,
                      1.0 - s->NullFraction() - s->EqualitySelectivity(v));
    case Expr::Op::kLt:
      return s->SelectivityOf(
          [&v](const Value& x) { return x.Compare(v) < 0; },
          kDefaultSelectivity);
    case Expr::Op::kLe:
      return s->SelectivityOf(
          [&v](const Value& x) { return x.Compare(v) <= 0; },
          kDefaultSelectivity);
    case Expr::Op::kGt:
      return s->SelectivityOf(
          [&v](const Value& x) { return x.Compare(v) > 0; },
          kDefaultSelectivity);
    case Expr::Op::kGe:
      return s->SelectivityOf(
          [&v](const Value& x) { return x.Compare(v) >= 0; },
          kDefaultSelectivity);
    default:
      return kDefaultSelectivity;
  }
}

struct AccessEstimate {
  double est_rows = 0;   // rows surviving the pushed filters
  double scan_cost = 0;  // cost of materialising this scan's base rows
};

AccessEstimate EstimateScan(const ScanPlan& scan,
                            const std::vector<AliasSchema>& aliases,
                            size_t alias_index) {
  double n = static_cast<double>(scan.table->RowCount());
  double sel = 1.0;
  for (const Expr* e : scan.pushed) {
    sel *= PushedSelectivity(*e, aliases, alias_index);
  }
  AccessEstimate out;
  out.est_rows = n * sel;
  switch (scan.access) {
    case ScanPlan::Access::kSeqScan:
      out.scan_cost = n;
      break;
    case ScanPlan::Access::kUniqueLookup:
      out.est_rows = std::min(out.est_rows, 1.0);
      out.scan_cost = 1.0;
      break;
    case ScanPlan::Access::kIndexScan:
    case ScanPlan::Access::kPrefixScan:
      out.scan_cost = std::max(out.est_rows, 1.0);
      break;
  }
  return out;
}

/// A conjunct of the canonical two-table equi-join shape `A.x = B.y`
/// (bare hash-comparable columns of two distinct FROM entries).
struct EquiPair {
  const Expr* expr = nullptr;
  const Expr* side_a = nullptr;  // column expr owned by FROM entry fa
  const Expr* side_b = nullptr;
  size_t fa = 0, fb = 0;
  size_t col_a = 0, col_b = 0;  // column indexes within their tables
};

bool MatchEquiPair(const Expr& expr, const std::vector<AliasSchema>& aliases,
                   EquiPair* out) {
  if (expr.kind != Expr::Kind::kBinary || expr.op != Expr::Op::kEq) {
    return false;
  }
  if (expr.left->kind != Expr::Kind::kColumn ||
      expr.right->kind != Expr::Kind::kColumn) {
    return false;
  }
  std::optional<size_t> a =
      ResolveAlias(aliases, expr.left->table, expr.left->column);
  std::optional<size_t> b =
      ResolveAlias(aliases, expr.right->table, expr.right->column);
  if (!a.has_value() || !b.has_value() || *a == *b) return false;
  const TableDef& def_a = aliases[*a].table->def();
  const TableDef& def_b = aliases[*b].table->def();
  const ColumnDef* ca = def_a.FindColumn(expr.left->column);
  const ColumnDef* cb = def_b.FindColumn(expr.right->column);
  if (ca == nullptr || cb == nullptr || !HashComparable(ca->type, cb->type)) {
    return false;
  }
  Result<size_t> ia = def_a.ColumnIndex(expr.left->column);
  Result<size_t> ib = def_b.ColumnIndex(expr.right->column);
  if (!ia.ok() || !ib.ok()) return false;
  out->expr = &expr;
  out->side_a = expr.left.get();
  out->side_b = expr.right.get();
  out->fa = *a;
  out->fb = *b;
  out->col_a = *ia;
  out->col_b = *ib;
  return true;
}

/// Distinct-value estimate for a join key column, clamped by how many rows
/// of that table survive its pushed filters.
double NdvOf(const Table* table, size_t col_index, double est_rows) {
  const stats::TableStats& ts = table->table_stats();
  double ndv = col_index < ts.column_count()
                   ? ts.column(col_index).DistinctEstimate()
                   : 1.0;
  return std::min(std::max(ndv, 1.0), std::max(est_rows, 1.0));
}

/// The unique/secondary index of `table` covering exactly the given key
/// columns (as an unordered set), returned in the index's own column
/// order. Nullopt when none matches.
std::optional<std::vector<std::string>> FindExactIndex(
    const Table* table, const std::vector<std::string>& key_cols_upper) {
  auto matches = [&](const std::vector<std::string>& cols) {
    if (cols.size() != key_cols_upper.size()) return false;
    for (const std::string& c : cols) {
      bool found = false;
      for (const std::string& k : key_cols_upper) {
        if (ToUpper(c) == k) found = true;
      }
      if (!found) return false;
    }
    return true;
  };
  for (const auto& cols : table->UniqueIndexColumns()) {
    if (matches(cols)) return cols;
  }
  for (const auto& cols : table->SecondaryIndexColumns()) {
    if (matches(cols)) return cols;
  }
  return std::nullopt;
}

/// One join position of a walked permutation.
struct JoinStep {
  double left_rows = 0;  // estimated rows accumulated before this join
  double out_rows = 0;   // estimated rows surviving it
  bool has_equi = false;
  double hash_cost = 0;
  double index_loop_cost = 0;  // infinity when no covering index exists
  std::vector<std::string> index_columns;  // covering index, if any
};

/// Estimated total cost of executing the scans in `perm` order (perm maps
/// exec position -> FROM index). Fills `steps` (indexed by exec position
/// minus one) when non-null.
double WalkPermutation(const std::vector<size_t>& perm,
                       const std::vector<ScanPlan>& prepared,
                       const std::vector<AccessEstimate>& est,
                       const std::vector<EquiPair>& equis,
                       const std::vector<const Conjunct*>& multi_residual,
                       const std::vector<AliasSchema>& aliases,
                       std::vector<JoinStep>* steps) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<size_t> pos(perm.size());
  for (size_t p = 0; p < perm.size(); ++p) pos[perm[p]] = p;
  double rows = est[perm[0]].est_rows;
  double cost = est[perm[0]].scan_cost;
  for (size_t p = 1; p < perm.size(); ++p) {
    size_t f = perm[p];
    double b_rows = est[f].est_rows;
    double out = rows * b_rows;
    JoinStep step;
    step.left_rows = rows;
    std::vector<std::string> right_cols_upper;
    for (const EquiPair& eq : equis) {
      size_t last = std::max(pos[eq.fa], pos[eq.fb]);
      if (last != p) continue;
      step.has_equi = true;
      bool right_is_a = pos[eq.fa] == p;
      size_t right_f = right_is_a ? eq.fa : eq.fb;
      size_t left_f = right_is_a ? eq.fb : eq.fa;
      size_t right_col = right_is_a ? eq.col_a : eq.col_b;
      size_t left_col = right_is_a ? eq.col_b : eq.col_a;
      // Classic equi-join cardinality: divide by the larger key domain.
      out /= std::max(
          {NdvOf(aliases[right_f].table, right_col, est[right_f].est_rows),
           NdvOf(aliases[left_f].table, left_col, est[left_f].est_rows),
           1.0});
      right_cols_upper.push_back(
          ToUpper(aliases[right_f].table->def().columns[right_col].name));
    }
    for (const Conjunct* c : multi_residual) {
      size_t last = 0;
      for (size_t a : c->aliases) last = std::max(last, pos[a]);
      if (last == p) out *= kDefaultSelectivity;
    }
    double step_cost;
    if (step.has_equi) {
      // Hash join: materialise + hash the right side (2x build factor for
      // construction and memory), probe once per accumulated row.
      step.hash_cost = est[f].scan_cost + 2.0 * b_rows + rows + out;
      step.index_loop_cost = kInf;
      if (prepared[f].access == ScanPlan::Access::kSeqScan) {
        std::optional<std::vector<std::string>> idx =
            FindExactIndex(prepared[f].table, right_cols_upper);
        if (idx.has_value()) {
          // Index loop: no right-side materialisation at all; one probe
          // (charged 2x a hash probe for the tree descent) per
          // accumulated row.
          step.index_loop_cost = 2.0 * rows + out;
          step.index_columns = std::move(*idx);
        }
      }
      step_cost = std::min(step.hash_cost, step.index_loop_cost);
    } else {
      // Nested loop: cross product, residual filtering per combined row.
      step_cost = est[f].scan_cost + rows * b_rows;
    }
    cost += step_cost;
    rows = std::max(out, 0.0);
    step.out_rows = rows;
    if (steps != nullptr) (*steps)[p - 1] = std::move(step);
  }
  return cost;
}

}  // namespace

Result<SelectPlan> PlanSelect(const SelectStmt& stmt,
                              const TableLookup& lookup,
                              const PlannerOptions& options) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  SelectPlan plan;
  plan.stmt = &stmt;
  std::vector<AliasSchema> aliases;
  std::vector<ScanPlan> prepared;  // in FROM order until assembly
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    const TableRef& ref = stmt.from[i];
    EASIA_ASSIGN_OR_RETURN(const Table* table, lookup(ref.table));
    aliases.push_back({ref.alias, table});
    ScanPlan scan;
    scan.table = table;
    scan.alias = ref.alias;
    scan.from_index = i;
    prepared.push_back(std::move(scan));
  }
  size_t n = prepared.size();

  // --- Gather conjuncts from WHERE and every ON condition ---
  std::vector<Conjunct> conjuncts;
  std::vector<const Expr*> unresolved_where;
  // ON conditions kept whole at their syntactic join (any part failed to
  // resolve, or referenced a table joined later). These pin the plan to
  // FROM order: the unplanned executor evaluates them over exactly the
  // tables joined so far, and moving tables around would change that set.
  std::vector<std::pair<size_t, const Expr*>> forced_on;
  if (stmt.where != nullptr) {
    std::vector<const Expr*> parts;
    SplitConjuncts(*stmt.where, &parts);
    for (const Expr* e : parts) {
      Conjunct c;
      c.expr = e;
      if (!CollectAliases(*e, aliases, &c.aliases)) {
        // Unknown/ambiguous reference: leave the conjunct in the final
        // residual so evaluation reports the same error as before.
        unresolved_where.push_back(e);
        continue;
      }
      conjuncts.push_back(std::move(c));
    }
  }
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    const Expr* cond = stmt.from[i].join_condition.get();
    if (cond == nullptr) continue;
    std::vector<const Expr*> parts;
    SplitConjuncts(*cond, &parts);
    bool splittable = true;
    std::vector<Conjunct> local;
    for (const Expr* e : parts) {
      Conjunct c;
      c.expr = e;
      if (!CollectAliases(*e, aliases, &c.aliases) ||
          (!c.aliases.empty() && *c.aliases.rbegin() > i)) {
        splittable = false;
        break;
      }
      local.push_back(std::move(c));
    }
    if (!splittable) {
      forced_on.emplace_back(i, cond);
      continue;
    }
    for (Conjunct& c : local) conjuncts.push_back(std::move(c));
  }

  // --- Scan pushdown ---
  // Single-table conjuncts (from WHERE or an ON) are always safe to push
  // for inner joins: filtering the table early skips exactly the rows the
  // unplanned conjunct evaluation also skips.
  for (Conjunct& c : conjuncts) {
    if (c.aliases.size() == 1) {
      prepared[*c.aliases.begin()].pushed.push_back(c.expr);
      c.placed = true;
    }
  }

  // --- Access paths ---
  for (size_t i = 0; i < n; ++i) {
    ChooseAccessPath(&prepared[i], aliases, i);
  }

  // --- Columnar filter kernels ---
  // A columnar seq scan whose pushed conjuncts all convert runs the
  // vectorised filter instead of materialising every row. All-or-nothing:
  // partial conversion could change which conjunct errors first.
  for (size_t i = 0; i < n; ++i) {
    ScanPlan& scan = prepared[i];
    if (scan.access != ScanPlan::Access::kSeqScan || scan.pushed.empty() ||
        scan.table->storage_kind() != Table::StorageKind::kColumnar) {
      continue;
    }
    std::vector<store::ColPredicate> preds;
    bool all = true;
    for (const Expr* e : scan.pushed) {
      store::ColPredicate p;
      if (!ConvertToColPredicate(*e, aliases, i, &p)) {
        all = false;
        break;
      }
      preds.push_back(std::move(p));
    }
    if (all) {
      scan.kernel_filter = true;
      scan.kernel_predicates = std::move(preds);
    }
  }

  // --- Cardinality estimates (always computed: EXPLAIN ANALYZE shows
  // them even when cost-based choices are disabled) ---
  std::vector<AccessEstimate> est(n);
  for (size_t i = 0; i < n; ++i) {
    est[i] = EstimateScan(prepared[i], aliases, i);
    prepared[i].est_rows = est[i].est_rows;
  }

  // --- Classify the remaining conjuncts ---
  std::vector<EquiPair> equis;
  std::map<const Expr*, size_t> equi_index;
  std::vector<const Conjunct*> multi_residual;
  for (const Conjunct& c : conjuncts) {
    if (c.placed || c.aliases.empty()) continue;
    EquiPair eq;
    if (MatchEquiPair(*c.expr, aliases, &eq)) {
      equi_index[c.expr] = equis.size();
      equis.push_back(eq);
    } else {
      multi_residual.push_back(&c);
    }
  }

  // --- Aggregation / cutoff flags (needed before the order choice) ---
  bool aggregate_query = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && item.expr->ContainsAggregate()) {
      aggregate_query = true;
    }
  }
  bool cutoff_applies = stmt.limit >= 0 && stmt.order_by.empty() &&
                        !aggregate_query && !stmt.distinct;

  // --- Join order choice ---
  std::vector<size_t> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = i;
  std::vector<size_t> chosen = identity;
  // Reordering is off the table when: cost-based planning is disabled; a
  // forced ON condition pins tables to their syntactic positions; LIMIT
  // short-circuits row production (the cutoff must see rows in original
  // order, which a reordered plan only restores after producing them all);
  // or the FROM list is too long to enumerate (n! permutations).
  if (options.cost_based && n >= 2 && n <= 6 && forced_on.empty() &&
      !cutoff_applies) {
    double identity_cost = WalkPermutation(identity, prepared, est, equis,
                                           multi_residual, aliases, nullptr);
    std::vector<size_t> perm = identity;
    double best_cost = identity_cost;
    std::vector<size_t> best = identity;
    while (std::next_permutation(perm.begin(), perm.end())) {
      double cost = WalkPermutation(perm, prepared, est, equis,
                                    multi_residual, aliases, nullptr);
      if (cost < best_cost) {
        best_cost = cost;
        best = perm;
      }
    }
    if (best_cost < kReorderRatio * identity_cost &&
        identity_cost - best_cost > kMinCostGain) {
      chosen = best;
    }
  }
  std::vector<JoinStep> steps(n > 0 ? n - 1 : 0);
  if (n >= 2) {
    WalkPermutation(chosen, prepared, est, equis, multi_residual, aliases,
                    &steps);
  }

  // --- Assemble the plan in execution order ---
  plan.reordered = chosen != identity;
  std::vector<size_t> pos(n);  // FROM index -> exec position
  for (size_t p = 0; p < n; ++p) pos[chosen[p]] = p;
  for (size_t p = 0; p < n; ++p) {
    plan.scans.push_back(std::move(prepared[chosen[p]]));
  }
  plan.joins.resize(n > 0 ? n - 1 : 0);
  for (const auto& [from_idx, cond] : forced_on) {
    // forced_on pins identity order, so FROM index == exec position.
    plan.joins[from_idx - 1].residual.push_back(cond);
  }
  plan.residual_where = std::move(unresolved_where);
  for (const Conjunct& c : conjuncts) {
    if (c.placed) continue;
    if (c.aliases.empty()) {
      // Constant conjunct (no column refs): final residual.
      plan.residual_where.push_back(c.expr);
      continue;
    }
    size_t last = 0;  // latest exec position this conjunct touches
    for (size_t a : c.aliases) last = std::max(last, pos[a]);
    if (last == 0) {
      plan.residual_where.push_back(c.expr);
      continue;
    }
    auto eq_it = equi_index.find(c.expr);
    if (eq_it != equi_index.end()) {
      const EquiPair& eq = equis[eq_it->second];
      JoinPlan& join = plan.joins[last - 1];
      join.strategy = JoinPlan::Strategy::kHashJoin;
      bool right_is_a = pos[eq.fa] == last;
      join.left_keys.push_back(right_is_a ? eq.side_b : eq.side_a);
      join.right_keys.push_back(right_is_a ? eq.side_a : eq.side_b);
    } else {
      plan.joins[last - 1].residual.push_back(c.expr);
    }
  }

  // --- Join strategies: hash vs. index loop ---
  for (size_t p = 1; p < n; ++p) {
    JoinPlan& join = plan.joins[p - 1];
    const JoinStep& step = steps[p - 1];
    join.est_rows = step.out_rows;
    if (join.strategy != JoinPlan::Strategy::kHashJoin ||
        !options.cost_based || step.index_columns.empty() ||
        step.hash_cost - step.index_loop_cost <= kMinCostGain) {
      continue;
    }
    // Reorder the key pairs into the index's own column order; bail (keep
    // the hash join) unless the index columns cover the keys one-to-one.
    std::vector<const Expr*> lk, rk;
    std::vector<bool> used(join.right_keys.size(), false);
    for (const std::string& col : step.index_columns) {
      bool found = false;
      for (size_t k = 0; k < join.right_keys.size(); ++k) {
        if (!used[k] &&
            EqualsIgnoreCase(join.right_keys[k]->column, col)) {
          lk.push_back(join.left_keys[k]);
          rk.push_back(join.right_keys[k]);
          used[k] = true;
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    if (lk.size() != step.index_columns.size() ||
        lk.size() != join.left_keys.size()) {
      continue;
    }
    join.strategy = JoinPlan::Strategy::kIndexLoop;
    join.index_columns = step.index_columns;
    join.left_keys = std::move(lk);
    join.right_keys = std::move(rk);
  }

  // --- Aggregation ---
  plan.aggregate.present = aggregate_query;
  if (aggregate_query) PlanAggregateFastPath(stmt, aliases, &plan);

  // --- LIMIT short-circuit ---
  if (cutoff_applies) {
    plan.row_cutoff = stmt.limit + std::max<int64_t>(stmt.offset, 0);
  }
  return plan;
}

std::vector<std::string> SelectPlan::Describe() const {
  std::vector<std::string> lines;
  for (size_t i = 0; i < scans.size(); ++i) {
    const ScanPlan& scan = scans[i];
    std::string line =
        "scan " + scan.table->def().name + " AS " + scan.alias + ": ";
    switch (scan.access) {
      case ScanPlan::Access::kSeqScan:
        line += "seq scan";
        break;
      case ScanPlan::Access::kUniqueLookup:
        line += "unique lookup via (" + Join(scan.index_columns, ", ") + ")";
        break;
      case ScanPlan::Access::kIndexScan:
        line += "index scan via (" + Join(scan.index_columns, ", ") + ")";
        break;
      case ScanPlan::Access::kPrefixScan:
        line += "prefix scan via (" + Join(scan.index_columns, ", ") +
                "), prefix '" + scan.prefix + "'";
        break;
    }
    if (!scan.pushed.empty()) {
      line += ", pushed: " + DescribeExprList(scan.pushed);
      if (scan.kernel_filter) line += " [columnar filter]";
    }
    lines.push_back(std::move(line));
  }
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinPlan& join = joins[i];
    std::string line = "join " + scans[i + 1].alias + ": ";
    if (join.strategy == JoinPlan::Strategy::kHashJoin) {
      std::vector<std::string> keys;
      for (size_t k = 0; k < join.left_keys.size(); ++k) {
        keys.push_back(join.left_keys[k]->ToString() + " = " +
                       join.right_keys[k]->ToString());
      }
      line += "hash join on (" + Join(keys, ", ") + ")";
    } else if (join.strategy == JoinPlan::Strategy::kIndexLoop) {
      std::vector<std::string> keys;
      for (size_t k = 0; k < join.left_keys.size(); ++k) {
        keys.push_back(join.left_keys[k]->ToString() + " = " +
                       join.right_keys[k]->ToString());
      }
      line += "index loop join via (" + Join(join.index_columns, ", ") +
              ") on (" + Join(keys, ", ") + ")";
    } else {
      line += "nested loop";
    }
    if (!join.residual.empty()) {
      line += ", residual: " + DescribeExprList(join.residual);
    }
    lines.push_back(std::move(line));
  }
  if (!residual_where.empty()) {
    lines.push_back("where residual: " + DescribeExprList(residual_where));
  }
  if (aggregate.present && stmt != nullptr) {
    std::vector<std::string> parts;
    for (const SelectItem& item : stmt->items) {
      parts.push_back(item.star ? "*" : item.expr->ToString());
    }
    std::string line = "aggregate: " + Join(parts, ", ");
    if (!stmt->group_by.empty()) {
      std::vector<std::string> keys;
      for (const auto& g : stmt->group_by) keys.push_back(g->ToString());
      line += " group by (" + Join(keys, ", ") + ")";
    }
    line += aggregate.fast_path ? " [columnar fast path]" : " [row path]";
    lines.push_back(std::move(line));
  }
  if (row_cutoff >= 0) {
    lines.push_back(StrPrintf("limit short-circuit: %lld",
                              static_cast<long long>(row_cutoff)));
  }
  return lines;
}

}  // namespace easia::db
