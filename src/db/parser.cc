#include "db/parser.h"

#include "common/string_util.h"
#include "db/lexer.h"

namespace easia::db {

namespace {

class SqlParser {
 public:
  explicit SqlParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (ConsumeKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      EASIA_ASSIGN_OR_RETURN(stmt.select, ParseSelectBody());
    } else if (ConsumeKeyword("EXPLAIN")) {
      stmt.kind = Statement::Kind::kExplain;
      if (ConsumeKeyword("ANALYZE")) stmt.explain_analyze = true;
      EASIA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
      EASIA_ASSIGN_OR_RETURN(stmt.select, ParseSelectBody());
    } else if (ConsumeKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      EASIA_ASSIGN_OR_RETURN(stmt.insert, ParseInsertBody());
    } else if (ConsumeKeyword("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      EASIA_ASSIGN_OR_RETURN(stmt.update, ParseUpdateBody());
    } else if (ConsumeKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      EASIA_ASSIGN_OR_RETURN(stmt.del, ParseDeleteBody());
    } else if (ConsumeKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      EASIA_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTableBody());
    } else if (ConsumeKeyword("DROP")) {
      stmt.kind = Statement::Kind::kDropTable;
      EASIA_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      stmt.drop_table = std::make_unique<DropTableStmt>();
      EASIA_ASSIGN_OR_RETURN(stmt.drop_table->table, ExpectIdentifier());
    } else if (ConsumeKeyword("BEGIN")) {
      ConsumeKeyword("TRANSACTION") || ConsumeKeyword("WORK");
      stmt.kind = Statement::Kind::kBegin;
    } else if (ConsumeKeyword("COMMIT")) {
      ConsumeKeyword("TRANSACTION") || ConsumeKeyword("WORK");
      stmt.kind = Statement::Kind::kCommit;
    } else if (ConsumeKeyword("ROLLBACK")) {
      ConsumeKeyword("TRANSACTION") || ConsumeKeyword("WORK");
      stmt.kind = Statement::Kind::kRollback;
    } else if (ConsumeKeyword("COPY")) {
      stmt.kind = Statement::Kind::kCopy;
      EASIA_ASSIGN_OR_RETURN(stmt.copy, ParseCopyBody());
    } else {
      return Error("expected a SQL statement");
    }
    ConsumeSymbol(";");
    if (!AtEnd()) return Error("unexpected trailing tokens");
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseStandaloneExpression() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    if (!AtEnd()) return Error("unexpected trailing tokens after expression");
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t ahead) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  void Advance() {
    if (!AtEnd()) ++pos_;
  }

  Status Error(std::string_view msg) const {
    return Status::ParseError(StrPrintf("sql:%zu: %s (near '%s')",
                                        Peek().offset,
                                        std::string(msg).c_str(),
                                        Peek().text.c_str()));
  }

  bool CheckKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return Error("expected keyword " + std::string(kw));
    }
    return Status::OK();
  }

  bool CheckSymbol(std::string_view sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  bool ConsumeSymbol(std::string_view sym) {
    if (CheckSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) {
      return Error("expected '" + std::string(sym) + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected identifier");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  /// Matches a context word (identifier or keyword) case-insensitively —
  /// used for DATALINK options so their words stay unreserved.
  bool ConsumeWord(std::string_view word) {
    if ((Peek().kind == TokenKind::kIdentifier ||
         Peek().kind == TokenKind::kKeyword) &&
        EqualsIgnoreCase(Peek().text, word)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectWord(std::string_view word) {
    if (!ConsumeWord(word)) {
      return Error("expected " + std::string(word));
    }
    return Status::OK();
  }

  // ---- SELECT ----

  Result<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = ConsumeKeyword("DISTINCT");
    // Select list.
    while (true) {
      SelectItem item;
      if (ConsumeSymbol("*")) {
        item.star = true;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 PeekAt(1).kind == TokenKind::kSymbol &&
                 PeekAt(1).text == "." && PeekAt(2).kind == TokenKind::kSymbol &&
                 PeekAt(2).text == "*") {
        item.star = true;
        item.star_table = Peek().text;
        Advance();
        Advance();
        Advance();
      } else {
        EASIA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          EASIA_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().kind == TokenKind::kIdentifier) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt->items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    EASIA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    // FROM list with joins: base table, then any mix of "," refs and
    // "[INNER] JOIN ref ON expr".
    EASIA_ASSIGN_OR_RETURN(TableRef base, ParseTableRef());
    stmt->from.push_back(std::move(base));
    while (true) {
      if (ConsumeSymbol(",")) {
        EASIA_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      if (ConsumeKeyword("INNER")) {
        EASIA_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      } else if (!ConsumeKeyword("JOIN")) {
        break;
      }
      EASIA_ASSIGN_OR_RETURN(TableRef joined, ParseTableRef());
      EASIA_RETURN_IF_ERROR(ExpectKeyword("ON"));
      EASIA_ASSIGN_OR_RETURN(joined.join_condition, ParseExpr());
      stmt->from.push_back(std::move(joined));
    }
    if (ConsumeKeyword("WHERE")) {
      EASIA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      EASIA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      EASIA_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      EASIA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        EASIA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      EASIA_ASSIGN_OR_RETURN(stmt->limit, ExpectIntegerLiteral());
      if (ConsumeKeyword("OFFSET")) {
        EASIA_ASSIGN_OR_RETURN(stmt->offset, ExpectIntegerLiteral());
      }
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    EASIA_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    if (ConsumeKeyword("AS")) {
      EASIA_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().kind == TokenKind::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    } else {
      ref.alias = ref.table;
    }
    return ref;
  }

  Result<int64_t> ExpectIntegerLiteral() {
    if (Peek().kind != TokenKind::kInteger) {
      return Error("expected integer literal");
    }
    EASIA_ASSIGN_OR_RETURN(int64_t v, ParseInt64(Peek().literal));
    Advance();
    return v;
  }

  // ---- INSERT ----

  Result<std::unique_ptr<InsertStmt>> ParseInsertBody() {
    EASIA_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    EASIA_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (ConsumeSymbol("(")) {
      while (true) {
        EASIA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt->columns.push_back(std::move(col));
        if (!ConsumeSymbol(",")) break;
      }
      EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    EASIA_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<std::unique_ptr<Expr>> row;
      while (true) {
        EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        row.push_back(std::move(e));
        if (!ConsumeSymbol(",")) break;
      }
      EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    return stmt;
  }

  // ---- UPDATE ----

  Result<std::unique_ptr<UpdateStmt>> ParseUpdateBody() {
    auto stmt = std::make_unique<UpdateStmt>();
    EASIA_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    EASIA_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      EASIA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      EASIA_RETURN_IF_ERROR(ExpectSymbol("="));
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
      if (!ConsumeSymbol(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      EASIA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  // ---- DELETE ----

  Result<std::unique_ptr<DeleteStmt>> ParseDeleteBody() {
    EASIA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    EASIA_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      EASIA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  // ---- CREATE TABLE ----

  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTableBody() {
    EASIA_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStmt>();
    EASIA_ASSIGN_OR_RETURN(stmt->def.name, ExpectIdentifier());
    EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      if (ConsumeKeyword("PRIMARY")) {
        EASIA_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          EASIA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          stmt->def.primary_key.push_back(std::move(col));
          if (!ConsumeSymbol(",")) break;
        }
        EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else if (ConsumeKeyword("FOREIGN")) {
        EASIA_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        ForeignKeyDef fk;
        EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          EASIA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          fk.columns.push_back(std::move(col));
          if (!ConsumeSymbol(",")) break;
        }
        EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
        EASIA_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
        EASIA_ASSIGN_OR_RETURN(fk.ref_table, ExpectIdentifier());
        EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          EASIA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          fk.ref_columns.push_back(std::move(col));
          if (!ConsumeSymbol(",")) break;
        }
        EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt->def.foreign_keys.push_back(std::move(fk));
      } else if (ConsumeKeyword("UNIQUE")) {
        std::vector<std::string> cols;
        EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          EASIA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          cols.push_back(std::move(col));
          if (!ConsumeSymbol(",")) break;
        }
        EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt->def.unique_constraints.push_back(std::move(cols));
      } else {
        EASIA_ASSIGN_OR_RETURN(ColumnDef col, ParseColumnDef());
        stmt->def.columns.push_back(std::move(col));
      }
      if (!ConsumeSymbol(",")) break;
    }
    EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
    // Optional storage / partitioning clauses in either order;
    // STORE/COLUMNAR/PARTITION/HASH/PARTITIONS stay contextual words.
    while (true) {
      if (ConsumeWord("STORE")) {
        EASIA_RETURN_IF_ERROR(ExpectWord("COLUMNAR"));
        stmt->def.columnar = true;
      } else if (ConsumeWord("PARTITION")) {
        EASIA_RETURN_IF_ERROR(ExpectKeyword("BY"));
        EASIA_RETURN_IF_ERROR(ExpectWord("HASH"));
        EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
        EASIA_ASSIGN_OR_RETURN(stmt->def.partition_by, ExpectIdentifier());
        EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
        EASIA_RETURN_IF_ERROR(ExpectWord("PARTITIONS"));
        EASIA_ASSIGN_OR_RETURN(int64_t n, ExpectIntegerLiteral());
        if (n < 1 || n > 1024) {
          return Error("PARTITIONS count must be between 1 and 1024");
        }
        stmt->def.partitions = static_cast<int>(n);
      } else {
        break;
      }
    }
    return stmt;
  }

  // ---- COPY (binary bulk ingest) ----

  Result<std::unique_ptr<CopyStmt>> ParseCopyBody() {
    auto stmt = std::make_unique<CopyStmt>();
    EASIA_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    EASIA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().kind != TokenKind::kString) {
      return Error("expected a quoted file path");
    }
    stmt->path = Peek().literal;
    Advance();
    return stmt;
  }

  Result<ColumnDef> ParseColumnDef() {
    ColumnDef col;
    EASIA_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
    if (ConsumeKeyword("DATALINK")) {
      col.type = DataType::kDatalink;
      EASIA_ASSIGN_OR_RETURN(col.datalink, ParseDatalinkOptions());
    } else {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected column type");
      }
      EASIA_ASSIGN_OR_RETURN(col.type, DataTypeFromName(Peek().text));
      Advance();
      if (ConsumeSymbol("(")) {
        EASIA_ASSIGN_OR_RETURN(int64_t size, ExpectIntegerLiteral());
        if (size < 0) return Error("negative type size");
        col.size = static_cast<size_t>(size);
        EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    }
    while (true) {
      if (ConsumeKeyword("NOT")) {
        EASIA_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        col.not_null = true;
      } else if (ConsumeKeyword("PRIMARY")) {
        EASIA_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        inline_primary_key_ = col.name;
      } else {
        break;
      }
    }
    return col;
  }

  Result<DatalinkOptions> ParseDatalinkOptions() {
    DatalinkOptions opts;
    // LINKTYPE URL (optional, URL is the only link type).
    if (ConsumeWord("LINKTYPE")) {
      EASIA_RETURN_IF_ERROR(ExpectWord("URL"));
    }
    while (true) {
      if (ConsumeWord("FILE")) {
        EASIA_RETURN_IF_ERROR(ExpectWord("LINK"));
        EASIA_RETURN_IF_ERROR(ExpectWord("CONTROL"));
        opts.file_link_control = true;
      } else if (CheckKeyword("NOT") &&
                 EqualsIgnoreCase(PeekAt(1).text, "FILE")) {
        // NO FILE LINK CONTROL is spelled "NO" in the draft; accept both.
        Advance();
        EASIA_RETURN_IF_ERROR(ExpectWord("FILE"));
        EASIA_RETURN_IF_ERROR(ExpectWord("LINK"));
        EASIA_RETURN_IF_ERROR(ExpectWord("CONTROL"));
        opts.file_link_control = false;
      } else if (ConsumeWord("NO")) {
        EASIA_RETURN_IF_ERROR(ExpectWord("FILE"));
        EASIA_RETURN_IF_ERROR(ExpectWord("LINK"));
        EASIA_RETURN_IF_ERROR(ExpectWord("CONTROL"));
        opts.file_link_control = false;
      } else if (ConsumeWord("INTEGRITY")) {
        if (ConsumeWord("ALL")) {
          opts.integrity = DatalinkOptions::Integrity::kAll;
        } else if (ConsumeWord("SELECTIVE")) {
          opts.integrity = DatalinkOptions::Integrity::kSelective;
        } else if (ConsumeWord("NONE")) {
          opts.integrity = DatalinkOptions::Integrity::kNone;
        } else {
          return Error("expected ALL, SELECTIVE or NONE after INTEGRITY");
        }
      } else if (ConsumeWord("READ")) {
        EASIA_RETURN_IF_ERROR(ExpectWord("PERMISSION"));
        if (ConsumeWord("DB")) {
          opts.read_permission = DatalinkOptions::ReadPermission::kDb;
        } else if (ConsumeWord("FS")) {
          opts.read_permission = DatalinkOptions::ReadPermission::kFs;
        } else {
          return Error("expected DB or FS after READ PERMISSION");
        }
      } else if (ConsumeWord("WRITE")) {
        EASIA_RETURN_IF_ERROR(ExpectWord("PERMISSION"));
        if (ConsumeWord("BLOCKED")) {
          opts.write_permission = DatalinkOptions::WritePermission::kBlocked;
        } else if (ConsumeWord("FS")) {
          opts.write_permission = DatalinkOptions::WritePermission::kFs;
        } else {
          return Error("expected BLOCKED or FS after WRITE PERMISSION");
        }
      } else if (ConsumeWord("RECOVERY")) {
        if (ConsumeWord("YES")) {
          opts.recovery = DatalinkOptions::Recovery::kYes;
        } else if (ConsumeWord("NO")) {
          opts.recovery = DatalinkOptions::Recovery::kNo;
        } else {
          return Error("expected YES or NO after RECOVERY");
        }
      } else if (ConsumeWord("ON")) {
        EASIA_RETURN_IF_ERROR(ExpectWord("UNLINK"));
        if (ConsumeWord("RESTORE")) {
          opts.on_unlink = DatalinkOptions::OnUnlink::kRestore;
        } else if (ConsumeWord("DELETE")) {
          opts.on_unlink = DatalinkOptions::OnUnlink::kDelete;
        } else {
          return Error("expected RESTORE or DELETE after ON UNLINK");
        }
      } else {
        break;
      }
    }
    return opts;
  }

  // ---- Expressions (precedence climbing) ----

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAnd());
      left = Expr::MakeBinary(Expr::Op::kOr, std::move(left),
                              std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseNot());
    while (ConsumeKeyword("AND")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseNot());
      left = Expr::MakeBinary(Expr::Op::kAnd, std::move(left),
                              std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = Expr::Op::kNot;
      e->left = std::move(inner);
      return e;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAdditive());
    // IS [NOT] NULL
    if (ConsumeKeyword("IS")) {
      bool negated = ConsumeKeyword("NOT");
      EASIA_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIsNull;
      e->negated = negated;
      e->left = std::move(left);
      return e;
    }
    bool negated = false;
    if (CheckKeyword("NOT") &&
        (PeekAt(1).text == "LIKE" || PeekAt(1).text == "IN")) {
      Advance();
      negated = true;
    }
    if (ConsumeKeyword("LIKE")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAdditive());
      return Expr::MakeBinary(negated ? Expr::Op::kNotLike : Expr::Op::kLike,
                              std::move(left), std::move(right));
    }
    if (ConsumeKeyword("IN")) {
      EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInList;
      e->negated = negated;
      e->left = std::move(left);
      while (true) {
        EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> item, ParseExpr());
        e->args.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
      EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (negated) return Error("dangling NOT");
    struct {
      const char* sym;
      Expr::Op op;
    } static constexpr kCmps[] = {
        {"=", Expr::Op::kEq},  {"<>", Expr::Op::kNe}, {"<=", Expr::Op::kLe},
        {">=", Expr::Op::kGe}, {"<", Expr::Op::kLt},  {">", Expr::Op::kGt},
    };
    for (const auto& cmp : kCmps) {
      if (ConsumeSymbol(cmp.sym)) {
        EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAdditive());
        return Expr::MakeBinary(cmp.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseMultiplicative());
    while (true) {
      if (ConsumeSymbol("+")) {
        EASIA_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
        left = Expr::MakeBinary(Expr::Op::kAdd, std::move(left),
                                std::move(right));
      } else if (ConsumeSymbol("-")) {
        EASIA_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
        left = Expr::MakeBinary(Expr::Op::kSub, std::move(left),
                                std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseUnary());
    while (true) {
      if (ConsumeSymbol("*")) {
        EASIA_ASSIGN_OR_RETURN(auto right, ParseUnary());
        left = Expr::MakeBinary(Expr::Op::kMul, std::move(left),
                                std::move(right));
      } else if (ConsumeSymbol("/")) {
        EASIA_ASSIGN_OR_RETURN(auto right, ParseUnary());
        left = Expr::MakeBinary(Expr::Op::kDiv, std::move(left),
                                std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (ConsumeSymbol("-")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseUnary());
      if (inner->kind == Expr::Kind::kLiteral &&
          inner->literal.IsNumericKind()) {
        // Fold negative literals.
        if (inner->literal.type() == DataType::kDouble) {
          inner->literal = Value::Double(-inner->literal.AsDouble());
        } else {
          inner->literal = Value::Integer(-inner->literal.AsInt());
        }
        return inner;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = Expr::Op::kNeg;
      e->left = std::move(inner);
      return e;
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInteger: {
        EASIA_ASSIGN_OR_RETURN(int64_t v, ParseInt64(tok.literal));
        Advance();
        return Expr::MakeLiteral(Value::Integer(v));
      }
      case TokenKind::kDouble: {
        EASIA_ASSIGN_OR_RETURN(double v, ParseDouble(tok.literal));
        Advance();
        return Expr::MakeLiteral(Value::Double(v));
      }
      case TokenKind::kString: {
        std::string s = tok.literal;
        Advance();
        return Expr::MakeLiteral(Value::Varchar(std::move(s)));
      }
      case TokenKind::kKeyword:
        if (tok.text == "NULL") {
          Advance();
          return Expr::MakeLiteral(Value::Null());
        }
        return Error("unexpected keyword in expression");
      case TokenKind::kSymbol:
        if (tok.text == "(") {
          Advance();
          EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
          EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        return Error("unexpected symbol in expression");
      case TokenKind::kIdentifier: {
        std::string first = tok.text;
        Advance();
        // Function call?
        if (CheckSymbol("(")) {
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kCall;
          e->func = ToUpper(first);
          if (ConsumeSymbol("*")) {
            e->star = true;
            EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
            return e;
          }
          if (!ConsumeSymbol(")")) {
            while (true) {
              EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
              e->args.push_back(std::move(arg));
              if (!ConsumeSymbol(",")) break;
            }
            EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
          }
          return e;
        }
        // Qualified column?
        if (CheckSymbol(".")) {
          Advance();
          EASIA_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier());
          return Expr::MakeColumn(std::move(first), std::move(second));
        }
        return Expr::MakeColumn("", std::move(first));
      }
      case TokenKind::kEnd:
        return Error("unexpected end of SQL");
    }
    return Error("unexpected token");
  }

 public:
  /// Set when the column list used an inline `PRIMARY KEY` modifier.
  std::string inline_primary_key_;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view sql) {
  EASIA_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  SqlParser parser(std::move(tokens));
  EASIA_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  if (stmt.kind == Statement::Kind::kCreateTable &&
      !parser.inline_primary_key_.empty() &&
      stmt.create_table->def.primary_key.empty()) {
    stmt.create_table->def.primary_key.push_back(parser.inline_primary_key_);
  }
  return stmt;
}

Result<std::unique_ptr<Expr>> ParseExpression(std::string_view text) {
  EASIA_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(text));
  SqlParser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace easia::db
