#ifndef EASIA_DB_VALUE_H_
#define EASIA_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace easia::db {

/// SQL data types supported by the EASIA archive engine. BLOB/CLOB hold
/// small objects inside the database (rematerialised over HTTP on demand);
/// DATALINK references a large external file managed under SQL/MED rules.
enum class DataType {
  kInteger,
  kDouble,
  kVarchar,
  kTimestamp,  // seconds since epoch, integer-valued
  kBlob,       // binary, stored in-row
  kClob,       // character large object, stored in-row
  kDatalink,   // SQL/MED external file reference
};

std::string_view DataTypeName(DataType type);
Result<DataType> DataTypeFromName(std::string_view name);

/// A single SQL value: typed payload or NULL. Integers and timestamps share
/// the int64 slot; varchar/blob/clob/datalink share the string slot (for a
/// DATALINK this is the unlinked URL form `http://host/fs/path/file`).
class Value {
 public:
  /// NULL of unspecified type (takes the type of its column).
  Value() : null_(true), type_(DataType::kVarchar) {}

  static Value Null() { return Value(); }
  static Value Integer(int64_t v);
  static Value Double(double v);
  static Value Varchar(std::string v);
  static Value Timestamp(int64_t epoch_seconds);
  static Value Blob(std::string bytes);
  static Value Clob(std::string text);
  static Value Datalink(std::string url);

  bool is_null() const { return null_; }
  DataType type() const { return type_; }

  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == DataType::kDouble ? double_ : static_cast<double>(int_);
  }
  const std::string& AsString() const { return str_; }

  /// True when the payload lives in the string slot.
  bool IsStringKind() const {
    return type_ == DataType::kVarchar || type_ == DataType::kBlob ||
           type_ == DataType::kClob || type_ == DataType::kDatalink;
  }
  bool IsNumericKind() const {
    return type_ == DataType::kInteger || type_ == DataType::kDouble ||
           type_ == DataType::kTimestamp;
  }

  /// Three-way comparison for ORDER BY / index keys. NULLs sort first;
  /// numeric kinds compare numerically across integer/double/timestamp;
  /// string kinds compare lexicographically. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Display form ("NULL", "42", "3.14", "abc"). BLOBs render as
  /// "<blob N bytes>"; the UI layer replaces large-object cells with links.
  std::string ToDisplayString() const;

  /// SQL literal form with quoting/escaping suitable for re-parsing.
  std::string ToSqlLiteral() const;

  /// Stable key encoding used by unique indexes (type-tagged, unambiguous).
  std::string ToKeyString() const;

  /// Coerces this value to `target` (e.g. integer literal into a DOUBLE
  /// column, string into CLOB). Fails when lossy or nonsensical.
  Result<Value> CoerceTo(DataType target) const;

 private:
  bool null_ = false;
  DataType type_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
};

}  // namespace easia::db

#endif  // EASIA_DB_VALUE_H_
