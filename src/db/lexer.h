#ifndef EASIA_DB_LEXER_H_
#define EASIA_DB_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace easia::db {

/// SQL token kinds. Keywords are recognised case-insensitively and carry
/// their upper-cased text.
enum class TokenKind {
  kKeyword,
  kIdentifier,
  kInteger,
  kDouble,
  kString,
  kSymbol,  // ( ) , . = <> <= >= < > + - * / ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // keyword (upper-cased), identifier, symbol
  std::string literal;  // string contents / numeric text
  size_t offset = 0;    // byte offset for error messages
};

/// Tokenises SQL text. Comments (`-- ...` to end of line) are skipped.
Result<std::vector<Token>> LexSql(std::string_view sql);

/// True if `word` (upper-cased) is a reserved SQL keyword in this dialect.
bool IsSqlKeyword(std::string_view upper_word);

}  // namespace easia::db

#endif  // EASIA_DB_LEXER_H_
