#ifndef EASIA_DB_AST_H_
#define EASIA_DB_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace easia::db {

/// A SQL expression node. One struct with a kind tag keeps the parser and
/// evaluator compact; unused fields stay empty.
struct Expr {
  enum class Kind {
    kLiteral,   // literal
    kColumn,    // [table.]column
    kUnary,     // NOT e, -e
    kBinary,    // e op e
    kIsNull,    // e IS [NOT] NULL
    kInList,    // e [NOT] IN (v, ...)
    kCall,      // name(args) or COUNT(*)
  };

  enum class Op {
    kNone,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr,
    kAdd, kSub, kMul, kDiv,
    kLike, kNotLike,
    kNot, kNeg,
  };

  Kind kind = Kind::kLiteral;
  Op op = Op::kNone;
  Value literal;
  std::string table;   // optional qualifier for kColumn
  std::string column;  // kColumn
  std::string func;    // kCall (upper-cased)
  bool star = false;   // COUNT(*)
  bool negated = false;  // IS NOT NULL / NOT IN
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;
  std::vector<std::unique_ptr<Expr>> args;  // kInList / kCall

  /// Canonical text form, used for GROUP BY matching and diagnostics.
  std::string ToString() const;

  /// True when this subtree contains an aggregate function call.
  bool ContainsAggregate() const;

  std::unique_ptr<Expr> Clone() const;

  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string table,
                                          std::string column);
  static std::unique_ptr<Expr> MakeBinary(Op op, std::unique_ptr<Expr> left,
                                          std::unique_ptr<Expr> right);
};

/// True for COUNT/SUM/AVG/MIN/MAX.
bool IsAggregateFunction(std::string_view name);

struct SelectItem {
  bool star = false;        // SELECT * or table.*
  std::string star_table;   // qualifier for table.*
  std::unique_ptr<Expr> expr;
  std::string alias;
};

/// An entry in the FROM clause. The first entry has no join condition;
/// subsequent entries are INNER JOINed with `join_condition` (nullptr for
/// comma-style cross joins, filtered by WHERE).
struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name
  std::unique_ptr<Expr> join_condition;
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
  int64_t offset = 0;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = positional
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

struct CreateTableStmt {
  TableDef def;
};

struct DropTableStmt {
  std::string table;
};

/// `COPY <table> FROM '<path>'`: binary bulk ingest from a bulk file
/// (store::BulkFile format) through the io::Env seam.
struct CopyStmt {
  std::string table;
  std::string path;
};

/// A parsed SQL statement.
struct Statement {
  enum class Kind {
    kSelect,
    kExplain,  // EXPLAIN SELECT ... — plan stored in `select`
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kDropTable,
    kBegin,
    kCommit,
    kRollback,
    kCopy,
  };

  Kind kind;
  /// kExplain only: EXPLAIN ANALYZE — execute the plan and annotate each
  /// operator with estimated vs. actual row counts and wall time.
  bool explain_analyze = false;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<CopyStmt> copy;
};

}  // namespace easia::db

#endif  // EASIA_DB_AST_H_
