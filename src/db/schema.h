#ifndef EASIA_DB_SCHEMA_H_
#define EASIA_DB_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/datalink_options.h"
#include "db/value.h"

namespace easia::db {

/// One column definition.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kVarchar;
  /// Maximum length for VARCHAR (0 = unbounded).
  size_t size = 0;
  bool not_null = false;
  /// Present only for DATALINK columns.
  std::optional<DatalinkOptions> datalink;

  std::string ToSql() const;
};

/// A foreign-key constraint: `columns` in this table reference
/// `ref_columns` in `ref_table`. Deletion of referenced rows is RESTRICTed.
struct ForeignKeyDef {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

/// Full definition of one table.
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKeyDef> foreign_keys;
  std::vector<std::vector<std::string>> unique_constraints;
  /// True for `CREATE TABLE ... STORE COLUMNAR`: the table is hosted in
  /// columnar pages (store::ColumnStore) instead of the row map.
  bool columnar = false;
  /// For `CREATE TABLE ... PARTITION BY HASH(col) PARTITIONS n`: the hash
  /// partitioning column (must be the table's single primary-key column)
  /// and partition count. Empty/0 for unpartitioned tables. A single-node
  /// Database stores the clause as metadata only; the shard coordinator
  /// (src/db/shard) routes rows by it.
  std::string partition_by;
  int partitions = 0;

  /// Index of a column by name (case-insensitive per SQL), or error.
  Result<size_t> ColumnIndex(std::string_view column_name) const;
  const ColumnDef* FindColumn(std::string_view column_name) const;
  bool IsPrimaryKeyColumn(std::string_view column_name) const;

  std::string ToSql() const;
};

/// References to a table.column from other tables' foreign keys — the
/// metadata behind EASIA's *primary key browsing* ("SIMULATION_KEY links to
/// three tables where it appears as a foreign key").
struct InboundReference {
  std::string from_table;
  std::string from_column;
};

/// The system catalogue: every table definition plus derived FK metadata.
/// The XUIS generator walks this to build the default user interface.
class Catalog {
 public:
  Status AddTable(TableDef def);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  Result<const TableDef*> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// All FK references pointing at `table.column` from other tables.
  std::vector<InboundReference> ReferencesTo(const std::string& table,
                                             const std::string& column) const;

  /// The FK on `table.column`, if that column is (the single column of) a
  /// foreign key. Multi-column FKs report through their first column.
  const ForeignKeyDef* ForeignKeyOn(const std::string& table,
                                    const std::string& column) const;

  size_t TableCount() const { return tables_.size(); }

 private:
  std::map<std::string, TableDef> tables_;
};

}  // namespace easia::db

#endif  // EASIA_DB_SCHEMA_H_
