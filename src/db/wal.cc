#include "db/wal.h"

#include "common/coding.h"
#include "common/string_util.h"

namespace easia::db {

std::string WalRecord::Encode() const {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  PutU64(&out, txn_id);
  PutLengthPrefixed(&out, table);
  PutU64(&out, row_id);
  EncodeRow(&out, row);
  EncodeRow(&out, old_row);
  PutLengthPrefixed(&out, ddl_sql);
  if (type == WalRecordType::kBulkLoad) {
    PutU32(&out, static_cast<uint32_t>(bulk_rows.size()));
    for (const Row& r : bulk_rows) EncodeRow(&out, r);
  }
  return out;
}

Result<WalRecord> WalRecord::Decode(std::string_view payload) {
  Decoder dec(payload);
  WalRecord rec;
  EASIA_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type < 1 || type > 9) return Status::Corruption("wal: bad record type");
  rec.type = static_cast<WalRecordType>(type);
  EASIA_ASSIGN_OR_RETURN(rec.txn_id, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(rec.table, dec.GetLengthPrefixed());
  EASIA_ASSIGN_OR_RETURN(rec.row_id, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(rec.row, DecodeRow(&dec));
  EASIA_ASSIGN_OR_RETURN(rec.old_row, DecodeRow(&dec));
  EASIA_ASSIGN_OR_RETURN(rec.ddl_sql, dec.GetLengthPrefixed());
  if (rec.type == WalRecordType::kBulkLoad) {
    EASIA_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
    rec.bulk_rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      EASIA_ASSIGN_OR_RETURN(Row r, DecodeRow(&dec));
      rec.bulk_rows.push_back(std::move(r));
    }
  }
  if (!dec.Done()) return Status::Corruption("wal: trailing bytes in record");
  return rec;
}

Result<WalWriter> WalWriter::Open(const std::string& path) {
  return Open(io::RealEnv(), path);
}

Result<WalWriter> WalWriter::Open(io::Env* env, const std::string& path) {
  EASIA_ASSIGN_OR_RETURN(std::unique_ptr<WalFile> file,
                         env->OpenAppend(path));
  return WalWriter(std::move(file));
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("wal: writer closed");
  std::string frame;
  io::AppendFrame(&frame, record.Encode());
  return file_->Append(frame).WithContext("wal");
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::Internal("wal: writer closed");
  return file_->Sync().WithContext("wal");
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path) {
  return ReadWal(io::RealEnv(), path);
}

Result<std::vector<WalRecord>> ReadWal(io::Env* env,
                                       const std::string& path) {
  std::vector<WalRecord> records;
  Result<std::string> contents = env->ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().IsNotFound()) return records;  // no log yet
    return contents.status();
  }
  for (std::string_view payload : io::ScanFrames(*contents)) {
    Result<WalRecord> rec = WalRecord::Decode(payload);
    if (!rec.ok()) break;  // corrupt tail
    records.push_back(std::move(*rec));
  }
  return records;
}

}  // namespace easia::db
