#include "db/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "common/string_util.h"

namespace easia::db {

std::string WalRecord::Encode() const {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  PutU64(&out, txn_id);
  PutLengthPrefixed(&out, table);
  PutU64(&out, row_id);
  EncodeRow(&out, row);
  EncodeRow(&out, old_row);
  PutLengthPrefixed(&out, ddl_sql);
  return out;
}

Result<WalRecord> WalRecord::Decode(std::string_view payload) {
  Decoder dec(payload);
  WalRecord rec;
  EASIA_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type < 1 || type > 8) return Status::Corruption("wal: bad record type");
  rec.type = static_cast<WalRecordType>(type);
  EASIA_ASSIGN_OR_RETURN(rec.txn_id, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(rec.table, dec.GetLengthPrefixed());
  EASIA_ASSIGN_OR_RETURN(rec.row_id, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(rec.row, DecodeRow(&dec));
  EASIA_ASSIGN_OR_RETURN(rec.old_row, DecodeRow(&dec));
  EASIA_ASSIGN_OR_RETURN(rec.ddl_sql, dec.GetLengthPrefixed());
  if (!dec.Done()) return Status::Corruption("wal: trailing bytes in record");
  return rec;
}

Result<WalWriter> WalWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("wal: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  return WalWriter(f);
}

WalWriter::WalWriter(WalWriter&& other) noexcept : file_(other.file_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("wal: writer closed");
  std::string payload = record.Encode();
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame += payload;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("wal: short write");
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::Internal("wal: writer closed");
  if (std::fflush(file_) != 0) return Status::Internal("wal: flush failed");
  // fflush only reaches the OS page cache; fsync makes the commit durable
  // against an OS crash or power loss, not just a process crash.
  if (::fsync(::fileno(file_)) != 0) {
    return Status::Internal(std::string("wal: fsync failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path) {
  std::vector<WalRecord> records;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return records;  // no log yet
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  size_t pos = 0;
  while (pos + 8 <= contents.size()) {
    Decoder header(std::string_view(contents).substr(pos, 8));
    uint32_t len = header.GetU32().value();
    uint32_t crc = header.GetU32().value();
    if (pos + 8 + len > contents.size()) break;  // torn tail
    std::string_view payload =
        std::string_view(contents).substr(pos + 8, len);
    if (Crc32(payload) != crc) break;  // corrupt tail
    Result<WalRecord> rec = WalRecord::Decode(payload);
    if (!rec.ok()) break;
    records.push_back(std::move(*rec));
    pos += 8 + len;
  }
  return records;
}

}  // namespace easia::db
