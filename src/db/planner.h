#ifndef EASIA_DB_PLANNER_H_
#define EASIA_DB_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/ast.h"
#include "db/executor.h"
#include "db/table.h"

namespace easia::db {

/// How one FROM-clause table is read.
struct ScanPlan {
  enum class Access {
    kSeqScan,       // full table scan
    kUniqueLookup,  // point fetch through a unique index (PK or UNIQUE)
    kIndexScan,     // non-unique secondary index (FK columns)
    kPrefixScan,    // radix prefix index over a LIKE 'prefix%' conjunct
  };

  const Table* table = nullptr;
  std::string alias;
  /// Position of this table in the statement's FROM list. Differs from the
  /// scan's index in SelectPlan::scans when the cost-based planner reorders
  /// joins; the executor uses it to assemble output rows (and row order)
  /// as if the original FROM order had run.
  size_t from_index = 0;
  /// Planner cardinality estimate after pushed filters (rows this scan is
  /// expected to produce); -1 when never estimated.
  double est_rows = -1;
  Access access = Access::kSeqScan;
  /// Columns of the chosen index (empty for seq scans).
  std::vector<std::string> index_columns;
  /// Literal key values, coerced to the index column types.
  std::vector<Value> key_values;
  /// kPrefixScan: the literal prefix every match must start with
  /// (LikePatternPrefix of the pushed pattern); the radix-indexed column
  /// is index_columns[0].
  std::string prefix;
  /// Single-table WHERE/ON conjuncts pushed below the join. These are
  /// re-evaluated on every fetched row (including index hits), so an index
  /// choice can never change which rows qualify.
  std::vector<const Expr*> pushed;
  /// Columnar seq scans only: every pushed conjunct translated into a
  /// ColumnStore predicate, so the executor can run the filter kernel
  /// instead of materialising every row. Set only when ALL pushed
  /// conjuncts convert (partial conversion could reorder which predicate
  /// errors first).
  bool kernel_filter = false;
  std::vector<store::ColPredicate> kernel_predicates;
};

/// How scans[i] (i >= 1) is attached to the rows accumulated so far.
struct JoinPlan {
  /// kIndexLoop fetches matching right-table rows through an index per
  /// accumulated left row instead of materialising and hashing the right
  /// table — the cost-based choice when the right side is large and an
  /// index covers exactly the join key columns.
  enum class Strategy { kNestedLoop, kHashJoin, kIndexLoop };

  Strategy strategy = Strategy::kNestedLoop;
  /// Join key pairs: left_keys[k] evaluates over the accumulated (left)
  /// schema, right_keys[k] over the new table's single-table schema. For
  /// kIndexLoop the pairs are ordered to match `index_columns`.
  std::vector<const Expr*> left_keys;
  std::vector<const Expr*> right_keys;
  /// kIndexLoop: the right-table index driving the lookups, in the
  /// index's own column order (Table::FindByIndex requires it).
  std::vector<std::string> index_columns;
  /// Planner estimate of rows surviving this join; -1 when never
  /// estimated.
  double est_rows = -1;
  /// Conjuncts applied to each combined row at this join (the non-equi
  /// remainder of the ON condition plus WHERE conjuncts that span exactly
  /// the tables joined so far).
  std::vector<const Expr*> residual;
};

/// Aggregation step of a planned SELECT. `present` marks any aggregate /
/// GROUP BY query; `fast_path` additionally means the whole query maps
/// onto one columnar AggregateScan kernel call: single columnar seq scan,
/// every pushed predicate kernel-convertible, plain-column GROUP BY, and a
/// select list of plain columns and plain aggregate calls — no HAVING,
/// ORDER BY, DISTINCT, LIMIT/OFFSET, joins or residual predicates.
struct AggregatePlan {
  bool present = false;
  bool fast_path = false;
  /// kernel inputs (fast_path only)
  std::vector<size_t> group_by_cols;
  std::vector<store::AggSpec> aggs;
  /// Output mapping per select item: an aggregate slot (index into `aggs`)
  /// or a table column fetched from the group's first row.
  struct Item {
    bool is_aggregate = false;
    size_t index = 0;
  };
  std::vector<Item> items;
};

/// A planned SELECT: per-table access paths, join strategies, the residual
/// WHERE that survives pushdown, and an optional row-production cutoff.
struct SelectPlan {
  const SelectStmt* stmt = nullptr;
  /// Scans in EXECUTION order. When `reordered`, this differs from the
  /// statement's FROM order; each scan's `from_index` maps it back.
  std::vector<ScanPlan> scans;
  /// True when the cost-based planner chose a join order other than the
  /// FROM order. The executor then restores the original row order (and
  /// column order) before handing rows downstream, so every reordered
  /// plan remains result-identical to the unplanned path.
  bool reordered = false;
  AggregatePlan aggregate;
  /// joins[i] attaches scans[i + 1]; empty for single-table queries.
  std::vector<JoinPlan> joins;
  /// WHERE conjuncts not pushed to a scan or consumed by a join.
  std::vector<const Expr*> residual_where;
  /// When >= 0, row production may stop after this many joined+filtered
  /// rows (LIMIT+OFFSET with no ORDER BY / GROUP BY / DISTINCT /
  /// aggregates).
  int64_t row_cutoff = -1;

  /// Human/test-readable plan description, one line per plan node — the
  /// EXPLAIN output.
  std::vector<std::string> Describe() const;

  /// Exprs synthesized while planning (conjunct clones); plan nodes point
  /// into these and into the statement, so the plan must not outlive
  /// either.
  std::vector<std::unique_ptr<Expr>> owned;
};

struct PlannerOptions {
  /// When true (the default), the planner consults the tables' maintained
  /// column statistics to pick join order, join strategy (hash vs. index
  /// loop) and hash build side by estimated cost. Reordering only happens
  /// past a stability margin (both a ratio and an absolute cost gain), so
  /// near-tie plans keep the deterministic FROM-order shape. When false,
  /// the static PR 2-era planner runs: FROM order, hash joins for every
  /// equi-join.
  bool cost_based = true;
};

/// Builds an execution plan for `stmt`: splits the WHERE conjunction,
/// pushes single-table predicates down to the scans, picks index access
/// paths (unique point lookups on any table, FK secondary-index scans),
/// turns equi-join conditions into hash or index-loop joins, picks a
/// cost-based join order, and decides whether LIMIT may short-circuit row
/// production.
Result<SelectPlan> PlanSelect(const SelectStmt& stmt,
                              const TableLookup& lookup,
                              const PlannerOptions& options = {});

}  // namespace easia::db

#endif  // EASIA_DB_PLANNER_H_
