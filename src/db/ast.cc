#include "db/ast.h"

#include "common/string_util.h"

namespace easia::db {

namespace {

std::string_view OpText(Expr::Op op) {
  switch (op) {
    case Expr::Op::kEq: return "=";
    case Expr::Op::kNe: return "<>";
    case Expr::Op::kLt: return "<";
    case Expr::Op::kLe: return "<=";
    case Expr::Op::kGt: return ">";
    case Expr::Op::kGe: return ">=";
    case Expr::Op::kAnd: return " AND ";
    case Expr::Op::kOr: return " OR ";
    case Expr::Op::kAdd: return "+";
    case Expr::Op::kSub: return "-";
    case Expr::Op::kMul: return "*";
    case Expr::Op::kDiv: return "/";
    case Expr::Op::kLike: return " LIKE ";
    case Expr::Op::kNotLike: return " NOT LIKE ";
    case Expr::Op::kNot: return "NOT ";
    case Expr::Op::kNeg: return "-";
    case Expr::Op::kNone: return "?";
  }
  return "?";
}

}  // namespace

bool IsAggregateFunction(std::string_view name) {
  std::string upper = ToUpper(name);
  return upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
         upper == "MIN" || upper == "MAX";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToSqlLiteral();
    case Kind::kColumn:
      return table.empty() ? column : table + "." + column;
    case Kind::kUnary:
      return std::string(OpText(op)) + "(" + left->ToString() + ")";
    case Kind::kBinary:
      return "(" + left->ToString() + std::string(OpText(op)) +
             right->ToString() + ")";
    case Kind::kIsNull:
      return "(" + left->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
             ")";
    case Kind::kInList: {
      std::string out = "(" + left->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + "))";
    }
    case Kind::kCall: {
      std::string out = func + "(";
      if (star) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      return out + ")";
    }
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kCall && IsAggregateFunction(func)) return true;
  if (left != nullptr && left->ContainsAggregate()) return true;
  if (right != nullptr && right->ContainsAggregate()) return true;
  for (const auto& a : args) {
    if (a->ContainsAggregate()) return true;
  }
  return false;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->op = op;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->func = func;
  out->star = star;
  out->negated = negated;
  if (left != nullptr) out->left = left->Clone();
  if (right != nullptr) out->right = right->Clone();
  for (const auto& a : args) out->args.push_back(a->Clone());
  return out;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto out = std::make_unique<Expr>();
  out->kind = Kind::kLiteral;
  out->literal = std::move(v);
  return out;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table, std::string column) {
  auto out = std::make_unique<Expr>();
  out->kind = Kind::kColumn;
  out->table = std::move(table);
  out->column = std::move(column);
  return out;
}

std::unique_ptr<Expr> Expr::MakeBinary(Op op, std::unique_ptr<Expr> left,
                                       std::unique_ptr<Expr> right) {
  auto out = std::make_unique<Expr>();
  out->kind = Kind::kBinary;
  out->op = op;
  out->left = std::move(left);
  out->right = std::move(right);
  return out;
}

}  // namespace easia::db
