#ifndef EASIA_MED_BACKUP_H_
#define EASIA_MED_BACKUP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "fileserver/file_server.h"
#include "med/datalink_manager.h"

namespace easia::med {

/// One coordinated backup set: a database snapshot plus copies of every
/// linked external file whose DATALINK column requested RECOVERY YES.
/// This is the SQL/MED "coordinated backup and recovery" guarantee — the
/// DBMS backs up external files in synchronisation with internal data.
struct BackupSet {
  uint64_t id = 0;
  double created_epoch = 0;
  std::string db_snapshot;  // serialised database image
  struct FileCopy {
    std::string host;
    std::string path;
    std::string contents;
    uint64_t size = 0;
    bool sparse = false;
    db::DatalinkOptions options;
  };
  std::vector<FileCopy> files;

  uint64_t TotalFileBytes() const;
};

/// Outcome of a post-restore reconcile pass (the analogue of DB2's
/// `reconcile` utility): every DATALINK value in the database is checked
/// against file-server reality.
struct ReconcileReport {
  size_t values_checked = 0;
  size_t intact = 0;
  /// Files present but whose link state was missing and was re-established.
  size_t relinked = 0;
  /// DATALINK values whose file no longer exists anywhere.
  std::vector<std::string> dangling_urls;

  bool Clean() const { return dangling_urls.empty(); }
};

/// Orchestrates coordinated backup / restore / reconcile across the
/// database and the file-server fleet.
class BackupManager {
 public:
  BackupManager(db::Database* database, DataLinkManager* manager,
                fs::FileServerFleet* fleet)
      : database_(database), manager_(manager), fleet_(fleet) {}

  /// Takes a coordinated backup. Fails inside an explicit transaction.
  Result<uint64_t> CreateBackup();

  /// Restores database state and re-materialises any linked file that is
  /// missing (RECOVERY YES files restore bytes; others restore metadata
  /// only), then re-establishes link state and pins.
  Status Restore(uint64_t backup_id);

  /// Verifies every DATALINK value; re-links recoverable inconsistencies.
  Result<ReconcileReport> Reconcile();

  const std::map<uint64_t, BackupSet>& backups() const { return backups_; }

 private:
  db::Database* database_;
  DataLinkManager* manager_;
  fs::FileServerFleet* fleet_;
  std::map<uint64_t, BackupSet> backups_;
  uint64_t next_id_ = 1;
};

}  // namespace easia::med

#endif  // EASIA_MED_BACKUP_H_
