#include "med/datalink_manager.h"

#include "fileserver/url.h"

namespace easia::med {

DataLinkManager::DataLinkManager(fs::FileServerFleet* fleet,
                                 const Clock* clock, std::string token_secret,
                                 double token_ttl_seconds)
    : fleet_(fleet),
      clock_(clock),
      tokens_(std::move(token_secret), token_ttl_seconds) {}

Result<DataLinker*> DataLinkManager::EnsureLinker(const std::string& host) {
  auto it = linkers_.find(host);
  if (it != linkers_.end()) return it->second.get();
  EASIA_ASSIGN_OR_RETURN(fs::FileServer * server, fleet_->GetServer(host));
  auto linker = std::make_unique<DataLinker>(server);
  DataLinker* raw = linker.get();
  linkers_[host] = std::move(linker);
  // Install the token-checking read gate on the host's file server.
  server->SetReadGate([this, raw](const std::string& path,
                                  const std::string& token) -> Status {
    return raw->CheckRead(
        path, token,
        [this](const std::string& tok, const std::string& p) -> Status {
          return tokens_.Validate(tok, p, clock_->Now());
        });
  });
  return raw;
}

Result<DataLinker*> DataLinkManager::GetLinker(const std::string& host) const {
  auto it = linkers_.find(host);
  if (it == linkers_.end()) {
    return Status::NotFound("no DataLinker agent on host " + host);
  }
  return it->second.get();
}

Status DataLinkManager::PrepareLink(uint64_t txn_id,
                                    const db::DatalinkOptions& options,
                                    const std::string& url) {
  EASIA_ASSIGN_OR_RETURN(fs::FileUrl parsed, fs::ParseFileUrl(url));
  if (!parsed.token.empty()) {
    return Status::InvalidArgument(
        "datalink: INSERT/UPDATE values must not carry access tokens");
  }
  Result<DataLinker*> linker = EnsureLinker(parsed.host);
  if (!linker.ok()) {
    return linker.status().WithContext("datalink: unknown file server host");
  }
  return (*linker)->PrepareLink(txn_id, options, parsed.path);
}

Status DataLinkManager::PrepareUnlink(uint64_t txn_id,
                                      const db::DatalinkOptions& options,
                                      const std::string& url) {
  EASIA_ASSIGN_OR_RETURN(fs::FileUrl parsed, fs::ParseFileUrl(url));
  EASIA_ASSIGN_OR_RETURN(DataLinker * linker, GetLinker(parsed.host));
  return linker->PrepareUnlink(txn_id, options, parsed.path);
}

void DataLinkManager::CommitTxn(uint64_t txn_id) {
  for (auto& [host, linker] : linkers_) linker->CommitTxn(txn_id);
}

void DataLinkManager::AbortTxn(uint64_t txn_id) {
  for (auto& [host, linker] : linkers_) linker->AbortTxn(txn_id);
}

Result<std::string> DataLinkManager::ResolveForRead(
    const db::DatalinkOptions& options, const std::string& url,
    const std::string& user) {
  if (options.read_permission != db::DatalinkOptions::ReadPermission::kDb) {
    return url;  // READ PERMISSION FS: plain URL
  }
  if (read_check_ != nullptr && !read_check_(user)) {
    // Unprivileged users see the reference but receive no token; the file
    // server will refuse the download (paper: guests cannot download).
    return url;
  }
  EASIA_ASSIGN_OR_RETURN(fs::FileUrl parsed, fs::ParseFileUrl(url));
  std::string token = tokens_.Issue(parsed.path, clock_->Now());
  parsed.token = token;
  return parsed.ToString();
}

size_t DataLinkManager::TotalLinkedFiles() const {
  size_t n = 0;
  for (const auto& [host, linker] : linkers_) {
    n += linker->LinkedPaths().size();
  }
  return n;
}

}  // namespace easia::med
