#ifndef EASIA_MED_DATALINKER_H_
#define EASIA_MED_DATALINKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/datalink_options.h"
#include "fileserver/file_server.h"

namespace easia::med {

/// Per-file link state kept by a DataLinker agent.
struct LinkEntry {
  enum class State {
    kLinkPending,    // PrepareLink accepted, awaiting COMMIT
    kLinked,         // committed: file pinned, owned by the database
    kUnlinkPending,  // PrepareUnlink accepted, awaiting COMMIT
  };
  State state = State::kLinkPending;
  uint64_t txn_id = 0;  // transaction holding the pending change
  db::DatalinkOptions options;
};

/// The file-manager agent running on one file-server host (the analogue of
/// DB2's Data Links File Manager). It enforces SQL/MED semantics locally:
///
///  * referential integrity — linked files are pinned in the VFS, so they
///    cannot be renamed or deleted behind the database's back;
///  * transaction consistency — link/unlink intents are two-phase: Prepare*
///    may veto (file missing, already linked), Commit/Abort finalise;
///  * security — for READ PERMISSION DB files, reads must present a valid
///    access token (the linker installs a read gate on its file server).
class DataLinker {
 public:
  explicit DataLinker(fs::FileServer* server) : server_(server) {}

  const std::string& host() const { return server_->host(); }
  fs::FileServer* server() { return server_; }

  /// Phase one of linking `path`. Verifies existence (FILE LINK CONTROL)
  /// and that no other link (or pending link) covers the file.
  Status PrepareLink(uint64_t txn_id, const db::DatalinkOptions& options,
                     const std::string& path);

  /// Phase one of unlinking.
  Status PrepareUnlink(uint64_t txn_id, const db::DatalinkOptions& options,
                       const std::string& path);

  /// Phase two: commits / aborts every pending entry of `txn_id`.
  void CommitTxn(uint64_t txn_id);
  void AbortTxn(uint64_t txn_id);

  bool IsLinked(const std::string& path) const;
  /// Options a path was linked under (error when not linked).
  Result<db::DatalinkOptions> LinkedOptions(const std::string& path) const;

  /// Drops all link state for `path`, releasing its pin. Reconciliation
  /// only: used when the database row a link served no longer exists
  /// (orphaned file) or the file itself is gone (dangling link), outside
  /// any transaction.
  void ForgetLink(const std::string& path);

  /// All committed links (for backup and reconcile).
  std::vector<std::string> LinkedPaths() const;
  size_t PendingCount() const;

  /// Read-gate check used by the file server: files linked with READ
  /// PERMISSION DB require a token validated by `validate`.
  Status CheckRead(const std::string& path, const std::string& token,
                   const std::function<Status(const std::string& token,
                                              const std::string& path)>&
                       validate) const;

 private:
  fs::FileServer* server_;
  std::map<std::string, LinkEntry> links_;
};

}  // namespace easia::med

#endif  // EASIA_MED_DATALINKER_H_
