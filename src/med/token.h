#ifndef EASIA_MED_TOKEN_H_
#define EASIA_MED_TOKEN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace easia::med {

/// Issues and validates the encrypted file access tokens SQL/MED's READ
/// PERMISSION DB mandates. A token authorises reading ONE file path for a
/// limited time ("access tokens have a finite life determined by a database
/// configuration parameter").
///
/// Token format (base64url): expiry(u64 seconds) || nonce(u32) ||
/// HMAC-SHA256(secret, expiry || nonce || path) truncated to 16 bytes.
/// The path itself is not embedded: the validator re-computes the MAC from
/// the path the client actually requests, so a token lifted from one URL
/// cannot open a different file.
class TokenManager {
 public:
  /// `secret` is the database's token key; `default_ttl_seconds` is the
  /// configured token lifetime.
  TokenManager(std::string secret, double default_ttl_seconds = 300.0);

  /// Issues a token for `path` valid until now + ttl.
  std::string Issue(const std::string& path, double now_epoch);
  std::string IssueWithTtl(const std::string& path, double now_epoch,
                           double ttl_seconds);

  /// Validates `token` for reading `path` at time `now_epoch`.
  /// Errors: kPermissionDenied (forged/garbled), kTokenExpired.
  Status Validate(const std::string& token, const std::string& path,
                  double now_epoch) const;

  double default_ttl() const { return default_ttl_seconds_; }
  void set_default_ttl(double seconds) { default_ttl_seconds_ = seconds; }

  /// Counters for the benchmark harness and the metrics registry.
  ///
  /// Unlike the database counters (which a V2 snapshot carries across
  /// checkpoint/restart), token counters are deliberately process-local:
  /// the MED layer has no persistence of its own, tokens are short-lived
  /// by design, and a restart invalidates nothing a scraper can act on.
  /// They reset to zero with each TokenManager — documented, tested
  /// (DbStatsRecoveryTest.TokenCountersResetByDesign) semantics, read as
  /// a counter reset by Prometheus-style rate() consumers.
  uint64_t issued() const { return issued_.load(std::memory_order_relaxed); }
  uint64_t validated_ok() const {
    return validated_ok_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  std::string MacFor(uint64_t expiry, uint32_t nonce,
                     const std::string& path) const;

  std::string secret_;
  double default_ttl_seconds_;
  // Issue/Validate run concurrently from job workers and web handlers;
  // atomics keep the nonce unique and the counters race-free.
  std::atomic<uint32_t> nonce_counter_{0};
  std::atomic<uint64_t> issued_{0};
  mutable std::atomic<uint64_t> validated_ok_{0};
  mutable std::atomic<uint64_t> rejected_{0};
};

}  // namespace easia::med

#endif  // EASIA_MED_TOKEN_H_
