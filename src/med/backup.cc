#include "med/backup.h"

#include "fileserver/url.h"

namespace easia::med {

uint64_t BackupSet::TotalFileBytes() const {
  uint64_t total = 0;
  for (const FileCopy& f : files) total += f.size;
  return total;
}

Result<uint64_t> BackupManager::CreateBackup() {
  if (database_->InTransaction()) {
    return Status::FailedPrecondition(
        "backup: cannot run inside an open transaction");
  }
  BackupSet set;
  set.id = next_id_++;
  set.created_epoch = manager_->clock()->Now();
  set.db_snapshot = database_->SerializeSnapshot();
  for (const std::string& host : fleet_->Hosts()) {
    Result<DataLinker*> linker = manager_->GetLinker(host);
    if (!linker.ok()) continue;  // host has no linked files
    EASIA_ASSIGN_OR_RETURN(fs::FileServer * server, fleet_->GetServer(host));
    for (const std::string& path : (*linker)->LinkedPaths()) {
      EASIA_ASSIGN_OR_RETURN(db::DatalinkOptions options,
                             (*linker)->LinkedOptions(path));
      EASIA_ASSIGN_OR_RETURN(fs::FileStat stat, server->vfs().Stat(path));
      BackupSet::FileCopy copy;
      copy.host = host;
      copy.path = path;
      copy.size = stat.size;
      copy.sparse = stat.sparse;
      copy.options = options;
      // Only RECOVERY YES columns promise byte-level restoration; other
      // files record metadata so reconcile can detect loss.
      if (options.recovery == db::DatalinkOptions::Recovery::kYes &&
          !stat.sparse) {
        EASIA_ASSIGN_OR_RETURN(copy.contents, server->vfs().ReadFile(path));
      }
      set.files.push_back(std::move(copy));
    }
  }
  uint64_t id = set.id;
  backups_[id] = std::move(set);
  return id;
}

Status BackupManager::Restore(uint64_t backup_id) {
  auto it = backups_.find(backup_id);
  if (it == backups_.end()) {
    return Status::NotFound("backup: no such backup set");
  }
  const BackupSet& set = it->second;
  EASIA_RETURN_IF_ERROR(database_->LoadSnapshotFromString(set.db_snapshot));
  for (const BackupSet::FileCopy& copy : set.files) {
    EASIA_ASSIGN_OR_RETURN(fs::FileServer * server,
                           fleet_->GetServer(copy.host));
    if (!server->vfs().Exists(copy.path)) {
      if (copy.options.recovery == db::DatalinkOptions::Recovery::kYes) {
        if (copy.sparse) {
          EASIA_RETURN_IF_ERROR(
              server->vfs().CreateSparseFile(copy.path, copy.size));
        } else {
          EASIA_RETURN_IF_ERROR(
              server->vfs().WriteFile(copy.path, copy.contents));
        }
      }
      // RECOVERY NO files that vanished are left to Reconcile to report.
    }
  }
  // Re-establish link state and pins through a dedicated "recovery txn".
  constexpr uint64_t kRecoveryTxn = ~uint64_t{0};
  for (const BackupSet::FileCopy& copy : set.files) {
    EASIA_ASSIGN_OR_RETURN(fs::FileServer * server,
                           fleet_->GetServer(copy.host));
    if (!server->vfs().Exists(copy.path)) continue;
    EASIA_ASSIGN_OR_RETURN(DataLinker * linker,
                           manager_->EnsureLinker(copy.host));
    if (!linker->IsLinked(copy.path)) {
      EASIA_RETURN_IF_ERROR(
          linker->PrepareLink(kRecoveryTxn, copy.options, copy.path));
    } else if (copy.options.file_link_control &&
               !server->vfs().IsPinned(copy.path)) {
      // Link state survived but the pin was lost with the file; restore it.
      EASIA_RETURN_IF_ERROR(server->vfs().Pin(copy.path));
    }
  }
  manager_->CommitTxn(kRecoveryTxn);
  return Status::OK();
}

Result<ReconcileReport> BackupManager::Reconcile() {
  ReconcileReport report;
  constexpr uint64_t kReconcileTxn = ~uint64_t{0} - 1;
  for (const std::string& table_name : database_->catalog().TableNames()) {
    EASIA_ASSIGN_OR_RETURN(const db::TableDef* def,
                           database_->catalog().GetTable(table_name));
    // Collect datalink columns under FILE LINK CONTROL.
    std::vector<std::pair<size_t, const db::ColumnDef*>> dl_columns;
    for (size_t i = 0; i < def->columns.size(); ++i) {
      const db::ColumnDef& col = def->columns[i];
      if (col.type == db::DataType::kDatalink && col.datalink.has_value() &&
          col.datalink->file_link_control) {
        dl_columns.emplace_back(i, &col);
      }
    }
    if (dl_columns.empty()) continue;
    EASIA_ASSIGN_OR_RETURN(const db::Table* table,
                           database_->GetTable(table_name));
    // Materialised up front: the per-value checks below early-return with
    // Status, which a ForEachRow callback cannot do.
    std::vector<db::Row> table_rows;
    table->ForEachRow([&table_rows](db::RowId, const db::Row& row) {
      table_rows.push_back(row);
    });
    for (const db::Row& row : table_rows) {
      for (const auto& [idx, col] : dl_columns) {
        if (row[idx].is_null()) continue;
        ++report.values_checked;
        const std::string& url = row[idx].AsString();
        Result<fs::FileUrl> parsed = fs::ParseFileUrl(url);
        if (!parsed.ok()) {
          report.dangling_urls.push_back(url);
          continue;
        }
        Result<fs::FileServer*> server = fleet_->GetServer(parsed->host);
        if (!server.ok() || !(*server)->vfs().Exists(parsed->path)) {
          report.dangling_urls.push_back(url);
          continue;
        }
        EASIA_ASSIGN_OR_RETURN(DataLinker * linker,
                               manager_->EnsureLinker(parsed->host));
        if (linker->IsLinked(parsed->path)) {
          ++report.intact;
        } else {
          EASIA_RETURN_IF_ERROR(linker->PrepareLink(
              kReconcileTxn, *col->datalink, parsed->path));
          ++report.relinked;
        }
      }
    }
  }
  manager_->CommitTxn(kReconcileTxn);
  return report;
}

}  // namespace easia::med
