#ifndef EASIA_MED_DATALINK_MANAGER_H_
#define EASIA_MED_DATALINK_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/database.h"
#include "fileserver/file_server.h"
#include "med/datalinker.h"
#include "med/token.h"

namespace easia::med {

/// Decides whether `user` may obtain read tokens (the paper's guest users
/// "cannot download datasets"). Defaults to allow-all.
using ReadPrivilegeCheck = std::function<bool(const std::string& user)>;

/// The database-side SQL/MED component: implements db::DatalinkCoordinator
/// by routing link/unlink intents to the DataLinker agent on the URL's
/// host, and rewriting SELECTed DATALINK values into their token form.
class DataLinkManager : public db::DatalinkCoordinator {
 public:
  /// `clock` drives token expiry (the simulation clock in tests/benches).
  DataLinkManager(fs::FileServerFleet* fleet, const Clock* clock,
                  std::string token_secret, double token_ttl_seconds = 300.0);

  /// Creates (or returns) the DataLinker agent for `host`, registering its
  /// read gate with the host's file server. The host must exist in the
  /// fleet.
  Result<DataLinker*> EnsureLinker(const std::string& host);
  Result<DataLinker*> GetLinker(const std::string& host) const;

  // --- db::DatalinkCoordinator ---
  Status PrepareLink(uint64_t txn_id, const db::DatalinkOptions& options,
                     const std::string& url) override;
  Status PrepareUnlink(uint64_t txn_id, const db::DatalinkOptions& options,
                       const std::string& url) override;
  void CommitTxn(uint64_t txn_id) override;
  void AbortTxn(uint64_t txn_id) override;
  Result<std::string> ResolveForRead(const db::DatalinkOptions& options,
                                     const std::string& url,
                                     const std::string& user) override;

  /// Overrides the default allow-all read-privilege policy.
  void set_read_privilege_check(ReadPrivilegeCheck check) {
    read_check_ = std::move(check);
  }

  TokenManager& tokens() { return tokens_; }
  const Clock* clock() const { return clock_; }

  /// Total linked files across all hosts.
  size_t TotalLinkedFiles() const;

 private:
  fs::FileServerFleet* fleet_;
  const Clock* clock_;
  TokenManager tokens_;
  ReadPrivilegeCheck read_check_;
  std::map<std::string, std::unique_ptr<DataLinker>> linkers_;
};

}  // namespace easia::med

#endif  // EASIA_MED_DATALINK_MANAGER_H_
