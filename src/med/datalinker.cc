#include "med/datalinker.h"

namespace easia::med {

Status DataLinker::PrepareLink(uint64_t txn_id,
                               const db::DatalinkOptions& options,
                               const std::string& path) {
  if (options.file_link_control && !server_->storage().Exists(path)) {
    return Status::NotFound("datalink: file does not exist on " + host() +
                            ": " + path);
  }
  auto it = links_.find(path);
  if (it != links_.end()) {
    // Re-linking after a pending unlink by the same transaction is allowed
    // (UPDATE that swaps a value back); everything else conflicts.
    if (it->second.state == LinkEntry::State::kUnlinkPending &&
        it->second.txn_id == txn_id) {
      it->second.state = LinkEntry::State::kLinked;
      return Status::OK();
    }
    return Status::AlreadyExists("datalink: file already linked: " + path);
  }
  LinkEntry entry;
  entry.state = LinkEntry::State::kLinkPending;
  entry.txn_id = txn_id;
  entry.options = options;
  links_[path] = entry;
  return Status::OK();
}

Status DataLinker::PrepareUnlink(uint64_t txn_id,
                                 const db::DatalinkOptions& options,
                                 const std::string& path) {
  (void)options;
  auto it = links_.find(path);
  if (it == links_.end()) {
    return Status::NotFound("datalink: file is not linked: " + path);
  }
  if (it->second.state == LinkEntry::State::kLinkPending &&
      it->second.txn_id == txn_id) {
    // Link and unlink inside one transaction cancel out.
    links_.erase(it);
    return Status::OK();
  }
  if (it->second.state != LinkEntry::State::kLinked) {
    return Status::FailedPrecondition(
        "datalink: file has a pending change from another transaction: " +
        path);
  }
  it->second.state = LinkEntry::State::kUnlinkPending;
  it->second.txn_id = txn_id;
  return Status::OK();
}

void DataLinker::CommitTxn(uint64_t txn_id) {
  for (auto it = links_.begin(); it != links_.end();) {
    LinkEntry& entry = it->second;
    if (entry.txn_id != txn_id) {
      ++it;
      continue;
    }
    switch (entry.state) {
      case LinkEntry::State::kLinkPending:
        entry.state = LinkEntry::State::kLinked;
        if (entry.options.file_link_control) {
          (void)server_->storage().Pin(it->first);
        }
        ++it;
        break;
      case LinkEntry::State::kUnlinkPending: {
        if (entry.options.file_link_control) {
          (void)server_->storage().Unpin(it->first);
        }
        if (entry.options.on_unlink ==
            db::DatalinkOptions::OnUnlink::kDelete) {
          (void)server_->storage().DeleteFile(it->first);
        }
        it = links_.erase(it);
        break;
      }
      case LinkEntry::State::kLinked:
        ++it;
        break;
    }
  }
}

void DataLinker::AbortTxn(uint64_t txn_id) {
  for (auto it = links_.begin(); it != links_.end();) {
    LinkEntry& entry = it->second;
    if (entry.txn_id != txn_id) {
      ++it;
      continue;
    }
    switch (entry.state) {
      case LinkEntry::State::kLinkPending:
        it = links_.erase(it);
        break;
      case LinkEntry::State::kUnlinkPending:
        entry.state = LinkEntry::State::kLinked;
        ++it;
        break;
      case LinkEntry::State::kLinked:
        ++it;
        break;
    }
  }
}

bool DataLinker::IsLinked(const std::string& path) const {
  auto it = links_.find(path);
  return it != links_.end() && it->second.state == LinkEntry::State::kLinked;
}

Result<db::DatalinkOptions> DataLinker::LinkedOptions(
    const std::string& path) const {
  auto it = links_.find(path);
  if (it == links_.end() ||
      it->second.state == LinkEntry::State::kLinkPending) {
    return Status::NotFound("datalink: file is not linked: " + path);
  }
  return it->second.options;
}

void DataLinker::ForgetLink(const std::string& path) {
  auto it = links_.find(path);
  if (it == links_.end()) return;
  if (it->second.options.file_link_control) {
    (void)server_->storage().Unpin(path);  // no-op when the file is gone
  }
  links_.erase(it);
}

std::vector<std::string> DataLinker::LinkedPaths() const {
  std::vector<std::string> out;
  for (const auto& [path, entry] : links_) {
    if (entry.state != LinkEntry::State::kLinkPending) out.push_back(path);
  }
  return out;
}

size_t DataLinker::PendingCount() const {
  size_t n = 0;
  for (const auto& [path, entry] : links_) {
    if (entry.state != LinkEntry::State::kLinked) ++n;
  }
  return n;
}

Status DataLinker::CheckRead(
    const std::string& path, const std::string& token,
    const std::function<Status(const std::string& token,
                               const std::string& path)>& validate) const {
  auto it = links_.find(path);
  if (it == links_.end() || it->second.state != LinkEntry::State::kLinked) {
    return Status::OK();  // not under database control
  }
  const db::DatalinkOptions& options = it->second.options;
  if (options.read_permission != db::DatalinkOptions::ReadPermission::kDb) {
    return Status::OK();  // READ PERMISSION FS: file-system rules apply
  }
  if (token.empty()) {
    return Status::PermissionDenied(
        "file requires a database access token: " + path);
  }
  return validate(token, path);
}

}  // namespace easia::med
