#include "med/reconciler.h"

#include <set>

#include "fileserver/url.h"

namespace easia::med {

const BackupSet::FileCopy* DatalinkReconciler::FindBackupCopy(
    const std::string& host, const std::string& path) const {
  if (backups_ == nullptr) return nullptr;
  const BackupSet::FileCopy* found = nullptr;
  // backups() is keyed by ascending id; the last match is the newest copy.
  for (const auto& [id, set] : backups_->backups()) {
    for (const BackupSet::FileCopy& copy : set.files) {
      if (copy.host == host && copy.path == path) found = &copy;
    }
  }
  return found;
}

Result<ReconcileFindings> DatalinkReconciler::Run(bool repair) {
  ReconcileFindings findings;
  constexpr uint64_t kReconcileTxn = ~uint64_t{0} - 2;
  // "host:path" of every file some DATALINK value references — the
  // universe of files the database claims; anything linked beyond it is an
  // orphan.
  std::set<std::string> referenced;
  for (const std::string& table_name : database_->catalog().TableNames()) {
    EASIA_ASSIGN_OR_RETURN(const db::TableDef* def,
                           database_->catalog().GetTable(table_name));
    std::vector<std::pair<size_t, const db::ColumnDef*>> dl_columns;
    for (size_t i = 0; i < def->columns.size(); ++i) {
      const db::ColumnDef& col = def->columns[i];
      if (col.type == db::DataType::kDatalink && col.datalink.has_value() &&
          col.datalink->file_link_control) {
        dl_columns.emplace_back(i, &col);
      }
    }
    if (dl_columns.empty()) continue;
    EASIA_ASSIGN_OR_RETURN(const db::Table* table,
                           database_->GetTable(table_name));
    // Materialised up front: the per-value checks below early-return with
    // Status, which a ForEachRow callback cannot do.
    std::vector<db::Row> table_rows;
    table->ForEachRow([&table_rows](db::RowId, const db::Row& row) {
      table_rows.push_back(row);
    });
    for (const db::Row& row : table_rows) {
      for (const auto& [idx, col] : dl_columns) {
        if (row[idx].is_null()) continue;
        ++findings.values_checked;
        const std::string& url = row[idx].AsString();
        Result<fs::FileUrl> parsed = fs::ParseFileUrl(url);
        if (!parsed.ok()) {
          findings.dangling_urls.push_back(url);
          continue;
        }
        Result<fs::FileServer*> server = fleet_->GetServer(parsed->host);
        if (!server.ok()) {
          findings.dangling_urls.push_back(url);
          continue;
        }
        referenced.insert(parsed->host + ":" + parsed->path);
        EASIA_ASSIGN_OR_RETURN(DataLinker * linker,
                               manager_->EnsureLinker(parsed->host));
        if (!(*server)->storage().Exists(parsed->path)) {
          // The file is gone. RECOVERY YES files restore from the latest
          // backup copy; everything else is flagged, never dropped.
          const BackupSet::FileCopy* copy =
              FindBackupCopy(parsed->host, parsed->path);
          bool restorable =
              repair && copy != nullptr &&
              copy->options.recovery == db::DatalinkOptions::Recovery::kYes;
          if (!restorable) {
            // A stranded link entry for a vanished file would block any
            // future re-link of the path; clear it while flagging.
            if (repair && linker->IsLinked(parsed->path)) {
              linker->ForgetLink(parsed->path);
            }
            findings.dangling_urls.push_back(url);
            continue;
          }
          if (copy->sparse) {
            EASIA_RETURN_IF_ERROR((*server)->storage().CreateSparseFile(
                parsed->path, copy->size));
          } else {
            EASIA_RETURN_IF_ERROR((*server)->storage().WriteFile(
                parsed->path, copy->contents));
          }
          ++findings.restored;
        }
        if (linker->IsLinked(parsed->path)) {
          // Link state survived; make sure the pin did too (a restored
          // file starts unpinned).
          if (col->datalink->file_link_control &&
              !(*server)->storage().IsPinned(parsed->path)) {
            if (repair) {
              EASIA_RETURN_IF_ERROR((*server)->storage().Pin(parsed->path));
              ++findings.relinked;
            }
          } else {
            ++findings.intact;
          }
          continue;
        }
        if (repair) {
          EASIA_RETURN_IF_ERROR(linker->PrepareLink(
              kReconcileTxn, *col->datalink, parsed->path));
          ++findings.relinked;
        }
      }
    }
  }
  if (repair) manager_->CommitTxn(kReconcileTxn);
  // Sweep the other direction: linked files no DATALINK value references.
  for (const std::string& host : fleet_->Hosts()) {
    Result<DataLinker*> linker = manager_->GetLinker(host);
    if (!linker.ok()) continue;  // host never linked anything
    for (const std::string& path : (*linker)->LinkedPaths()) {
      if (referenced.count(host + ":" + path) != 0) continue;
      findings.orphan_files.push_back(host + ":" + path);
      if (repair) {
        (*linker)->ForgetLink(path);
        ++findings.released_orphans;
      }
    }
  }
  return findings;
}

}  // namespace easia::med
