#ifndef EASIA_MED_RECONCILER_H_
#define EASIA_MED_RECONCILER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "fileserver/file_server.h"
#include "med/backup.h"
#include "med/datalink_manager.h"

namespace easia::med {

/// What one reconciliation pass found (and, in repair mode, did).
struct ReconcileFindings {
  /// Non-null DATALINK values inspected.
  size_t values_checked = 0;
  /// Values whose file and link state were both intact.
  size_t intact = 0;
  /// Files present whose link state had been lost; re-linked and pinned.
  size_t relinked = 0;
  /// Missing files re-materialised from the latest backup (RECOVERY YES).
  size_t restored = 0;
  /// DATALINK values whose file is gone and unrecoverable — flagged, never
  /// silently dropped (the row keeps its URL; operators decide).
  std::vector<std::string> dangling_urls;
  /// "host:path" of linked files no DATALINK value references any more.
  std::vector<std::string> orphan_files;
  /// Orphans whose link state (and pin) was released in repair mode.
  size_t released_orphans = 0;

  bool Clean() const {
    return dangling_urls.empty() && orphan_files.empty();
  }
};

/// Post-crash DATALINK integrity scanner — the paper's referential-
/// integrity guarantee made checkable. After the database recovers from
/// its WAL, the file servers' contents and the linkers' pin state may
/// disagree with the DATALINK columns (a crash can strand any of the
/// three). `Run` walks every FILE LINK CONTROL DATALINK value and:
///
///  * file present, link state lost        -> re-link + pin      (repair)
///  * file missing, RECOVERY YES + backup  -> restore bytes, re-link
///  * file missing otherwise               -> report as dangling (flag)
///  * linked file no row references        -> release link + pin (repair)
///
/// With `repair = false` the pass only reports. Distinct from
/// `BackupManager::Reconcile`, which runs as part of a coordinated
/// restore; this reconciler assumes nothing about how the archive got
/// into its current state.
class DatalinkReconciler {
 public:
  /// `backups` is optional; without it RECOVERY YES files cannot be
  /// restored and missing files are reported as dangling.
  DatalinkReconciler(db::Database* database, DataLinkManager* manager,
                     fs::FileServerFleet* fleet,
                     BackupManager* backups = nullptr)
      : database_(database),
        manager_(manager),
        fleet_(fleet),
        backups_(backups) {}

  Result<ReconcileFindings> Run(bool repair = true);

 private:
  /// Latest backup copy of `host:path` with byte contents, if any.
  const BackupSet::FileCopy* FindBackupCopy(const std::string& host,
                                            const std::string& path) const;

  db::Database* database_;
  DataLinkManager* manager_;
  fs::FileServerFleet* fleet_;
  BackupManager* backups_;
};

}  // namespace easia::med

#endif  // EASIA_MED_RECONCILER_H_
