#include "med/token.h"

#include "common/coding.h"
#include "crypto/base64.h"
#include "crypto/hmac.h"

namespace easia::med {

namespace {
constexpr size_t kMacBytes = 16;
constexpr size_t kHeaderBytes = 12;  // u64 expiry + u32 nonce
}  // namespace

TokenManager::TokenManager(std::string secret, double default_ttl_seconds)
    : secret_(std::move(secret)), default_ttl_seconds_(default_ttl_seconds) {}

std::string TokenManager::MacFor(uint64_t expiry, uint32_t nonce,
                                 const std::string& path) const {
  std::string message;
  PutU64(&message, expiry);
  PutU32(&message, nonce);
  message += path;
  std::string mac = crypto::HmacSha256(secret_, message);
  mac.resize(kMacBytes);
  return mac;
}

std::string TokenManager::Issue(const std::string& path, double now_epoch) {
  return IssueWithTtl(path, now_epoch, default_ttl_seconds_);
}

std::string TokenManager::IssueWithTtl(const std::string& path,
                                       double now_epoch, double ttl_seconds) {
  uint64_t expiry = static_cast<uint64_t>(now_epoch + ttl_seconds);
  uint32_t nonce = nonce_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string raw;
  PutU64(&raw, expiry);
  PutU32(&raw, nonce);
  raw += MacFor(expiry, nonce, path);
  issued_.fetch_add(1, std::memory_order_relaxed);
  return crypto::Base64UrlEncode(raw);
}

Status TokenManager::Validate(const std::string& token,
                              const std::string& path,
                              double now_epoch) const {
  Result<std::string> decoded = crypto::Base64UrlDecode(token);
  if (!decoded.ok() || decoded->size() != kHeaderBytes + kMacBytes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::PermissionDenied("malformed access token");
  }
  Decoder dec(*decoded);
  uint64_t expiry = dec.GetU64().value();
  uint32_t nonce = dec.GetU32().value();
  std::string expected_mac = MacFor(expiry, nonce, path);
  std::string presented_mac = decoded->substr(kHeaderBytes);
  if (!crypto::ConstantTimeEquals(expected_mac, presented_mac)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::PermissionDenied("invalid access token for " + path);
  }
  if (now_epoch > static_cast<double>(expiry)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::TokenExpired("access token expired for " + path);
  }
  validated_ok_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace easia::med
