#include "turbulence/tbf.h"

#include "common/coding.h"
#include "common/string_util.h"

namespace easia::turb {

namespace {
constexpr std::string_view kMagic = "TBF1";
}

std::string SerializeTbf(const Field& field, uint32_t timestep) {
  std::string out;
  out += kMagic;
  PutU32(&out, static_cast<uint32_t>(field.n()));
  PutU32(&out, timestep);
  PutDouble(&out, field.time());
  PutDouble(&out, field.nu());
  size_t n = field.n();
  out.reserve(out.size() + 4 * n * n * n * sizeof(double));
  for (Component c :
       {Component::kU, Component::kV, Component::kW, Component::kP}) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        for (size_t k = 0; k < n; ++k) {
          PutDouble(&out, field.At(c, i, j, k));
        }
      }
    }
  }
  return out;
}

Result<TbfHeader> ParseTbfHeader(std::string_view bytes) {
  if (bytes.size() < kMagic.size() + 24 ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("not a TBF file");
  }
  Decoder dec(bytes.substr(kMagic.size()));
  TbfHeader h;
  EASIA_ASSIGN_OR_RETURN(h.n, dec.GetU32());
  EASIA_ASSIGN_OR_RETURN(h.timestep, dec.GetU32());
  EASIA_ASSIGN_OR_RETURN(h.time, dec.GetDouble());
  EASIA_ASSIGN_OR_RETURN(h.nu, dec.GetDouble());
  return h;
}

Result<Field> ParseTbf(std::string_view bytes) {
  EASIA_ASSIGN_OR_RETURN(TbfHeader header, ParseTbfHeader(bytes));
  size_t n = header.n;
  size_t expected = kMagic.size() + 24 + 4 * n * n * n * sizeof(double);
  if (bytes.size() != expected) {
    return Status::Corruption(
        StrPrintf("TBF size mismatch: got %zu, want %zu", bytes.size(),
                  expected));
  }
  Field field = Field::Zero(n, header.time, header.nu);
  Decoder dec(bytes.substr(kMagic.size() + 24));
  for (Component c :
       {Component::kU, Component::kV, Component::kW, Component::kP}) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        for (size_t k = 0; k < n; ++k) {
          EASIA_ASSIGN_OR_RETURN(double v, dec.GetDouble());
          field.Set(c, i, j, k, v);
        }
      }
    }
  }
  return field;
}

std::string DatasetSpec::FileName() const {
  return StrPrintf("%s_t%04u_n%zu.tbf", simulation_key.c_str(), timestep,
                   grid_n);
}

Result<std::string> ArchiveDataset(fs::FileServer* server,
                                   const std::string& directory,
                                   const DatasetSpec& spec) {
  std::string dir = directory;
  if (dir.empty() || dir.back() != '/') dir += '/';
  std::string path = dir + spec.FileName();
  if (spec.materialize) {
    Field field = Field::Generate(spec.grid_n, spec.time, spec.nu);
    EASIA_RETURN_IF_ERROR(
        server->vfs().WriteFile(path, SerializeTbf(field, spec.timestep)));
  } else {
    EASIA_RETURN_IF_ERROR(
        server->vfs().CreateSparseFile(path, spec.SizeBytes()));
  }
  return "http://" + server->host() + path;
}

}  // namespace easia::turb
