#ifndef EASIA_TURBULENCE_FIELD_H_
#define EASIA_TURBULENCE_FIELD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace easia::turb {

/// Velocity component / pressure selector (the paper's GetImage operation
/// offers "u speed / v speed / w speed / pressure").
enum class Component { kU, kV, kW, kP };

Result<Component> ComponentFromName(std::string_view name);
std::string_view ComponentName(Component c);

/// Point sample of the decaying Taylor–Green vortex — an exact solution of
/// the incompressible Navier–Stokes equations, giving the archive physically
/// meaningful "simulation results" without running a solver:
///   u =  sin(x) cos(y) cos(z) F(t)
///   v = -cos(x) sin(y) cos(z) F(t)
///   w = 0
///   p = (rho/16) (cos 2x + cos 2y)(cos 2z + 2) F(t)^2,  F(t) = e^(-2 nu t)
struct FieldPoint {
  double u = 0, v = 0, w = 0, p = 0;
};
FieldPoint TaylorGreen(double x, double y, double z, double t, double nu);

/// Summary statistics of a scalar field, as a data-reduction product.
struct FieldStats {
  double min = 0;
  double max = 0;
  double mean = 0;
  double rms = 0;
  size_t count = 0;
};

/// A 2-D slice extracted from a 3-D field (the paper's principal example of
/// user-directed post-processing that "significantly reduces the amount of
/// data that needs to be shipped back").
struct Slice2D {
  char axis = 'x';        // normal axis
  size_t index = 0;       // plane index along the normal
  Component component = Component::kU;
  size_t n1 = 0, n2 = 0;  // in-plane dimensions
  std::vector<double> values;  // row-major [n1 * n2]

  double At(size_t i, size_t j) const { return values[i * n2 + j]; }
  FieldStats Stats() const;

  /// Renders to a binary PGM (P5) greyscale image, scaled to min..max.
  std::string ToPgm() const;

  /// Serialised size of this slice shipped as raw doubles.
  uint64_t RawBytes() const { return values.size() * sizeof(double); }
};

/// A materialised 3-D field snapshot: u,v,w,p on an n³ uniform grid over
/// [0,2pi)³ at one timestep.
class Field {
 public:
  /// Generates the Taylor–Green field on an n³ grid at time `t`.
  static Field Generate(size_t n, double t, double nu = 0.01);

  /// Allocates an all-zero field carrying the given metadata (deserialisers
  /// fill it in).
  static Field Zero(size_t n, double t, double nu);

  size_t n() const { return n_; }
  double time() const { return time_; }
  double nu() const { return nu_; }

  double At(Component c, size_t i, size_t j, size_t k) const;
  void Set(Component c, size_t i, size_t j, size_t k, double v);

  /// Extracts the 2-D plane with the given normal axis and plane index.
  Result<Slice2D> Slice(char axis, size_t index, Component component) const;

  FieldStats Stats(Component component) const;

  /// Volume-averaged kinetic energy 0.5 <u*u + v*v + w*w>.
  double KineticEnergy() const;

  /// Maximum vorticity magnitude (central differences, periodic wrap).
  double MaxVorticity() const;

  /// Bytes of a materialised n³ 4-component double field plus header.
  static uint64_t FileBytes(size_t n);

 private:
  Field(size_t n, double t, double nu);
  const std::vector<double>& Data(Component c) const;
  std::vector<double>& MutableData(Component c);

  size_t n_;
  double time_;
  double nu_;
  std::vector<double> u_, v_, w_, p_;
};

}  // namespace easia::turb

#endif  // EASIA_TURBULENCE_FIELD_H_
