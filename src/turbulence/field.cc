#include "turbulence/field.h"

#include <cmath>

#include "common/string_util.h"

namespace easia::turb {

namespace {
constexpr double kTwoPi = 6.283185307179586;
constexpr double kRho = 1.0;
}  // namespace

Result<Component> ComponentFromName(std::string_view name) {
  if (name == "u") return Component::kU;
  if (name == "v") return Component::kV;
  if (name == "w") return Component::kW;
  if (name == "p") return Component::kP;
  return Status::InvalidArgument("unknown component: " + std::string(name));
}

std::string_view ComponentName(Component c) {
  switch (c) {
    case Component::kU: return "u";
    case Component::kV: return "v";
    case Component::kW: return "w";
    case Component::kP: return "p";
  }
  return "?";
}

FieldPoint TaylorGreen(double x, double y, double z, double t, double nu) {
  double f = std::exp(-2.0 * nu * t);
  FieldPoint out;
  out.u = std::sin(x) * std::cos(y) * std::cos(z) * f;
  out.v = -std::cos(x) * std::sin(y) * std::cos(z) * f;
  out.w = 0.0;
  out.p = (kRho / 16.0) * (std::cos(2 * x) + std::cos(2 * y)) *
          (std::cos(2 * z) + 2.0) * f * f;
  return out;
}

FieldStats Slice2D::Stats() const {
  FieldStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0, sum_sq = 0;
  for (double v : values) {
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    sum += v;
    sum_sq += v * v;
  }
  s.mean = sum / static_cast<double>(s.count);
  s.rms = std::sqrt(sum_sq / static_cast<double>(s.count));
  return s;
}

std::string Slice2D::ToPgm() const {
  FieldStats s = Stats();
  double range = s.max - s.min;
  if (range <= 0) range = 1.0;
  std::string out = StrPrintf("P5\n%zu %zu\n255\n", n2, n1);
  out.reserve(out.size() + values.size());
  for (double v : values) {
    double scaled = (v - s.min) / range * 255.0;
    int pixel = static_cast<int>(scaled + 0.5);
    if (pixel < 0) pixel = 0;
    if (pixel > 255) pixel = 255;
    out += static_cast<char>(pixel);
  }
  return out;
}

Field::Field(size_t n, double t, double nu)
    : n_(n),
      time_(t),
      nu_(nu),
      u_(n * n * n),
      v_(n * n * n),
      w_(n * n * n),
      p_(n * n * n) {}

Field Field::Zero(size_t n, double t, double nu) { return Field(n, t, nu); }

Field Field::Generate(size_t n, double t, double nu) {
  Field field(n, t, nu);
  double h = kTwoPi / static_cast<double>(n);
  size_t idx = 0;
  for (size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) * h;
    for (size_t j = 0; j < n; ++j) {
      double y = static_cast<double>(j) * h;
      for (size_t k = 0; k < n; ++k, ++idx) {
        double z = static_cast<double>(k) * h;
        FieldPoint pt = TaylorGreen(x, y, z, t, nu);
        field.u_[idx] = pt.u;
        field.v_[idx] = pt.v;
        field.w_[idx] = pt.w;
        field.p_[idx] = pt.p;
      }
    }
  }
  return field;
}

const std::vector<double>& Field::Data(Component c) const {
  switch (c) {
    case Component::kU: return u_;
    case Component::kV: return v_;
    case Component::kW: return w_;
    case Component::kP: return p_;
  }
  return u_;
}

std::vector<double>& Field::MutableData(Component c) {
  return const_cast<std::vector<double>&>(Data(c));
}

double Field::At(Component c, size_t i, size_t j, size_t k) const {
  return Data(c)[(i * n_ + j) * n_ + k];
}

void Field::Set(Component c, size_t i, size_t j, size_t k, double v) {
  MutableData(c)[(i * n_ + j) * n_ + k] = v;
}

Result<Slice2D> Field::Slice(char axis, size_t index,
                             Component component) const {
  if (index >= n_) {
    return Status::OutOfRange(
        StrPrintf("slice index %zu out of range (n=%zu)", index, n_));
  }
  Slice2D slice;
  slice.axis = axis;
  slice.index = index;
  slice.component = component;
  slice.n1 = n_;
  slice.n2 = n_;
  slice.values.resize(n_ * n_);
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = 0; b < n_; ++b) {
      double v;
      switch (axis) {
        case 'x':
          v = At(component, index, a, b);
          break;
        case 'y':
          v = At(component, a, index, b);
          break;
        case 'z':
          v = At(component, a, b, index);
          break;
        default:
          return Status::InvalidArgument(
              StrPrintf("bad slice axis '%c'", axis));
      }
      slice.values[a * n_ + b] = v;
    }
  }
  return slice;
}

FieldStats Field::Stats(Component component) const {
  const std::vector<double>& data = Data(component);
  FieldStats s;
  s.count = data.size();
  if (data.empty()) return s;
  s.min = data[0];
  s.max = data[0];
  double sum = 0, sum_sq = 0;
  for (double v : data) {
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    sum += v;
    sum_sq += v * v;
  }
  s.mean = sum / static_cast<double>(s.count);
  s.rms = std::sqrt(sum_sq / static_cast<double>(s.count));
  return s;
}

double Field::KineticEnergy() const {
  double sum = 0;
  for (size_t i = 0; i < u_.size(); ++i) {
    sum += u_[i] * u_[i] + v_[i] * v_[i] + w_[i] * w_[i];
  }
  return 0.5 * sum / static_cast<double>(u_.size());
}

double Field::MaxVorticity() const {
  double h = kTwoPi / static_cast<double>(n_);
  double max_mag = 0;
  auto wrap = [this](size_t i, long d) {
    return (i + n_ + static_cast<size_t>(d + static_cast<long>(n_))) % n_;
  };
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      for (size_t k = 0; k < n_; ++k) {
        double dwdy = (At(Component::kW, i, wrap(j, 1), k) -
                       At(Component::kW, i, wrap(j, -1), k)) /
                      (2 * h);
        double dvdz = (At(Component::kV, i, j, wrap(k, 1)) -
                       At(Component::kV, i, j, wrap(k, -1))) /
                      (2 * h);
        double dudz = (At(Component::kU, i, j, wrap(k, 1)) -
                       At(Component::kU, i, j, wrap(k, -1))) /
                      (2 * h);
        double dwdx = (At(Component::kW, wrap(i, 1), j, k) -
                       At(Component::kW, wrap(i, -1), j, k)) /
                      (2 * h);
        double dvdx = (At(Component::kV, wrap(i, 1), j, k) -
                       At(Component::kV, wrap(i, -1), j, k)) /
                      (2 * h);
        double dudy = (At(Component::kU, i, wrap(j, 1), k) -
                       At(Component::kU, i, wrap(j, -1), k)) /
                      (2 * h);
        double ox = dwdy - dvdz;
        double oy = dudz - dwdx;
        double oz = dvdx - dudy;
        double mag = std::sqrt(ox * ox + oy * oy + oz * oz);
        if (mag > max_mag) max_mag = mag;
      }
    }
  }
  return max_mag;
}

uint64_t Field::FileBytes(size_t n) {
  return 64 + 4ULL * n * n * n * sizeof(double);
}

}  // namespace easia::turb
