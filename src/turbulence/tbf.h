#ifndef EASIA_TURBULENCE_TBF_H_
#define EASIA_TURBULENCE_TBF_H_

#include <string>

#include "common/result.h"
#include "fileserver/file_server.h"
#include "turbulence/field.h"

namespace easia::turb {

/// TBF — "Turbulence Binary Format", this repo's stand-in for the
/// consortium's unmodified solver output files. Layout (little endian):
///   magic "TBF1" | u32 n | u32 timestep | f64 time | f64 nu |
///   u(n^3 f64) | v(n^3 f64) | w(n^3 f64) | p(n^3 f64)
/// Post-processing codes read these files by name, matching the paper's
/// requirement that archived codes "accept a filename as a command line
/// parameter" and use standard file I/O.
std::string SerializeTbf(const Field& field, uint32_t timestep);
Result<Field> ParseTbf(std::string_view bytes);

/// Reads just the header (cheap metadata probe).
struct TbfHeader {
  uint32_t n = 0;
  uint32_t timestep = 0;
  double time = 0;
  double nu = 0;
};
Result<TbfHeader> ParseTbfHeader(std::string_view bytes);

/// A logical simulation dataset to archive: one timestep of an n³ run.
struct DatasetSpec {
  std::string simulation_key;  // e.g. "S19990110150932"
  uint32_t timestep = 0;
  size_t grid_n = 0;
  double time = 0;
  double nu = 0.01;
  /// Materialise real bytes (small grids, tests) or declare a sparse file
  /// of the faithful size (paper-scale 85/544 MB datasets).
  bool materialize = false;

  std::string FileName() const;
  uint64_t SizeBytes() const { return Field::FileBytes(grid_n); }
};

/// Archives the dataset into `directory` on `server` (file stays where it
/// was generated — EASIA's first principle). Returns the stored URL in the
/// DATALINK insert form `http://host/dir/file`.
Result<std::string> ArchiveDataset(fs::FileServer* server,
                                   const std::string& directory,
                                   const DatasetSpec& spec);

/// Paper-calibrated dataset sizes (decimal MB, matching the ftp table).
constexpr uint64_t kSmallSimulationBytes = 85ULL * 1000 * 1000;
constexpr uint64_t kLargeSimulationBytes = 544ULL * 1000 * 1000;

}  // namespace easia::turb

#endif  // EASIA_TURBULENCE_TBF_H_
