#ifndef EASIA_WEB_HTML_H_
#define EASIA_WEB_HTML_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace easia::web {

/// A tiny streaming HTML writer: emits tags with escaped text, tracking the
/// open-element stack so documents are always well formed.
class HtmlWriter {
 public:
  using Attrs = std::vector<std::pair<std::string, std::string>>;

  HtmlWriter& Open(std::string_view tag, const Attrs& attrs = {});
  HtmlWriter& Close();          // closes the innermost open tag
  HtmlWriter& CloseAll();       // closes every open tag
  HtmlWriter& Text(std::string_view text);       // escaped
  HtmlWriter& Raw(std::string_view html);        // unescaped (trusted)
  /// <tag attrs>text</tag>
  HtmlWriter& Element(std::string_view tag, std::string_view text,
                      const Attrs& attrs = {});
  /// Self-closing/void element (<input .../>, <br/>).
  HtmlWriter& Void(std::string_view tag, const Attrs& attrs = {});
  /// <a href=...>text</a>
  HtmlWriter& Link(std::string_view href, std::string_view text);

  std::string Finish();  // closes everything and returns the document
  const std::string& str() const { return out_; }

 private:
  std::string out_;
  std::vector<std::string> stack_;
};

/// Percent-encodes a query-string value.
std::string UrlEncode(std::string_view value);

/// Builds "path?k1=v1&k2=v2" with encoding.
std::string BuildUrl(std::string_view path,
                     const std::map<std::string, std::string>& params);

/// Standard page skeleton used by every EASIA page.
std::string PageHeader(std::string_view title);
std::string PageFooter();

}  // namespace easia::web

#endif  // EASIA_WEB_HTML_H_
