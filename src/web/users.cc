#include "web/users.h"

#include "common/string_util.h"
#include "crypto/sha256.h"

namespace easia::web {

std::string_view UserRoleName(UserRole role) {
  switch (role) {
    case UserRole::kGuest: return "guest";
    case UserRole::kAuthorised: return "authorised";
    case UserRole::kAdmin: return "admin";
  }
  return "guest";
}

UserManager::UserManager() {
  // The paper's public demo account.
  (void)AddUser("guest", "guest", UserRole::kGuest);
}

std::string UserManager::Digest(const std::string& salt,
                                const std::string& password) {
  return crypto::Sha256::HexHash(salt + "\x00" + password);
}

Status UserManager::AddUser(const std::string& name,
                            const std::string& password, UserRole role) {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) return Status::InvalidArgument("empty user name");
  if (users_.count(name) != 0) {
    return Status::AlreadyExists("user " + name + " already exists");
  }
  Entry entry;
  entry.user.name = name;
  entry.user.role = role;
  entry.salt = StrPrintf("s%llu",
                         static_cast<unsigned long long>(++salt_counter_));
  entry.password_digest = Digest(entry.salt, password);
  users_[name] = std::move(entry);
  return Status::OK();
}

Status UserManager::RemoveUser(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (users_.erase(name) == 0) {
    return Status::NotFound("no user named " + name);
  }
  return Status::OK();
}

Status UserManager::SetRole(const std::string& name, UserRole role) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(name);
  if (it == users_.end()) return Status::NotFound("no user named " + name);
  it->second.user.role = role;
  return Status::OK();
}

Status UserManager::SetPassword(const std::string& name,
                                const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(name);
  if (it == users_.end()) return Status::NotFound("no user named " + name);
  it->second.password_digest = Digest(it->second.salt, password);
  return Status::OK();
}

Result<User> UserManager::Authenticate(const std::string& name,
                                       const std::string& password) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(name);
  if (it == users_.end() ||
      it->second.password_digest != Digest(it->second.salt, password)) {
    return Status::PermissionDenied("bad user name or password");
  }
  return it->second.user;
}

Result<User> UserManager::GetUser(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(name);
  if (it == users_.end()) return Status::NotFound("no user named " + name);
  return it->second.user;
}

std::vector<User> UserManager::ListUsers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<User> out;
  for (const auto& [name, entry] : users_) out.push_back(entry.user);
  return out;
}

}  // namespace easia::web
