#ifndef EASIA_WEB_QBE_H_
#define EASIA_WEB_QBE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xuis/model.h"

namespace easia::web {

/// One restriction entered on the query form ("for each field present,
/// restrictions including wildcards may be put on the values").
struct QbeRestriction {
  std::string column;  // column name within the form's table
  std::string op;      // "=", "<>", "<", "<=", ">", ">=", "LIKE"
  std::string value;   // user text; '*' and '?' wildcards auto-map to LIKE
};

/// A submitted QBE form.
struct QbeRequest {
  std::string table;
  /// Fields the user ticked for output; empty selects all visible columns.
  std::vector<std::string> selected_columns;
  std::vector<QbeRestriction> restrictions;
  std::string order_by;  // column name; empty for storage order
  bool descending = false;
  int64_t limit = -1;
};

/// Operators offered by the form's drop-downs.
const std::vector<std::string>& QbeOperators();

/// Renders the schema-driven query form for one table: a row per visible
/// column with an output tick box, an operator drop-down, a value box and
/// the sample-value drop-down harvested by the XUIS generator.
std::string RenderQueryForm(const xuis::XuisTable& table);

/// The entry page: one link per visible table ("select a link to a query
/// form for a particular table"), plus an all-rows shortcut.
std::string RenderTableIndex(const xuis::XuisSpec& spec);

/// Translates a submitted form into SQL against the archive database.
/// Hidden columns are refused; '*'/'?' wildcards become LIKE '%'/'_';
/// values are quoted or passed numerically by column type.
Result<std::string> TranslateToSql(const xuis::XuisSpec& spec,
                                   const QbeRequest& request);

/// SQL for a browse click: all rows of `table` where `column` = `value`
/// (primary-key and foreign-key hyperlink traversal).
Result<std::string> BrowseSql(const xuis::XuisSpec& spec,
                              const std::string& table,
                              const std::string& column,
                              const std::string& value);

}  // namespace easia::web

#endif  // EASIA_WEB_QBE_H_
