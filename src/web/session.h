#ifndef EASIA_WEB_SESSION_H_
#define EASIA_WEB_SESSION_H_

#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "web/users.h"

namespace easia::web {

/// A servlet session (the paper keys temp directories and upload
/// authorisation off the servlet session identifier).
struct Session {
  std::string id;
  User user;
  double created_epoch = 0;
  double last_active_epoch = 0;
};

/// Thread-safe: concurrent web workers log in, touch and expire sessions
/// in parallel, so the map is mutex-guarded and lookups return session
/// snapshots by value (handlers keep using their copy after the entry is
/// swept or logged out elsewhere).
class SessionManager {
 public:
  SessionManager(const UserManager* users, const Clock* clock,
                 double idle_timeout_seconds = 1800.0);

  /// Authenticates and opens a session; returns the session id.
  Result<std::string> Login(const std::string& name,
                            const std::string& password);

  /// Looks up a live session; touches last-active. Errors: kNotFound,
  /// kTokenExpired (idle timeout). Returns a snapshot by value.
  Result<Session> Get(const std::string& session_id);

  Status Logout(const std::string& session_id);

  /// Drops idle sessions; returns how many were removed.
  size_t SweepExpired();

  size_t ActiveCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.size();
  }

 private:
  const UserManager* users_;
  const Clock* clock_;
  double idle_timeout_;
  mutable std::mutex mu_;
  std::map<std::string, Session> sessions_;
  uint64_t counter_ = 0;
};

}  // namespace easia::web

#endif  // EASIA_WEB_SESSION_H_
