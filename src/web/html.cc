#include "web/html.h"

#include "common/string_util.h"

namespace easia::web {

HtmlWriter& HtmlWriter::Open(std::string_view tag, const Attrs& attrs) {
  out_ += '<';
  out_ += tag;
  for (const auto& [name, value] : attrs) {
    out_ += ' ';
    out_ += name;
    out_ += "=\"";
    out_ += EscapeMarkup(value);
    out_ += '"';
  }
  out_ += '>';
  stack_.emplace_back(tag);
  return *this;
}

HtmlWriter& HtmlWriter::Close() {
  if (!stack_.empty()) {
    out_ += "</";
    out_ += stack_.back();
    out_ += '>';
    stack_.pop_back();
  }
  return *this;
}

HtmlWriter& HtmlWriter::CloseAll() {
  while (!stack_.empty()) Close();
  return *this;
}

HtmlWriter& HtmlWriter::Text(std::string_view text) {
  out_ += EscapeMarkup(text);
  return *this;
}

HtmlWriter& HtmlWriter::Raw(std::string_view html) {
  out_ += html;
  return *this;
}

HtmlWriter& HtmlWriter::Element(std::string_view tag, std::string_view text,
                                const Attrs& attrs) {
  Open(tag, attrs);
  Text(text);
  Close();
  return *this;
}

HtmlWriter& HtmlWriter::Void(std::string_view tag, const Attrs& attrs) {
  out_ += '<';
  out_ += tag;
  for (const auto& [name, value] : attrs) {
    out_ += ' ';
    out_ += name;
    out_ += "=\"";
    out_ += EscapeMarkup(value);
    out_ += '"';
  }
  out_ += "/>";
  return *this;
}

HtmlWriter& HtmlWriter::Link(std::string_view href, std::string_view text) {
  return Element("a", text, {{"href", std::string(href)}});
}

std::string HtmlWriter::Finish() {
  CloseAll();
  return std::move(out_);
}

std::string UrlEncode(std::string_view value) {
  std::string out;
  for (char c : value) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
                c == '~';
    if (safe) {
      out += c;
    } else {
      out += StrPrintf("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

std::string BuildUrl(std::string_view path,
                     const std::map<std::string, std::string>& params) {
  std::string out(path);
  bool first = true;
  for (const auto& [k, v] : params) {
    out += first ? '?' : '&';
    first = false;
    out += UrlEncode(k);
    out += '=';
    out += UrlEncode(v);
  }
  return out;
}

std::string PageHeader(std::string_view title) {
  std::string out = "<html><head><title>";
  out += EscapeMarkup(title);
  out += "</title></head><body>";
  out += "<h1>";
  out += EscapeMarkup(title);
  out += "</h1>";
  return out;
}

std::string PageFooter() { return "</body></html>"; }

}  // namespace easia::web
