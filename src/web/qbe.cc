#include "web/qbe.h"

#include "common/string_util.h"
#include "web/html.h"

namespace easia::web {

namespace {

bool IsNumericType(db::DataType type) {
  return type == db::DataType::kInteger || type == db::DataType::kDouble ||
         type == db::DataType::kTimestamp;
}

/// Quotes / passes through a literal by column type; converts '*'/'?'
/// wildcards to LIKE syntax. Returns (sql_literal, use_like).
Result<std::pair<std::string, bool>> RenderLiteral(
    const xuis::XuisColumn& col, const std::string& op,
    const std::string& value) {
  if (op == "LIKE") {
    // Explicit LIKE: the user writes SQL wildcards themselves.
    return std::make_pair("'" + ReplaceAll(value, "'", "''") + "'", true);
  }
  bool has_wildcard = value.find('*') != std::string::npos ||
                      value.find('?') != std::string::npos;
  if (has_wildcard && (op.empty() || op == "=")) {
    // Web-style wildcards auto-map to LIKE. Our LIKE has no escape
    // handling, so a raw '%' cannot be expressed in this mode.
    if (value.find('%') != std::string::npos) {
      return Status::InvalidArgument(
          "use '*' (any run) and '?' (one char) as wildcards");
    }
    std::string pattern = ReplaceAll(value, "*", "%");
    pattern = ReplaceAll(pattern, "?", "_");
    return std::make_pair("'" + ReplaceAll(pattern, "'", "''") + "'", true);
  }
  if (IsNumericType(col.type)) {
    EASIA_ASSIGN_OR_RETURN(double parsed, ParseDouble(value));
    (void)parsed;
    return std::make_pair(std::string(Trim(value)), false);
  }
  return std::make_pair("'" + ReplaceAll(value, "'", "''") + "'", false);
}

}  // namespace

const std::vector<std::string>& QbeOperators() {
  static const std::vector<std::string>* const kOps =
      new std::vector<std::string>{"=", "<>", "<", "<=", ">", ">=", "LIKE"};
  return *kOps;
}

std::string RenderQueryForm(const xuis::XuisTable& table) {
  HtmlWriter w;
  w.Raw(PageHeader("Query " + table.DisplayName()));
  w.Open("form", {{"action", "/search"}, {"method", "post"}});
  w.Void("input", {{"type", "hidden"}, {"name", "table"},
                   {"value", table.name}});
  w.Open("table", {{"border", "1"}});
  w.Open("tr");
  for (std::string_view h : {"Field", "Show", "Operator", "Value", "Samples"}) {
    w.Element("th", h);
  }
  w.Close();  // tr
  for (const xuis::XuisColumn& col : table.columns) {
    if (col.hidden) continue;
    w.Open("tr");
    w.Element("td", col.DisplayName());
    w.Open("td");
    w.Void("input", {{"type", "checkbox"},
                     {"name", "show." + col.name},
                     {"checked", "checked"}});
    w.Close();
    w.Open("td").Open("select", {{"name", "op." + col.name}});
    for (const std::string& op : QbeOperators()) {
      w.Element("option", op, {{"value", op}});
    }
    w.Close().Close();
    w.Open("td");
    w.Void("input", {{"type", "text"}, {"name", "value." + col.name}});
    w.Close();
    w.Open("td");
    if (!col.samples.empty()) {
      w.Open("select", {{"name", "sample." + col.name}});
      w.Element("option", "(sample values)", {{"value", ""}});
      for (const std::string& sample : col.samples) {
        w.Element("option", sample, {{"value", sample}});
      }
      w.Close();
    }
    w.Close();  // td
    w.Close();  // tr
  }
  w.Close();  // table
  w.Void("input", {{"type", "submit"}, {"value", "Search"}});
  w.Close();  // form
  w.Raw(PageFooter());
  return w.Finish();
}

std::string RenderTableIndex(const xuis::XuisSpec& spec) {
  HtmlWriter w;
  w.Raw(PageHeader("Archive: " + spec.database));
  w.Open("ul");
  for (const xuis::XuisTable* table : spec.VisibleTables()) {
    w.Open("li");
    w.Link(BuildUrl("/query", {{"table", table->name}}),
           "Query " + table->DisplayName());
    w.Text(" | ");
    w.Link(BuildUrl("/search", {{"table", table->name}, {"all", "1"}}),
           "All rows");
    w.Close();
  }
  w.Close();
  w.Raw(PageFooter());
  return w.Finish();
}

Result<std::string> TranslateToSql(const xuis::XuisSpec& spec,
                                   const QbeRequest& request) {
  const xuis::XuisTable* table = spec.FindTable(request.table);
  if (table == nullptr) {
    return Status::NotFound("qbe: unknown table " + request.table);
  }
  if (table->hidden) {
    return Status::PermissionDenied("qbe: table " + request.table +
                                    " is hidden from this interface");
  }
  auto visible_column = [&](const std::string& name)
      -> Result<const xuis::XuisColumn*> {
    const xuis::XuisColumn* col = table->FindColumn(name);
    if (col == nullptr) {
      return Status::NotFound("qbe: unknown column " + name);
    }
    if (col->hidden) {
      return Status::PermissionDenied("qbe: column " + name + " is hidden");
    }
    return col;
  };
  std::vector<std::string> select_list;
  if (request.selected_columns.empty()) {
    for (const xuis::XuisColumn& col : table->columns) {
      if (!col.hidden) select_list.push_back(col.name);
    }
  } else {
    for (const std::string& name : request.selected_columns) {
      EASIA_ASSIGN_OR_RETURN(const xuis::XuisColumn* col,
                             visible_column(name));
      select_list.push_back(col->name);
    }
  }
  // Primary-key columns must ride along (hyperlink targets) even when not
  // ticked; append any that are missing.
  for (const xuis::XuisColumn& col : table->columns) {
    if (!col.is_primary_key) continue;
    bool present = false;
    for (const std::string& s : select_list) {
      if (EqualsIgnoreCase(s, col.name)) present = true;
    }
    if (!present) select_list.push_back(col.name);
  }
  if (select_list.empty()) {
    return Status::InvalidArgument("qbe: no columns selected");
  }
  std::string sql = "SELECT " + Join(select_list, ", ") + " FROM " +
                    table->name;
  std::vector<std::string> predicates;
  for (const QbeRestriction& r : request.restrictions) {
    if (Trim(r.value).empty()) continue;
    EASIA_ASSIGN_OR_RETURN(const xuis::XuisColumn* col,
                           visible_column(r.column));
    EASIA_ASSIGN_OR_RETURN(auto literal,
                           RenderLiteral(*col, r.op, r.value));
    std::string op = literal.second ? "LIKE" : (r.op.empty() ? "=" : r.op);
    bool known = false;
    for (const std::string& allowed : QbeOperators()) {
      if (allowed == op) known = true;
    }
    if (!known) return Status::InvalidArgument("qbe: bad operator " + r.op);
    predicates.push_back(col->name + " " + op + " " + literal.first);
  }
  if (!predicates.empty()) {
    sql += " WHERE " + Join(predicates, " AND ");
  }
  if (!request.order_by.empty()) {
    EASIA_ASSIGN_OR_RETURN(const xuis::XuisColumn* col,
                           visible_column(request.order_by));
    sql += " ORDER BY " + col->name;
    if (request.descending) sql += " DESC";
  }
  if (request.limit >= 0) {
    sql += StrPrintf(" LIMIT %lld", static_cast<long long>(request.limit));
  }
  return sql;
}

Result<std::string> BrowseSql(const xuis::XuisSpec& spec,
                              const std::string& table,
                              const std::string& column,
                              const std::string& value) {
  const xuis::XuisTable* t = spec.FindTable(table);
  if (t == nullptr) return Status::NotFound("browse: unknown table " + table);
  if (t->hidden) {
    return Status::PermissionDenied("browse: table " + table +
                                    " is hidden from this interface");
  }
  const xuis::XuisColumn* col = t->FindColumn(column);
  if (col == nullptr) {
    return Status::NotFound("browse: unknown column " + column);
  }
  if (col->hidden) {
    return Status::PermissionDenied("browse: column " + column + " is hidden");
  }
  std::string literal;
  if (IsNumericType(col->type)) {
    EASIA_ASSIGN_OR_RETURN(double parsed, ParseDouble(value));
    (void)parsed;
    literal = std::string(Trim(value));
  } else {
    literal = "'" + ReplaceAll(value, "'", "''") + "'";
  }
  return "SELECT * FROM " + t->name + " WHERE " + col->name + " = " + literal;
}

}  // namespace easia::web
