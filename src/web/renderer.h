#ifndef EASIA_WEB_RENDERER_H_
#define EASIA_WEB_RENDERER_H_

#include <string>

#include "common/result.h"
#include "db/database.h"
#include "fileserver/file_server.h"
#include "xuis/model.h"

namespace easia::web {

/// Everything the result renderer needs to decorate cells with hyperlinks.
struct RenderContext {
  const xuis::XuisSpec* spec = nullptr;
  const xuis::XuisTable* table = nullptr;  // table the query ran against
  db::Database* database = nullptr;        // FK substitute-column lookups
  const fs::FileServerFleet* fleet = nullptr;  // DATALINK size display
  bool is_guest = true;
};

/// Renders a query result as the paper's hyperlinked result table:
///
///  * primary-key cells link to every table referencing them (one link per
///    `<refby>`),
///  * foreign-key cells link to the parent row — displaying the substitute
///    column's value when the XUIS requests it,
///  * BLOB/CLOB cells display "&lt;clob N bytes&gt;" and link to the
///    rematerialisation endpoint,
///  * DATALINK cells display file name + size and link to the tokenised
///    download URL,
///  * a trailing Operations cell lists every XUIS operation applicable to
///    the row (guard conditions evaluated against row values; guests see
///    only guest-accessible operations), plus an upload link when the
///    column authorises code upload.
Result<std::string> RenderResultTable(const db::QueryResult& result,
                                      const RenderContext& ctx);

/// Renders the parameter-entry form for one operation invocation (the
/// paper's "input form for operation generated according to XUIS").
std::string RenderOperationForm(const xuis::OperationSpec& op,
                                const std::string& dataset_url);

}  // namespace easia::web

#endif  // EASIA_WEB_RENDERER_H_
