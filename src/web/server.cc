#include "web/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/string_util.h"
#include "db/shard/coordinator.h"
#include "web/html.h"
#include "xuis/serialize.h"

namespace easia::web {

namespace {

std::string ParamOr(const fs::HttpParams& params, const std::string& key,
                    const std::string& fallback = "") {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

/// Every route label the server emits. Request paths outside this set are
/// collapsed to "other" so a scanner probing random URLs cannot grow the
/// metric cardinality.
constexpr const char* kRoutes[] = {
    "/login",       "/logout",      "/tables",    "/query",
    "/search",      "/browse",      "/typeahead", "/object",
    "/object/put",  "/opform",      "/runop",     "/runchain",
    "/upload",      "/jobs/submit", "/jobs/status", "/jobs/list",
    "/jobs/cancel", "/xuis",        "/stats",     "/metrics",
    "/users",       "other"};

constexpr const char kHttpRequestsHelp[] =
    "HTTP requests served, by route and status code";
constexpr const char kHttpLatencyHelp[] =
    "HTTP request latency in seconds, by route";

}  // namespace

ArchiveWebServer::ArchiveWebServer(Deps deps) : deps_(deps) {
  for (const char* route : kRoutes) {
    RouteMetrics rm;
    rm.web_span = std::string("web:") + route;
    rm.cache_span = std::string("cache:") + route;
    if (deps_.metrics != nullptr) {
      rm.requests_ok =
          deps_.metrics->GetCounter("easia_http_requests_total",
                                    kHttpRequestsHelp,
                                    {{"code", "200"}, {"route", route}});
      rm.latency = deps_.metrics->GetHistogram(
          "easia_http_request_seconds", kHttpLatencyHelp,
          obs::Histogram::LatencyBounds(), {{"route", route}});
    }
    route_metrics_.emplace(route, std::move(rm));
  }
}

HttpResponse ArchiveWebServer::Error(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = PageHeader("Error") + "<p>" + EscapeMarkup(message) + "</p>" +
              PageFooter();
  return resp;
}

const ArchiveWebServer::RouteMetrics& ArchiveWebServer::RouteEntry(
    const std::string& path, std::string* route) const {
  *route = path == "/"                  ? "/tables"
           : StartsWith(path, "/users") ? "/users"
                                        : path;
  auto it = route_metrics_.find(*route);
  if (it == route_metrics_.end()) {
    *route = "other";
    it = route_metrics_.find(*route);
  }
  return it->second;
}

HttpResponse ArchiveWebServer::Handle(const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string route;
  const RouteMetrics& rm = RouteEntry(request.path, &route);
  obs::Tracer::Scope span(deps_.tracer, rm.web_span);
  const Clock* clock =
      deps_.tracer != nullptr ? deps_.tracer->clock() : nullptr;
  double start = clock != nullptr ? clock->Now() : 0;
  HttpResponse resp = Dispatch(request);
  if (resp.status != 200) {
    span.set_error();
    span.set_note(StrPrintf("status %d", resp.status));
  }
  if (deps_.metrics != nullptr) {
    if (resp.status == 200) {
      rm.requests_ok->Increment();
    } else {
      // Non-200 codes are rare; the registry lookup off the hot path
      // keeps per-route-per-code children sparse.
      deps_.metrics
          ->GetCounter("easia_http_requests_total", kHttpRequestsHelp,
                       {{"code", StrPrintf("%d", resp.status)},
                        {"route", route}})
          ->Increment();
    }
    if (clock != nullptr) {
      rm.latency->Observe(clock->Now() - start);
    }
  }
  return resp;
}

HttpResponse ArchiveWebServer::Dispatch(const HttpRequest& request) {
  if (request.path == "/login") return HandleLogin(request);
  if (request.path == "/metrics") return HandleMetrics();
  Session session;
  HttpResponse gate = RequireSession(request, &session);
  if (!gate.ok()) return gate;
  if (request.path == "/logout") {
    (void)deps_.sessions->Logout(request.session_id);
    HttpResponse resp;
    resp.body = PageHeader("Logged out") + PageFooter();
    return resp;
  }
  if (request.path == "/" || request.path == "/tables") {
    return HandleTables(session);
  }
  if (request.path == "/query") return HandleQueryForm(request, session);
  if (request.path == "/search") return HandleSearch(request, session);
  if (request.path == "/browse") return HandleBrowse(request, session);
  if (request.path == "/typeahead") return HandleTypeahead(request, session);
  if (request.path == "/object/put") return HandleObjectPut(request, session);
  if (request.path == "/object") return HandleObject(request, session);
  if (request.path == "/opform") return HandleOpForm(request, session);
  if (request.path == "/runop") return HandleRunOp(request, session);
  if (request.path == "/runchain") return HandleRunChain(request, session);
  if (request.path == "/upload") return HandleUpload(request, session);
  if (request.path == "/jobs/submit") return HandleJobSubmit(request, session);
  if (request.path == "/jobs/status") return HandleJobStatus(request, session);
  if (request.path == "/jobs/list") return HandleJobList(session);
  if (request.path == "/jobs/cancel") return HandleJobCancel(request, session);
  if (request.path == "/xuis") return HandleXuis(session);
  if (request.path == "/stats") return HandleStats(session);
  if (StartsWith(request.path, "/users")) return HandleUsers(request, session);
  return Error(404, "no such page: " + request.path);
}

std::vector<HttpResponse> ArchiveWebServer::HandleConcurrent(
    const std::vector<HttpRequest>& requests, const DispatchOptions& options) {
  std::vector<HttpResponse> responses(requests.size());
  size_t workers = std::max<size_t>(1, options.workers);
  workers = std::min(workers, std::max<size_t>(1, requests.size()));
  std::atomic<size_t> next{0};
  auto run = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) return;
      if (options.simulated_client_latency_seconds > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options.simulated_client_latency_seconds));
      }
      responses[i] = Handle(requests[i]);
    }
  };
  if (workers == 1) {
    run();
    return responses;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t t = 0; t < workers; ++t) pool.emplace_back(run);
  for (std::thread& t : pool) t.join();
  return responses;
}

std::string ArchiveWebServer::CacheVisibility(const Session& session,
                                              bool per_user) const {
  if (per_user || deps_.xuis->HasPersonal(session.user.name)) {
    return "u:" + session.user.name;
  }
  return session.user.IsGuest() ? "role:guest" : "role:auth";
}

db::repl::ReadTicket ArchiveWebServer::ServingNode() const {
  if (deps_.shard != nullptr) {
    // The shard coordinator is the serving "node": queries route through
    // it (ExecuteQuery), and the cache validator is the combined epoch —
    // a sum over shard primaries, so any shard's commit invalidates.
    return {deps_.shard->shard_db(0), deps_.shard->combined_epoch(), "shard",
            false};
  }
  if (deps_.repl != nullptr) return deps_.repl->RouteRead();
  return {deps_.database, deps_.database->commit_epoch(), "local", false};
}

Result<db::QueryResult> ArchiveWebServer::ExecuteQuery(
    db::Database* db, const std::string& sql,
    const db::ExecContext& ctx) const {
  if (deps_.shard != nullptr) return deps_.shard->Execute(sql, ctx);
  return db->Execute(sql, ctx);
}

Result<db::QueryResult> ArchiveWebServer::ExecuteDml(
    const std::string& sql, const db::ExecContext& ctx) {
  // DML must flow through the replication coordinator when it is wired:
  // it targets the CURRENT primary (deps_.database is only the initial
  // one — after a failover its commit listener is detached, so writing
  // there directly would commit outside the replication log, invisible
  // to every routed read) and enforces the ack quorum. The shard
  // coordinator subsumes it: writes route to the owning shard's current
  // primary with the same quorum semantics per shard.
  if (deps_.shard != nullptr) return deps_.shard->Execute(sql, ctx);
  if (deps_.repl != nullptr) return deps_.repl->Execute(sql, ctx);
  return deps_.database->Execute(sql, ctx);
}

template <typename RenderFn>
HttpResponse ArchiveWebServer::CachedRender(const Session& session,
                                            bool per_user,
                                            const std::string& route,
                                            const std::string& params,
                                            RenderFn&& render) {
  // Route once per request: the node queried on a miss and the epoch the
  // entry is validated/stored under must be the same observation.
  db::repl::ReadTicket ticket = ServingNode();
  if (deps_.cache == nullptr) return render(ticket);
  std::string route_label;
  const RouteMetrics& rm = RouteEntry(route, &route_label);
  obs::Tracer::Scope span(deps_.tracer, rm.cache_span);
  RenderCache::Key key;
  key.visibility = CacheVisibility(session, per_user);
  key.route = route;
  key.params = params;
  // Capture the validators BEFORE rendering: a commit racing with the
  // render leaves the entry tagged with the pre-commit epoch, so the next
  // lookup conservatively misses instead of replaying a possibly-mixed
  // page as current. The epoch is the SERVING node's applied epoch: a
  // page rendered from a lagging replica but stamped with the primary's
  // newer epoch would later be served as current even though the replica
  // had not applied those commits when it rendered.
  uint64_t epoch = ticket.epoch;
  uint64_t revision = deps_.xuis->revision();
  if (std::optional<CachedPage> page =
          deps_.cache->Get(key, epoch, revision)) {
    span.set_note("hit");
    HttpResponse resp;
    resp.content_type = std::move(page->content_type);
    resp.body = std::move(page->body);
    return resp;
  }
  span.set_note("miss");
  HttpResponse resp = render(ticket);
  if (resp.status == 200) {
    CachedPage page;
    page.content_type = resp.content_type;
    page.body = resp.body;
    deps_.cache->Put(key, epoch, revision, std::move(page));
  }
  return resp;
}

HttpResponse ArchiveWebServer::RequireSession(const HttpRequest& request,
                                              Session* session) {
  if (request.session_id.empty()) {
    return Error(401, "log in first");
  }
  Result<Session> s = deps_.sessions->Get(request.session_id);
  if (!s.ok()) return Error(401, s.status().message());
  *session = std::move(*s);
  HttpResponse ok;
  return ok;
}

HttpResponse ArchiveWebServer::HandleLogin(const HttpRequest& request) {
  Result<std::string> session_id =
      deps_.sessions->Login(ParamOr(request.params, "user"),
                            ParamOr(request.params, "password"));
  if (!session_id.ok()) return Error(403, session_id.status().message());
  HttpResponse resp;
  resp.content_type = "text/plain";
  resp.body = *session_id;
  return resp;
}

HttpResponse ArchiveWebServer::HandleTables(const Session& session) {
  return CachedRender(session, /*per_user=*/false, "/tables", "",
                      [&](const db::repl::ReadTicket&) {
    const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
    HttpResponse resp;
    resp.body = RenderTableIndex(spec);
    return resp;
  });
}

HttpResponse ArchiveWebServer::HandleQueryForm(const HttpRequest& request,
                                               const Session& session) {
  std::string table_name = ParamOr(request.params, "table");
  return CachedRender(
      session, /*per_user=*/false, "/query", "table=" + table_name,
      [&](const db::repl::ReadTicket&) {
        const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
        const xuis::XuisTable* table = spec.FindTable(table_name);
        if (table == nullptr || table->hidden) {
          return Error(404, "no such table");
        }
        HttpResponse resp;
        resp.body = RenderQueryForm(*table);
        return resp;
      });
}

HttpResponse ArchiveWebServer::HandleXuis(const Session& session) {
  return CachedRender(session, /*per_user=*/false, "/xuis", "",
                      [&](const db::repl::ReadTicket&) {
    Result<std::string> xml =
        xuis::ToXmlText(deps_.xuis->For(session.user.name));
    if (!xml.ok()) return Error(500, xml.status().ToString());
    HttpResponse resp;
    resp.content_type = "text/xml";
    resp.body = std::move(*xml);
    return resp;
  });
}

HttpResponse ArchiveWebServer::RenderQuery(const std::string& sql,
                                           const xuis::XuisTable* table,
                                           const Session& session,
                                           db::Database* db) {
  db::ExecContext exec;
  exec.user = session.user.name;
  Result<db::QueryResult> result = ExecuteQuery(db, sql, exec);
  if (!result.ok()) return Error(400, result.status().ToString());
  RenderContext ctx;
  ctx.spec = &deps_.xuis->For(session.user.name);
  ctx.table = table;
  ctx.database = db;
  ctx.fleet = deps_.fleet;
  ctx.is_guest = session.user.IsGuest();
  Result<std::string> html = RenderResultTable(*result, ctx);
  if (!html.ok()) return Error(500, html.status().ToString());
  HttpResponse resp;
  resp.body = std::move(*html);
  return resp;
}

HttpResponse ArchiveWebServer::HandleSearch(const HttpRequest& request,
                                            const Session& session) {
  const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
  QbeRequest qbe;
  qbe.table = ParamOr(request.params, "table");
  const xuis::XuisTable* table = spec.FindTable(qbe.table);
  if (table == nullptr || table->hidden) return Error(404, "no such table");
  bool all = ParamOr(request.params, "all") == "1";
  if (!all) {
    for (const xuis::XuisColumn& col : table->columns) {
      if (col.hidden) continue;
      if (ParamOr(request.params, "show." + col.name) != "") {
        qbe.selected_columns.push_back(col.name);
      }
      std::string value = ParamOr(request.params, "value." + col.name);
      if (value.empty()) {
        value = ParamOr(request.params, "sample." + col.name);
      }
      if (!value.empty()) {
        qbe.restrictions.push_back(
            {col.name, ParamOr(request.params, "op." + col.name, "="),
             value});
      }
    }
  }
  qbe.order_by = ParamOr(request.params, "orderby");
  qbe.descending = ParamOr(request.params, "desc") == "1";
  std::string limit = ParamOr(request.params, "limit");
  if (!limit.empty()) {
    Result<int64_t> n = ParseInt64(limit);
    if (n.ok()) qbe.limit = *n;
  }
  Result<std::string> sql = TranslateToSql(spec, qbe);
  if (!sql.ok()) return Error(400, sql.status().ToString());
  // /search is uncached, so it routes here; cached routes route inside
  // CachedRender, where the ticket doubles as the cache validator.
  db::repl::ReadTicket ticket = ServingNode();
  return RenderQuery(*sql, table, session, ticket.db);
}

HttpResponse ArchiveWebServer::HandleBrowse(const HttpRequest& request,
                                            const Session& session) {
  std::string table_name = ParamOr(request.params, "table");
  std::string column = ParamOr(request.params, "column");
  std::string value = ParamOr(request.params, "value");
  // Browse pages embed per-user DATALINK access tokens, so they are cached
  // per user (and aged out by the cache's max-age bound, which the archive
  // wires to a fraction of the token TTL).
  std::string params =
      "table=" + table_name + "&column=" + column + "&value=" + value;
  return CachedRender(
      session, /*per_user=*/true, "/browse", params,
      [&](const db::repl::ReadTicket& ticket) {
    const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
    Result<std::string> sql = BrowseSql(spec, table_name, column, value);
    if (!sql.ok()) {
      int status = sql.status().IsPermissionDenied() ? 403 : 400;
      return Error(status, sql.status().ToString());
    }
    const xuis::XuisTable* table = spec.FindTable(table_name);
    return RenderQuery(*sql, table, session, ticket.db);
  });
}

HttpResponse ArchiveWebServer::HandleTypeahead(const HttpRequest& request,
                                               const Session& session) {
  std::string table_name = ParamOr(request.params, "table");
  std::string column = ParamOr(request.params, "column");
  std::string prefix = ParamOr(request.params, "prefix");
  std::string limit = ParamOr(request.params, "limit", "10");
  std::string params = "table=" + table_name + "&column=" + column +
                       "&prefix=" + prefix + "&limit=" + limit;
  return CachedRender(
      session, /*per_user=*/false, "/typeahead", params,
      [&](const db::repl::ReadTicket& ticket) {
    const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
    const xuis::XuisTable* table = spec.FindTable(table_name);
    if (table == nullptr || table->hidden) return Error(404, "no such table");
    const xuis::XuisColumn* col = table->FindColumn(column);
    if (col == nullptr || col->hidden) return Error(404, "no such column");
    Result<int64_t> n = ParseInt64(limit);
    if (!n.ok() || *n <= 0 || *n > 1000) return Error(400, "bad limit");
    // The typed prefix is escaped (%, _, \ become literals) before the
    // trailing %, so LikePatternPrefix recovers exactly the typed text and
    // the planner serves the completion from the radix prefix index on
    // columnar tables.
    std::string pattern = EscapeLikePattern(prefix) + "%";
    std::string sql = "SELECT DISTINCT " + column + " FROM " + table_name +
                      " WHERE " + column + " LIKE '" +
                      ReplaceAll(pattern, "'", "''") + "' ORDER BY " + column +
                      " LIMIT " + std::to_string(*n);
    db::ExecContext exec;
    exec.user = session.user.name;
    Result<db::QueryResult> result = ExecuteQuery(ticket.db, sql, exec);
    if (!result.ok()) return Error(400, result.status().ToString());
    HttpResponse resp;
    resp.content_type = "text/plain";
    for (const db::Row& row : result->rows) {
      if (row[0].is_null()) continue;
      resp.body += row[0].ToDisplayString();
      resp.body += "\n";
    }
    return resp;
  });
}

HttpResponse ArchiveWebServer::HandleObject(const HttpRequest& request,
                                            const Session& session) {
  const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
  std::string table_name = ParamOr(request.params, "table");
  std::string column = ParamOr(request.params, "column");
  const xuis::XuisTable* table = spec.FindTable(table_name);
  if (table == nullptr) return Error(404, "no such table");
  // Rebuild the primary-key predicate from pkN.<col> parameters.
  std::vector<std::string> predicates;
  for (const auto& [key, value] : request.params) {
    if (!StartsWith(key, "pk")) continue;
    size_t dot = key.find('.');
    if (dot == std::string::npos) continue;
    std::string pk_column = key.substr(dot + 1);
    predicates.push_back(pk_column + " = '" +
                         ReplaceAll(value, "'", "''") + "'");
  }
  if (predicates.empty()) return Error(400, "missing primary key");
  std::string sql = "SELECT " + column + " FROM " + table_name + " WHERE " +
                    Join(predicates, " AND ");
  db::ExecContext exec;
  exec.user = session.user.name;
  // Object reads route like every other read: a stale-bounded replica
  // with primary fallback when replication is wired, the scatter/gather
  // planner when sharding is.
  db::repl::ReadTicket ticket = ServingNode();
  Result<db::QueryResult> result = ExecuteQuery(ticket.db, sql, exec);
  if (!result.ok()) return Error(400, result.status().ToString());
  if (result->rows.empty() || result->rows[0][0].is_null()) {
    return Error(404, "object not found");
  }
  const db::Value& value = result->rows[0][0];
  HttpResponse resp;
  // Rematerialise with the appropriate MIME type (paper: "rematerialise the
  // underlying objects and return them to the user's browser").
  resp.content_type = value.type() == db::DataType::kBlob
                          ? "application/octet-stream"
                          : "text/plain";
  resp.body = value.AsString();
  return resp;
}

HttpResponse ArchiveWebServer::HandleObjectPut(const HttpRequest& request,
                                               const Session& session) {
  // Small files uploaded over the Internet into BLOB/CLOB columns (paper:
  // "store small files that can be uploaded"). Guests may not write.
  if (session.user.IsGuest()) {
    return Error(403, "object upload requires an authorised account");
  }
  const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
  std::string table_name = ParamOr(request.params, "table");
  std::string column = ParamOr(request.params, "column");
  const xuis::XuisColumn* col =
      spec.FindColumnById(table_name + "." + column);
  if (col == nullptr) return Error(404, "no such column");
  if (col->type != db::DataType::kBlob &&
      col->type != db::DataType::kClob) {
    return Error(400, "column is not a BLOB/CLOB");
  }
  std::vector<std::string> predicates;
  for (const auto& [key, value] : request.params) {
    if (!StartsWith(key, "pk")) continue;
    size_t dot = key.find('.');
    if (dot == std::string::npos) continue;
    predicates.push_back(key.substr(dot + 1) + " = '" +
                         ReplaceAll(value, "'", "''") + "'");
  }
  if (predicates.empty()) return Error(400, "missing primary key");
  std::string value = ParamOr(request.params, "value");
  std::string sql = "UPDATE " + table_name + " SET " + column + " = '" +
                    ReplaceAll(value, "'", "''") + "' WHERE " +
                    Join(predicates, " AND ");
  db::ExecContext exec;
  exec.user = session.user.name;
  Result<db::QueryResult> result = ExecuteDml(sql, exec);
  if (!result.ok()) {
    // kUnavailable: primary down, nothing committed — retriable after
    // failover. kAborted: committed on the primary but below the ack
    // quorum — NOT safely retriable (a retry would double-apply). Both
    // are server-side conditions, not client errors.
    StatusCode code = result.status().code();
    int http = code == StatusCode::kUnavailable ||
                       code == StatusCode::kAborted
                   ? 503
                   : 400;
    return Error(http, result.status().ToString());
  }
  if (result->rows_affected == 0) return Error(404, "no matching row");
  HttpResponse resp;
  resp.body = PageHeader("Object stored") +
              StrPrintf("<p>%zu bytes stored in %s.%s</p>", value.size(),
                        table_name.c_str(), column.c_str()) +
              PageFooter();
  return resp;
}

const xuis::OperationSpec* ArchiveWebServer::FindOperation(
    const xuis::XuisSpec& spec, const std::string& name) const {
  for (const xuis::XuisTable& table : spec.tables) {
    for (const xuis::XuisColumn& col : table.columns) {
      for (const xuis::OperationSpec& op : col.operations) {
        if (op.name == name) return &op;
      }
    }
  }
  return nullptr;
}

HttpResponse ArchiveWebServer::HandleOpForm(const HttpRequest& request,
                                            const Session& session) {
  const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
  const xuis::OperationSpec* op =
      FindOperation(spec, ParamOr(request.params, "op"));
  if (op == nullptr) return Error(404, "no such operation");
  if (session.user.IsGuest() && !op->guest_access) {
    return Error(403, "operation not available to guests");
  }
  HttpResponse resp;
  resp.body = RenderOperationForm(*op, ParamOr(request.params, "dataset"));
  return resp;
}

HttpResponse ArchiveWebServer::HandleRunOp(const HttpRequest& request,
                                           const Session& session) {
  const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
  const xuis::OperationSpec* op =
      FindOperation(spec, ParamOr(request.params, "op"));
  if (op == nullptr) return Error(404, "no such operation");
  std::string dataset = ParamOr(request.params, "dataset");
  if (dataset.empty()) return Error(400, "missing dataset");
  fs::HttpParams op_params;
  for (const auto& [key, value] : request.params) {
    if (key != "op" && key != "dataset") op_params[key] = value;
  }
  ops::InvocationContext ctx;
  ctx.user = session.user.name;
  ctx.is_guest = session.user.IsGuest();
  ctx.session_id = session.id;
  Result<ops::OperationResult> result =
      deps_.engine->Invoke(*op, dataset, op_params, ctx);
  if (!result.ok()) {
    int status = result.status().IsPermissionDenied() ? 403 : 400;
    return Error(status, result.status().ToString());
  }
  HtmlWriter w;
  w.Raw(PageHeader("Output from " + op->name));
  w.Open("pre").Text(result->output.text).Close();
  if (!result->output_urls.empty()) {
    w.Element("p", "Output files:");
    w.Open("ul");
    for (const std::string& url : result->output_urls) {
      w.Open("li");
      w.Link(url, url);
      w.Close();
    }
    w.Close();
  }
  w.Element("p", StrPrintf("host=%s input=%s output=%s%s",
                           result->host.c_str(),
                           HumanBytes(result->input_bytes).c_str(),
                           HumanBytes(result->output_bytes).c_str(),
                           result->cache_hit ? " (cached)" : ""));
  w.Raw(PageFooter());
  HttpResponse resp;
  resp.body = w.Finish();
  return resp;
}

HttpResponse ArchiveWebServer::HandleRunChain(const HttpRequest& request,
                                              const Session& session) {
  const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
  std::string chain_name = ParamOr(request.params, "chain");
  std::string dataset = ParamOr(request.params, "dataset");
  if (dataset.empty()) return Error(400, "missing dataset");
  // Locate the chain and its column.
  const xuis::XuisColumn* column = nullptr;
  const xuis::OperationChainSpec* chain = nullptr;
  for (const xuis::XuisTable& table : spec.tables) {
    for (const xuis::XuisColumn& col : table.columns) {
      if (const xuis::OperationChainSpec* found =
              col.FindChain(chain_name)) {
        column = &col;
        chain = found;
      }
    }
  }
  if (chain == nullptr) return Error(404, "no such operation chain");
  if (session.user.IsGuest() && !chain->guest_access) {
    return Error(403, "chain not available to guests");
  }
  std::vector<ops::ChainStep> steps;
  for (const std::string& step_name : chain->step_operations) {
    const xuis::OperationSpec* op = column->FindOperation(step_name);
    if (op == nullptr) {
      return Error(500, "chain step missing: " + step_name);
    }
    ops::ChainStep step;
    step.op = op;
    // Parameters namespaced per step: "<op>.<param>=value".
    for (const auto& [key, value] : request.params) {
      if (StartsWith(key, step_name + ".")) {
        step.params[key.substr(step_name.size() + 1)] = value;
      }
    }
    steps.push_back(std::move(step));
  }
  ops::InvocationContext ctx;
  ctx.user = session.user.name;
  ctx.is_guest = session.user.IsGuest();
  ctx.session_id = session.id;
  Result<std::vector<ops::OperationResult>> results =
      deps_.engine->InvokeChain(steps, dataset, ctx);
  if (!results.ok()) {
    int status = results.status().IsPermissionDenied() ? 403 : 400;
    return Error(status, results.status().ToString());
  }
  HtmlWriter w;
  w.Raw(PageHeader("Chain: " + chain->name));
  for (size_t i = 0; i < results->size(); ++i) {
    const ops::OperationResult& step = (*results)[i];
    w.Element("h2", StrPrintf("Step %zu: %s", i + 1,
                              chain->step_operations[i].c_str()));
    w.Open("pre").Text(step.output.text).Close();
    w.Open("ul");
    for (const std::string& url : step.output_urls) {
      w.Open("li");
      w.Link(url, url);
      w.Close();
    }
    w.Close();
  }
  w.Raw(PageFooter());
  HttpResponse resp;
  resp.body = w.Finish();
  return resp;
}

HttpResponse ArchiveWebServer::HandleUpload(const HttpRequest& request,
                                            const Session& session) {
  if (!session.user.CanUploadCode()) {
    return Error(403, "code upload is not available to guest users");
  }
  const xuis::XuisSpec& spec = deps_.xuis->For(session.user.name);
  std::string colid = ParamOr(request.params, "table") + "." +
                      ParamOr(request.params, "column");
  const xuis::XuisColumn* col = spec.FindColumnById(colid);
  if (col == nullptr) return Error(404, "no such column " + colid);
  if (!col->upload.has_value()) {
    return Error(403, "column does not accept code upload");
  }
  std::string code = ParamOr(request.params, "code");
  if (code.empty()) {
    // No code supplied: show the upload form.
    HtmlWriter w;
    w.Raw(PageHeader("Upload code"));
    w.Open("form", {{"action", "/upload"}, {"method", "post"}});
    for (const std::string& key : {"table", "column", "dataset"}) {
      w.Void("input", {{"type", "hidden"},
                       {"name", key},
                       {"value", ParamOr(request.params, key)}});
    }
    w.Element("p", "Code must accept the dataset filename as its first "
                   "command line parameter and write output to relative "
                   "filenames.");
    w.Open("textarea", {{"name", "code"}, {"rows", "20"}, {"cols", "80"}});
    w.Close();
    w.Void("br");
    w.Void("input", {{"type", "submit"}, {"value", "Upload and run"}});
    w.Close();
    w.Raw(PageFooter());
    HttpResponse resp;
    resp.body = w.Finish();
    return resp;
  }
  ops::InvocationContext ctx;
  ctx.user = session.user.name;
  ctx.is_guest = session.user.IsGuest();
  ctx.session_id = session.id;
  Result<ops::OperationResult> result = deps_.engine->RunUploadedCode(
      *col->upload, code, ParamOr(request.params, "filename", "main.ea"),
      ParamOr(request.params, "dataset"), {}, ctx);
  if (!result.ok()) {
    int status = result.status().IsPermissionDenied() ? 403 : 400;
    return Error(status, result.status().ToString());
  }
  HtmlWriter w;
  w.Raw(PageHeader("Uploaded code output"));
  w.Open("pre").Text(result->output.text).Close();
  w.Open("ul");
  for (const std::string& url : result->output_urls) {
    w.Open("li");
    w.Link(url, url);
    w.Close();
  }
  w.Close();
  w.Raw(PageFooter());
  HttpResponse resp;
  resp.body = w.Finish();
  return resp;
}

HttpResponse ArchiveWebServer::HandleJobSubmit(const HttpRequest& request,
                                               const Session& session) {
  if (deps_.jobs == nullptr) return Error(503, "job queue not configured");
  jobs::JobSpec spec;
  Result<jobs::JobKind> kind =
      jobs::JobKindFromName(ParamOr(request.params, "kind"));
  if (!kind.ok()) return Error(400, kind.status().ToString());
  spec.kind = *kind;
  spec.user = session.user.name;
  spec.is_guest = session.user.IsGuest();
  spec.session_id = session.id;
  std::string datasets = ParamOr(request.params, "dataset");
  spec.datasets = SplitAndTrim(datasets, ',');
  if (spec.datasets.empty()) return Error(400, "missing dataset");
  const xuis::XuisSpec& xspec = deps_.xuis->For(session.user.name);
  switch (spec.kind) {
    case jobs::JobKind::kInvoke:
    case jobs::JobKind::kMulti: {
      spec.operation = ParamOr(request.params, "op");
      const xuis::OperationSpec* op = FindOperation(xspec, spec.operation);
      if (op == nullptr) return Error(404, "no such operation");
      if (session.user.IsGuest() && !op->guest_access) {
        return Error(403, "operation not available to guests");
      }
      break;
    }
    case jobs::JobKind::kChain: {
      spec.operation = ParamOr(request.params, "chain");
      if (spec.operation.empty()) return Error(400, "missing chain");
      // Validate at submission (like kInvoke) so a bad chain name or a
      // guest-forbidden chain fails here, not after queueing.
      const xuis::OperationChainSpec* chain = nullptr;
      for (const xuis::XuisTable& table : xspec.tables) {
        for (const xuis::XuisColumn& col : table.columns) {
          if (const xuis::OperationChainSpec* found =
                  col.FindChain(spec.operation)) {
            chain = found;
          }
        }
      }
      if (chain == nullptr) return Error(404, "no such operation chain");
      if (session.user.IsGuest() && !chain->guest_access) {
        return Error(403, "chain not available to guests");
      }
      break;
    }
    case jobs::JobKind::kUploadedCode: {
      if (!session.user.CanUploadCode()) {
        return Error(403, "code upload is not available to guest users");
      }
      spec.operation = ParamOr(request.params, "table") + "." +
                       ParamOr(request.params, "column");
      const xuis::XuisColumn* col = xspec.FindColumnById(spec.operation);
      if (col == nullptr || !col->upload.has_value()) {
        return Error(404, "no upload column " + spec.operation);
      }
      spec.code = ParamOr(request.params, "code");
      if (spec.code.empty()) return Error(400, "missing code");
      spec.entry_filename =
          ParamOr(request.params, "filename", "main.ea");
      break;
    }
  }
  Result<int64_t> priority =
      ParseInt64(ParamOr(request.params, "priority", "0"));
  if (priority.ok()) spec.priority = static_cast<int32_t>(*priority);
  Result<int64_t> timeout =
      ParseInt64(ParamOr(request.params, "timeout", "0"));
  if (timeout.ok() && *timeout > 0) {
    spec.timeout_seconds = static_cast<double>(*timeout);
  }
  // Server-side retry ceiling: backoff caps at a minute per retry, so an
  // uncapped user-supplied budget could park a job (and its queue slot)
  // for hours.
  constexpr int64_t kMaxJobAttempts = 10;
  Result<int64_t> attempts =
      ParseInt64(ParamOr(request.params, "attempts", "3"));
  if (attempts.ok() && *attempts > 0) {
    spec.max_attempts =
        static_cast<uint32_t>(std::min(*attempts, kMaxJobAttempts));
  }
  for (const auto& [key, value] : request.params) {
    if (key == "kind" || key == "op" || key == "chain" || key == "dataset" ||
        key == "priority" || key == "timeout" || key == "attempts" ||
        key == "code" || key == "filename" || key == "table" ||
        key == "column") {
      continue;
    }
    spec.params[key] = value;
  }
  Result<jobs::Job> job = deps_.jobs->Submit(std::move(spec));
  if (!job.ok()) {
    int status = job.status().IsResourceExhausted() ? 429 : 400;
    return Error(status, job.status().ToString());
  }
  // Plain text, like /login: the caller polls /jobs/status?id=<this>.
  HttpResponse resp;
  resp.content_type = "text/plain";
  resp.body = StrPrintf("%llu", static_cast<unsigned long long>(job->id));
  return resp;
}

HttpResponse ArchiveWebServer::HandleJobStatus(const HttpRequest& request,
                                               const Session& session) {
  if (deps_.jobs == nullptr) return Error(503, "job queue not configured");
  Result<int64_t> id = ParseInt64(ParamOr(request.params, "id"));
  if (!id.ok()) return Error(400, "missing or bad job id");
  Result<jobs::Job> job =
      deps_.jobs->queue().Get(static_cast<jobs::JobId>(*id));
  if (!job.ok()) return Error(404, job.status().ToString());
  if (!session.user.CanManageUsers() &&
      job->spec.user != session.user.name) {
    return Error(403, "job belongs to another user");
  }
  HtmlWriter w;
  w.Raw(PageHeader(StrPrintf("Job %llu",
                             static_cast<unsigned long long>(job->id))));
  w.Open("table", {{"border", "1"}});
  auto row = [&w](const std::string& k, const std::string& v) {
    w.Open("tr").Element("th", k).Element("td", v).Close();
  };
  row("state", std::string(jobs::JobStateName(job->state)));
  row("kind", std::string(jobs::JobKindName(job->spec.kind)));
  row("operation", job->spec.operation);
  row("dataset", Join(job->spec.datasets, ", "));
  row("attempts", StrPrintf("%u of %u", job->attempts,
                            job->spec.max_attempts));
  row("priority", StrPrintf("%d", job->spec.priority));
  if (job->state == jobs::JobState::kRetrying) {
    row("next attempt at", StrPrintf("%.3f", job->not_before));
  }
  if (!job->error.empty()) row("error", job->error);
  w.Close();
  if (!job->progress.empty()) {
    w.Element("p", "Progress:");
    w.Open("ul");
    for (const std::string& line : job->progress) {
      w.Element("li", line);
    }
    w.Close();
  }
  if (job->state == jobs::JobState::kSucceeded) {
    if (!job->output_text.empty()) {
      w.Open("pre").Text(job->output_text).Close();
    }
    if (!job->output_urls.empty()) {
      w.Element("p", "Output files:");
      w.Open("ul");
      for (const std::string& url : job->output_urls) {
        w.Open("li");
        w.Link(url, url);
        w.Close();
      }
      w.Close();
    }
  }
  w.Raw(PageFooter());
  HttpResponse resp;
  resp.body = w.Finish();
  return resp;
}

HttpResponse ArchiveWebServer::HandleJobList(const Session& session) {
  if (deps_.jobs == nullptr) return Error(503, "job queue not configured");
  std::vector<jobs::Job> all = deps_.jobs->queue().List(
      session.user.name, session.user.CanManageUsers());
  HtmlWriter w;
  w.Raw(PageHeader("Jobs"));
  w.Open("table", {{"border", "1"}});
  w.Open("tr");
  for (const char* h : {"id", "user", "kind", "operation", "state",
                        "attempts", "outputs"}) {
    w.Element("th", h);
  }
  w.Close();
  for (const jobs::Job& job : all) {
    w.Open("tr");
    std::string id = StrPrintf("%llu",
                               static_cast<unsigned long long>(job.id));
    w.Open("td");
    w.Link(BuildUrl("/jobs/status", {{"id", id}}), id);
    w.Close();
    w.Element("td", job.spec.user);
    w.Element("td", std::string(jobs::JobKindName(job.spec.kind)));
    w.Element("td", job.spec.operation);
    w.Element("td", std::string(jobs::JobStateName(job.state)));
    w.Element("td", StrPrintf("%u", job.attempts));
    w.Element("td", StrPrintf("%zu", job.output_urls.size()));
    w.Close();
  }
  w.Close();
  w.Raw(PageFooter());
  HttpResponse resp;
  resp.body = w.Finish();
  return resp;
}

HttpResponse ArchiveWebServer::HandleJobCancel(const HttpRequest& request,
                                               const Session& session) {
  if (deps_.jobs == nullptr) return Error(503, "job queue not configured");
  Result<int64_t> id = ParseInt64(ParamOr(request.params, "id"));
  if (!id.ok()) return Error(400, "missing or bad job id");
  Result<jobs::Job> job = deps_.jobs->Cancel(
      static_cast<jobs::JobId>(*id), session.user.name,
      session.user.CanManageUsers());
  if (!job.ok()) {
    int status = job.status().IsPermissionDenied() ? 403
                 : job.status().IsNotFound()       ? 404
                                                   : 400;
    return Error(status, job.status().ToString());
  }
  HttpResponse resp;
  resp.body = PageHeader("Job cancelled") +
              StrPrintf("<p>job %llu cancelled</p>",
                        static_cast<unsigned long long>(job->id)) +
              PageFooter();
  return resp;
}

HttpResponse ArchiveWebServer::HandleStats(const Session& session) {
  (void)session;  // stats are not sensitive; any logged-in user may look
  HtmlWriter w;
  w.Raw(PageHeader("Operation statistics"));
  w.Element("p",
            StrPrintf("requests served: %llu",
                      static_cast<unsigned long long>(
                          requests_.load(std::memory_order_relaxed))));
  if (deps_.database != nullptr) {
    db::DatabaseStats ds = deps_.database->stats();
    w.Element(
        "p",
        StrPrintf("database: %llu statements, %llu queries, %llu commits, "
                  "%llu aborts, commit epoch %llu",
                  static_cast<unsigned long long>(ds.statements),
                  static_cast<unsigned long long>(ds.queries),
                  static_cast<unsigned long long>(ds.txn_commits),
                  static_cast<unsigned long long>(ds.txn_aborts),
                  static_cast<unsigned long long>(
                      deps_.database->commit_epoch())));
    const db::stats::IndexAdvisor& advisor = deps_.database->index_advisor();
    std::vector<db::stats::IndexRecommendation> recs =
        advisor.Recommendations(1);
    w.Element("p",
              StrPrintf("index advisor: %llu plans observed, %zu "
                        "recommendations",
                        static_cast<unsigned long long>(
                            advisor.total_observations()),
                        recs.size()));
    if (!recs.empty()) {
      w.Open("table", {{"border", "1"}});
      w.Open("tr");
      w.Element("th", "table");
      w.Element("th", "column");
      w.Element("th", "kind");
      w.Element("th", "hits");
      w.Close();  // tr
      for (const db::stats::IndexRecommendation& rec : recs) {
        w.Open("tr");
        w.Element("td", rec.table);
        w.Element("td", rec.column);
        w.Element("td", rec.kind_name());
        w.Element("td", StrPrintf("%llu",
                                  static_cast<unsigned long long>(rec.hits)));
        w.Close();  // tr
      }
      w.Close();  // table
    }
  }
  if (deps_.shard != nullptr) {
    db::shard::ShardCounters sc = deps_.shard->counters();
    w.Element(
        "p",
        StrPrintf("sharding: %zu shards, queries single %llu / scatter "
                  "%llu / gather %llu, shard scans %llu performed %llu "
                  "pruned, %llu writes, %llu row migrations",
                  deps_.shard->num_shards(),
                  static_cast<unsigned long long>(sc.queries_single),
                  static_cast<unsigned long long>(sc.queries_scatter),
                  static_cast<unsigned long long>(sc.queries_gather),
                  static_cast<unsigned long long>(sc.scanned_shards),
                  static_cast<unsigned long long>(sc.pruned_shards),
                  static_cast<unsigned long long>(sc.writes),
                  static_cast<unsigned long long>(sc.migrations)));
    w.Open("table", {{"border", "1"}});
    w.Open("tr");
    for (const char* h : {"shard", "host", "partitioned rows",
                          "commit epoch", "replicas", "max lag (epochs)"}) {
      w.Element("th", h);
    }
    w.Close();  // tr
    std::vector<db::shard::ShardInfo> shards = deps_.shard->shard_info();
    for (size_t i = 0; i < shards.size(); ++i) {
      const db::shard::ShardInfo& info = shards[i];
      w.Open("tr");
      w.Element("td", StrPrintf("%zu", i));
      w.Element("td", info.host);
      w.Element("td", StrPrintf("%zu", info.partitioned_rows));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            info.commit_epoch)));
      w.Element("td", StrPrintf("%zu", info.replicas));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            info.max_replica_lag)));
      w.Close();  // tr
    }
    w.Close();  // table
  }
  if (deps_.repl != nullptr) {
    w.Element("p",
              StrPrintf("replication: primary %s, %llu reads on primary, "
                        "%llu on replicas, %llu writes, %llu quorum "
                        "failures, %llu failovers",
                        deps_.repl->primary_host().c_str(),
                        static_cast<unsigned long long>(
                            deps_.repl->reads_primary()),
                        static_cast<unsigned long long>(
                            deps_.repl->reads_replica()),
                        static_cast<unsigned long long>(
                            deps_.repl->writes()),
                        static_cast<unsigned long long>(
                            deps_.repl->quorum_failures()),
                        static_cast<unsigned long long>(
                            deps_.repl->failovers())));
    w.Open("table", {{"border", "1"}});
    w.Open("tr");
    for (const char* h : {"replica", "term", "applied lsn",
                          "applied epoch", "lag (epochs)", "state"}) {
      w.Element("th", h);
    }
    w.Close();  // tr
    for (const db::repl::ReplicaInfo& info : deps_.repl->replica_info()) {
      w.Open("tr");
      w.Element("td", info.host);
      w.Element("td",
                StrPrintf("%llu", static_cast<unsigned long long>(info.term)));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            info.last_applied_lsn)));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            info.applied_epoch)));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            info.lag_epochs)));
      w.Element("td", info.down ? "down" : "up");
      w.Close();  // tr
    }
    w.Close();  // table
  }
  if (deps_.cache != nullptr) {
    RenderCacheStats cs = deps_.cache->stats();
    w.Element(
        "p",
        StrPrintf("render cache: %llu hits, %llu misses, %llu evictions, "
                  "%llu invalidations, %zu entries (%s)",
                  static_cast<unsigned long long>(cs.hits),
                  static_cast<unsigned long long>(cs.misses),
                  static_cast<unsigned long long>(cs.evictions),
                  static_cast<unsigned long long>(cs.invalidations),
                  cs.entries, HumanBytes(cs.bytes).c_str()));
  }
  if (deps_.engine != nullptr) {
    w.Element("p",
              StrPrintf("result cache: %zu of %zu entries, %llu evictions",
                        deps_.engine->cache_size(),
                        deps_.engine->cache_capacity(),
                        static_cast<unsigned long long>(
                            deps_.engine->cache_evictions())));
    w.Open("table", {{"border", "1"}});
    w.Open("tr");
    for (const char* h : {"operation", "invocations", "cache hits",
                          "evictions", "failures", "exec seconds",
                          "input", "output"}) {
      w.Element("th", h);
    }
    w.Close();
    for (const auto& [name, stats] : deps_.engine->stats()) {
      w.Open("tr");
      w.Element("td", name);
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            stats.invocations)));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            stats.cache_hits)));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            stats.cache_evictions)));
      w.Element("td", StrPrintf("%llu", static_cast<unsigned long long>(
                                            stats.failures)));
      w.Element("td", StrPrintf("%.3f", stats.total_exec_seconds));
      w.Element("td", HumanBytes(stats.total_input_bytes));
      w.Element("td", HumanBytes(stats.total_output_bytes));
      w.Close();
    }
    w.Close();
  }
  if (deps_.jobs != nullptr) {
    w.Element("p",
              StrPrintf("jobs: %zu open, %zu running, %llu executed "
                        "(%llu ok, %llu failed, %llu retries)",
                        deps_.jobs->queue().open_count(),
                        deps_.jobs->queue().running_count(),
                        static_cast<unsigned long long>(
                            deps_.jobs->executed()),
                        static_cast<unsigned long long>(
                            deps_.jobs->succeeded()),
                        static_cast<unsigned long long>(
                            deps_.jobs->failed()),
                        static_cast<unsigned long long>(
                            deps_.jobs->retries())));
    if (deps_.jobs->journal_errors() > 0) {
      w.Element("p", StrPrintf("job journal errors: %llu",
                               static_cast<unsigned long long>(
                                   deps_.jobs->journal_errors())));
    }
  }
  if (deps_.fleet != nullptr) {
    uint64_t fs_retries = 0;
    uint64_t fs_give_ups = 0;
    for (const std::string& host : deps_.fleet->Hosts()) {
      Result<fs::FileServer*> server = deps_.fleet->GetServer(host);
      if (!server.ok()) continue;
      fs::RetryStats rs = (*server)->retry_stats();
      fs_retries += rs.retries;
      fs_give_ups += rs.give_ups;
    }
    w.Element("p",
              StrPrintf("file servers: %llu transient-error retries, "
                        "%llu give-ups",
                        static_cast<unsigned long long>(fs_retries),
                        static_cast<unsigned long long>(fs_give_ups)));
  }
  if (deps_.metrics != nullptr) {
    w.Element("h2", "Metrics");
    w.Open("table", {{"border", "1"}});
    w.Open("tr");
    for (const char* h : {"metric", "value"}) w.Element("th", h);
    w.Close();
    for (const obs::MetricSample& sample : deps_.metrics->Collect()) {
      w.Open("tr");
      w.Element("td", sample.name + obs::FormatLabels(sample.labels));
      w.Element("td", obs::MetricsRegistry::FormatValue(sample.value));
      w.Close();
    }
    w.Close();
  }
  w.Raw(PageFooter());
  HttpResponse resp;
  resp.body = w.Finish();
  return resp;
}

HttpResponse ArchiveWebServer::HandleMetrics() {
  if (deps_.metrics == nullptr) {
    return Error(503, "metrics registry not wired");
  }
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4";
  resp.body = deps_.metrics->RenderPrometheusText();
  return resp;
}

HttpResponse ArchiveWebServer::HandleUsers(const HttpRequest& request,
                                           const Session& session) {
  if (!session.user.CanManageUsers()) {
    return Error(403, "user management requires admin");
  }
  if (request.path == "/users/add") {
    std::string role_name = ParamOr(request.params, "role", "authorised");
    UserRole role = UserRole::kAuthorised;
    if (role_name == "guest") role = UserRole::kGuest;
    if (role_name == "admin") role = UserRole::kAdmin;
    Status s = deps_.users->AddUser(ParamOr(request.params, "user"),
                                    ParamOr(request.params, "password"),
                                    role);
    if (!s.ok()) return Error(400, s.ToString());
  } else if (request.path == "/users/remove") {
    Status s = deps_.users->RemoveUser(ParamOr(request.params, "user"));
    if (!s.ok()) return Error(400, s.ToString());
  }
  HtmlWriter w;
  w.Raw(PageHeader("User management"));
  w.Open("table", {{"border", "1"}});
  w.Open("tr");
  w.Element("th", "User").Element("th", "Role");
  w.Close();
  for (const User& user : deps_.users->ListUsers()) {
    w.Open("tr");
    w.Element("td", user.name);
    w.Element("td", std::string(UserRoleName(user.role)));
    w.Close();
  }
  w.Close();
  w.Raw(PageFooter());
  HttpResponse resp;
  resp.body = w.Finish();
  return resp;
}

}  // namespace easia::web
