#ifndef EASIA_WEB_USERS_H_
#define EASIA_WEB_USERS_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace easia::web {

/// User classes from the paper's demo: guests browse but "cannot download
/// datasets, cannot upload post-processing codes, and are limited in the
/// types of operations they can run"; authorised users can do all three;
/// admins additionally manage users (the web-based user management slide).
enum class UserRole {
  kGuest,
  kAuthorised,
  kAdmin,
};

std::string_view UserRoleName(UserRole role);

struct User {
  std::string name;
  UserRole role = UserRole::kGuest;

  bool IsGuest() const { return role == UserRole::kGuest; }
  bool CanDownload() const { return role != UserRole::kGuest; }
  bool CanUploadCode() const { return role != UserRole::kGuest; }
  bool CanManageUsers() const { return role == UserRole::kAdmin; }
};

/// Credential store (passwords held as salted SHA-256 digests).
/// Thread-safe: admin mutations through /users/* race with concurrent
/// logins and per-request role checks, so every accessor locks and user
/// records are returned by value.
class UserManager {
 public:
  UserManager();

  Status AddUser(const std::string& name, const std::string& password,
                 UserRole role);
  Status RemoveUser(const std::string& name);
  Status SetRole(const std::string& name, UserRole role);
  Status SetPassword(const std::string& name, const std::string& password);

  /// Verifies credentials; kPermissionDenied on mismatch.
  Result<User> Authenticate(const std::string& name,
                            const std::string& password) const;

  Result<User> GetUser(const std::string& name) const;
  std::vector<User> ListUsers() const;

 private:
  struct Entry {
    User user;
    std::string salt;
    std::string password_digest;
  };

  static std::string Digest(const std::string& salt,
                            const std::string& password);

  mutable std::mutex mu_;
  std::map<std::string, Entry> users_;
  uint64_t salt_counter_ = 0;
};

}  // namespace easia::web

#endif  // EASIA_WEB_USERS_H_
