#ifndef EASIA_WEB_CACHE_H_
#define EASIA_WEB_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace easia::web {

/// A cached rendered page (only successful renders are stored, so no
/// status field is needed — a hit is always a 200).
struct CachedPage {
  std::string content_type;
  std::string body;
};

/// Cumulative cache counters, surfaced on /stats.
struct RenderCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // LRU pressure (byte budget)
  uint64_t invalidations = 0;  // stale epoch/revision or max-age
  size_t entries = 0;
  size_t bytes = 0;
};

/// Sharded, byte-bounded LRU for rendered read-path pages (/tables, /query
/// forms, /browse results, per-user XUIS documents).
///
/// Keys are (user-visibility class, route, canonical params): users who
/// see the same XUIS spec and role share entries, users with personal
/// specs — or pages embedding per-user DATALINK tokens — get their own.
///
/// Validation is epoch-based instead of dependency-tracked: every entry
/// stores the database commit epoch and the XUIS customisation revision
/// current when it was rendered. A lookup whose validators do not match
/// drops the entry — so ANY committed write (or XUIS customisation)
/// invalidates everything, cheaply, with no per-table bookkeeping. The
/// archive is read-dominated, so wholesale invalidation on rare writes
/// costs far less than tracking which page depends on which table.
///
/// Under replication the epoch passed in MUST be the *serving node's*
/// applied epoch, not the primary's: epoch N means the same committed
/// state on every node (replicas adopt primary epochs, and replay is
/// deterministic), so entries rendered on different nodes validate
/// interchangeably — but a page rendered from a lagging replica stamped
/// with the primary's newer epoch would be replayed as current even
/// though its backing replica had not applied those commits.
///
/// Thread-safe; shards keep lock contention off the hot read path. An
/// optional max-age bound (driven by the simulation clock) caps how long
/// token-bearing pages may be replayed.
class RenderCache {
 public:
  struct Options {
    /// Total byte budget across all shards (page bodies + key overhead).
    size_t max_bytes = 8 << 20;
    size_t shards = 8;
    /// Entries older than this many seconds are invalid; 0 disables the
    /// age check. Requires `clock`.
    double max_age_seconds = 0;
    const Clock* clock = nullptr;
  };

  struct Key {
    std::string visibility;  // e.g. "u:alice", "role:guest", "role:auth"
    std::string route;       // e.g. "/browse"
    std::string params;      // canonical query-string form
  };

  RenderCache() : RenderCache(Options()) {}
  explicit RenderCache(Options options);

  /// Returns the cached page when present AND still valid for the given
  /// database commit epoch + XUIS revision (and young enough, when a
  /// max-age is configured). Stale entries are dropped and counted as
  /// invalidations; both stale and absent count as misses.
  std::optional<CachedPage> Get(const Key& key, uint64_t epoch,
                                uint64_t xuis_revision);

  /// Stores a rendered page tagged with its validators. Pages larger than
  /// a shard's byte budget are not cached.
  void Put(const Key& key, uint64_t epoch, uint64_t xuis_revision,
           CachedPage page);

  /// Drops everything (counters are kept).
  void Clear();

  RenderCacheStats stats() const;

 private:
  struct Entry {
    uint64_t epoch = 0;
    uint64_t xuis_revision = 0;
    double inserted_at = 0;
    size_t charge = 0;
    CachedPage page;
    /// Position in the shard's LRU list (front = most recent).
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;
    std::unordered_map<std::string, Entry> entries;
    size_t bytes = 0;
  };

  static std::string FlattenKey(const Key& key);
  Shard& ShardFor(const std::string& flat);
  /// Removes one entry from a locked shard.
  void EraseLocked(Shard& shard,
                   std::unordered_map<std::string, Entry>::iterator it);

  Options options_;
  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace easia::web

#endif  // EASIA_WEB_CACHE_H_
