#include "web/cache.h"

#include <functional>

namespace easia::web {

namespace {

/// Fixed per-entry accounting overhead (map node, LRU node, validators) so
/// many tiny pages cannot blow past the budget unaccounted.
constexpr size_t kEntryOverhead = 96;

}  // namespace

RenderCache::RenderCache(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shard_budget_ = options_.max_bytes / options_.shards;
  if (shard_budget_ == 0) shard_budget_ = 1;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string RenderCache::FlattenKey(const Key& key) {
  std::string flat;
  flat.reserve(key.visibility.size() + key.route.size() + key.params.size() +
               2);
  flat += key.visibility;
  flat += '\x1f';
  flat += key.route;
  flat += '\x1f';
  flat += key.params;
  return flat;
}

RenderCache::Shard& RenderCache::ShardFor(const std::string& flat) {
  return *shards_[std::hash<std::string>{}(flat) % shards_.size()];
}

void RenderCache::EraseLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  shard.bytes -= it->second.charge;
  shard.lru.erase(it->second.lru_it);
  shard.entries.erase(it);
}

std::optional<CachedPage> RenderCache::Get(const Key& key, uint64_t epoch,
                                           uint64_t xuis_revision) {
  std::string flat = FlattenKey(key);
  Shard& shard = ShardFor(flat);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(flat);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Entry& entry = it->second;
  // Exact-match validation, deliberately not `entry.epoch <= epoch`: the
  // caller's epoch is the epoch of the node serving THIS request, and an
  // entry from a different epoch — older or newer, rendered here or on
  // another node — does not describe this node's visible state.
  bool stale = entry.epoch != epoch || entry.xuis_revision != xuis_revision;
  if (!stale && options_.max_age_seconds > 0 && options_.clock != nullptr) {
    stale = options_.clock->Now() - entry.inserted_at >
            options_.max_age_seconds;
  }
  if (stale) {
    EraseLocked(shard, it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Touch: move to the front of the shard's LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry.page;
}

void RenderCache::Put(const Key& key, uint64_t epoch, uint64_t xuis_revision,
                      CachedPage page) {
  std::string flat = FlattenKey(key);
  size_t charge = flat.size() + page.body.size() + page.content_type.size() +
                  kEntryOverhead;
  if (charge > shard_budget_) return;  // would evict the whole shard
  Shard& shard = ShardFor(flat);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(flat);
  if (it != shard.entries.end()) EraseLocked(shard, it);
  shard.lru.push_front(flat);
  Entry entry;
  entry.epoch = epoch;
  entry.xuis_revision = xuis_revision;
  entry.inserted_at = options_.clock != nullptr ? options_.clock->Now() : 0;
  entry.charge = charge;
  entry.page = std::move(page);
  entry.lru_it = shard.lru.begin();
  shard.entries.emplace(std::move(flat), std::move(entry));
  shard.bytes += charge;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    auto victim = shard.entries.find(shard.lru.back());
    EraseLocked(shard, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RenderCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

RenderCacheStats RenderCache::stats() const {
  RenderCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.entries += shard->entries.size();
    out.bytes += shard->bytes;
  }
  return out;
}

}  // namespace easia::web
