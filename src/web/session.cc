#include "web/session.h"

#include "common/string_util.h"
#include "crypto/sha256.h"

namespace easia::web {

SessionManager::SessionManager(const UserManager* users, const Clock* clock,
                               double idle_timeout_seconds)
    : users_(users), clock_(clock), idle_timeout_(idle_timeout_seconds) {}

Result<std::string> SessionManager::Login(const std::string& name,
                                          const std::string& password) {
  EASIA_ASSIGN_OR_RETURN(User user, users_->Authenticate(name, password));
  Session session;
  session.user = user;
  session.created_epoch = clock_->Now();
  session.last_active_epoch = session.created_epoch;
  std::lock_guard<std::mutex> lock(mu_);
  // Session ids mix a counter with a hash so they are unguessable-ish and
  // deterministic under the simulation clock.
  session.id = crypto::Sha256::HexHash(
                   StrPrintf("%s|%llu|%.6f", name.c_str(),
                             static_cast<unsigned long long>(++counter_),
                             session.created_epoch))
                   .substr(0, 24);
  sessions_[session.id] = session;
  return session.id;
}

Result<Session> SessionManager::Get(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session");
  }
  double now = clock_->Now();
  if (now - it->second.last_active_epoch > idle_timeout_) {
    sessions_.erase(it);
    return Status::TokenExpired("session timed out");
  }
  it->second.last_active_epoch = now;
  return it->second;
}

Status SessionManager::Logout(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(session_id) == 0) {
    return Status::NotFound("no such session");
  }
  return Status::OK();
}

size_t SessionManager::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  double now = clock_->Now();
  size_t removed = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_active_epoch > idle_timeout_) {
      it = sessions_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace easia::web
