#include "web/renderer.h"

#include <optional>

#include "common/string_util.h"
#include "fileserver/url.h"
#include "web/html.h"

namespace easia::web {

namespace {

/// Looks up the substitute display value for an FK cell (e.g. AUTHOR.NAME
/// for an AUTHOR_KEY). Falls back to the raw key on any miss.
std::string FkDisplayValue(const RenderContext& ctx, const xuis::FkSpec& fk,
                           const std::string& raw_value) {
  if (fk.subst_column.empty() || ctx.database == nullptr) return raw_value;
  Result<std::pair<std::string, std::string>> target =
      xuis::SplitColid(fk.table_column);
  Result<std::pair<std::string, std::string>> subst =
      xuis::SplitColid(fk.subst_column);
  if (!target.ok() || !subst.ok()) return raw_value;
  std::string sql = "SELECT " + subst->second + " FROM " + subst->first +
                    " WHERE " + target->second + " = '" +
                    ReplaceAll(raw_value, "'", "''") + "'";
  db::ExecContext exec;
  exec.resolve_datalinks = false;
  Result<db::QueryResult> r = ctx.database->Execute(sql, exec);
  if (!r.ok() || r->rows.empty() || r->rows[0][0].is_null()) return raw_value;
  return r->rows[0][0].ToDisplayString();
}

/// Size text for a DATALINK target ("hypertext link displays size of
/// object").
std::string DatalinkSizeText(const RenderContext& ctx,
                             const std::string& url) {
  if (ctx.fleet == nullptr) return "";
  Result<fs::FileUrl> parsed = fs::ParseFileUrl(url);
  if (!parsed.ok()) return "";
  Result<fs::FileServer*> server = ctx.fleet->GetServer(parsed->host);
  if (!server.ok()) return "";
  Result<fs::FileStat> stat = (*server)->StatFile(parsed->path);
  if (!stat.ok()) return "";
  return " (" + HumanBytes(stat->size) + ")";
}

}  // namespace

Result<std::string> RenderResultTable(const db::QueryResult& result,
                                      const RenderContext& ctx) {
  if (ctx.spec == nullptr || ctx.table == nullptr) {
    return Status::InvalidArgument("renderer: missing spec/table context");
  }
  const xuis::XuisTable& table = *ctx.table;
  // Column metadata for each output column (null when synthetic).
  std::vector<const xuis::XuisColumn*> columns;
  for (const std::string& name : result.column_names) {
    columns.push_back(table.FindColumn(name));
  }
  // Whether any column carries operations or uploads (adds a cell).
  bool any_ops = false;
  for (const xuis::XuisColumn* col : columns) {
    if (col != nullptr &&
        (!col->operations.empty() || !col->chains.empty() ||
         col->upload.has_value())) {
      any_ops = true;
    }
  }

  HtmlWriter w;
  w.Raw(PageHeader("Results from " + table.DisplayName()));
  w.Open("table", {{"border", "1"}});
  w.Open("tr");
  for (size_t c = 0; c < result.column_names.size(); ++c) {
    w.Element("th", columns[c] != nullptr ? columns[c]->DisplayName()
                                          : result.column_names[c]);
  }
  if (any_ops) w.Element("th", "Operations");
  w.Close();  // tr

  for (size_t r = 0; r < result.rows.size(); ++r) {
    const db::Row& row = result.rows[r];
    // Row-cell accessor for operation guards (colid -> display value).
    auto cell_of =
        [&](const std::string& colid) -> std::optional<std::string> {
      Result<std::pair<std::string, std::string>> parts =
          xuis::SplitColid(colid);
      if (!parts.ok() || !EqualsIgnoreCase(parts->first, table.name)) {
        return std::nullopt;
      }
      for (size_t c = 0; c < result.column_names.size(); ++c) {
        if (EqualsIgnoreCase(result.column_names[c], parts->second)) {
          return row[c].ToDisplayString();
        }
      }
      return std::nullopt;
    };
    w.Open("tr");
    for (size_t c = 0; c < row.size(); ++c) {
      w.Open("td");
      const db::Value& value = row[c];
      const xuis::XuisColumn* col = columns[c];
      if (value.is_null()) {
        w.Text("-");
        w.Close();
        continue;
      }
      std::string display = value.ToDisplayString();
      if (col == nullptr) {
        w.Text(display);
        w.Close();
        continue;
      }
      switch (value.type()) {
        case db::DataType::kBlob:
        case db::DataType::kClob: {
          // Rematerialisation link keyed by the row's primary key.
          std::map<std::string, std::string> params = {
              {"table", table.name}, {"column", col->name}};
          size_t pk_index = 0;
          for (const xuis::XuisColumn& pk_col : table.columns) {
            if (!pk_col.is_primary_key) continue;
            std::optional<std::string> pk_value = cell_of(pk_col.colid);
            if (pk_value.has_value()) {
              params[StrPrintf("pk%zu.%s", pk_index, pk_col.name.c_str())] =
                  *pk_value;
            }
            ++pk_index;
          }
          std::string label =
              (value.type() == db::DataType::kClob)
                  ? StrPrintf("<clob %zu bytes>", value.AsString().size())
                  : StrPrintf("<blob %zu bytes>", value.AsString().size());
          w.Link(BuildUrl("/object", params), label);
          break;
        }
        case db::DataType::kDatalink: {
          Result<fs::FileUrl> parsed = fs::ParseFileUrl(display);
          std::string label =
              (parsed.ok() ? parsed->filename : display) +
              DatalinkSizeText(ctx, display);
          if (ctx.is_guest) {
            // Guests see the file but get no download link (no token).
            w.Text(label);
          } else {
            w.Link(display, label);
          }
          break;
        }
        default: {
          bool linked = false;
          if (col->fk.has_value()) {
            Result<std::pair<std::string, std::string>> target =
                xuis::SplitColid(col->fk->table_column);
            if (target.ok()) {
              std::string text =
                  FkDisplayValue(ctx, *col->fk, display);
              w.Link(BuildUrl("/browse", {{"table", target->first},
                                          {"column", target->second},
                                          {"value", display}}),
                     text);
              linked = true;
            }
          } else if (col->is_primary_key && !col->referenced_by.empty()) {
            w.Text(display);
            for (const std::string& ref : col->referenced_by) {
              Result<std::pair<std::string, std::string>> target =
                  xuis::SplitColid(ref);
              if (!target.ok()) continue;
              w.Text(" ");
              w.Link(BuildUrl("/browse", {{"table", target->first},
                                          {"column", target->second},
                                          {"value", display}}),
                     "[" + target->first + "]");
            }
            linked = true;
          }
          if (!linked) w.Text(display);
        }
      }
      w.Close();  // td
    }
    if (any_ops) {
      w.Open("td");
      bool first = true;
      for (size_t c = 0; c < row.size(); ++c) {
        const xuis::XuisColumn* col = columns[c];
        if (col == nullptr || row[c].is_null()) continue;
        for (const xuis::OperationSpec& op : col->operations) {
          if (ctx.is_guest && !op.guest_access) continue;
          if (!op.AppliesTo(cell_of)) continue;
          if (!first) w.Text(" | ");
          first = false;
          w.Link(BuildUrl("/opform", {{"op", op.name},
                                      {"table", table.name},
                                      {"column", col->name},
                                      {"dataset", row[c].ToDisplayString()}}),
                 op.name);
        }
        for (const xuis::OperationChainSpec& chain : col->chains) {
          if (ctx.is_guest && !chain.guest_access) continue;
          if (!first) w.Text(" | ");
          first = false;
          w.Link(BuildUrl("/runchain",
                          {{"chain", chain.name},
                           {"dataset", row[c].ToDisplayString()}}),
                 chain.name + " (chain)");
        }
        if (col->upload.has_value() &&
            (!ctx.is_guest || col->upload->guest_access)) {
          bool allowed = true;
          for (const xuis::Condition& cond : col->upload->conditions) {
            std::optional<std::string> cell = cell_of(cond.colid);
            if (!cell.has_value() || !cond.Matches(*cell)) allowed = false;
          }
          if (allowed) {
            if (!first) w.Text(" | ");
            first = false;
            w.Link(BuildUrl("/upload", {{"table", table.name},
                                        {"column", col->name},
                                        {"dataset",
                                         row[c].ToDisplayString()}}),
                   "Upload code");
          }
        }
      }
      if (first) w.Text("-");
      w.Close();  // td
    }
    w.Close();  // tr
  }
  w.Close();  // table
  w.Element("p", StrPrintf("%zu rows", result.rows.size()));
  w.Raw(PageFooter());
  return w.Finish();
}

std::string RenderOperationForm(const xuis::OperationSpec& op,
                                const std::string& dataset_url) {
  HtmlWriter w;
  w.Raw(PageHeader("Operation: " + op.name));
  if (!op.description.empty()) w.Element("p", op.description);
  w.Open("form", {{"action", "/runop"}, {"method", "post"}});
  w.Void("input",
         {{"type", "hidden"}, {"name", "op"}, {"value", op.name}});
  w.Void("input",
         {{"type", "hidden"}, {"name", "dataset"}, {"value", dataset_url}});
  for (const xuis::ParamSpec& param : op.parameters) {
    w.Open("p");
    if (!param.description.empty()) w.Element("b", param.description);
    w.Void("br");
    switch (param.control) {
      case xuis::ParamSpec::Control::kSelect: {
        HtmlWriter::Attrs attrs = {{"name", param.name}};
        if (param.select_size > 0) {
          attrs.push_back({"size", StrPrintf("%d", param.select_size)});
        }
        w.Open("select", attrs);
        for (const xuis::ParamSpec::Option& opt : param.options) {
          w.Element("option", opt.label, {{"value", opt.value}});
        }
        w.Close();
        break;
      }
      case xuis::ParamSpec::Control::kRadio:
        for (const xuis::ParamSpec::Option& opt : param.options) {
          w.Void("input", {{"type", "radio"},
                           {"name", param.name},
                           {"value", opt.value}});
          w.Text(opt.label);
          w.Void("br");
        }
        break;
      case xuis::ParamSpec::Control::kText: {
        HtmlWriter::Attrs attrs = {{"type", "text"}, {"name", param.name}};
        if (!param.default_value.empty()) {
          attrs.push_back({"value", param.default_value});
        }
        w.Void("input", attrs);
        break;
      }
    }
    w.Close();  // p
  }
  w.Void("input", {{"type", "submit"}, {"value", "Run " + op.name}});
  w.Close();  // form
  w.Raw(PageFooter());
  return w.Finish();
}

}  // namespace easia::web
