#ifndef EASIA_WEB_SERVER_H_
#define EASIA_WEB_SERVER_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "db/repl/coordinator.h"
#include "fileserver/file_server.h"
#include "jobs/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/engine.h"
#include "web/cache.h"
#include "web/qbe.h"
#include "web/renderer.h"
#include "web/session.h"
#include "web/users.h"
#include "xuis/customize.h"

namespace easia::db::shard {
class ShardCoordinator;
}  // namespace easia::db::shard

namespace easia::web {

/// An in-process HTTP-ish request (the servlet container is simulated; the
/// handler surface is the real EASIA logic).
struct HttpRequest {
  std::string path;  // "/search"
  fs::HttpParams params;
  std::string session_id;  // cookie
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/html";
  std::string body;

  bool ok() const { return status == 200; }
};

/// The EASIA web front end: a router over the servlet handlers that
/// generate the schema-driven interface. Routes:
///
///   /login?user=&password=      -> session id (plain text)
///   /logout
///   /tables                     -> table index (per-user XUIS)
///   /query?table=T              -> QBE form
///   /search                     -> run a QBE submission, render results
///   /browse?table&column&value  -> PK/FK hyperlink traversal
///   /typeahead?table&column&prefix&limit -> column-value completions
///   /object?table&column&pk...  -> BLOB/CLOB rematerialisation
///   /object/put (+value)        -> BLOB/CLOB upload (authorised users)
///   /opform?op&dataset          -> operation parameter form
///   /runop                      -> execute a server-side operation
///   /upload                     -> upload + run code (authorised users)
///   /users, /users/add, ...     -> web-based user management (admin)
///   /jobs/submit                -> queue a batch job, returns its id
///   /jobs/status?id=            -> job state, progress and output URLs
///   /jobs/list                  -> the user's jobs (admin: everyone's)
///   /jobs/cancel?id=            -> cancel a queued job
///   /xuis                       -> the session user's XUIS XML document
///   /stats                      -> per-operation counters for operators
///
/// `Handle` is thread-safe: read-only routes execute in parallel (shared
/// database lock, mutex-guarded session/user stores, epoch-validated
/// render cache); mutating routes serialise inside the layer they touch.
/// `HandleConcurrent` is the built-in worker-pool dispatcher over a batch
/// of independent requests.
class ArchiveWebServer {
 public:
  struct Deps {
    db::Database* database = nullptr;
    xuis::XuisRegistry* xuis = nullptr;
    fs::FileServerFleet* fleet = nullptr;
    ops::OperationEngine* engine = nullptr;
    UserManager* users = nullptr;
    SessionManager* sessions = nullptr;
    /// Optional: enables the /jobs/* routes when wired.
    easia::jobs::JobScheduler* jobs = nullptr;
    /// Optional: caches rendered /tables, /query, /browse and /xuis pages,
    /// invalidated by the database commit epoch + XUIS revision.
    RenderCache* cache = nullptr;
    /// Optional: enables the /metrics route, per-route request counters
    /// and latency histograms, and the metrics table on /stats. Must be
    /// wired at construction (per-route handles are resolved once, in the
    /// constructor, so the request hot path never takes the registry
    /// lock for a 200 response).
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional: every request opens a "web:<route>" root span; cache
    /// lookups, planner execution, file-server I/O and job execution nest
    /// under it. Also the clock source for request latency.
    obs::Tracer* tracer = nullptr;
    /// Optional: routes read-only queries (/search, /browse, /typeahead,
    /// /object) to a stale-bounded replica with primary fallback, and
    /// routes DML through the coordinator so writes target the CURRENT
    /// primary (failover re-points it) under the ack quorum — never
    /// `database` directly, whose commit listener is detached once a
    /// failover demotes it. `database` is the coordinator's initial
    /// primary and is still used for non-replicated surfaces (/stats
    /// display, XUIS generation). Cached pages rendered via a replica are
    /// validated against the *serving node's* applied epoch, never the
    /// primary's.
    db::repl::ReplicationCoordinator* repl = nullptr;
    /// Optional: routes EVERY query and DML statement through the shard
    /// coordinator (scatter/gather planning over hash-partitioned tables,
    /// global FK enforcement, per-shard replication). Takes precedence
    /// over `repl` — shard-level replication lives inside the
    /// coordinator. `database` should be the coordinator's shard-0
    /// primary: its catalogue is a full mirror, so XUIS generation and
    /// /stats introspection keep working unchanged.
    db::shard::ShardCoordinator* shard = nullptr;
  };

  /// Worker-pool dispatch tuning for HandleConcurrent.
  struct DispatchOptions {
    size_t workers = 4;
    /// Real per-request sleep before handling, modelling the client link
    /// of the paper's WAN-bound archive (closed-loop load generation —
    /// overlapping this wait is most of what request concurrency buys a
    /// small server). 0 disables.
    double simulated_client_latency_seconds = 0;
  };

  explicit ArchiveWebServer(Deps deps);

  HttpResponse Handle(const HttpRequest& request);

  /// Dispatches `requests` across a pool of `options.workers` threads,
  /// each calling Handle; returns responses in request order.
  std::vector<HttpResponse> HandleConcurrent(
      const std::vector<HttpRequest>& requests,
      const DispatchOptions& options);
  std::vector<HttpResponse> HandleConcurrent(
      const std::vector<HttpRequest>& requests, size_t workers) {
    DispatchOptions options;
    options.workers = workers;
    return HandleConcurrent(requests, options);
  }

  /// Requests served (for benches).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// Pre-resolved per-route instrumentation: counter/histogram handles and
  /// span-name strings, built once in the constructor so Handle adds no
  /// registry lookups or string concatenation on the 200 path. Unknown
  /// paths collapse onto the "other" entry to bound label cardinality.
  struct RouteMetrics {
    std::string web_span;    // "web:/browse"
    std::string cache_span;  // "cache:/browse"
    obs::Counter* requests_ok = nullptr;  // easia_http_requests_total 200
    obs::Histogram* latency = nullptr;    // easia_http_request_seconds
  };

  /// Maps a request path onto its bounded route label and instrumentation
  /// entry ("/" -> "/tables", "/users/*" -> "/users", unknown -> "other").
  const RouteMetrics& RouteEntry(const std::string& path,
                                 std::string* route) const;

  /// The un-instrumented router (the old Handle body).
  HttpResponse Dispatch(const HttpRequest& request);

  HttpResponse RequireSession(const HttpRequest& request, Session* session);
  HttpResponse HandleLogin(const HttpRequest& request);
  HttpResponse HandleTables(const Session& session);
  HttpResponse HandleQueryForm(const HttpRequest& request,
                               const Session& session);
  HttpResponse HandleSearch(const HttpRequest& request,
                            const Session& session);
  HttpResponse HandleBrowse(const HttpRequest& request,
                            const Session& session);
  HttpResponse HandleTypeahead(const HttpRequest& request,
                               const Session& session);
  HttpResponse HandleObject(const HttpRequest& request,
                            const Session& session);
  HttpResponse HandleObjectPut(const HttpRequest& request,
                               const Session& session);
  HttpResponse HandleOpForm(const HttpRequest& request,
                            const Session& session);
  HttpResponse HandleRunOp(const HttpRequest& request,
                           const Session& session);
  HttpResponse HandleRunChain(const HttpRequest& request,
                              const Session& session);
  HttpResponse HandleUpload(const HttpRequest& request,
                            const Session& session);
  HttpResponse HandleUsers(const HttpRequest& request,
                           const Session& session);
  HttpResponse HandleJobSubmit(const HttpRequest& request,
                               const Session& session);
  HttpResponse HandleJobStatus(const HttpRequest& request,
                               const Session& session);
  HttpResponse HandleJobList(const Session& session);
  HttpResponse HandleJobCancel(const HttpRequest& request,
                               const Session& session);
  HttpResponse HandleXuis(const Session& session);
  HttpResponse HandleStats(const Session& session);
  HttpResponse HandleMetrics();

  /// Cache key visibility class for a session: per-user when the user has
  /// a personal XUIS spec or the route embeds per-user DATALINK tokens,
  /// otherwise shared by role.
  std::string CacheVisibility(const Session& session, bool per_user) const;
  /// Picks the node one read executes against: the replication
  /// coordinator's routed ticket when replication is wired, else the
  /// local database at its current commit epoch. One ticket per request
  /// — the cache validator and the queried database must be the same
  /// node observed once, or a routing change between the two would tag a
  /// page with the wrong node's epoch.
  db::repl::ReadTicket ServingNode() const;
  /// Read-query path: through the shard coordinator when wired (which
  /// plans across partitions), else the serving node picked by the
  /// ticket. The ticket's epoch stays the cache validator either way.
  Result<db::QueryResult> ExecuteQuery(db::Database* db,
                                       const std::string& sql,
                                       const db::ExecContext& ctx) const;
  /// Mutating-statement path: through the replication coordinator when
  /// wired (current primary + ack quorum), else the local database.
  Result<db::QueryResult> ExecuteDml(const std::string& sql,
                                     const db::ExecContext& ctx);

  /// Cached-read wrapper: looks up (visibility, route, params) in the
  /// render cache, re-renders on miss and stores successful pages tagged
  /// with the pre-render *serving node* epoch + XUIS revision. `render`
  /// receives the ticket and must read through `ticket.db` only.
  template <typename RenderFn>
  HttpResponse CachedRender(const Session& session, bool per_user,
                            const std::string& route,
                            const std::string& params, RenderFn&& render);

  HttpResponse RenderQuery(const std::string& sql,
                           const xuis::XuisTable* table,
                           const Session& session, db::Database* db);

  /// Finds an operation spec by name in the user's XUIS.
  const xuis::OperationSpec* FindOperation(const xuis::XuisSpec& spec,
                                           const std::string& name) const;

  static HttpResponse Error(int status, const std::string& message);

  Deps deps_;
  /// Immutable after construction; concurrent Handle calls read freely.
  std::map<std::string, RouteMetrics> route_metrics_;
  std::atomic<uint64_t> requests_{0};
};

}  // namespace easia::web

#endif  // EASIA_WEB_SERVER_H_
