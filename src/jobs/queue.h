#ifndef EASIA_JOBS_QUEUE_H_
#define EASIA_JOBS_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "jobs/job.h"

namespace easia::jobs {

/// Per-user admission limits. Guests get fewer slots than authorised
/// users (the paper's guest restrictions, applied to batch capacity).
struct QueueLimits {
  size_t guest_concurrent = 1;   // running jobs per guest user
  size_t user_concurrent = 4;    // running jobs per authorised user
  size_t guest_queued = 4;       // open (non-terminal) jobs per guest
  size_t user_queued = 64;       // open jobs per authorised user
  size_t max_open_jobs = 4096;   // archive-wide backstop
  /// Terminal jobs retained for /jobs/status history; the oldest finished
  /// jobs beyond this are pruned so a long-running archive's queue (and
  /// its compacted journal) stay bounded.
  size_t max_finished_jobs = 1024;
};

/// Thread-safe priority job queue. Holds every job the archive has seen
/// (pending, running and finished) so `/jobs/status` can answer for
/// completed ids; ordering is highest priority first, FIFO within a
/// priority band (job ids are monotonic). Jobs in backoff (kRetrying with
/// a future `not_before`) and users at their concurrency cap are skipped
/// by `ClaimNext`, not blocked on.
class JobQueue {
 public:
  explicit JobQueue(QueueLimits limits = {}) : limits_(limits) {}

  /// Admits a job (quota-checked) and assigns its id. Guest priorities are
  /// clamped to 0 so guests cannot jump the queue. `on_admit` (optional)
  /// runs inside the queue's critical section, after the job is inserted
  /// but before any `ClaimNext` can see it — journaling the submission
  /// there guarantees the kSubmitted record precedes every worker-written
  /// transition, so replay never re-runs an already-finished job. When
  /// `on_admit` fails (the submit record could not be made durable) the
  /// job is withdrawn and the error propagated: a submission is never
  /// acknowledged without its journal record.
  Result<Job> Submit(JobSpec spec, double now,
                     const std::function<Status(const Job&)>& on_admit = {});

  /// Re-admits a journal-recovered job verbatim (no quota check; the
  /// submission was already accepted before the crash).
  void Restore(Job job);

  /// Claims the best eligible job: marks it kRunning, bumps its attempt
  /// counter and returns a copy. Eligibility: state kSubmitted/kRetrying,
  /// `not_before` reached, owner under their concurrency cap.
  std::optional<Job> ClaimNext(double now);

  /// Fails every queued job whose deadline has passed; returns the jobs
  /// transitioned (for journaling).
  std::vector<Job> ExpireDeadlines(double now);

  /// Terminal transitions for a previously claimed job.
  Result<Job> MarkSucceeded(JobId id, double now,
                            std::vector<std::string> output_urls,
                            std::string output_text, double exec_seconds,
                            std::vector<std::string> progress);
  Result<Job> MarkFailed(JobId id, double now, const std::string& error,
                         std::vector<std::string> progress);
  /// Failed attempt with budget left: park until `not_before`.
  Result<Job> MarkRetrying(JobId id, double now, double not_before,
                           const std::string& error);

  /// Cancels a queued or retrying job. Running jobs cannot be cancelled
  /// (execution is already on a worker); terminal jobs are left alone.
  Result<Job> Cancel(JobId id, const std::string& user, bool is_admin,
                     double now);

  Result<Job> Get(JobId id) const;
  /// Jobs owned by `user` (or every job when `all_users`), newest first.
  std::vector<Job> List(const std::string& user, bool all_users) const;
  /// Every retained job in id order (for journal checkpointing).
  std::vector<Job> Snapshot() const;

  /// Earliest `not_before` among backoff-parked jobs (for deterministic
  /// drivers to know how far to advance the clock); nullopt if none.
  std::optional<double> NextRetryTime() const;

  size_t open_count() const;     // non-terminal jobs
  size_t running_count() const;

 private:
  size_t OpenCountForUserLocked(const std::string& user) const;
  size_t RunningCountForUserLocked(const std::string& user) const;
  /// Records `id` as terminal and prunes the oldest finished jobs beyond
  /// `limits_.max_finished_jobs`.
  void NoteFinishedLocked(JobId id);

  mutable std::mutex mu_;
  QueueLimits limits_;
  JobId next_id_ = 1;
  std::map<JobId, Job> jobs_;
  /// Terminal job ids, oldest first (jobs never leave a terminal state,
  /// so the front is always safe to prune).
  std::deque<JobId> finished_order_;
};

}  // namespace easia::jobs

#endif  // EASIA_JOBS_QUEUE_H_
