#include "jobs/job.h"

#include "common/coding.h"

namespace easia::jobs {

std::string_view JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kInvoke: return "op";
    case JobKind::kChain: return "chain";
    case JobKind::kMulti: return "multi";
    case JobKind::kUploadedCode: return "upload";
  }
  return "?";
}

Result<JobKind> JobKindFromName(std::string_view name) {
  if (name == "op" || name.empty()) return JobKind::kInvoke;
  if (name == "chain") return JobKind::kChain;
  if (name == "multi") return JobKind::kMulti;
  if (name == "upload") return JobKind::kUploadedCode;
  return Status::InvalidArgument("unknown job kind '" + std::string(name) +
                                 "'");
}

std::string_view JobStateName(JobState state) {
  switch (state) {
    case JobState::kSubmitted: return "submitted";
    case JobState::kRunning: return "running";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
    case JobState::kRetrying: return "retrying";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool IsTerminal(JobState state) {
  return state == JobState::kSucceeded || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

namespace {

void PutStringVector(std::string* dst, const std::vector<std::string>& v) {
  PutU32(dst, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) PutLengthPrefixed(dst, s);
}

Result<std::vector<std::string>> GetStringVector(Decoder* dec) {
  EASIA_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  std::vector<std::string> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    EASIA_ASSIGN_OR_RETURN(std::string s, dec->GetLengthPrefixed());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::string JobSpec::Encode() const {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(kind));
  PutLengthPrefixed(&out, user);
  PutU8(&out, is_guest ? 1 : 0);
  PutLengthPrefixed(&out, session_id);
  PutLengthPrefixed(&out, operation);
  PutStringVector(&out, datasets);
  PutU32(&out, static_cast<uint32_t>(params.size()));
  for (const auto& [k, v] : params) {
    PutLengthPrefixed(&out, k);
    PutLengthPrefixed(&out, v);
  }
  PutU32(&out, static_cast<uint32_t>(priority));
  PutDouble(&out, timeout_seconds);
  PutU32(&out, max_attempts);
  PutLengthPrefixed(&out, code);
  PutLengthPrefixed(&out, entry_filename);
  return out;
}

Result<JobSpec> JobSpec::Decode(std::string_view payload) {
  Decoder dec(payload);
  JobSpec spec;
  EASIA_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind < 1 || kind > 4) {
    return Status::Corruption("job spec: bad kind");
  }
  spec.kind = static_cast<JobKind>(kind);
  EASIA_ASSIGN_OR_RETURN(spec.user, dec.GetLengthPrefixed());
  EASIA_ASSIGN_OR_RETURN(uint8_t guest, dec.GetU8());
  spec.is_guest = guest != 0;
  EASIA_ASSIGN_OR_RETURN(spec.session_id, dec.GetLengthPrefixed());
  EASIA_ASSIGN_OR_RETURN(spec.operation, dec.GetLengthPrefixed());
  EASIA_ASSIGN_OR_RETURN(spec.datasets, GetStringVector(&dec));
  EASIA_ASSIGN_OR_RETURN(uint32_t n_params, dec.GetU32());
  for (uint32_t i = 0; i < n_params; ++i) {
    EASIA_ASSIGN_OR_RETURN(std::string k, dec.GetLengthPrefixed());
    EASIA_ASSIGN_OR_RETURN(std::string v, dec.GetLengthPrefixed());
    spec.params[std::move(k)] = std::move(v);
  }
  EASIA_ASSIGN_OR_RETURN(uint32_t priority, dec.GetU32());
  spec.priority = static_cast<int32_t>(priority);
  EASIA_ASSIGN_OR_RETURN(spec.timeout_seconds, dec.GetDouble());
  EASIA_ASSIGN_OR_RETURN(spec.max_attempts, dec.GetU32());
  EASIA_ASSIGN_OR_RETURN(spec.code, dec.GetLengthPrefixed());
  EASIA_ASSIGN_OR_RETURN(spec.entry_filename, dec.GetLengthPrefixed());
  return spec;
}

std::string JobEvent::Encode() const {
  std::string out;
  PutU64(&out, job_id);
  PutU8(&out, static_cast<uint8_t>(state));
  PutU32(&out, attempt);
  PutDouble(&out, time);
  PutDouble(&out, not_before);
  PutLengthPrefixed(&out, error);
  PutStringVector(&out, output_urls);
  PutLengthPrefixed(&out,
                    state == JobState::kSubmitted ? spec.Encode() : "");
  return out;
}

Result<JobEvent> JobEvent::Decode(std::string_view payload) {
  Decoder dec(payload);
  JobEvent event;
  EASIA_ASSIGN_OR_RETURN(event.job_id, dec.GetU64());
  EASIA_ASSIGN_OR_RETURN(uint8_t state, dec.GetU8());
  if (state < 1 || state > 6) {
    return Status::Corruption("job event: bad state");
  }
  event.state = static_cast<JobState>(state);
  EASIA_ASSIGN_OR_RETURN(event.attempt, dec.GetU32());
  EASIA_ASSIGN_OR_RETURN(event.time, dec.GetDouble());
  EASIA_ASSIGN_OR_RETURN(event.not_before, dec.GetDouble());
  EASIA_ASSIGN_OR_RETURN(event.error, dec.GetLengthPrefixed());
  EASIA_ASSIGN_OR_RETURN(event.output_urls, GetStringVector(&dec));
  EASIA_ASSIGN_OR_RETURN(std::string spec_bytes, dec.GetLengthPrefixed());
  if (event.state == JobState::kSubmitted) {
    EASIA_ASSIGN_OR_RETURN(event.spec, JobSpec::Decode(spec_bytes));
  }
  if (!dec.Done()) {
    return Status::Corruption("job event: trailing bytes");
  }
  return event;
}

}  // namespace easia::jobs
