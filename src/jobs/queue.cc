#include "jobs/queue.h"

#include <algorithm>

#include "common/string_util.h"

namespace easia::jobs {

size_t JobQueue::OpenCountForUserLocked(const std::string& user) const {
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.spec.user == user && !IsTerminal(job.state)) ++n;
  }
  return n;
}

size_t JobQueue::RunningCountForUserLocked(const std::string& user) const {
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.spec.user == user && job.state == JobState::kRunning) ++n;
  }
  return n;
}

void JobQueue::NoteFinishedLocked(JobId id) {
  finished_order_.push_back(id);
  while (finished_order_.size() > limits_.max_finished_jobs) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

Result<Job> JobQueue::Submit(
    JobSpec spec, double now,
    const std::function<Status(const Job&)>& on_admit) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t open = 0;
  size_t open_for_user = 0;
  for (const auto& [id, job] : jobs_) {
    if (IsTerminal(job.state)) continue;
    ++open;
    if (job.spec.user == spec.user) ++open_for_user;
  }
  if (open >= limits_.max_open_jobs) {
    return Status::ResourceExhausted("job queue is full");
  }
  size_t quota = spec.is_guest ? limits_.guest_queued : limits_.user_queued;
  if (open_for_user >= quota) {
    return Status::ResourceExhausted(
        StrPrintf("user '%s' already has %zu open jobs (quota %zu)",
                  spec.user.c_str(), open_for_user, quota));
  }
  if (spec.is_guest && spec.priority > 0) spec.priority = 0;
  if (spec.max_attempts == 0) spec.max_attempts = 1;
  Job job;
  job.id = next_id_++;
  job.spec = std::move(spec);
  job.state = JobState::kSubmitted;
  job.submitted_at = now;
  if (job.spec.timeout_seconds > 0) {
    job.deadline = now + job.spec.timeout_seconds;
  }
  Job copy = job;
  jobs_[job.id] = std::move(job);
  // Still inside the critical section: ClaimNext cannot observe the job
  // until the caller's journal record (if any) is written.
  if (on_admit) {
    Status admitted = on_admit(copy);
    if (!admitted.ok()) {
      // The submit record never became durable; withdraw the job so the
      // caller's error cannot leave a phantom admission behind. No
      // ClaimNext ran in between (we still hold the lock), so the id can
      // be reclaimed too.
      jobs_.erase(copy.id);
      if (next_id_ == copy.id + 1) --next_id_;
      return admitted;
    }
  }
  return copy;
}

void JobQueue::Restore(Job job) {
  std::lock_guard<std::mutex> lock(mu_);
  next_id_ = std::max(next_id_, job.id + 1);
  JobId id = job.id;
  bool terminal = IsTerminal(job.state);
  jobs_[id] = std::move(job);
  if (terminal) NoteFinishedLocked(id);
}

std::optional<Job> JobQueue::ClaimNext(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  Job* best = nullptr;
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kSubmitted &&
        job.state != JobState::kRetrying) {
      continue;
    }
    if (job.not_before > now) continue;
    size_t cap = job.spec.is_guest ? limits_.guest_concurrent
                                   : limits_.user_concurrent;
    if (RunningCountForUserLocked(job.spec.user) >= cap) continue;
    // Highest priority wins; the map iterates in id order, so within a
    // priority band the earliest submission wins.
    if (best == nullptr || job.spec.priority > best->spec.priority) {
      best = &job;
    }
  }
  if (best == nullptr) return std::nullopt;
  best->state = JobState::kRunning;
  ++best->attempts;
  best->progress.clear();
  return *best;
}

std::vector<Job> JobQueue::ExpireDeadlines(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Job> expired;
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kSubmitted &&
        job.state != JobState::kRetrying) {
      continue;
    }
    if (job.deadline > 0 && now > job.deadline) {
      job.state = JobState::kFailed;
      job.finished_at = now;
      job.error = StrPrintf("deadline exceeded (timeout %.0fs)",
                            job.spec.timeout_seconds);
      expired.push_back(job);
    }
  }
  for (const Job& job : expired) NoteFinishedLocked(job.id);
  return expired;
}

Result<Job> JobQueue::MarkSucceeded(JobId id, double now,
                                    std::vector<std::string> output_urls,
                                    std::string output_text,
                                    double exec_seconds,
                                    std::vector<std::string> progress) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no such job");
  Job& job = it->second;
  job.state = JobState::kSucceeded;
  job.finished_at = now;
  job.error.clear();
  job.output_urls = std::move(output_urls);
  job.output_text = std::move(output_text);
  job.exec_seconds = exec_seconds;
  job.progress = std::move(progress);
  Job copy = job;  // pruning may evict the map slot `job` refers to
  NoteFinishedLocked(id);
  return copy;
}

Result<Job> JobQueue::MarkFailed(JobId id, double now,
                                 const std::string& error,
                                 std::vector<std::string> progress) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no such job");
  Job& job = it->second;
  job.state = JobState::kFailed;
  job.finished_at = now;
  job.error = error;
  job.progress = std::move(progress);
  Job copy = job;
  NoteFinishedLocked(id);
  return copy;
}

Result<Job> JobQueue::MarkRetrying(JobId id, double now, double not_before,
                                   const std::string& error) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no such job");
  Job& job = it->second;
  job.state = JobState::kRetrying;
  job.not_before = not_before;
  job.error = error;
  return job;
}

Result<Job> JobQueue::Cancel(JobId id, const std::string& user,
                             bool is_admin, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no such job");
  Job& job = it->second;
  if (!is_admin && job.spec.user != user) {
    return Status::PermissionDenied("job belongs to another user");
  }
  if (IsTerminal(job.state)) {
    return Status::FailedPrecondition(
        "job already " + std::string(JobStateName(job.state)));
  }
  if (job.state == JobState::kRunning) {
    return Status::FailedPrecondition("job is running and cannot be killed");
  }
  job.state = JobState::kCancelled;
  job.finished_at = now;
  Job copy = job;
  NoteFinishedLocked(id);
  return copy;
}

Result<Job> JobQueue::Get(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no such job");
  return it->second;
}

std::vector<Job> JobQueue::List(const std::string& user,
                                bool all_users) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Job> out;
  for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
    if (all_users || it->second.spec.user == user) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<Job> JobQueue::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Job> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

std::optional<double> JobQueue::NextRetryTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<double> earliest;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kRetrying) continue;
    if (!earliest.has_value() || job.not_before < *earliest) {
      earliest = job.not_before;
    }
  }
  return earliest;
}

size_t JobQueue::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (!IsTerminal(job.state)) ++n;
  }
  return n;
}

size_t JobQueue::running_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) ++n;
  }
  return n;
}

}  // namespace easia::jobs
