#ifndef EASIA_JOBS_SCHEDULER_H_
#define EASIA_JOBS_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "jobs/journal.h"
#include "jobs/queue.h"
#include "ops/engine.h"
#include "xuis/customize.h"

namespace easia::obs {
class Tracer;
}  // namespace easia::obs

namespace easia::jobs {

/// Retry/backoff and worker tuning.
struct SchedulerOptions {
  QueueLimits limits;
  /// Backoff before retry k (1-based) is
  /// `base * 2^(k-1) * (1 + jitter * u)`, u ~ U[0,1), capped at `max`.
  double backoff_base_seconds = 1.0;
  double backoff_max_seconds = 60.0;
  double backoff_jitter = 0.25;
  uint64_t jitter_seed = 0x6a6f6273ULL;  // deterministic across runs
  /// Journal path; empty disables persistence (and crash recovery).
  std::string journal_path;
  /// Threaded-mode poll interval while the queue is empty.
  double worker_poll_seconds = 0.001;
  /// File-system seam for the journal; null uses io::RealEnv(). The
  /// fault-injection harness substitutes a crashing/torn-write environment.
  io::Env* env = nullptr;
};

/// Drains the JobQueue and calls into ops::OperationEngine. Two modes:
///
///  - deterministic: the caller single-steps with `StepOne`/`RunPending`
///    on its own thread, driving time through a ManualClock — tests and
///    benches get identical results across runs;
///  - threaded: `Start(n)` spawns n std::thread workers that poll the
///    queue; `Stop()` drains and joins.
///
/// The OperationEngine serialises invocations internally, so threaded
/// workers and synchronous web requests can share one engine: submission
/// is decoupled from execution (the point of the subsystem), execution
/// itself is sequential. Job progress is captured through a per-invocation
/// listener (`InvocationContext::progress`), never global engine state.
class JobScheduler {
 public:
  JobScheduler(ops::OperationEngine* engine, const xuis::XuisRegistry* xuis,
               const Clock* clock, SchedulerOptions options = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Replays the journal (if configured): re-enqueues every job that was
  /// submitted/running/retrying at crash time, restores finished history
  /// (bounded by `QueueLimits::max_finished_jobs`), then compacts the
  /// journal to that recovered state so replay cost never grows with the
  /// archive's lifetime. Call before `Start`. Returns the number of jobs
  /// re-enqueued.
  Result<size_t> Recover();

  /// Wires in the request tracer (may be null — the default). Each job
  /// execution opens a "job:execute" span; in deterministic mode it nests
  /// under the caller's current span, in threaded mode it roots a trace.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Admits a job and journals the submission. Returns immediately with
  /// the accepted job (workers pick it up later).
  Result<Job> Submit(JobSpec spec);

  /// Cancels a queued/retrying job (journaled).
  Result<Job> Cancel(JobId id, const std::string& user, bool is_admin);

  // --- Deterministic mode --------------------------------------------------

  /// Expires overdue deadlines, then claims and executes one eligible job
  /// on the calling thread. Returns false when nothing was runnable.
  bool StepOne();

  /// Steps until no job is eligible at the current clock time (jobs in
  /// backoff stay parked — advance the ManualClock and call again).
  /// Returns the number of jobs executed.
  size_t RunPending();

  // --- Threaded mode -------------------------------------------------------

  void Start(size_t workers);
  void Stop();
  bool running() const { return !workers_.empty(); }

  // --- Introspection -------------------------------------------------------

  JobQueue& queue() { return queue_; }
  const JobQueue& queue() const { return queue_; }
  /// Executed-job counters (successes include every terminal success).
  uint64_t executed() const { return executed_.load(); }
  uint64_t succeeded() const { return succeeded_.load(); }
  uint64_t failed() const { return failed_.load(); }
  uint64_t retries() const { return retries_.load(); }
  /// Journal appends that failed (fsync/write errors). Submission-path
  /// failures also reject the submit; worker-transition failures are
  /// counted and execution continues (recovery re-runs the job).
  uint64_t journal_errors() const { return journal_errors_.load(); }

 private:
  void WorkerLoop();
  /// Runs one claimed job to a terminal or retrying state.
  void Execute(Job job);
  Result<ops::OperationResult> Dispatch(const Job& job,
                                        std::vector<std::string>* progress);
  /// Appends one durable event. Failures bump `journal_errors_` and are
  /// returned; whether to propagate or continue is the caller's call (the
  /// submit path must propagate — acknowledged means durable).
  Status Journal(const Job& job);
  double BackoffDelay(uint32_t attempt);

  ops::OperationEngine* engine_;
  const xuis::XuisRegistry* xuis_;
  const Clock* clock_;
  SchedulerOptions options_;
  obs::Tracer* tracer_ = nullptr;
  io::Env* env_ = nullptr;
  JobQueue queue_;

  std::mutex journal_mu_;
  std::optional<JobJournal> journal_;
  std::mutex rng_mu_;
  Random rng_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> journal_errors_{0};
};

}  // namespace easia::jobs

#endif  // EASIA_JOBS_SCHEDULER_H_
