#include "jobs/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"
#include "obs/trace.h"

namespace easia::jobs {

namespace {

/// Failures worth another attempt: transient infrastructure trouble.
/// Permission, validation and not-found errors fail permanently.
bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
    case StatusCode::kAborted:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

JobEvent EventFrom(const Job& job, double time) {
  JobEvent event;
  event.job_id = job.id;
  event.state = job.state;
  event.attempt = job.attempts;
  event.time = time;
  event.not_before = job.not_before;
  event.error = job.error;
  if (IsTerminal(job.state)) event.output_urls = job.output_urls;
  if (job.state == JobState::kSubmitted) event.spec = job.spec;
  return event;
}

/// Operation specs are declared per column; search the whole XUIS the way
/// the web front end does.
const xuis::OperationSpec* FindOperation(const xuis::XuisSpec& spec,
                                         const std::string& name) {
  for (const xuis::XuisTable& table : spec.tables) {
    for (const xuis::XuisColumn& col : table.columns) {
      for (const xuis::OperationSpec& op : col.operations) {
        if (op.name == name) return &op;
      }
    }
  }
  return nullptr;
}

struct FoundChain {
  const xuis::XuisColumn* column = nullptr;
  const xuis::OperationChainSpec* chain = nullptr;
};

FoundChain FindChain(const xuis::XuisSpec& spec, const std::string& name) {
  FoundChain found;
  for (const xuis::XuisTable& table : spec.tables) {
    for (const xuis::XuisColumn& col : table.columns) {
      if (const xuis::OperationChainSpec* chain = col.FindChain(name)) {
        found.column = &col;
        found.chain = chain;
      }
    }
  }
  return found;
}

}  // namespace

JobScheduler::JobScheduler(ops::OperationEngine* engine,
                           const xuis::XuisRegistry* xuis, const Clock* clock,
                           SchedulerOptions options)
    : engine_(engine),
      xuis_(xuis),
      clock_(clock),
      options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : io::RealEnv()),
      queue_(options_.limits),
      rng_(options_.jitter_seed) {
  if (!options_.journal_path.empty()) {
    Result<JobJournal> journal =
        JobJournal::Open(env_, options_.journal_path);
    if (journal.ok()) journal_ = std::move(*journal);
  }
}

JobScheduler::~JobScheduler() { Stop(); }

Status JobScheduler::Journal(const Job& job) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (!journal_.has_value()) {
    if (options_.journal_path.empty()) return Status::OK();
    // Persistence was requested but the journal never opened (or failed to
    // reopen after compaction): this transition is not durable.
    journal_errors_.fetch_add(1);
    return Status::Internal("job journal unavailable");
  }
  Status appended = journal_->Append(EventFrom(job, clock_->Now()));
  if (!appended.ok()) journal_errors_.fetch_add(1);
  return appended;
}

Result<size_t> JobScheduler::Recover() {
  if (options_.journal_path.empty()) return size_t{0};
  EASIA_ASSIGN_OR_RETURN(RecoveredQueue recovered,
                         RecoverQueue(env_, options_.journal_path));
  size_t pending = recovered.pending.size();
  for (Job& job : recovered.finished) queue_.Restore(std::move(job));
  for (Job& job : recovered.pending) queue_.Restore(std::move(job));
  // Checkpoint: rewrite the journal to the recovered (history-pruned)
  // state so replay cost stays bounded instead of accumulating every
  // transition the archive ever made. Safe here because no worker is
  // running yet, so the snapshot cannot go stale under us.
  std::vector<Job> snapshot = queue_.Snapshot();
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (journal_.has_value()) {
    journal_->Close();
    Status compacted = CompactJournal(env_, options_.journal_path, snapshot);
    Result<JobJournal> reopened =
        JobJournal::Open(env_, options_.journal_path);
    if (reopened.ok()) journal_ = std::move(*reopened);
    EASIA_RETURN_IF_ERROR(compacted);
  }
  return pending;
}

Result<Job> JobScheduler::Submit(JobSpec spec) {
  // The submission is journaled inside the queue's critical section —
  // before any worker can claim the job — so the kSubmitted record always
  // precedes the transitions that worker writes (replay drops transitions
  // it has no submit record for). A journal failure rejects the submit:
  // acknowledged means durable.
  return queue_.Submit(std::move(spec), clock_->Now(),
                       [this](const Job& job) { return Journal(job); });
}

Result<Job> JobScheduler::Cancel(JobId id, const std::string& user,
                                 bool is_admin) {
  EASIA_ASSIGN_OR_RETURN(Job job,
                         queue_.Cancel(id, user, is_admin, clock_->Now()));
  EASIA_RETURN_IF_ERROR(Journal(job));
  return job;
}

double JobScheduler::BackoffDelay(uint32_t attempt) {
  double delay = options_.backoff_base_seconds;
  for (uint32_t i = 1; i < attempt && delay < options_.backoff_max_seconds;
       ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.backoff_max_seconds);
  std::lock_guard<std::mutex> lock(rng_mu_);
  return delay * (1.0 + options_.backoff_jitter * rng_.NextDouble());
}

Result<ops::OperationResult> JobScheduler::Dispatch(
    const Job& job, std::vector<std::string>* progress) {
  const JobSpec& spec = job.spec;
  if (spec.datasets.empty()) {
    return Status::InvalidArgument("job has no dataset");
  }
  const xuis::XuisSpec& user_spec = xuis_->For(spec.user);
  ops::InvocationContext ctx;
  ctx.user = spec.user;
  ctx.is_guest = spec.is_guest;
  ctx.session_id =
      spec.session_id.empty() ? StrPrintf("job%llu",
                                          static_cast<unsigned long long>(
                                              job.id))
                              : spec.session_id;

  // Job-local progress capture: the listener lives in the invocation
  // context, so concurrent web-thread invocations can never emit into this
  // job's progress vector (the engine serialises execution internally).
  ctx.progress = [progress](const ops::ProgressEvent& e) {
    progress->push_back(std::string(ops::ProgressStageName(e.stage)) + ": " +
                        e.operation +
                        (e.detail.empty() ? "" : " (" + e.detail + ")"));
  };
  Result<ops::OperationResult> result = [&]() -> Result<ops::OperationResult> {
    switch (spec.kind) {
      case JobKind::kInvoke: {
        const xuis::OperationSpec* op = FindOperation(user_spec,
                                                      spec.operation);
        if (op == nullptr) {
          return Status::NotFound("no such operation: " + spec.operation);
        }
        return engine_->Invoke(*op, spec.datasets[0], spec.params, ctx);
      }
      case JobKind::kChain: {
        FoundChain found = FindChain(user_spec, spec.operation);
        if (found.chain == nullptr) {
          return Status::NotFound("no such operation chain: " +
                                  spec.operation);
        }
        if (ctx.is_guest && !found.chain->guest_access) {
          return Status::PermissionDenied("chain not available to guests");
        }
        std::vector<ops::ChainStep> steps;
        for (const std::string& step_name : found.chain->step_operations) {
          const xuis::OperationSpec* op =
              found.column->FindOperation(step_name);
          if (op == nullptr) {
            return Status::Internal("chain step missing: " + step_name);
          }
          ops::ChainStep step;
          step.op = op;
          for (const auto& [key, value] : spec.params) {
            if (StartsWith(key, step_name + ".")) {
              step.params[key.substr(step_name.size() + 1)] = value;
            }
          }
          steps.push_back(std::move(step));
        }
        EASIA_ASSIGN_OR_RETURN(
            std::vector<ops::OperationResult> results,
            engine_->InvokeChain(steps, spec.datasets[0], ctx));
        // Flatten the chain into one result: every step's outputs stay
        // downloadable, the text concatenates per-step output.
        ops::OperationResult merged;
        for (size_t i = 0; i < results.size(); ++i) {
          merged.host = results[i].host;
          merged.exec_seconds += results[i].exec_seconds;
          merged.input_bytes += results[i].input_bytes;
          merged.output_bytes += results[i].output_bytes;
          merged.output.text += StrPrintf(
              "== step %zu: %s ==\n%s", i + 1,
              found.chain->step_operations[i].c_str(),
              results[i].output.text.c_str());
          for (const std::string& url : results[i].output_urls) {
            merged.output_urls.push_back(url);
          }
        }
        return merged;
      }
      case JobKind::kMulti: {
        const xuis::OperationSpec* op = FindOperation(user_spec,
                                                      spec.operation);
        if (op == nullptr) {
          return Status::NotFound("no such operation: " + spec.operation);
        }
        EASIA_ASSIGN_OR_RETURN(
            ops::OperationEngine::MultiResult multi,
            engine_->InvokeMulti(*op, spec.datasets, spec.params, ctx));
        ops::OperationResult merged;
        merged.exec_seconds = multi.makespan_seconds;
        merged.output.text = StrPrintf(
            "%zu datasets, makespan %.3fs (serial %.3fs)\n",
            multi.results.size(), multi.makespan_seconds,
            multi.serial_seconds);
        for (const ops::OperationResult& r : multi.results) {
          merged.host = r.host;
          merged.input_bytes += r.input_bytes;
          merged.output_bytes += r.output_bytes;
          for (const std::string& url : r.output_urls) {
            merged.output_urls.push_back(url);
          }
        }
        return merged;
      }
      case JobKind::kUploadedCode: {
        const xuis::XuisColumn* col =
            user_spec.FindColumnById(spec.operation);
        if (col == nullptr || !col->upload.has_value()) {
          return Status::NotFound("no upload column " + spec.operation);
        }
        return engine_->RunUploadedCode(
            *col->upload, spec.code,
            spec.entry_filename.empty() ? "main.ea" : spec.entry_filename,
            spec.datasets[0], spec.params, ctx);
      }
    }
    return Status::Internal("unknown job kind");
  }();
  return result;
}

void JobScheduler::Execute(Job job) {
  obs::Tracer::Scope span(tracer_, "job:execute");
  span.set_note(job.spec.operation);
  // Worker-path journaling is count-and-continue: a failed append is
  // tallied in journal_errors_ (the Journal call itself) and surfaced on
  // /stats, while the job still runs — recovery re-runs anything whose
  // final state never persisted.
  (void)Journal(job);  // kRunning transition (attempt counter bumped)
  std::vector<std::string> progress;
  Result<ops::OperationResult> result = Dispatch(job, &progress);
  double now = clock_->Now();
  executed_.fetch_add(1);
  if (result.ok() && job.deadline > 0 && now > job.deadline) {
    result = Status::Aborted(StrPrintf(
        "completed after its deadline (timeout %.0fs)",
        job.spec.timeout_seconds));
  }
  if (result.ok()) {
    Result<Job> done = queue_.MarkSucceeded(
        job.id, now, std::move(result->output_urls),
        std::move(result->output.text), result->exec_seconds,
        std::move(progress));
    if (done.ok()) {
      succeeded_.fetch_add(1);
      (void)Journal(*done);
    }
    return;
  }
  span.set_error();
  const Status& error = result.status();
  bool budget_left = job.attempts < job.spec.max_attempts;
  bool deadline_ok = job.deadline == 0 || now <= job.deadline;
  if (IsRetryable(error) && budget_left && deadline_ok) {
    double not_before = now + BackoffDelay(job.attempts);
    Result<Job> parked =
        queue_.MarkRetrying(job.id, now, not_before, error.ToString());
    if (parked.ok()) {
      retries_.fetch_add(1);
      (void)Journal(*parked);
    }
    return;
  }
  Result<Job> failed =
      queue_.MarkFailed(job.id, now, error.ToString(), std::move(progress));
  if (failed.ok()) {
    failed_.fetch_add(1);
    (void)Journal(*failed);
  }
}

bool JobScheduler::StepOne() {
  double now = clock_->Now();
  for (const Job& expired : queue_.ExpireDeadlines(now)) {
    failed_.fetch_add(1);
    (void)Journal(expired);
  }
  std::optional<Job> job = queue_.ClaimNext(now);
  if (!job.has_value()) return false;
  Execute(std::move(*job));
  return true;
}

size_t JobScheduler::RunPending() {
  size_t n = 0;
  while (StepOne()) ++n;
  return n;
}

void JobScheduler::WorkerLoop() {
  while (!stop_.load()) {
    if (!StepOne()) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.worker_poll_seconds));
    }
  }
}

void JobScheduler::Start(size_t workers) {
  if (!workers_.empty()) return;
  stop_.store(false);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void JobScheduler::Stop() {
  stop_.store(true);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace easia::jobs
