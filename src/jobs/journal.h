#ifndef EASIA_JOBS_JOURNAL_H_
#define EASIA_JOBS_JOURNAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "jobs/job.h"

namespace easia::jobs {

/// The byte sink the journal writes through (see common/io.h). Production
/// code gets the stdio+fsync implementation from io::RealEnv(); the
/// fault-injection harness substitutes one that tears writes, drops fsyncs
/// and stops persisting at a crash point.
using JournalFile = io::LogFile;

/// Persists every job state transition as a framed record
/// (`u32 length, u32 crc32, payload`) — the same redo-log framing as
/// `db::Wal` — so a crashed archive can rebuild its queue on restart.
/// A torn final record (crash mid-write) is tolerated by the reader.
class JobJournal {
 public:
  /// Opens against the host file system (io::RealEnv()).
  static Result<JobJournal> Open(const std::string& path);
  /// Opens through an explicit environment (fault injection, tests).
  static Result<JobJournal> Open(io::Env* env, const std::string& path);

  JobJournal(JobJournal&&) noexcept = default;
  JobJournal& operator=(JobJournal&&) noexcept = default;
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;
  ~JobJournal() = default;

  /// Appends, flushes and fsyncs one event (every transition is durable —
  /// against OS crash and power loss, not just process death — before it
  /// is visible, so recovery never loses an acknowledged submission).
  Status Append(const JobEvent& event);
  void Close();

 private:
  explicit JobJournal(std::unique_ptr<JournalFile> file)
      : file_(std::move(file)) {}
  std::unique_ptr<JournalFile> file_;
};

/// Reads every intact event from a journal file; stops silently at the
/// first torn or corrupt frame (standard redo-log semantics).
Result<std::vector<JobEvent>> ReadJournal(const std::string& path);
Result<std::vector<JobEvent>> ReadJournal(io::Env* env,
                                          const std::string& path);

/// The queue state reconstructed from a journal replay.
struct RecoveredQueue {
  /// Jobs whose last event is non-terminal — kSubmitted, kRetrying and
  /// (crash while executing) kRunning — to be re-enqueued and re-run.
  std::vector<Job> pending;
  /// Jobs that had already finished, kept for /jobs/status history.
  std::vector<Job> finished;
  JobId max_job_id = 0;
};

/// Replays a journal into the latest state per job. Jobs last seen
/// kRunning are treated as never started (attempt counter rolled back) so
/// the restarted archive re-runs them to completion.
Result<RecoveredQueue> RecoverQueue(const std::string& path);
Result<RecoveredQueue> RecoverQueue(io::Env* env, const std::string& path);

/// Rewrites the journal at `path` to the minimal event sequence that
/// replays into `jobs` (one submit record per job plus its latest
/// transition), atomically (write-temp + rename). Run at recovery time —
/// with no workers appending — so replay cost is bounded by the retained
/// history instead of growing with the archive's lifetime.
Status CompactJournal(const std::string& path, const std::vector<Job>& jobs);
Status CompactJournal(io::Env* env, const std::string& path,
                      const std::vector<Job>& jobs);

}  // namespace easia::jobs

#endif  // EASIA_JOBS_JOURNAL_H_
