#include "jobs/journal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/coding.h"

namespace easia::jobs {

Result<JobJournal> JobJournal::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("job journal: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  return JobJournal(f);
}

JobJournal::JobJournal(JobJournal&& other) noexcept : file_(other.file_) {
  other.file_ = nullptr;
}

JobJournal& JobJournal::operator=(JobJournal&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

JobJournal::~JobJournal() { Close(); }

void JobJournal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status JobJournal::Append(const JobEvent& event) {
  if (file_ == nullptr) return Status::Internal("job journal: closed");
  std::string payload = event.Encode();
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame += payload;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("job journal: short write");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("job journal: flush failed");
  }
  // fflush only reaches the OS page cache; fsync makes the record durable
  // against an OS crash or power loss, not just a process crash.
  if (::fsync(::fileno(file_)) != 0) {
    return Status::Internal(std::string("job journal: fsync failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<JobEvent>> ReadJournal(const std::string& path) {
  std::vector<JobEvent> events;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return events;  // no journal yet
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  size_t pos = 0;
  while (pos + 8 <= contents.size()) {
    Decoder header(std::string_view(contents).substr(pos, 8));
    uint32_t len = header.GetU32().value();
    uint32_t crc = header.GetU32().value();
    if (pos + 8 + len > contents.size()) break;  // torn tail
    std::string_view payload =
        std::string_view(contents).substr(pos + 8, len);
    if (Crc32(payload) != crc) break;  // corrupt tail
    Result<JobEvent> event = JobEvent::Decode(payload);
    if (!event.ok()) break;
    events.push_back(std::move(*event));
    pos += 8 + len;
  }
  return events;
}

Result<RecoveredQueue> RecoverQueue(const std::string& path) {
  EASIA_ASSIGN_OR_RETURN(std::vector<JobEvent> events, ReadJournal(path));
  std::map<JobId, Job> jobs;  // ordered, so recovery is deterministic
  for (const JobEvent& event : events) {
    if (event.state == JobState::kSubmitted) {
      Job job;
      job.id = event.job_id;
      job.spec = event.spec;
      job.state = JobState::kSubmitted;
      job.submitted_at = event.time;
      job.not_before = event.not_before;
      if (job.spec.timeout_seconds > 0) {
        job.deadline = event.time + job.spec.timeout_seconds;
      }
      jobs[event.job_id] = std::move(job);
      continue;
    }
    auto it = jobs.find(event.job_id);
    if (it == jobs.end()) continue;  // transition without a submit record
    Job& job = it->second;
    job.state = event.state;
    job.attempts = event.attempt;
    job.not_before = event.not_before;
    job.error = event.error;
    if (IsTerminal(event.state)) {
      job.finished_at = event.time;
      job.output_urls = event.output_urls;
    }
  }
  RecoveredQueue recovered;
  for (auto& [id, job] : jobs) {
    recovered.max_job_id = std::max(recovered.max_job_id, id);
    if (IsTerminal(job.state)) {
      recovered.finished.push_back(std::move(job));
      continue;
    }
    if (job.state == JobState::kRunning) {
      // Crash mid-execution: the attempt never finished, so it does not
      // count against max_attempts on the restarted archive.
      job.attempts = job.attempts > 0 ? job.attempts - 1 : 0;
      job.not_before = 0;
      job.state = JobState::kSubmitted;
    }
    recovered.pending.push_back(std::move(job));
  }
  return recovered;
}

Status CompactJournal(const std::string& path,
                      const std::vector<Job>& jobs) {
  const std::string tmp = path + ".tmp";
  std::remove(tmp.c_str());
  {
    EASIA_ASSIGN_OR_RETURN(JobJournal journal, JobJournal::Open(tmp));
    for (const Job& job : jobs) {
      JobEvent submitted;
      submitted.job_id = job.id;
      submitted.state = JobState::kSubmitted;
      submitted.time = job.submitted_at;
      submitted.spec = job.spec;
      if (job.state == JobState::kSubmitted) {
        submitted.not_before = job.not_before;
      }
      EASIA_RETURN_IF_ERROR(journal.Append(submitted));
      if (job.state == JobState::kSubmitted) continue;
      JobEvent latest;
      latest.job_id = job.id;
      latest.state = job.state;
      latest.attempt = job.attempts;
      latest.time =
          IsTerminal(job.state) ? job.finished_at : job.submitted_at;
      latest.not_before = job.not_before;
      latest.error = job.error;
      if (IsTerminal(job.state)) latest.output_urls = job.output_urls;
      EASIA_RETURN_IF_ERROR(journal.Append(latest));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("job journal: compaction rename failed: " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace easia::jobs
