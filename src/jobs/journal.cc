#include "jobs/journal.h"

#include <algorithm>

#include "common/coding.h"

namespace easia::jobs {

Result<JobJournal> JobJournal::Open(const std::string& path) {
  return Open(io::RealEnv(), path);
}

Result<JobJournal> JobJournal::Open(io::Env* env, const std::string& path) {
  EASIA_ASSIGN_OR_RETURN(std::unique_ptr<JournalFile> file,
                         env->OpenAppend(path));
  return JobJournal(std::move(file));
}

void JobJournal::Close() {
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
}

Status JobJournal::Append(const JobEvent& event) {
  if (file_ == nullptr) return Status::Internal("job journal: closed");
  std::string frame;
  io::AppendFrame(&frame, event.Encode());
  EASIA_RETURN_IF_ERROR(file_->Append(frame).WithContext("job journal"));
  // Every transition must be durable before it is acknowledged; an fsync
  // failure here is a lost-durability event and must reach the caller.
  return file_->Sync().WithContext("job journal");
}

Result<std::vector<JobEvent>> ReadJournal(const std::string& path) {
  return ReadJournal(io::RealEnv(), path);
}

Result<std::vector<JobEvent>> ReadJournal(io::Env* env,
                                          const std::string& path) {
  std::vector<JobEvent> events;
  Result<std::string> contents = env->ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().IsNotFound()) return events;  // no journal yet
    return contents.status();
  }
  for (std::string_view payload : io::ScanFrames(*contents)) {
    Result<JobEvent> event = JobEvent::Decode(payload);
    if (!event.ok()) break;  // corrupt tail
    events.push_back(std::move(*event));
  }
  return events;
}

Result<RecoveredQueue> RecoverQueue(const std::string& path) {
  return RecoverQueue(io::RealEnv(), path);
}

Result<RecoveredQueue> RecoverQueue(io::Env* env, const std::string& path) {
  EASIA_ASSIGN_OR_RETURN(std::vector<JobEvent> events,
                         ReadJournal(env, path));
  std::map<JobId, Job> jobs;  // ordered, so recovery is deterministic
  for (const JobEvent& event : events) {
    if (event.state == JobState::kSubmitted) {
      Job job;
      job.id = event.job_id;
      job.spec = event.spec;
      job.state = JobState::kSubmitted;
      job.submitted_at = event.time;
      job.not_before = event.not_before;
      if (job.spec.timeout_seconds > 0) {
        job.deadline = event.time + job.spec.timeout_seconds;
      }
      jobs[event.job_id] = std::move(job);
      continue;
    }
    auto it = jobs.find(event.job_id);
    if (it == jobs.end()) continue;  // transition without a submit record
    Job& job = it->second;
    job.state = event.state;
    job.attempts = event.attempt;
    job.not_before = event.not_before;
    job.error = event.error;
    if (IsTerminal(event.state)) {
      job.finished_at = event.time;
      job.output_urls = event.output_urls;
    }
  }
  RecoveredQueue recovered;
  for (auto& [id, job] : jobs) {
    recovered.max_job_id = std::max(recovered.max_job_id, id);
    if (IsTerminal(job.state)) {
      recovered.finished.push_back(std::move(job));
      continue;
    }
    if (job.state == JobState::kRunning) {
      // Crash mid-execution: the attempt never finished, so it does not
      // count against max_attempts on the restarted archive.
      job.attempts = job.attempts > 0 ? job.attempts - 1 : 0;
      job.not_before = 0;
      job.state = JobState::kSubmitted;
    }
    recovered.pending.push_back(std::move(job));
  }
  return recovered;
}

Status CompactJournal(const std::string& path,
                      const std::vector<Job>& jobs) {
  return CompactJournal(io::RealEnv(), path, jobs);
}

Status CompactJournal(io::Env* env, const std::string& path,
                      const std::vector<Job>& jobs) {
  std::string contents;
  for (const Job& job : jobs) {
    JobEvent submitted;
    submitted.job_id = job.id;
    submitted.state = JobState::kSubmitted;
    submitted.time = job.submitted_at;
    submitted.spec = job.spec;
    if (job.state == JobState::kSubmitted) {
      submitted.not_before = job.not_before;
    }
    io::AppendFrame(&contents, submitted.Encode());
    if (job.state == JobState::kSubmitted) continue;
    JobEvent latest;
    latest.job_id = job.id;
    latest.state = job.state;
    latest.attempt = job.attempts;
    latest.time = IsTerminal(job.state) ? job.finished_at : job.submitted_at;
    latest.not_before = job.not_before;
    latest.error = job.error;
    if (IsTerminal(job.state)) latest.output_urls = job.output_urls;
    io::AppendFrame(&contents, latest.Encode());
  }
  return env->WriteFileAtomic(path, contents).WithContext("job journal");
}

}  // namespace easia::jobs
