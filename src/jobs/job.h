#ifndef EASIA_JOBS_JOB_H_
#define EASIA_JOBS_JOB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "fileserver/file_server.h"
#include "ops/engine.h"

namespace easia::jobs {

using JobId = uint64_t;

/// What a job executes when a worker picks it up. Mirrors the synchronous
/// web entry points (/runop, /runchain, multi-dataset, /upload) so any
/// interactive request can instead be queued (the paper's batch-file
/// mechanism, decoupled from the servlet request).
enum class JobKind : uint8_t {
  kInvoke = 1,        // one operation over one dataset
  kChain = 2,         // an <operationchain> over one dataset
  kMulti = 3,         // one operation over several datasets
  kUploadedCode = 4,  // user-uploaded EaScript over one dataset
};

std::string_view JobKindName(JobKind kind);
Result<JobKind> JobKindFromName(std::string_view name);

/// Job lifecycle. Terminal states are kSucceeded/kFailed/kCancelled;
/// kRetrying means a failed attempt is waiting out its backoff window.
enum class JobState : uint8_t {
  kSubmitted = 1,
  kRunning = 2,
  kSucceeded = 3,
  kFailed = 4,
  kRetrying = 5,
  kCancelled = 6,
};

std::string_view JobStateName(JobState state);
bool IsTerminal(JobState state);

/// Everything needed to (re-)execute a job, independent of in-memory
/// pointers — specs are resolved by name at execution time so a journal
/// replayed after a crash can re-run the job.
struct JobSpec {
  JobKind kind = JobKind::kInvoke;
  std::string user = "guest";
  bool is_guest = true;
  std::string session_id;
  std::string operation;  // kInvoke/kMulti: op name; kChain: chain name
  std::vector<std::string> datasets;  // kMulti uses all, others use [0]
  fs::HttpParams params;
  int32_t priority = 0;           // higher runs first (guests clamped to 0)
  double timeout_seconds = 0;     // 0 = no deadline
  uint32_t max_attempts = 3;
  std::string code;               // kUploadedCode: packaged source
  std::string entry_filename;     // kUploadedCode: entry file in the bundle

  std::string Encode() const;
  static Result<JobSpec> Decode(std::string_view payload);
};

/// A queued job plus its runtime bookkeeping.
struct Job {
  JobId id = 0;
  JobSpec spec;
  JobState state = JobState::kSubmitted;
  uint32_t attempts = 0;          // attempts started so far
  double submitted_at = 0;
  double not_before = 0;          // backoff gate (epoch seconds)
  double deadline = 0;            // submitted_at + timeout (0 = none)
  double finished_at = 0;
  std::string error;              // last failure, human readable
  std::vector<std::string> output_urls;
  std::string output_text;
  double exec_seconds = 0;
  /// Engine stage events observed during the latest attempt
  /// ("stage: detail" lines, exposed by /jobs/status).
  std::vector<std::string> progress;
};

/// One persisted journal entry: a submission (carrying the full spec) or a
/// state transition. Replaying the sequence rebuilds the queue.
struct JobEvent {
  JobId job_id = 0;
  JobState state = JobState::kSubmitted;
  uint32_t attempt = 0;
  double time = 0;
  double not_before = 0;          // meaningful for kRetrying
  std::string error;
  std::vector<std::string> output_urls;
  JobSpec spec;                   // populated for kSubmitted events

  std::string Encode() const;
  static Result<JobEvent> Decode(std::string_view payload);
};

}  // namespace easia::jobs

#endif  // EASIA_JOBS_JOB_H_
